"""Multi-head attention and transformer encoder blocks.

These are the building blocks for three separate consumers:

* the Graphormer layers inside DNN-occu (pre-LN residual blocks);
* the Set Transformer decoder (MAB / SAB / PMA, via cross-attention);
* the Transformer baseline predictor from Section IV-D.
"""

from __future__ import annotations

import numpy as np

from ..tensor import Module, Tensor
from .layers import LayerNorm, Linear

__all__ = ["MultiHeadAttention", "FeedForward", "TransformerEncoderLayer"]


class MultiHeadAttention(Module):
    """Scaled dot-product attention with ``num_heads`` heads.

    Supports self-attention (``forward(x)``) and cross-attention
    (``forward(q, kv)``) on inputs shaped ``(n, dim)`` — single sequences,
    which is the natural shape for graph-node sets.
    """

    def __init__(self, dim: int, num_heads: int, rng: np.random.Generator):
        super().__init__()
        if dim % num_heads != 0:
            raise ValueError(f"dim {dim} not divisible by num_heads {num_heads}")
        self.dim = dim
        self.num_heads = num_heads
        self.head_dim = dim // num_heads
        # Precomputed so every forward (and every traced tape) bakes the
        # same scale constant instead of re-deriving it per call.
        self.scale = 1.0 / np.sqrt(self.head_dim)
        self.w_q = Linear(dim, dim, rng)
        self.w_k = Linear(dim, dim, rng)
        self.w_v = Linear(dim, dim, rng)
        self.w_o = Linear(dim, dim, rng)

    def forward(self, query: Tensor, key_value: Tensor | None = None,
                attn_bias: Tensor | None = None) -> Tensor:
        """Attend ``query`` over ``key_value`` (defaults to self-attention).

        Accepts a single set ``(n, dim)`` or a batch of padded sets
        ``(B, n, dim)``; with batched inputs every attention matrix is
        computed per batch element, so sets never attend across the batch
        axis.

        ``attn_bias`` — optional additive bias applied to every head's
        pre-softmax scores.  Shape ``(n_q, n_kv)`` for single sets;
        ``(B, n_q, n_kv)`` or ``(B, 1, n_kv)`` (a pure key mask,
        broadcast over queries) for batched ones.  Graphormer uses this
        slot for its structural (shortest-path) encodings, and the
        batched execution path adds the ``-1e30`` validity mask that
        zeroes attention onto padded node slots.
        """
        kv = query if key_value is None else key_value
        if query.ndim == 3:
            return self._forward_batched(query, kv, attn_bias)
        n_q = query.shape[0]
        n_kv = kv.shape[0]
        h, d = self.num_heads, self.head_dim

        # (n, dim) -> (heads, n, head_dim)
        q = self.w_q(query).reshape(n_q, h, d).transpose(1, 0, 2)
        k = self.w_k(kv).reshape(n_kv, h, d).transpose(1, 0, 2)
        v = self.w_v(kv).reshape(n_kv, h, d).transpose(1, 0, 2)

        scores = (q @ k.transpose(0, 2, 1)) * self.scale
        if attn_bias is not None:
            scores = scores + attn_bias.reshape(1, n_q, n_kv)
        weights = scores.softmax(axis=-1)
        out = weights @ v  # (heads, n_q, head_dim)
        out = out.transpose(1, 0, 2).reshape(n_q, self.dim)
        return self.w_o(out)

    def _forward_batched(self, query: Tensor, kv: Tensor,
                         attn_bias: Tensor | None) -> Tensor:
        """Batched attention over padded sets: ``(B, n, dim)`` inputs."""
        b, n_q, _ = query.shape
        n_kv = kv.shape[1]
        h, d = self.num_heads, self.head_dim

        # (B, n, dim) -> (B, heads, n, head_dim)
        q = self.w_q(query).reshape(b, n_q, h, d).transpose(0, 2, 1, 3)
        k = self.w_k(kv).reshape(b, n_kv, h, d).transpose(0, 2, 1, 3)
        v = self.w_v(kv).reshape(b, n_kv, h, d).transpose(0, 2, 1, 3)

        scores = (q @ k.transpose(0, 1, 3, 2)) * self.scale
        if attn_bias is not None:
            # (B, n_q|1, n_kv) -> (B, 1, n_q|1, n_kv): broadcast over
            # heads (and over queries for pure key masks).
            scores = scores + attn_bias.reshape(
                b, 1, attn_bias.shape[1], n_kv)
        weights = scores.softmax(axis=-1)
        out = weights @ v  # (B, heads, n_q, head_dim)
        out = out.transpose(0, 2, 1, 3).reshape(b, n_q, self.dim)
        return self.w_o(out)


class FeedForward(Module):
    """Position-wise two-layer FFN with ReLU."""

    def __init__(self, dim: int, hidden_dim: int, rng: np.random.Generator):
        super().__init__()
        self.fc1 = Linear(dim, hidden_dim, rng)
        self.fc2 = Linear(hidden_dim, dim, rng)

    def forward(self, x: Tensor) -> Tensor:
        return self.fc2(self.fc1(x).relu())


class TransformerEncoderLayer(Module):
    """Pre-LN transformer encoder block (the Graphormer formulation):

        h' = MHA(LN(h)) + h
        h  = FFN(LN(h')) + h'
    """

    def __init__(self, dim: int, num_heads: int, ffn_dim: int,
                 rng: np.random.Generator):
        super().__init__()
        self.ln1 = LayerNorm(dim)
        self.attn = MultiHeadAttention(dim, num_heads, rng)
        self.ln2 = LayerNorm(dim)
        self.ffn = FeedForward(dim, ffn_dim, rng)

    def forward(self, x: Tensor, attn_bias: Tensor | None = None) -> Tensor:
        x = self.attn(self.ln1(x), attn_bias=attn_bias) + x
        x = self.ffn(self.ln2(x)) + x
        return x
