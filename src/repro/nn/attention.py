"""Multi-head attention and transformer encoder blocks.

These are the building blocks for three separate consumers:

* the Graphormer layers inside DNN-occu (pre-LN residual blocks);
* the Set Transformer decoder (MAB / SAB / PMA, via cross-attention);
* the Transformer baseline predictor from Section IV-D.
"""

from __future__ import annotations

import numpy as np

from ..tensor import Module, Tensor
from .layers import LayerNorm, Linear

__all__ = ["MultiHeadAttention", "FeedForward", "TransformerEncoderLayer"]


class MultiHeadAttention(Module):
    """Scaled dot-product attention with ``num_heads`` heads.

    Supports self-attention (``forward(x)``) and cross-attention
    (``forward(q, kv)``) on inputs shaped ``(n, dim)`` — single sequences,
    which is the natural shape for graph-node sets.
    """

    def __init__(self, dim: int, num_heads: int, rng: np.random.Generator):
        super().__init__()
        if dim % num_heads != 0:
            raise ValueError(f"dim {dim} not divisible by num_heads {num_heads}")
        self.dim = dim
        self.num_heads = num_heads
        self.head_dim = dim // num_heads
        self.w_q = Linear(dim, dim, rng)
        self.w_k = Linear(dim, dim, rng)
        self.w_v = Linear(dim, dim, rng)
        self.w_o = Linear(dim, dim, rng)

    def forward(self, query: Tensor, key_value: Tensor | None = None,
                attn_bias: Tensor | None = None) -> Tensor:
        """Attend ``query`` over ``key_value`` (defaults to self-attention).

        ``attn_bias`` — optional additive bias of shape ``(n_q, n_kv)``
        applied to every head's pre-softmax scores.  Graphormer uses this
        slot for its structural (shortest-path / edge) encodings.
        """
        kv = query if key_value is None else key_value
        n_q = query.shape[0]
        n_kv = kv.shape[0]
        h, d = self.num_heads, self.head_dim

        # (n, dim) -> (heads, n, head_dim)
        q = self.w_q(query).reshape(n_q, h, d).transpose(1, 0, 2)
        k = self.w_k(kv).reshape(n_kv, h, d).transpose(1, 0, 2)
        v = self.w_v(kv).reshape(n_kv, h, d).transpose(1, 0, 2)

        scores = (q @ k.transpose(0, 2, 1)) * (1.0 / np.sqrt(d))
        if attn_bias is not None:
            scores = scores + attn_bias.reshape(1, n_q, n_kv)
        weights = scores.softmax(axis=-1)
        out = weights @ v  # (heads, n_q, head_dim)
        out = out.transpose(1, 0, 2).reshape(n_q, self.dim)
        return self.w_o(out)


class FeedForward(Module):
    """Position-wise two-layer FFN with ReLU."""

    def __init__(self, dim: int, hidden_dim: int, rng: np.random.Generator):
        super().__init__()
        self.fc1 = Linear(dim, hidden_dim, rng)
        self.fc2 = Linear(hidden_dim, dim, rng)

    def forward(self, x: Tensor) -> Tensor:
        return self.fc2(self.fc1(x).relu())


class TransformerEncoderLayer(Module):
    """Pre-LN transformer encoder block (the Graphormer formulation):

        h' = MHA(LN(h)) + h
        h  = FFN(LN(h')) + h'
    """

    def __init__(self, dim: int, num_heads: int, ffn_dim: int,
                 rng: np.random.Generator):
        super().__init__()
        self.ln1 = LayerNorm(dim)
        self.attn = MultiHeadAttention(dim, num_heads, rng)
        self.ln2 = LayerNorm(dim)
        self.ffn = FeedForward(dim, ffn_dim, rng)

    def forward(self, x: Tensor, attn_bias: Tensor | None = None) -> Tensor:
        x = self.attn(self.ln1(x), attn_bias=attn_bias) + x
        x = self.ffn(self.ln2(x)) + x
        return x
