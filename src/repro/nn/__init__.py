"""Neural-network layers built on :mod:`repro.tensor`."""

from .layers import (Dropout, Identity, LayerNorm, LeakyReLU, Linear, MLP,
                     ReLU, Sequential, Sigmoid, Tanh)
from .attention import FeedForward, MultiHeadAttention, TransformerEncoderLayer
from .recurrent import LSTM, LSTMCell

__all__ = [
    "Linear", "LayerNorm", "Dropout", "MLP", "Sequential",
    "ReLU", "LeakyReLU", "Tanh", "Sigmoid", "Identity",
    "MultiHeadAttention", "FeedForward", "TransformerEncoderLayer",
    "LSTM", "LSTMCell",
]
