"""Core neural-network layers built on the autograd engine.

These mirror the PyTorch layers the paper's implementation uses: ``Linear``,
``LayerNorm``, ``Dropout``, ``MLP`` stacks, and the activation wrappers
needed by the ANEE / Graphormer / Set Transformer blocks.
"""

from __future__ import annotations

import numpy as np

from ..tensor import Module, ModuleList, Parameter, Tensor, init

__all__ = ["Linear", "LayerNorm", "Dropout", "MLP", "Sequential",
           "ReLU", "LeakyReLU", "Tanh", "Sigmoid", "Identity"]


class Linear(Module):
    """Affine map ``y = x W^T + b`` over the last axis."""

    def __init__(self, in_features: int, out_features: int,
                 rng: np.random.Generator, bias: bool = True):
        super().__init__()
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(
            init.kaiming_uniform((out_features, in_features), rng)
        )
        self.bias = Parameter(np.zeros(out_features)) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        out = x @ self.weight.T
        if self.bias is not None:
            out = out + self.bias
        return out


class LayerNorm(Module):
    """Layer normalization over the last axis, with learnable affine."""

    def __init__(self, dim: int, eps: float = 1e-5):
        super().__init__()
        self.dim = dim
        self.eps = eps
        self.gamma = Parameter(np.ones(dim))
        self.beta = Parameter(np.zeros(dim))

    def forward(self, x: Tensor) -> Tensor:
        mu = x.mean(axis=-1, keepdims=True)
        var = x.var(axis=-1, keepdims=True)
        normed = (x - mu) / (var + self.eps).sqrt()
        return normed * self.gamma + self.beta


class Dropout(Module):
    """Inverted dropout; identity in eval mode."""

    def __init__(self, p: float, rng: np.random.Generator):
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ValueError("dropout probability must be in [0, 1)")
        self.p = p
        self.rng = rng

    def forward(self, x: Tensor) -> Tensor:
        if not self.training or self.p == 0.0:
            return x
        keep = 1.0 - self.p
        mask = self.rng.random(x.shape) < keep
        return x * Tensor(mask / keep)


class ReLU(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.relu()


class LeakyReLU(Module):
    def __init__(self, negative_slope: float = 0.01):
        super().__init__()
        self.negative_slope = negative_slope

    def forward(self, x: Tensor) -> Tensor:
        return x.leaky_relu(self.negative_slope)


class Tanh(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.tanh()


class Sigmoid(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.sigmoid()


class Identity(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x


class Sequential(Module):
    """Run sub-modules in order."""

    def __init__(self, *modules: Module):
        super().__init__()
        self.layers = ModuleList(modules)

    def forward(self, x: Tensor) -> Tensor:
        for layer in self.layers:
            x = layer(x)
        return x


class MLP(Module):
    """Multilayer perceptron with configurable widths and activation.

    ``widths`` gives the full chain including input and output sizes; e.g.
    the paper's MLP baseline uses ``[in, 80, 512, 512, 256, 1]``.
    """

    def __init__(self, widths: list[int], rng: np.random.Generator,
                 activation: str = "relu", final_activation: bool = False):
        super().__init__()
        if len(widths) < 2:
            raise ValueError("MLP needs at least input and output widths")
        acts = {"relu": ReLU, "leaky_relu": LeakyReLU, "tanh": Tanh,
                "sigmoid": Sigmoid}
        if activation not in acts:
            raise ValueError(f"unknown activation {activation!r}")
        layers: list[Module] = []
        for i, (a, b) in enumerate(zip(widths[:-1], widths[1:])):
            layers.append(Linear(a, b, rng))
            last = i == len(widths) - 2
            if not last or final_activation:
                layers.append(acts[activation]())
        self.net = Sequential(*layers)

    def forward(self, x: Tensor) -> Tensor:
        return self.net(x)
