"""Recurrent layers (LSTM) for the sequence-model baseline.

The paper's LSTM baseline treats the node-feature sequence (topological
order) as a time series and regresses occupancy from the final hidden state.
"""

from __future__ import annotations

import numpy as np

from ..tensor import Module, ModuleList, Parameter, Tensor, init

__all__ = ["LSTMCell", "LSTM"]


class LSTMCell(Module):
    """Single LSTM cell with fused gate projection.

    Gates are computed as one matmul producing ``4 * hidden`` pre-activations
    split into input / forget / cell / output, matching cuDNN's layout.
    """

    def __init__(self, input_size: int, hidden_size: int,
                 rng: np.random.Generator):
        super().__init__()
        self.input_size = input_size
        self.hidden_size = hidden_size
        self.w_ih = Parameter(
            init.xavier_uniform((4 * hidden_size, input_size), rng))
        self.w_hh = Parameter(
            init.xavier_uniform((4 * hidden_size, hidden_size), rng))
        bias = np.zeros(4 * hidden_size)
        # Forget-gate bias of 1.0: the standard trick for gradient flow.
        bias[hidden_size: 2 * hidden_size] = 1.0
        self.bias = Parameter(bias)

    def forward(self, x: Tensor, state: tuple[Tensor, Tensor]) -> tuple[Tensor, Tensor]:
        h_prev, c_prev = state
        gates = x @ self.w_ih.T + h_prev @ self.w_hh.T + self.bias
        hs = self.hidden_size
        i = gates[..., 0 * hs:1 * hs].sigmoid()
        f = gates[..., 1 * hs:2 * hs].sigmoid()
        g = gates[..., 2 * hs:3 * hs].tanh()
        o = gates[..., 3 * hs:4 * hs].sigmoid()
        c = f * c_prev + i * g
        h = o * c.tanh()
        return h, c

    def init_state(self, batch: int) -> tuple[Tensor, Tensor]:
        shape = (batch, self.hidden_size) if batch else (self.hidden_size,)
        return Tensor(np.zeros(shape)), Tensor(np.zeros(shape))


class LSTM(Module):
    """Multi-layer unidirectional LSTM over ``(seq, batch, features)`` input.

    Returns the full top-layer output sequence and the final ``(h, c)``
    states per layer.
    """

    def __init__(self, input_size: int, hidden_size: int, num_layers: int,
                 rng: np.random.Generator):
        super().__init__()
        self.num_layers = num_layers
        self.hidden_size = hidden_size
        cells = []
        for layer in range(num_layers):
            in_size = input_size if layer == 0 else hidden_size
            cells.append(LSTMCell(in_size, hidden_size, rng))
        self.cells = ModuleList(cells)

    def forward(self, x: Tensor) -> tuple[Tensor, list[tuple[Tensor, Tensor]]]:
        seq_len = x.shape[0]
        batch = x.shape[1] if x.ndim == 3 else 0
        states = [cell.init_state(batch) for cell in self.cells]
        outputs: list[Tensor] = []
        for t in range(seq_len):
            inp = x[t]
            for li, cell in enumerate(self.cells):
                h, c = cell(inp, states[li])
                states[li] = (h, c)
                inp = h
            outputs.append(inp)
        return Tensor.stack(outputs, axis=0), states
