"""Model zoo: computation-graph builders for every Table II architecture."""

from .common import ModelConfig
from .registry import MODEL_FAMILY, MODEL_REGISTRY, build_model, list_models
from .cnn import (build_alexnet, build_convnext, build_lenet, build_resnet,
                  build_vgg)
from .rnn import build_lstm, build_rnn
from .transformer import (build_bert, build_gpt2, build_maxvit, build_swin,
                          build_vit)
from .clip import build_clip

__all__ = [
    "ModelConfig", "MODEL_REGISTRY", "MODEL_FAMILY", "build_model",
    "list_models",
    "build_lenet", "build_alexnet", "build_vgg", "build_resnet",
    "build_convnext", "build_rnn", "build_lstm",
    "build_vit", "build_swin", "build_maxvit", "build_bert", "build_gpt2",
    "build_clip",
]
