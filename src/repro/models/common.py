"""Shared building blocks for the model zoo.

These composers emit *operator-level* subgraphs (the granularity ONNX export
produces): attention is a chain of Gemm / Slice / Transpose / MatMul /
Softmax nodes rather than a single fused "Attention" node, matching how the
paper's feature extraction sees transformer models (Section III-C: attention
modules are "essentially generalized matrix multiplication").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from ..graph import GraphBuilder, TensorRef

__all__ = ["ModelConfig", "conv_bn_act", "transformer_encoder_block",
           "multi_head_attention", "mlp_block", "classifier_head"]


@dataclass(frozen=True)
class ModelConfig:
    """Hyperparameter bundle for one model configuration (Table II space).

    Not every field is meaningful for every family: CNNs use
    ``batch_size`` / ``in_channels`` / ``image_size``; RNNs use
    ``batch_size`` / ``seq_len`` / ``input_size`` / ``hidden_size``;
    transformers use ``batch_size`` / ``seq_len`` / ``in_channels``.
    """

    batch_size: int = 32
    in_channels: int = 3
    image_size: int = 224
    seq_len: int = 128
    input_size: int = 64
    hidden_size: int = 256
    num_classes: int = 1000
    extra: dict[str, Any] = field(default_factory=dict)

    def replace(self, **kw) -> "ModelConfig":
        from dataclasses import replace
        return replace(self, **kw)


# --------------------------------------------------------------------------- #
# CNN blocks
# --------------------------------------------------------------------------- #
def conv_bn_act(b: GraphBuilder, x: TensorRef, out_channels: int,
                kernel_size, stride=1, padding=0, groups: int = 1,
                act: str = "relu", norm: str = "bn") -> TensorRef:
    """Conv → norm → activation, the standard CNN micro-block."""
    y = b.conv2d(x, out_channels, kernel_size, stride, padding, groups)
    if norm == "bn":
        y = b.batchnorm2d(y)
    elif norm == "ln":
        y = b.layernorm(y)
    if act == "relu":
        y = b.relu(y)
    elif act == "gelu":
        y = b.gelu(y)
    elif act == "silu":
        y = b.silu(y)
    return y


# --------------------------------------------------------------------------- #
# Transformer blocks (operator-level)
# --------------------------------------------------------------------------- #
def multi_head_attention(b: GraphBuilder, x: TensorRef, num_heads: int,
                         causal: bool = False) -> TensorRef:
    """Emit a multi-head self-attention subgraph for ``x`` of shape (B,T,D).

    Node sequence: fused QKV Gemm → 3 slices → per-head reshapes →
    Q@K^T → scale → softmax → @V → merge heads → output Gemm.
    ``causal`` only changes the graph name semantics (masking is free at
    the FLOPs level we model).
    """
    bs, t, d = x.shape
    if d % num_heads:
        raise ValueError(f"dim {d} not divisible by heads {num_heads}")
    hd = d // num_heads

    qkv = b.linear(x, 3 * d, name="attn_qkv")
    q = b.slice(qkv, (bs, t, d))
    k = b.slice(qkv, (bs, t, d))
    v = b.slice(qkv, (bs, t, d))

    # (B, T, D) -> (B*H, T, hd): reshape to (B, T, H, hd), transpose.
    q = b.reshape(q, (bs, t, num_heads, hd))
    q = b.transpose(q, (0, 2, 1, 3))
    q = b.reshape(q, (bs * num_heads, t, hd))
    k = b.reshape(k, (bs, t, num_heads, hd))
    k = b.transpose(k, (0, 2, 3, 1))
    k = b.reshape(k, (bs * num_heads, hd, t))
    v = b.reshape(v, (bs, t, num_heads, hd))
    v = b.transpose(v, (0, 2, 1, 3))
    v = b.reshape(v, (bs * num_heads, t, hd))

    scores = b.matmul(q, k)            # (B*H, T, T)
    scores = b.scale(scores)           # 1/sqrt(hd)
    probs = b.softmax(scores, axis=-1)
    ctx = b.matmul(probs, v)           # (B*H, T, hd)

    ctx = b.reshape(ctx, (bs, num_heads, t, hd))
    ctx = b.transpose(ctx, (0, 2, 1, 3))
    ctx = b.reshape(ctx, (bs, t, d))
    return b.linear(ctx, d, name="attn_proj")


def mlp_block(b: GraphBuilder, x: TensorRef, hidden_mult: int = 4,
              act: str = "gelu") -> TensorRef:
    """Transformer FFN: Gemm expand → activation → Gemm contract."""
    d = x.shape[-1]
    y = b.linear(x, hidden_mult * d, name="ffn_fc1")
    y = b.gelu(y) if act == "gelu" else b.relu(y)
    return b.linear(y, d, name="ffn_fc2")


def transformer_encoder_block(b: GraphBuilder, x: TensorRef, num_heads: int,
                              hidden_mult: int = 4,
                              causal: bool = False) -> TensorRef:
    """Pre-LN transformer encoder block (ViT / BERT / GPT-2 style)."""
    h = b.layernorm(x)
    h = multi_head_attention(b, h, num_heads, causal=causal)
    x = b.add(x, h)
    h = b.layernorm(x)
    h = mlp_block(b, h, hidden_mult)
    return b.add(x, h)


def classifier_head(b: GraphBuilder, x: TensorRef,
                    num_classes: int) -> TensorRef:
    """Flatten (if needed) then final Gemm to logits."""
    if len(x.shape) > 2:
        x = b.flatten(x, 1)
    return b.linear(x, num_classes, name="classifier")
