"""CNN-based models from Table II: LeNet, AlexNet, VGG, ResNet, ConvNeXt.

Each builder takes a :class:`ModelConfig` and returns a validated
:class:`ComputationGraph` at operator granularity.  Architectures follow
the original papers / torchvision definitions; the input channel count is a
free hyperparameter (1-10) per the paper's dataset-generation protocol.
"""

from __future__ import annotations

from ..graph import ComputationGraph, GraphBuilder, TensorRef
from .common import ModelConfig, classifier_head, conv_bn_act

__all__ = ["build_lenet", "build_alexnet", "build_vgg", "build_resnet",
           "build_convnext"]


def build_lenet(cfg: ModelConfig) -> ComputationGraph:
    """LeNet-5 (adapted to the configured input size)."""
    b = GraphBuilder(f"lenet_b{cfg.batch_size}_c{cfg.in_channels}")
    x = b.input((cfg.batch_size, cfg.in_channels, cfg.image_size,
                 cfg.image_size))
    y = b.conv2d(x, 6, 5, padding=2)
    y = b.tanh(y)
    y = b.avgpool2d(y, 2, 2)
    y = b.conv2d(y, 16, 5)
    y = b.tanh(y)
    y = b.avgpool2d(y, 2, 2)
    y = b.global_avgpool(y)
    y = b.flatten(y)
    y = b.linear(y, 120)
    y = b.tanh(y)
    y = b.linear(y, 84)
    y = b.tanh(y)
    y = b.linear(y, cfg.num_classes)
    return b.finish()


def build_alexnet(cfg: ModelConfig) -> ComputationGraph:
    """AlexNet (torchvision single-tower variant)."""
    b = GraphBuilder(f"alexnet_b{cfg.batch_size}_c{cfg.in_channels}")
    x = b.input((cfg.batch_size, cfg.in_channels, cfg.image_size,
                 cfg.image_size))
    y = b.conv2d(x, 64, 11, stride=4, padding=2)
    y = b.relu(y)
    y = b.maxpool2d(y, 3, 2)
    y = b.conv2d(y, 192, 5, padding=2)
    y = b.relu(y)
    y = b.maxpool2d(y, 3, 2)
    y = b.conv2d(y, 384, 3, padding=1)
    y = b.relu(y)
    y = b.conv2d(y, 256, 3, padding=1)
    y = b.relu(y)
    y = b.conv2d(y, 256, 3, padding=1)
    y = b.relu(y)
    y = b.maxpool2d(y, 3, 2)
    y = b.adaptive_avgpool(y, 6)
    y = b.flatten(y)
    y = b.linear(y, 4096)
    y = b.relu(y)
    y = b.linear(y, 4096)
    y = b.relu(y)
    y = b.linear(y, cfg.num_classes)
    return b.finish()


_VGG_PLANS = {
    11: (1, 1, 2, 2, 2),
    13: (2, 2, 2, 2, 2),
    16: (2, 2, 3, 3, 3),
}
_VGG_WIDTHS = (64, 128, 256, 512, 512)


def build_vgg(cfg: ModelConfig, depth: int = 16) -> ComputationGraph:
    """VGG-11/13/16 with batch norm."""
    if depth not in _VGG_PLANS:
        raise ValueError(f"unsupported VGG depth {depth}")
    b = GraphBuilder(f"vgg{depth}_b{cfg.batch_size}_c{cfg.in_channels}")
    x = b.input((cfg.batch_size, cfg.in_channels, cfg.image_size,
                 cfg.image_size))
    y = x
    for convs, width in zip(_VGG_PLANS[depth], _VGG_WIDTHS):
        for _ in range(convs):
            y = conv_bn_act(b, y, width, 3, padding=1)
        y = b.maxpool2d(y, 2, 2)
    y = b.adaptive_avgpool(y, 7)
    y = b.flatten(y)
    y = b.linear(y, 4096)
    y = b.relu(y)
    y = b.linear(y, 4096)
    y = b.relu(y)
    y = b.linear(y, cfg.num_classes)
    return b.finish()


_RESNET_PLANS = {
    18: ("basic", (2, 2, 2, 2)),
    34: ("basic", (3, 4, 6, 3)),
    50: ("bottleneck", (3, 4, 6, 3)),
}


def _basic_block(b: GraphBuilder, x: TensorRef, planes: int,
                 stride: int) -> TensorRef:
    identity = x
    y = conv_bn_act(b, x, planes, 3, stride=stride, padding=1)
    y = b.conv2d(y, planes, 3, padding=1)
    y = b.batchnorm2d(y)
    if stride != 1 or x.shape[1] != planes:
        identity = b.conv2d(x, planes, 1, stride=stride)
        identity = b.batchnorm2d(identity)
    y = b.add(y, identity)
    return b.relu(y)


def _bottleneck_block(b: GraphBuilder, x: TensorRef, planes: int,
                      stride: int) -> TensorRef:
    out_planes = planes * 4
    identity = x
    y = conv_bn_act(b, x, planes, 1)
    y = conv_bn_act(b, y, planes, 3, stride=stride, padding=1)
    y = b.conv2d(y, out_planes, 1)
    y = b.batchnorm2d(y)
    if stride != 1 or x.shape[1] != out_planes:
        identity = b.conv2d(x, out_planes, 1, stride=stride)
        identity = b.batchnorm2d(identity)
    y = b.add(y, identity)
    return b.relu(y)


def build_resnet(cfg: ModelConfig, depth: int = 50) -> ComputationGraph:
    """ResNet-18/34/50 (He et al.)."""
    if depth not in _RESNET_PLANS:
        raise ValueError(f"unsupported ResNet depth {depth}")
    kind, layers = _RESNET_PLANS[depth]
    block = _basic_block if kind == "basic" else _bottleneck_block

    b = GraphBuilder(f"resnet{depth}_b{cfg.batch_size}_c{cfg.in_channels}")
    x = b.input((cfg.batch_size, cfg.in_channels, cfg.image_size,
                 cfg.image_size))
    y = conv_bn_act(b, x, 64, 7, stride=2, padding=3)
    y = b.maxpool2d(y, 3, 2, 1)
    for stage, (planes, count) in enumerate(zip((64, 128, 256, 512), layers)):
        for i in range(count):
            stride = 2 if (stage > 0 and i == 0) else 1
            y = block(b, y, planes, stride)
    y = b.global_avgpool(y)
    y = classifier_head(b, y, cfg.num_classes)
    return b.finish()


def _convnext_block(b: GraphBuilder, x: TensorRef) -> TensorRef:
    dim = x.shape[1]
    identity = x
    y = b.conv2d(x, dim, 7, padding=3, groups=dim)  # depthwise 7x7
    y = b.layernorm(y)
    y = b.conv2d(y, 4 * dim, 1)                     # pointwise expand
    y = b.gelu(y)
    y = b.conv2d(y, dim, 1)                         # pointwise contract
    y = b.scale(y)                                  # layer scale
    return b.add(y, identity)


def build_convnext(cfg: ModelConfig, variant: str = "base") -> ComputationGraph:
    """ConvNeXt (Liu et al. 2022); 'base' = depths (3,3,27,3), dims 128..1024."""
    plans = {
        "tiny": ((3, 3, 9, 3), (96, 192, 384, 768)),
        "small": ((3, 3, 27, 3), (96, 192, 384, 768)),
        "base": ((3, 3, 27, 3), (128, 256, 512, 1024)),
    }
    if variant not in plans:
        raise ValueError(f"unsupported ConvNeXt variant {variant!r}")
    depths, dims = plans[variant]

    b = GraphBuilder(
        f"convnext_{variant}_b{cfg.batch_size}_c{cfg.in_channels}")
    x = b.input((cfg.batch_size, cfg.in_channels, cfg.image_size,
                 cfg.image_size))
    # Patchify stem: 4x4 stride-4 conv + LN.
    y = b.conv2d(x, dims[0], 4, stride=4)
    y = b.layernorm(y)
    for stage, (depth, dim) in enumerate(zip(depths, dims)):
        if stage > 0:
            y = b.layernorm(y)
            y = b.conv2d(y, dim, 2, stride=2)  # downsample
        for _ in range(depth):
            y = _convnext_block(b, y)
    y = b.global_avgpool(y)
    y = b.flatten(y)
    y = b.layernorm(y)
    y = b.linear(y, cfg.num_classes)
    return b.finish()
