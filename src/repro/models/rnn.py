"""RNN-based models from Table II (vanilla RNN and LSTM classifiers).

Following the paper's RNN feature treatment, the recurrent stack is a
single graph operator whose FLOPs derive from input/output tensor sizes;
the surrounding embedding / projection / classification operators are
explicit nodes.
"""

from __future__ import annotations

from ..graph import ComputationGraph, GraphBuilder
from .common import ModelConfig

__all__ = ["build_rnn", "build_lstm"]


def _recurrent_model(cfg: ModelConfig, kind: str,
                     num_layers: int = 2) -> ComputationGraph:
    b = GraphBuilder(
        f"{kind.lower()}_b{cfg.batch_size}_s{cfg.seq_len}_h{cfg.hidden_size}")
    tokens = b.input((cfg.batch_size, cfg.seq_len), name="tokens")
    emb = b.embedding(tokens, vocab_size=cfg.extra.get("vocab_size", 10000),
                      embed_dim=cfg.input_size)
    if kind == "LSTM":
        h = b.lstm(emb, cfg.hidden_size, num_layers=num_layers)
    else:
        h = b.rnn(emb, cfg.hidden_size, num_layers=num_layers)
    # Last-timestep slice -> classifier.
    last = b.slice(h, (cfg.batch_size, cfg.hidden_size))
    y = b.linear(last, cfg.hidden_size)
    y = b.relu(y)
    y = b.linear(y, cfg.num_classes)
    return b.finish()


def build_rnn(cfg: ModelConfig) -> ComputationGraph:
    """Vanilla (tanh) RNN sequence classifier."""
    return _recurrent_model(cfg, "RNN")


def build_lstm(cfg: ModelConfig) -> ComputationGraph:
    """Two-layer LSTM sequence classifier."""
    return _recurrent_model(cfg, "LSTM")
