"""Transformer-based models from Table II: ViT, Swin, MaxViT, BERT, GPT-2.

All builders emit operator-level graphs (Gemm/MatMul/Softmax/... nodes) the
way ONNX export sees these architectures.  Window-based models (Swin,
MaxViT) include the partition/merge data-movement operators, which matter
for occupancy because they change the batched-GEMM shapes of attention.
"""

from __future__ import annotations

from ..graph import ComputationGraph, GraphBuilder, TensorRef
from .common import ModelConfig, mlp_block, multi_head_attention, \
    transformer_encoder_block

__all__ = ["build_vit", "build_swin", "build_maxvit", "build_bert",
           "build_gpt2"]


# --------------------------------------------------------------------------- #
# ViT
# --------------------------------------------------------------------------- #
_VIT_PLANS = {
    # dim, depth, heads, patch
    "tiny": (192, 12, 3, 16),
    "small": (384, 12, 6, 16),
    "base": (768, 12, 12, 16),
}


def build_vit(cfg: ModelConfig, variant: str = "tiny",
              patch_size: int | None = None) -> ComputationGraph:
    """Vision Transformer (Dosovitskiy et al.) with a CLS token."""
    if variant not in _VIT_PLANS:
        raise ValueError(f"unsupported ViT variant {variant!r}")
    dim, depth, heads, patch = _VIT_PLANS[variant]
    if patch_size is not None:
        patch = patch_size

    b = GraphBuilder(f"vit_{variant}_p{patch}_b{cfg.batch_size}"
                     f"_c{cfg.in_channels}")
    n = cfg.batch_size
    x = b.input((n, cfg.in_channels, cfg.image_size, cfg.image_size))
    y = b.conv2d(x, dim, patch, stride=patch, name="patch_embed")
    tokens = (cfg.image_size // patch) ** 2
    y = b.reshape(y, (n, dim, tokens))
    y = b.transpose(y, (0, 2, 1))  # (B, T, D)

    cls = b.input((n, 1, dim), name="cls_token")
    y = b.concat([cls, y], axis=1)
    pos = b.input((n, tokens + 1, dim), name="pos_embed")
    y = b.add(y, pos)

    for _ in range(depth):
        y = transformer_encoder_block(b, y, heads)
    y = b.layernorm(y)
    head_in = b.slice(y, (n, dim))  # CLS token
    b.linear(head_in, cfg.num_classes, name="head")
    return b.finish()


# --------------------------------------------------------------------------- #
# Swin Transformer
# --------------------------------------------------------------------------- #
def _window_attention(b: GraphBuilder, y: TensorRef, hw: int, dim: int,
                      heads: int, window: int, shifted: bool) -> TensorRef:
    """One (S)W-MSA on a (B, H, W, C) channels-last feature map."""
    n = y.shape[0]
    if shifted:
        y = b.shift_window(y)
    nwin = hw // window
    # Partition into (B * nW, window*window, C).
    y = b.reshape(y, (n, nwin, window, nwin, window, dim))
    y = b.transpose(y, (0, 1, 3, 2, 4, 5))
    y = b.reshape(y, (n * nwin * nwin, window * window, dim))
    y = multi_head_attention(b, y, heads)
    # Reverse partition.
    y = b.reshape(y, (n, nwin, nwin, window, window, dim))
    y = b.transpose(y, (0, 1, 3, 2, 4, 5))
    y = b.reshape(y, (n, hw, hw, dim))
    if shifted:
        y = b.shift_window(y)
    return y


def _swin_block(b: GraphBuilder, y: TensorRef, hw: int, dim: int, heads: int,
                window: int, shifted: bool) -> TensorRef:
    n = y.shape[0]
    identity = y
    h = b.layernorm(y)
    h = _window_attention(b, h, hw, dim, heads, window, shifted)
    y = b.add(identity, h)
    identity = y
    h = b.layernorm(y)
    h = b.reshape(h, (n, hw * hw, dim))
    h = mlp_block(b, h, 4)
    h = b.reshape(h, (n, hw, hw, dim))
    return b.add(identity, h)


def build_swin(cfg: ModelConfig, variant: str = "small") -> ComputationGraph:
    """Swin Transformer (Liu et al. 2021); 'small' = depths (2,2,18,2)."""
    plans = {
        "tiny": ((2, 2, 6, 2), 96, (3, 6, 12, 24)),
        "small": ((2, 2, 18, 2), 96, (3, 6, 12, 24)),
    }
    if variant not in plans:
        raise ValueError(f"unsupported Swin variant {variant!r}")
    depths, base_dim, heads = plans[variant]
    window = 7

    b = GraphBuilder(f"swin_{variant}_b{cfg.batch_size}_c{cfg.in_channels}")
    n = cfg.batch_size
    x = b.input((n, cfg.in_channels, cfg.image_size, cfg.image_size))
    # Patch embed: 4x4 stride-4 conv, then channels-last sequence layout.
    y = b.conv2d(x, base_dim, 4, stride=4)
    hw = cfg.image_size // 4
    y = b.transpose(y, (0, 2, 3, 1))  # (B, H, W, C)
    y = b.layernorm(y)

    dim = base_dim
    for stage, depth in enumerate(depths):
        if stage > 0:
            # Patch merging: 2x2 neighbourhood concat + linear 4C -> 2C.
            y = b.reshape(y, (n, hw // 2, 2, hw // 2, 2, dim))
            y = b.transpose(y, (0, 1, 3, 2, 4, 5))
            y = b.reshape(y, (n, (hw // 2) * (hw // 2), 4 * dim))
            y = b.layernorm(y)
            y = b.linear(y, 2 * dim, name="patch_merge_proj")
            hw //= 2
            dim *= 2
            y = b.reshape(y, (n, hw, hw, dim))
        for i in range(depth):
            y = _swin_block(b, y, hw, dim, heads[stage], window,
                            shifted=(i % 2 == 1))
    y = b.reshape(y, (n, hw * hw, dim))
    y = b.layernorm(y)
    y = b.reduce_mean(y, axis=1)
    b.linear(y, cfg.num_classes, name="head")
    return b.finish()


# --------------------------------------------------------------------------- #
# MaxViT
# --------------------------------------------------------------------------- #
def _se_block(b: GraphBuilder, y: TensorRef, reduction: int = 4) -> TensorRef:
    n, c = y.shape[0], y.shape[1]
    s = b.global_avgpool(y)
    s = b.flatten(s)
    s = b.linear(s, max(1, c // reduction))
    s = b.silu(s)
    s = b.linear(s, c)
    s = b.sigmoid(s)
    s = b.reshape(s, (n, c, 1, 1))
    # Broadcast multiply: emit as Scale on the feature map (cheap elementwise)
    # followed by Mul with an explicitly broadcast tensor is not supported by
    # the IR, so we model the excitation as a Scale node.
    del s
    return b.scale(y)


def _mbconv(b: GraphBuilder, y: TensorRef, out_c: int,
            stride: int) -> TensorRef:
    in_c = y.shape[1]
    identity = y
    h = b.batchnorm2d(y)
    h = b.conv2d(h, 4 * in_c, 1)
    h = b.batchnorm2d(h)
    h = b.gelu(h)
    h = b.conv2d(h, 4 * in_c, 3, stride=stride, padding=1, groups=4 * in_c)
    h = b.batchnorm2d(h)
    h = b.gelu(h)
    h = _se_block(b, h)
    h = b.conv2d(h, out_c, 1)
    if stride == 1 and in_c == out_c:
        h = b.add(h, identity)
    return h


def build_maxvit(cfg: ModelConfig, variant: str = "tiny") -> ComputationGraph:
    """MaxViT (Tu et al. 2022): MBConv + block attention + grid attention."""
    plans = {"tiny": ((2, 2, 5, 2), (64, 128, 256, 512))}
    if variant not in plans:
        raise ValueError(f"unsupported MaxViT variant {variant!r}")
    depths, dims = plans[variant]
    window = 7

    b = GraphBuilder(f"maxvit_{variant}_b{cfg.batch_size}_c{cfg.in_channels}")
    n = cfg.batch_size
    x = b.input((n, cfg.in_channels, cfg.image_size, cfg.image_size))
    # Stem: two 3x3 convs, stride 2.
    y = b.conv2d(x, 64, 3, stride=2, padding=1)
    y = b.batchnorm2d(y)
    y = b.gelu(y)
    y = b.conv2d(y, 64, 3, padding=1)
    hw = cfg.image_size // 2

    for stage, (depth, dim) in enumerate(zip(depths, dims)):
        for i in range(depth):
            stride = 2 if i == 0 else 1
            y = _mbconv(b, y, dim, stride)
            if stride == 2:
                hw //= 2
            heads = max(1, dim // 32)
            # Block attention (local windows) then grid attention (dilated):
            # both reduce to windowed MHA with different partitions; the
            # partition reshapes are identical at the tensor-shape level.
            cl = b.transpose(y, (0, 2, 3, 1))  # channels-last
            cl = _window_attention(b, cl, hw, dim, heads, window,
                                   shifted=False)
            cl2 = _window_attention(b, cl, hw, dim, heads, window,
                                    shifted=True)  # grid ≈ shifted partition
            y = b.transpose(cl2, (0, 3, 1, 2))
    y = b.global_avgpool(y)
    y = b.flatten(y)
    y = b.layernorm(y)
    b.linear(y, cfg.num_classes, name="head")
    return b.finish()


# --------------------------------------------------------------------------- #
# Language models
# --------------------------------------------------------------------------- #
def build_bert(cfg: ModelConfig, variant: str = "distilbert") -> ComputationGraph:
    """DistilBERT-base (6 layers, dim 768) with an SST-2 head."""
    plans = {"distilbert": (768, 6, 12, 30522), "base": (768, 12, 12, 30522)}
    if variant not in plans:
        raise ValueError(f"unsupported BERT variant {variant!r}")
    dim, depth, heads, vocab = plans[variant]

    b = GraphBuilder(f"bert_{variant}_b{cfg.batch_size}_s{cfg.seq_len}")
    n, t = cfg.batch_size, cfg.seq_len
    tokens = b.input((n, t), name="input_ids")
    y = b.embedding(tokens, vocab, dim)
    pos = b.input((n, t, dim), name="pos_embed")
    y = b.add(y, pos)
    y = b.layernorm(y)
    for _ in range(depth):
        y = transformer_encoder_block(b, y, heads)
    cls = b.slice(y, (n, dim))
    h = b.linear(cls, dim, name="pre_classifier")
    h = b.relu(h)
    b.linear(h, cfg.extra.get("num_labels", 2), name="classifier")
    return b.finish()


def build_gpt2(cfg: ModelConfig) -> ComputationGraph:
    """GPT-2 small (12 layers, dim 768, causal) with the LM head."""
    dim, depth, heads, vocab = 768, 12, 12, 50257
    b = GraphBuilder(f"gpt2_b{cfg.batch_size}_s{cfg.seq_len}")
    n, t = cfg.batch_size, cfg.seq_len
    tokens = b.input((n, t), name="input_ids")
    y = b.embedding(tokens, vocab, dim)
    pos = b.input((n, t, dim), name="pos_embed")
    y = b.add(y, pos)
    for _ in range(depth):
        y = transformer_encoder_block(b, y, heads, causal=True)
    y = b.layernorm(y)
    # Tied LM head: the dominant GEMM in GPT-2 inference.
    b.linear(y, vocab, name="lm_head")
    return b.finish()
