"""CLIP multimodal models (Table IV): RN50, ViT-B/32, ViT-B/16.

Both encoders run "simultaneously" (Section V-A2): the graph contains the
image tower, the text tower, and the joint similarity operators, so the
profiler sees the full multimodal kernel stream and DNN-occu learns the
fused-graph representation.
"""

from __future__ import annotations

from ..graph import ComputationGraph, GraphBuilder, TensorRef
from .common import ModelConfig, conv_bn_act, transformer_encoder_block
from .cnn import _bottleneck_block

__all__ = ["build_clip", "build_clip_towers"]

_TEXT_WIDTH = 512
_TEXT_LAYERS = 12
_TEXT_HEADS = 8
_TEXT_SEQ = 77
_TEXT_VOCAB = 49408
_EMBED_DIM = 512


def _clip_image_resnet(b: GraphBuilder, cfg: ModelConfig) -> TensorRef:
    """CLIP's ModifiedResNet-50 image tower (3-conv stem, attention pool)."""
    n = cfg.batch_size
    x = b.input((n, cfg.in_channels, cfg.image_size, cfg.image_size),
                name="image")
    y = conv_bn_act(b, x, 32, 3, stride=2, padding=1)
    y = conv_bn_act(b, y, 32, 3, padding=1)
    y = conv_bn_act(b, y, 64, 3, padding=1)
    y = b.avgpool2d(y, 2, 2)
    for stage, (planes, count) in enumerate(
            zip((64, 128, 256, 512), (3, 4, 6, 3))):
        for i in range(count):
            stride = 2 if (stage > 0 and i == 0) else 1
            y = _bottleneck_block(b, y, planes, stride)
    # Attention pooling approximated as global pool + projection GEMMs.
    y = b.global_avgpool(y)
    y = b.flatten(y)
    y = b.linear(y, 1024, name="attnpool_qkv")
    y = b.linear(y, _EMBED_DIM, name="image_proj")
    return y


def _clip_image_vit(b: GraphBuilder, cfg: ModelConfig,
                    patch: int) -> TensorRef:
    """CLIP's ViT-B image tower with the given patch size (32 or 16)."""
    dim, depth, heads = 768, 12, 12
    n = cfg.batch_size
    x = b.input((n, cfg.in_channels, cfg.image_size, cfg.image_size),
                name="image")
    y = b.conv2d(x, dim, patch, stride=patch, name="patch_embed")
    tokens = (cfg.image_size // patch) ** 2
    y = b.reshape(y, (n, dim, tokens))
    y = b.transpose(y, (0, 2, 1))
    cls = b.input((n, 1, dim), name="cls_token")
    y = b.concat([cls, y], axis=1)
    pos = b.input((n, tokens + 1, dim), name="pos_embed")
    y = b.add(y, pos)
    y = b.layernorm(y)
    for _ in range(depth):
        y = transformer_encoder_block(b, y, heads)
    y = b.layernorm(y)
    y = b.slice(y, (n, dim))
    return b.linear(y, _EMBED_DIM, name="image_proj")


def _clip_text_tower(b: GraphBuilder, cfg: ModelConfig) -> TensorRef:
    n = cfg.batch_size
    tokens = b.input((n, _TEXT_SEQ), name="text_ids")
    y = b.embedding(tokens, _TEXT_VOCAB, _TEXT_WIDTH)
    pos = b.input((n, _TEXT_SEQ, _TEXT_WIDTH), name="text_pos")
    y = b.add(y, pos)
    for _ in range(_TEXT_LAYERS):
        y = transformer_encoder_block(b, y, _TEXT_HEADS, causal=True)
    y = b.layernorm(y)
    y = b.slice(y, (n, _TEXT_WIDTH))  # EOT token
    return b.linear(y, _EMBED_DIM, name="text_proj")


def build_clip(cfg: ModelConfig, image_encoder: str = "rn50") -> ComputationGraph:
    """CLIP with both towers and the joint logits computation.

    ``image_encoder`` is one of ``"rn50"``, ``"vit-b/32"``, ``"vit-b/16"``.
    """
    enc = image_encoder.lower()
    b = GraphBuilder(f"clip_{enc.replace('/', '_')}_b{cfg.batch_size}")
    if enc == "rn50":
        img = _clip_image_resnet(b, cfg)
    elif enc == "vit-b/32":
        img = _clip_image_vit(b, cfg, patch=32)
    elif enc == "vit-b/16":
        img = _clip_image_vit(b, cfg, patch=16)
    else:
        raise ValueError(f"unsupported CLIP image encoder {image_encoder!r}")

    txt = _clip_text_tower(b, cfg)

    # Joint similarity: normalize both embeddings, logits = img @ txt^T.
    img = b.scale(img)
    txt = b.scale(txt)
    txt_t = b.transpose(txt, (1, 0))
    b.matmul(img, txt_t)  # (B, B) logits
    return b.finish()


def build_clip_towers(cfg: ModelConfig, image_encoder: str = "rn50"
                      ) -> tuple[ComputationGraph, ComputationGraph]:
    """The two CLIP towers as *independent* graphs.

    Section V-A2's alternative multimodal treatment: each modality is its
    own graph; ``image.disjoint_union(text)`` produces the fused graph the
    profiler and predictor consume (minus the joint similarity operators
    that :func:`build_clip` adds).
    """
    enc = image_encoder.lower()
    bi = GraphBuilder(f"clip_image_{enc.replace('/', '_')}")
    if enc == "rn50":
        _clip_image_resnet(bi, cfg)
    elif enc == "vit-b/32":
        _clip_image_vit(bi, cfg, patch=32)
    elif enc == "vit-b/16":
        _clip_image_vit(bi, cfg, patch=16)
    else:
        raise ValueError(f"unsupported CLIP image encoder {image_encoder!r}")

    bt = GraphBuilder("clip_text")
    _clip_text_tower(bt, cfg)
    return bi.finish(), bt.finish()
