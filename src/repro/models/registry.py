"""Model registry: every Table II variant by canonical name.

``build_model(name, config)`` is the zoo's single entry point; names match
the paper's Table II (case-insensitive, e.g. ``"ResNet-50"``,
``"ViT-T"``, ``"CLIP-ViT-B/32"``).
"""

from __future__ import annotations

from typing import Callable

from ..graph import ComputationGraph
from .common import ModelConfig
from .cnn import build_alexnet, build_convnext, build_lenet, build_resnet, \
    build_vgg
from .rnn import build_lstm, build_rnn
from .transformer import build_bert, build_gpt2, build_maxvit, build_swin, \
    build_vit
from .clip import build_clip

__all__ = ["MODEL_REGISTRY", "build_model", "list_models", "MODEL_FAMILY"]

_BUILDERS: dict[str, Callable[[ModelConfig], ComputationGraph]] = {
    # CNN-based
    "lenet": build_lenet,
    "alexnet": build_alexnet,
    "vgg-11": lambda c: build_vgg(c, 11),
    "vgg-13": lambda c: build_vgg(c, 13),
    "vgg-16": lambda c: build_vgg(c, 16),
    "resnet-18": lambda c: build_resnet(c, 18),
    "resnet-34": lambda c: build_resnet(c, 34),
    "resnet-50": lambda c: build_resnet(c, 50),
    "convnext-t": lambda c: build_convnext(c, "tiny"),
    "convnext-s": lambda c: build_convnext(c, "small"),
    "convnext-b": lambda c: build_convnext(c, "base"),
    # RNN-based
    "rnn": build_rnn,
    "lstm": build_lstm,
    # Transformer-based
    "vit-t": lambda c: build_vit(c, "tiny"),
    "vit-s": lambda c: build_vit(c, "small"),
    "vit-b": lambda c: build_vit(c, "base"),
    "swin-t": lambda c: build_swin(c, "tiny"),
    "swin-s": lambda c: build_swin(c, "small"),
    "maxvit-t": lambda c: build_maxvit(c, "tiny"),
    "bert": lambda c: build_bert(c, "distilbert"),
    "bert-base": lambda c: build_bert(c, "base"),
    "gpt-2": build_gpt2,
    # Multimodal
    "clip-rn50": lambda c: build_clip(c, "rn50"),
    "clip-vit-b/32": lambda c: build_clip(c, "vit-b/32"),
    "clip-vit-b/16": lambda c: build_clip(c, "vit-b/16"),
}

#: model family per Table II markers (CNN ○ / RNN △ / Transformer □)
MODEL_FAMILY: dict[str, str] = {
    "lenet": "cnn", "alexnet": "cnn", "vgg-11": "cnn", "vgg-13": "cnn",
    "vgg-16": "cnn", "resnet-18": "cnn", "resnet-34": "cnn",
    "resnet-50": "cnn", "convnext-t": "cnn", "convnext-s": "cnn",
    "convnext-b": "cnn",
    "rnn": "rnn", "lstm": "rnn",
    "vit-t": "transformer", "vit-s": "transformer", "vit-b": "transformer",
    "swin-t": "transformer", "swin-s": "transformer",
    "maxvit-t": "transformer", "bert": "transformer",
    "bert-base": "transformer", "gpt-2": "transformer",
    "clip-rn50": "transformer", "clip-vit-b/32": "transformer",
    "clip-vit-b/16": "transformer",
}

MODEL_REGISTRY = dict(_BUILDERS)


def list_models() -> list[str]:
    """Canonical (lower-case) names of every zoo model."""
    return sorted(_BUILDERS)


def build_model(name: str, config: ModelConfig | None = None,
                **overrides) -> ComputationGraph:
    """Build the named model's computation graph.

    ``overrides`` update fields of ``config`` (a default config is used
    when none is given), e.g. ``build_model("resnet-50", batch_size=64)``.
    """
    key = name.lower()
    if key not in _BUILDERS:
        raise KeyError(f"unknown model {name!r}; known: {list_models()}")
    cfg = config or ModelConfig()
    if overrides:
        cfg = cfg.replace(**overrides)
    return _BUILDERS[key](cfg)
