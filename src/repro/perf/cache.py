"""Content-addressed on-disk cache for profiled + encoded graphs.

Dataset generation spends nearly all of its time in ``profile_graph`` and
``encode_graph`` for (graph, device) pairs it has already seen in earlier
runs.  This cache keys each pair by

    sha256(graph JSON || device name || simulator version)

so a cached entry can *never* be served for a different graph, device, or
cost model (bump :data:`repro.gpu.profiler.SIMULATOR_VERSION` whenever the
simulator math changes).  Entries reuse the checksummed
:mod:`repro.resilience.checkpoint` container: writes are atomic, and a
corrupted entry fails its digest check on load and is treated as a miss —
regenerated and rewritten, never served.

An entry stores the kernel-level ``(occupancy, duration)`` records (enough
to rebuild any label aggregation exactly), the encoded feature arrays, and
the SPD matrix (so the Graphormer never recomputes shortest paths for a
cached graph).  OOM rejections are cached too — re-discovering "does not
fit" is as expensive as profiling.

Hits and misses are counted as ``perf_cache_hits_total`` /
``perf_cache_misses_total`` in :mod:`repro.obs`.
"""

from __future__ import annotations

import hashlib
import os
from dataclasses import dataclass

import numpy as np

from ..features import GraphFeatures
from ..gpu import DeviceSpec, ProfileResult, SIMULATOR_VERSION
from ..gpu.profiler import KernelRecord
from ..graph import ComputationGraph
from ..obs import get_logger
from ..obs.metrics import counter
from ..resilience.checkpoint import (CheckpointError, load_checkpoint,
                                     save_checkpoint)

__all__ = ["ProfileCache", "CacheEntry", "PredictionCache", "cache_key",
           "graph_key", "structure_key"]

_CACHE_VERSION = 1

_log = get_logger("perf.cache")


def _update_graph(h: "hashlib._Hash", graph: ComputationGraph,
                  device: DeviceSpec) -> None:
    """Stream one (graph, device) pair's content into a running hash.

    The graph hash streams the dataclass ``repr`` of every node and edge
    (all fields, deterministic for a deterministically built graph) —
    the same content ``graph.to_json()`` would serialize, at roughly half
    the cost, which matters because the key is computed on every cache
    lookup in the generation and serving hot paths.
    """
    h.update(graph.name.encode("utf-8"))
    for node in graph.nodes.values():
        h.update(repr(node).encode("utf-8"))
    for edge in graph.edges:
        h.update(repr(edge).encode("utf-8"))
    h.update(b"\x00")
    h.update(device.name.encode("utf-8"))


def cache_key(graph: ComputationGraph, device: DeviceSpec) -> str:
    """Content address of one (graph, device, simulator) combination."""
    h = hashlib.sha256()
    _update_graph(h, graph, device)
    h.update(b"\x00")
    h.update(str(SIMULATOR_VERSION).encode("ascii"))
    return h.hexdigest()


def graph_key(graph: ComputationGraph, device: DeviceSpec) -> str:
    """Content address of one (graph, device) pair, simulator-agnostic.

    The serving layer keys its request cache on this: a prediction depends
    only on the model weights and the encoded inputs, never on the cost
    simulator, so bumping ``SIMULATOR_VERSION`` must not evict warm
    prediction entries the way it (correctly) evicts profile entries.
    """
    h = hashlib.sha256()
    _update_graph(h, graph, device)
    return h.hexdigest()


def structure_key(num_nodes: int, edge_index: np.ndarray) -> str:
    """Content address of a graph *topology* (node count + edge list).

    Shortest-path distances depend only on structure, so the SPD memo in
    :func:`repro.perf.batching.ensure_spd` shares one entry across every
    feature encoding of the same topology — different devices, batch
    sizes that do not change the graph, or freshly re-encoded
    ``GraphFeatures`` objects.
    """
    h = hashlib.sha256()
    h.update(str(int(num_nodes)).encode("ascii"))
    h.update(b"\x00")
    h.update(np.ascontiguousarray(edge_index, dtype=np.int64).tobytes())
    return h.hexdigest()


@dataclass
class CacheEntry:
    """One cached (graph, device) evaluation.

    ``oom=True`` entries carry no arrays — the cached fact is the
    rejection itself.  ``profile`` is a skeletal :class:`ProfileResult`
    holding exactly the kernel ``(occupancy, duration)`` records, so
    ``aggregate_occupancy`` / ``nvml_utilization`` run the *same* code a
    fresh profile would — a hit can never change the label.
    """

    key: str
    oom: bool
    profile: ProfileResult | None
    features: GraphFeatures | None


class ProfileCache:
    """Directory of content-addressed profile/encoding entries."""

    def __init__(self, root: str):
        self.root = root
        os.makedirs(root, exist_ok=True)

    def _path(self, key: str) -> str:
        return os.path.join(self.root, f"{key}.npz")

    # -- read ---------------------------------------------------------- #
    def get(self, graph: ComputationGraph,
            device: DeviceSpec) -> CacheEntry | None:
        """Return the cached entry, or ``None`` (counted as a miss).

        A corrupt or unreadable entry is a miss: the digest check in the
        checkpoint container rejects it, the caller regenerates, and
        :meth:`put` overwrites the bad file.
        """
        key = cache_key(graph, device)
        path = self._path(key)
        if not os.path.exists(path):
            counter("perf_cache_misses_total",
                    "profile-cache lookups that required computing").inc()
            return None
        try:
            arrays, meta = load_checkpoint(path, component="perf-cache")
            entry = self._decode(key, arrays, meta)
        except CheckpointError as exc:
            counter("perf_cache_misses_total",
                    "profile-cache lookups that required computing").inc()
            counter("perf_cache_corrupt_total",
                    "cache entries rejected by the digest check").inc()
            _log.warning("corrupt cache entry; regenerating", extra={
                "key": key[:12], "error": str(exc)})
            return None
        counter("perf_cache_hits_total",
                "profile-cache lookups served from disk").inc()
        return entry

    def _decode(self, key: str, arrays: dict[str, np.ndarray],
                meta: dict) -> CacheEntry:
        if meta.get("kind") != "perf-cache" \
                or meta.get("version") != _CACHE_VERSION \
                or meta.get("key") != key:
            raise CheckpointError(
                f"cache entry {key[:12]}... has foreign metadata "
                f"(kind={meta.get('kind')!r})")
        if meta["oom"]:
            return CacheEntry(key=key, oom=True, profile=None,
                              features=None)
        profile = ProfileResult(
            model_name=meta["model_name"], device_name=meta["device_name"],
            busy_time_s=meta["busy_time_s"],
            wall_time_s=meta["wall_time_s"])
        for occ, dur in zip(arrays["rec_occupancy"],
                            arrays["rec_duration_s"]):
            profile.records.append(KernelRecord(
                name="", node_id=-1, duration_s=float(dur),
                occupancy=float(occ), theoretical_occupancy=0.0,
                limiter="", flops=0.0, bytes_moved=0.0, count=1))
        features = GraphFeatures(
            node_features=arrays["node_features"],
            edge_features=arrays["edge_features"],
            edge_index=arrays["edge_index"].astype(np.intp),
            model_name=meta["model_name"],
            device_name=meta["device_name"])
        # The persisted SPD matrix rides along on the features object,
        # matching the DNNOccu._spd / perf.batching.ensure_spd convention.
        object.__setattr__(features, "_spd_cache",
                           arrays["spd"].astype(np.intp))
        return CacheEntry(key=key, oom=False, profile=profile,
                          features=features)

    # -- write --------------------------------------------------------- #
    def put(self, graph: ComputationGraph, device: DeviceSpec,
            profile: ProfileResult | None,
            features: GraphFeatures | None,
            spd: np.ndarray | None = None) -> str:
        """Persist one evaluation; ``profile=None`` records an OOM."""
        key = cache_key(graph, device)
        oom = profile is None
        meta = {"kind": "perf-cache", "version": _CACHE_VERSION,
                "key": key, "oom": oom,
                "model_name": graph.name, "device_name": device.name,
                "simulator_version": SIMULATOR_VERSION}
        arrays: dict[str, np.ndarray] = {}
        if not oom:
            if features is None:
                raise ValueError("non-OOM entries need encoded features")
            meta["busy_time_s"] = profile.busy_time_s
            meta["wall_time_s"] = profile.wall_time_s
            arrays["rec_occupancy"] = np.array(
                [r.occupancy for r in profile.records])
            arrays["rec_duration_s"] = np.array(
                [r.duration_s for r in profile.records])
            arrays["node_features"] = features.node_features
            arrays["edge_features"] = features.edge_features
            arrays["edge_index"] = features.edge_index
            if spd is None:
                from .batching import ensure_spd
                spd = ensure_spd(features)
            # SPD buckets are tiny ints (<= MAX_SPD + 1); persisting them
            # at intp width would make the n x n matrix dominate the entry
            # and its digest check.  _decode widens back to intp.
            arrays["spd"] = np.asarray(spd).astype(np.uint16)
        save_checkpoint(self._path(key), arrays, meta,
                        component="perf-cache")
        return key

    def __len__(self) -> int:
        return sum(1 for f in os.listdir(self.root) if f.endswith(".npz"))


class PredictionCache:
    """Shared content-addressed on-disk tier for served *predictions*.

    The fleet's per-worker LRUs (:class:`repro.serve.ModelSession`) are
    private to one worker process; this directory is the tier below
    them, shared by every worker — a prediction any worker has paid a
    forward for is a disk hit for all of them, and it survives worker
    restarts.  Keys are :func:`graph_key` (graph + device, simulator-
    agnostic, same as the LRUs above), so an entry can never be served
    for a different graph or device.

    Entries reuse the checksummed :mod:`repro.resilience.checkpoint`
    container: writes are atomic (``tempfile`` + ``os.replace``, safe
    under concurrent multi-process writers), and a corrupt or foreign
    entry fails its digest/metadata check and reads as a miss.
    """

    _KIND = "fleet-pred"

    def __init__(self, root: str):
        self.root = root
        os.makedirs(root, exist_ok=True)

    def _path(self, key: str) -> str:
        return os.path.join(self.root, f"pred_{key}.npz")

    def get(self, key: str) -> float | None:
        """The cached prediction, or ``None`` (corrupt entries miss)."""
        path = self._path(key)
        if not os.path.exists(path):
            return None
        try:
            arrays, meta = load_checkpoint(path, component="fleet-cache")
            if meta.get("kind") != self._KIND or meta.get("key") != key:
                raise CheckpointError(
                    f"prediction entry {key[:12]}... has foreign "
                    f"metadata (kind={meta.get('kind')!r})")
            return float(arrays["value"][0])
        except (CheckpointError, KeyError, IndexError, OSError) as exc:
            _log.warning("corrupt prediction-cache entry; ignoring",
                         extra={"key": key[:12],
                                "error": type(exc).__name__})
            return None

    def put(self, key: str, value: float) -> None:
        save_checkpoint(self._path(key),
                        {"value": np.array([float(value)])},
                        {"kind": self._KIND, "key": key},
                        component="fleet-cache")

    def __len__(self) -> int:
        return sum(1 for f in os.listdir(self.root)
                   if f.startswith("pred_") and f.endswith(".npz"))
