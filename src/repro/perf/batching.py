"""Masked dense batching for DNN-occu (perf tentpole, prong 1).

A minibatch of variable-size graphs runs as ONE vectorized forward:

* **message passing** (ANEE) operates on the *packed* disjoint union —
  node/edge arrays concatenated with edge indices offset per member.
  Edges never cross member boundaries, so scatter aggregation over the
  packed arrays is exactly the per-graph computation;
* **attention** (Graphormer, Set Transformer PMA) operates on *padded*
  ``(B, n_max, d)`` states under an additive validity mask: padded key
  slots receive :data:`NEG_INF` pre-softmax, which underflows to an
  exactly-zero attention weight — a node can never attend to padding or
  to another graph, keeping the batched attention block-diagonal.

The pack→pad conversion appends one shared zero row to the packed node
matrix and gathers through :attr:`GraphBatch.pad_index`; its backward is
a pure scatter-add, with every padding slot draining into the discarded
zero row.  Batched predictions/gradients therefore match the per-graph
path up to float reassociation (well within the 1e-6 gate).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..core.graphormer import spatial_encoding
from ..features import GraphFeatures
from ..obs.metrics import histogram

__all__ = ["GraphBatch", "collate", "ensure_spd", "NEG_INF"]

#: additive pre-softmax bias for invalid (padded) key slots.  Large enough
#: that ``exp(NEG_INF - max)`` underflows to exactly 0.0, so masked slots
#: contribute *nothing* — not merely little — to softmax numerators,
#: denominators, or gradients.
NEG_INF = -1e30

#: buckets for the pad-waste fraction (padded slots / total slots, in
#: [0, 1)); the default Prometheus buckets are latency-shaped and would
#: collapse every observation into two buckets.
_WASTE_BUCKETS = (0.05, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0)


def ensure_spd(features: GraphFeatures) -> np.ndarray:
    """Shortest-path-distance buckets for ``features``, cached on it.

    Shares the ``_spd_cache`` attribute convention with
    ``DNNOccu._spd`` so per-graph and batched execution reuse one
    computation, and so the dataset cache can persist the matrix
    alongside the encoding.
    """
    cached = getattr(features, "_spd_cache", None)
    if cached is None:
        cached = spatial_encoding(features.num_nodes, features.edge_index)
        object.__setattr__(features, "_spd_cache", cached)
    return cached


@dataclass
class GraphBatch:
    """One collated minibatch, carrying both packed and padded views.

    Packed arrays feed message passing; ``pad_index``/``spd``/``key_bias``
    feed the attention stages.  ``pad_index`` addresses the packed node
    matrix *with one zero row appended* (sentinel index ``total_nodes``),
    so ``packed_ext[pad_index].reshape(B, n_max, d)`` is the padded view.
    """

    node_features: np.ndarray    # (N, F_n) packed over members
    edge_features: np.ndarray    # (M, F_e) packed over members
    edge_index: np.ndarray       # (2, M) with per-member node offsets
    edgeless_mask: np.ndarray    # (N, 1) 1.0 on nodes of edgeless members
    pad_index: np.ndarray        # (B * n_max,) into packed + zero row
    node_mask: np.ndarray        # (B, n_max) 1.0 on real node slots
    key_bias: np.ndarray         # (B, 1, n_max) 0 | NEG_INF validity mask
    spd: np.ndarray              # (B, n_max, n_max) SPD buckets (0-padded)
    sizes: np.ndarray            # (B,) member node counts

    @property
    def num_graphs(self) -> int:
        return len(self.sizes)

    @property
    def n_max(self) -> int:
        return self.node_mask.shape[1]

    @property
    def total_nodes(self) -> int:
        return self.node_features.shape[0]

    @property
    def pad_waste(self) -> float:
        """Fraction of padded (wasted) node slots in the dense view."""
        dense = self.num_graphs * self.n_max
        return 1.0 - self.total_nodes / dense if dense else 0.0


def collate(features_list: Sequence[GraphFeatures]) -> GraphBatch:
    """Build a :class:`GraphBatch` from encoded member graphs."""
    feats = list(features_list)
    if not feats:
        raise ValueError("cannot collate an empty batch")
    sizes = np.array([f.num_nodes for f in feats], dtype=np.intp)
    if sizes.min() == 0:
        raise ValueError("cannot batch a graph with zero nodes")
    b = len(feats)
    n_max = int(sizes.max())
    offsets = np.concatenate([[0], np.cumsum(sizes)])
    total = int(offsets[-1])

    node_features = np.concatenate([f.node_features for f in feats], axis=0)
    edge_features = np.concatenate([f.edge_features for f in feats], axis=0)
    edge_index = np.concatenate(
        [f.edge_index + offsets[i] for i, f in enumerate(feats)],
        axis=1).astype(np.intp)

    edgeless_mask = np.zeros((total, 1))
    for i, f in enumerate(feats):
        if f.num_edges == 0:
            edgeless_mask[offsets[i]:offsets[i + 1]] = 1.0

    node_mask = (np.arange(n_max) < sizes[:, None]).astype(np.float64)
    key_bias = np.where(node_mask[:, None, :] > 0, 0.0, NEG_INF)

    # Sentinel `total` addresses the appended zero row for padding slots.
    pad_index = np.full(b * n_max, total, dtype=np.intp)
    spd = np.zeros((b, n_max, n_max), dtype=np.intp)
    for i, f in enumerate(feats):
        n = int(sizes[i])
        pad_index[i * n_max:i * n_max + n] = np.arange(
            offsets[i], offsets[i + 1])
        spd[i, :n, :n] = ensure_spd(f)

    batch = GraphBatch(
        node_features=node_features, edge_features=edge_features,
        edge_index=edge_index, edgeless_mask=edgeless_mask,
        pad_index=pad_index, node_mask=node_mask, key_bias=key_bias,
        spd=spd, sizes=sizes)
    histogram("perf_batch_pad_waste",
              "fraction of padded node slots per collated minibatch",
              buckets=_WASTE_BUCKETS).observe(batch.pad_waste)
    return batch
