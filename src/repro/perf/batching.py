"""Masked dense batching for DNN-occu (perf tentpole, prong 1).

A minibatch of variable-size graphs runs as ONE vectorized forward:

* **message passing** (ANEE) operates on the *packed* disjoint union —
  node/edge arrays concatenated with edge indices offset per member.
  Edges never cross member boundaries, so scatter aggregation over the
  packed arrays is exactly the per-graph computation;
* **attention** (Graphormer, Set Transformer PMA) operates on *padded*
  ``(B, n_max, d)`` states under an additive validity mask: padded key
  slots receive :data:`NEG_INF` pre-softmax, which underflows to an
  exactly-zero attention weight — a node can never attend to padding or
  to another graph, keeping the batched attention block-diagonal.

The pack→pad conversion appends one shared zero row to the packed node
matrix and gathers through :attr:`GraphBatch.pad_index`; its backward is
a pure scatter-add, with every padding slot draining into the discarded
zero row.  Batched predictions/gradients therefore match the per-graph
path up to float reassociation (well within the 1e-6 gate).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..core.graphormer import spatial_encoding
from ..features import GraphFeatures
from ..obs.metrics import counter, histogram
from .cache import structure_key

__all__ = ["GraphBatch", "bucket_by_size", "collate", "ensure_spd",
           "clear_spd_memo", "spd_memo_disabled", "NEG_INF"]

#: additive pre-softmax bias for invalid (padded) key slots.  Large enough
#: that ``exp(NEG_INF - max)`` underflows to exactly 0.0, so masked slots
#: contribute *nothing* — not merely little — to softmax numerators,
#: denominators, or gradients.
NEG_INF = -1e30

#: buckets for the pad-waste fraction (padded slots / total slots, in
#: [0, 1)); the default Prometheus buckets are latency-shaped and would
#: collapse every observation into two buckets.
_WASTE_BUCKETS = (0.05, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0)


#: Process-wide SPD memo keyed by graph *structure* content hash
#: (:func:`repro.perf.cache.structure_key`).  Bounded LRU: serving churns
#: through unbounded request streams, and an n x n intp matrix per distinct
#: topology must not grow without limit.
_SPD_MEMO: OrderedDict[str, np.ndarray] = OrderedDict()
_SPD_MEMO_LOCK = threading.Lock()
_SPD_MEMO_CAPACITY = 256


_SPD_MEMO_DISABLED = False


def clear_spd_memo() -> None:
    """Drop every memoized SPD matrix (test isolation helper)."""
    with _SPD_MEMO_LOCK:
        _SPD_MEMO.clear()


@contextmanager
def spd_memo_disabled():
    """Bypass the structure memo inside the block (bench baselines).

    ``repro bench``'s generation gate compares the full feature stack
    against the *no-feature* baseline; since the memo now speeds up even
    a single cold generation run (config variants share topology), the
    baseline must be measured without it.  Per-object ``_spd_cache``
    behaviour is unchanged.  Process-global, not thread-scoped — bench
    only.
    """
    global _SPD_MEMO_DISABLED
    prev = _SPD_MEMO_DISABLED
    _SPD_MEMO_DISABLED = True
    try:
        yield
    finally:
        _SPD_MEMO_DISABLED = prev


def ensure_spd(features: GraphFeatures) -> np.ndarray:
    """Shortest-path-distance buckets for ``features``, memoized twice over.

    Fast path: the ``_spd_cache`` attribute on the features object itself
    (shared convention with ``DNNOccu._spd`` and the dataset cache's
    persisted matrices).  Behind it sits a process-wide LRU keyed by the
    *content hash* of the topology, so a freshly re-encoded
    ``GraphFeatures`` for an already-seen structure — the common case on
    the serving path and in repeated ``predict`` calls — reuses the matrix
    instead of re-running the O(n^3)-ish shortest-path sweep.
    """
    cached = getattr(features, "_spd_cache", None)
    if cached is not None:
        return cached
    if _SPD_MEMO_DISABLED:
        cached = spatial_encoding(features.num_nodes, features.edge_index)
        object.__setattr__(features, "_spd_cache", cached)
        return cached
    key = structure_key(features.num_nodes, features.edge_index)
    with _SPD_MEMO_LOCK:
        cached = _SPD_MEMO.get(key)
        if cached is not None:
            _SPD_MEMO.move_to_end(key)
    if cached is None:
        counter("perf_spd_memo_misses_total",
                "SPD computations not served by the structure memo").inc()
        cached = spatial_encoding(features.num_nodes, features.edge_index)
        with _SPD_MEMO_LOCK:
            _SPD_MEMO[key] = cached
            _SPD_MEMO.move_to_end(key)
            while len(_SPD_MEMO) > _SPD_MEMO_CAPACITY:
                _SPD_MEMO.popitem(last=False)
    else:
        counter("perf_spd_memo_hits_total",
                "SPD lookups served by the structure memo").inc()
    object.__setattr__(features, "_spd_cache", cached)
    return cached


@dataclass
class GraphBatch:
    """One collated minibatch, carrying both packed and padded views.

    Packed arrays feed message passing; ``pad_index``/``spd``/``key_bias``
    feed the attention stages.  ``pad_index`` addresses the packed node
    matrix *with one zero row appended* (sentinel index ``total_nodes``),
    so ``packed_ext[pad_index].reshape(B, n_max, d)`` is the padded view.
    """

    node_features: np.ndarray    # (N, F_n) packed over members
    edge_features: np.ndarray    # (M, F_e) packed over members
    edge_index: np.ndarray       # (2, M) with per-member node offsets
    edgeless_mask: np.ndarray    # (N, 1) 1.0 on nodes of edgeless members
    pad_index: np.ndarray        # (B * n_max,) into packed + zero row
    node_mask: np.ndarray        # (B, n_max) 1.0 on real node slots
    key_bias: np.ndarray         # (B, 1, n_max) 0 | NEG_INF validity mask
    spd: np.ndarray              # (B, n_max, n_max) SPD buckets (0-padded)
    sizes: np.ndarray            # (B,) member node counts

    @property
    def num_graphs(self) -> int:
        return len(self.sizes)

    @property
    def n_max(self) -> int:
        return self.node_mask.shape[1]

    @property
    def total_nodes(self) -> int:
        return self.node_features.shape[0]

    @property
    def pad_waste(self) -> float:
        """Fraction of padded (wasted) node slots in the dense view."""
        dense = self.num_graphs * self.n_max
        return 1.0 - self.total_nodes / dense if dense else 0.0


def collate(features_list: Sequence[GraphFeatures]) -> GraphBatch:
    """Build a :class:`GraphBatch` from encoded member graphs."""
    feats = list(features_list)
    if not feats:
        raise ValueError("cannot collate an empty batch")
    sizes = np.array([f.num_nodes for f in feats], dtype=np.intp)
    if sizes.min() == 0:
        raise ValueError("cannot batch a graph with zero nodes")
    b = len(feats)
    n_max = int(sizes.max())
    offsets = np.concatenate([[0], np.cumsum(sizes)])
    total = int(offsets[-1])

    node_features = np.concatenate([f.node_features for f in feats], axis=0)
    edge_features = np.concatenate([f.edge_features for f in feats], axis=0)
    edge_index = np.concatenate(
        [f.edge_index + offsets[i] for i, f in enumerate(feats)],
        axis=1).astype(np.intp)

    edgeless_mask = np.zeros((total, 1))
    for i, f in enumerate(feats):
        if f.num_edges == 0:
            edgeless_mask[offsets[i]:offsets[i + 1]] = 1.0

    node_mask = (np.arange(n_max) < sizes[:, None]).astype(np.float64)
    key_bias = np.where(node_mask[:, None, :] > 0, 0.0, NEG_INF)

    # Sentinel `total` addresses the appended zero row for padding slots.
    pad_index = np.full(b * n_max, total, dtype=np.intp)
    spd = np.zeros((b, n_max, n_max), dtype=np.intp)
    for i, f in enumerate(feats):
        n = int(sizes[i])
        pad_index[i * n_max:i * n_max + n] = np.arange(
            offsets[i], offsets[i + 1])
        spd[i, :n, :n] = ensure_spd(f)

    batch = GraphBatch(
        node_features=node_features, edge_features=edge_features,
        edge_index=edge_index, edgeless_mask=edgeless_mask,
        pad_index=pad_index, node_mask=node_mask, key_bias=key_bias,
        spd=spd, sizes=sizes)
    histogram("perf_batch_pad_waste",
              "fraction of padded node slots per collated minibatch",
              buckets=_WASTE_BUCKETS).observe(batch.pad_waste)
    return batch


def bucket_by_size(
    features_list: Sequence[GraphFeatures], batch_size: int,
) -> list[tuple[list[int], list[GraphFeatures]]]:
    """Split ``features_list`` into size-homogeneous collate chunks.

    Members are sorted by node count before chunking, so each chunk pads
    to a near-uniform ``n_max`` and ``perf_batch_pad_waste`` drops versus
    arrival-order chunking (a 14-node LeNet padded next to a 347-node ViT
    wastes ~96% of its slots).  Returns ``(original_indices, chunk)``
    pairs so callers can scatter chunk results back into arrival order —
    sorting changes *packing*, never *which* graphs are predicted or what
    they yield.
    """
    if batch_size < 1:
        raise ValueError(f"batch_size must be >= 1, got {batch_size}")
    order = sorted(range(len(features_list)),
                   key=lambda i: features_list[i].num_nodes)
    chunks = []
    for start in range(0, len(order), batch_size):
        idx = order[start:start + batch_size]
        chunks.append((idx, [features_list[i] for i in idx]))
    return chunks
