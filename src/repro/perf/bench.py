"""Micro-benchmark harness behind ``repro bench`` (the perf gate).

Four suites, each emitting machine-readable numbers into
``BENCH_perf.json`` so the repo finally has a perf trajectory:

* **encode** — node-encoding throughput of the vectorized
  :func:`~repro.features.encode_graph` vs the scalar per-node reference;
* **train** — training samples/sec of ``Trainer.fit(batched=True)`` vs
  the per-graph path at the paper's ``batch_size=8``, plus the
  batched-vs-per-graph forward/gradient equivalence gap;
* **generate** — dataset-generation wall time at ``workers`` 1/2/4 (cold)
  and with a warm content-addressed cache, with bit-identity asserted
  across every configuration;
* **cache** — cold-vs-warm speedup of cache-backed generation.

Gates (``repro bench --check``): batched training >= 3x samples/sec,
warm ``workers=4`` generation >= 2x over cold serial with a bit-identical
dataset, and batched predictions/gradients within 1e-6 of per-graph.
By default the serving suites (:mod:`repro.serve.bench`), the fleet
suites (:mod:`repro.fleet.bench`), and the trace-and-replay suites
(:mod:`repro.perf.trace_bench`) run too and their gates merge in —
see docs/serving.md, docs/fleet.md, and docs/compile.md.
Raw cold-scaling numbers are recorded alongside ``cpu_count`` — on a
single-core CI box process parallelism cannot beat serial, which is why
the headline generation gate compares the full feature (parallel +
cache) against the baseline path (see docs/performance.md).
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import time

import numpy as np

from ..core import DNNOccu, DNNOccuConfig, TrainConfig, Trainer
from ..data import Dataset, generate_dataset
from ..features import encode_graph
from ..features.encode import encode_edge, encode_node
from ..gpu import SIMULATOR_VERSION, get_device
from ..models import ModelConfig, build_model
from ..tensor import Tensor
from .batching import clear_spd_memo, collate, spd_memo_disabled

__all__ = ["run_benchmarks", "evaluate_gates", "BENCH_VERSION"]

BENCH_VERSION = 1

#: similar-size graphs batch densely; the padding waste of mixing
#: a 7-node RNN with a 347-node ViT is itself measured by the
#: ``perf_batch_pad_waste`` histogram, not hidden in this benchmark
_TRAIN_MODELS = ("lenet", "alexnet", "rnn", "lstm")
_ENCODE_MODELS = ("lenet", "alexnet", "resnet-18", "rnn", "lstm", "vit-t")
#: profile-heavy models: the cache replaces simulation + encoding + SPD,
#: so the generation gate uses graphs where those dominate graph building
_GEN_MODELS = ("resnet-50", "vit-s")


def _best_of(fn, repeats: int) -> float:
    """Minimum wall time over ``repeats`` runs of ``fn`` (noise floor).

    Single-core CI boxes jitter by tens of percent run-to-run; the min is
    the standard estimator of the true cost of a deterministic function.
    """
    return min(_timed(fn) for _ in range(repeats))


def _timed(fn) -> float:
    t0 = time.perf_counter()
    fn()
    return time.perf_counter() - t0


def _fingerprint(ds: Dataset) -> str:
    """Content hash of every array and label in a dataset (bit-exact)."""
    h = hashlib.sha256()
    for s in ds:
        h.update(s.features.node_features.tobytes())
        h.update(s.features.edge_features.tobytes())
        h.update(np.ascontiguousarray(s.features.edge_index).tobytes())
        h.update(repr((s.occupancy, s.nvml_utilization, s.wall_time_s,
                       s.model_name, s.device_name)).encode())
    return h.hexdigest()


def bench_encode(scale: float = 1.0) -> dict:
    """Vectorized vs scalar-reference encoding throughput."""
    device = get_device("A100")
    graphs = [build_model(n, ModelConfig()) for n in _ENCODE_MODELS]
    reps = max(3, int(round(10 * scale)))
    nodes = sum(g.num_nodes for g in graphs)

    t0 = time.perf_counter()
    for _ in range(reps):
        for g in graphs:
            encode_graph(g, device)
    vec_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    for _ in range(reps):
        for g in graphs:
            order = sorted(g.nodes)
            np.stack([encode_node(g.nodes[nid], device) for nid in order])
            if g.edges:
                np.stack([encode_edge(e, device) for e in g.edges])
    ref_s = time.perf_counter() - t0

    return {
        "models": list(_ENCODE_MODELS), "repeats": reps,
        "nodes_per_graph_set": nodes,
        "vectorized_nodes_per_s": nodes * reps / vec_s,
        "scalar_nodes_per_s": nodes * reps / ref_s,
        "speedup": ref_s / vec_s,
    }


def bench_train(scale: float = 1.0) -> dict:
    """Batched vs per-graph training throughput + equivalence gap."""
    device = get_device("A100")
    ds = generate_dataset(_TRAIN_MODELS, [device],
                          configs_per_model=max(4, int(round(6 * scale))),
                          seed=11)
    epochs = max(2, int(round(3 * scale)))
    feats = [s.features for s in ds]
    ys = np.array([s.occupancy for s in ds])

    # A deliberately small model: the batched path's win is eliminating
    # per-graph Python/tape overhead, which a micro-benchmark should
    # isolate rather than drown in matmul time.
    def fit(batched: bool) -> None:
        model = DNNOccu(DNNOccuConfig(hidden=32, num_heads=4), seed=5)
        trainer = Trainer(model, TrainConfig(
            epochs=epochs, batch_size=8, lr=1e-3, seed=5, preflight=False))
        trainer.fit(ds, batched=batched)

    per_graph_s = _best_of(lambda: fit(batched=False), 3)
    batched_s = _best_of(lambda: fit(batched=True), 3)

    # Equivalence gap on an untrained model: forward over the whole set,
    # gradients over one batch_size=8 minibatch.
    model = DNNOccu(DNNOccuConfig(hidden=64, num_heads=4), seed=5)
    per_preds = np.array([float(model.forward(f).data) for f in feats])
    bat_preds = model.predict_batch(feats)
    max_fwd_diff = float(np.abs(per_preds - bat_preds).max())

    k = min(8, len(feats))
    model.zero_grad()
    loss = None
    for f, y in zip(feats[:k], ys[:k]):
        err = (model.forward(f) - y) ** 2
        loss = err if loss is None else loss + err
    (loss * (1.0 / k)).backward()
    ref_grads = [p.grad.copy() for p in model.parameters()]
    model.zero_grad()
    preds = model.forward_batch(collate(feats[:k]))
    (((preds - Tensor(ys[:k])) ** 2).sum() * (1.0 / k)).backward()
    max_grad_diff = float(max(
        np.abs(p.grad - g).max()
        for p, g in zip(model.parameters(), ref_grads)))

    n = len(ds) * epochs
    return {
        "models": list(_TRAIN_MODELS), "samples": len(ds),
        "epochs": epochs, "batch_size": 8,
        "per_graph_samples_per_s": n / per_graph_s,
        "batched_samples_per_s": n / batched_s,
        "speedup": per_graph_s / batched_s,
        "max_fwd_diff": max_fwd_diff,
        "max_grad_diff": max_grad_diff,
    }


def bench_generate(scale: float = 1.0) -> dict:
    """Generation scaling (workers 1/2/4) + cache speedup + bit-identity."""
    device = get_device("A100")
    cpm = max(6, int(round(8 * scale)))
    kw = dict(configs_per_model=cpm, seed=23)
    models = list(_GEN_MODELS)

    ref = generate_dataset(models, [device], **kw)
    ref_fp = _fingerprint(ref)

    # The baseline side of the gate is the *no-feature* path: the
    # structure-keyed SPD memo is one of the caches under test (it speeds
    # up even a single cold run — config variants share topology), so
    # baseline measurements run with it bypassed and cleared.
    def _cold_generate(**kwargs):
        clear_spd_memo()
        with spd_memo_disabled():
            return generate_dataset(models, [device], **kwargs)

    serial_s = _best_of(lambda: _cold_generate(**kw), 2)

    workers_s: dict[str, float] = {}
    identical = True
    for w in (1, 2, 4):
        t0 = time.perf_counter()
        ds = _cold_generate(workers=w, **kw)
        workers_s[str(w)] = time.perf_counter() - t0
        identical = identical and _fingerprint(ds) == ref_fp

    with tempfile.TemporaryDirectory(prefix="repro-bench-cache-") as td:
        t0 = time.perf_counter()
        cold = _cold_generate(cache_dir=td, **kw)
        cold_cache_s = time.perf_counter() - t0
        warm = generate_dataset(models, [device], workers=4,
                                cache_dir=td, **kw)
        warm_s = _best_of(
            lambda: generate_dataset(models, [device], workers=4,
                                     cache_dir=td, **kw), 3)
        identical = identical and _fingerprint(cold) == ref_fp \
            and _fingerprint(warm) == ref_fp

    return {
        "models": models, "configs_per_model": cpm,
        "serial_cold_s": serial_s, "workers_cold_s": workers_s,
        "cold_cache_s": cold_cache_s, "warm_workers4_s": warm_s,
        "cache_hit_speedup": cold_cache_s / warm_s,
        # The headline gate: the full feature (workers=4 over a warm
        # content-addressed cache) vs the baseline serial cold path.
        "feature_vs_serial_speedup": serial_s / warm_s,
        "bit_identical": identical,
    }


def run_benchmarks(scale: float = 1.0, serve: bool = True,
                   obs: bool = True, fleet: bool = True,
                   trace: bool = True) -> dict:
    """Run every suite; returns the ``BENCH_perf.json`` document.

    ``serve=True`` also runs the serving suites (``repro.serve.bench``)
    and merges their gates, so ``repro bench --check`` covers the online
    path too; ``repro serve-bench`` runs them standalone.  ``obs=True``
    does the same for the observability suites (``repro.obs.bench`` /
    ``repro obs-bench``), including the tracing-overhead guard,
    ``fleet=True`` for the multi-worker fleet suites
    (``repro.fleet.bench`` / ``repro fleet-bench``): scaling, worker
    chaos, and the shared disk tier, and ``trace=True`` for the
    trace-and-replay executor suites (``repro.perf.trace_bench`` /
    ``repro trace-bench``): compiled-tape speedup, zoo equivalence,
    serial bit-identity, and fallback-on-miss.
    """
    results = {
        "meta": {
            "bench_version": BENCH_VERSION,
            "simulator_version": SIMULATOR_VERSION,
            "cpu_count": os.cpu_count(),
            "scale": scale,
        },
        "encode": bench_encode(scale),
        "train": bench_train(scale),
        "generate": bench_generate(scale),
    }
    if serve:
        # Imported lazily: perf must not depend on serve at import time
        # (serve.bench imports this module for the timing helpers).
        from ..serve.bench import run_serve_benchmarks
        serve_doc = run_serve_benchmarks(scale)
        results["serve"] = {k: v for k, v in serve_doc.items()
                            if k not in ("meta", "gates")}
    if obs:
        from ..obs.bench import run_obs_benchmarks
        obs_doc = run_obs_benchmarks(scale)
        results["obs"] = {k: v for k, v in obs_doc.items()
                          if k not in ("meta", "gates")}
    if fleet:
        from ..fleet.bench import run_fleet_benchmarks
        fleet_doc = run_fleet_benchmarks(scale)
        results["fleet"] = {k: v for k, v in fleet_doc.items()
                            if k not in ("meta", "gates")}
    if trace:
        # Lazy for symmetry: trace_bench pulls serve + core machinery in.
        from .trace_bench import run_trace_benchmarks
        trace_doc = run_trace_benchmarks(scale)
        results["trace"] = {k: v for k, v in trace_doc.items()
                            if k not in ("meta", "gates")}
    results["gates"] = evaluate_gates(results)
    return results


def evaluate_gates(results: dict) -> dict:
    """The acceptance gates over a benchmark document."""
    train = results["train"]
    gen = results["generate"]
    gates = {
        "batched_training_3x": train["speedup"] >= 3.0,
        "generation_feature_2x": gen["feature_vs_serial_speedup"] >= 2.0,
        "generation_bit_identical": bool(gen["bit_identical"]),
        "equivalence_1e6": (train["max_fwd_diff"] <= 1e-6
                            and train["max_grad_diff"] <= 1e-6),
    }
    if "serve" in results:
        from ..serve.bench import evaluate_serve_gates
        gates.update(evaluate_serve_gates(results["serve"]))
    if "obs" in results:
        from ..obs.bench import evaluate_obs_gates
        gates.update(evaluate_obs_gates(results["obs"]))
    if "fleet" in results:
        from ..fleet.bench import evaluate_fleet_gates
        gates.update(evaluate_fleet_gates(results["fleet"]))
    if "trace" in results:
        from .trace_bench import evaluate_trace_gates
        gates.update(evaluate_trace_gates(results["trace"]))
    return gates


def format_summary(results: dict) -> str:
    """Human-readable digest of a benchmark document."""
    e, t, g = results["encode"], results["train"], results["generate"]
    lines = [
        f"encode  : {e['vectorized_nodes_per_s']:,.0f} nodes/s "
        f"(scalar {e['scalar_nodes_per_s']:,.0f}; {e['speedup']:.1f}x)",
        f"train   : batched {t['batched_samples_per_s']:.1f} samples/s vs "
        f"per-graph {t['per_graph_samples_per_s']:.1f} "
        f"({t['speedup']:.1f}x); max fwd diff {t['max_fwd_diff']:.2e}, "
        f"grad {t['max_grad_diff']:.2e}",
        f"generate: serial {g['serial_cold_s']:.2f}s | cold workers "
        + " ".join(f"w{w}={s:.2f}s" for w, s in g["workers_cold_s"].items())
        + f" | warm w4+cache {g['warm_workers4_s']:.2f}s "
        f"({g['feature_vs_serial_speedup']:.1f}x vs serial, cache hit "
        f"{g['cache_hit_speedup']:.1f}x) | bit-identical: "
        f"{g['bit_identical']}",
    ]
    if "serve" in results:
        s = results["serve"]
        lines.append(
            f"serve   : {s['throughput']['speedup']:.1f}x throughput at "
            f"batch {s['throughput']['graphs']}, warm-cache "
            f"{s['warm_cache']['speedup']:.0f}x, p99 "
            f"{s['latency']['latency_s']['p99'] * 1e3:.2f}ms, "
            f"{s['overload']['shed']} shed under overload")
    if "fleet" in results:
        f = results["fleet"]
        lines.append(
            f"fleet   : modeled "
            f"{f['scaling']['modeled_speedup_at_4']:.2f}x at 4 workers, "
            f"chaos {f['chaos']['resolved']}/{f['chaos']['requests']} "
            f"resolved ({f['chaos']['deaths']} deaths), shared tier "
            f"{f['shared']['second_shared_hits']}/{f['shared']['graphs']}")
    if "obs" in results:
        o = results["obs"]["tracing_overhead"]
        lines.append(
            f"obs     : tracing-off overhead "
            f"{100 * o['off_overhead']:+.2f}% (budget "
            f"{100 * o['overhead_budget']:.0f}%), traced "
            f"{100 * o['on_overhead']:+.2f}%; slo healthy="
            f"{results['obs']['slo']['healthy_ok']}")
    if "trace" in results:
        tr = results["trace"]["speedup"]
        lines.append(
            f"trace   : replay {tr['speedup']:.2f}x over eager on "
            f"{tr['num_graphs']} graphs ({tr['tape_ops']} ops -> "
            f"{tr['replay_steps']} steps), zoo diff "
            f"{results['trace']['equivalence']['max_diff']:.1e}, serial "
            f"bit-identical: {results['trace']['serial']['bit_identical']}")
    lines.append("gates   : " + "  ".join(
        f"{k}={'PASS' if v else 'FAIL'}"
        for k, v in results["gates"].items()))
    return "\n".join(lines)


def save_results(results: dict, path: str) -> None:
    os.makedirs(os.path.dirname(os.path.abspath(path)), exist_ok=True)
    with open(path, "w") as fh:
        json.dump(results, fh, indent=2, sort_keys=True)
        fh.write("\n")
