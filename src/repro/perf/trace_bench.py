"""Trace-and-replay benchmark suite behind ``repro trace-bench``.

Four suites, emitted as ``BENCH_trace.json``:

* **speedup** — traced replay vs the eager batched forward on the
  scheduler-loop workload: a drain-sized micro-batch of small graphs
  (the regime PerfSeer motivates — a predictor cheap enough to sit
  inside a scheduler loop).  Small graphs isolate the per-op Python
  dispatch, Tensor-graph bookkeeping, and allocation overhead the
  compiled tape eliminates; large graphs are matmul-bound and replay
  approaches 1x by construction.
* **equivalence** — traced vs eager predictions across the **full**
  model zoo under the production bucketing (``batch_size=8``).
* **serial** — single-graph predictions through a traced-by-default
  :class:`~repro.serve.ModelSession` vs direct
  :meth:`~repro.core.DNNOccu.predict`: must be bit-identical (singleton
  requests never enter the traced path).
* **fallback** — signature-miss behavior: replay-only mode raises
  :class:`~repro.tensor.trace.TraceMissError` on an unseen batch shape
  and the eager route serves the request.

Gates (merged into ``repro bench --check``): speedup >= 2x, zoo
equivalence <= 1e-6, serial bit-identity, and fallback-on-miss.
"""

from __future__ import annotations

import numpy as np

from ..features import encode_graph
from ..gpu import SIMULATOR_VERSION, get_device
from ..models import ModelConfig, build_model, list_models
from ..tensor import TraceMissError, TracedExecutor, no_grad
from ..tensor.trace import batch_signature
from .batching import collate, ensure_spd
from .bench import _best_of

__all__ = ["run_trace_benchmarks", "evaluate_trace_gates",
           "format_trace_summary"]

#: the scheduler-loop workload: one drain-sized micro-batch of small
#: graphs (fleet workers coalesce up to ``WorkerSpec.max_batch`` queued
#: requests into one forward; rnn/lstm are the zoo's smallest graphs)
_TRACE_MODELS = ("rnn", "lstm")
_TRACE_BATCH_SIZES = (1, 2, 4)

_DEFAULT_HIDDEN = 32


def _trace_model(seed: int = 7):
    from ..core import DNNOccu, DNNOccuConfig
    return DNNOccu(DNNOccuConfig(hidden=_DEFAULT_HIDDEN, num_heads=4),
                   seed=seed)


def _encoded(names, batch_sizes, device) -> list:
    feats = [encode_graph(build_model(n, ModelConfig(batch_size=bs)),
                          device)
             for n in names for bs in batch_sizes]
    for f in feats:
        ensure_spd(f)
    return feats


def bench_trace_speedup(scale: float = 1.0) -> dict:
    """Traced vs eager batched forward on the micro-batch workload."""
    device = get_device("A100")
    model = _trace_model()
    feats = _encoded(_TRACE_MODELS, _TRACE_BATCH_SIZES, device)
    batch = collate(feats)
    repeats = max(3, int(round(5 * scale)))
    inner = max(10, int(round(20 * scale)))

    executor = TracedExecutor(model)
    with no_grad():
        executor.run(batch)  # compile outside the timed region

        def eager() -> None:
            for _ in range(inner):
                model.forward_batch(batch)

        def traced() -> None:
            for _ in range(inner):
                executor.run(batch)

        # One untimed pass of each loop: the first iterations in a fresh
        # process pay allocator growth and BLAS warmup, not replay cost.
        eager()
        traced()
        eager_s = _best_of(eager, repeats) / inner
        traced_s = _best_of(traced, repeats) / inner
        diff = float(np.abs(
            executor.run(batch)
            - np.asarray(model.forward_batch(batch).data)).max())

    plan = executor.cache.get(batch_signature(batch))
    return {
        "models": list(_TRACE_MODELS),
        "batch_sizes": list(_TRACE_BATCH_SIZES),
        "num_graphs": batch.num_graphs, "hidden": _DEFAULT_HIDDEN,
        "repeats": repeats, "inner": inner,
        "eager_s": eager_s, "traced_s": traced_s,
        "speedup": eager_s / traced_s,
        "max_diff": diff,
        "tape_ops": len(plan.tape.ops),
        "replay_steps": len(plan.steps),
        "arena_bytes": plan.arena_bytes,
    }


def bench_trace_equivalence(scale: float = 1.0) -> dict:
    """Traced vs eager across the full zoo, production bucketing."""
    device = get_device("A100")
    model = _trace_model()
    names = list_models()
    feats = _encoded(names, (4,), device)
    eager = model.predict_batch(feats, batch_size=8)
    traced = model.predict_batch(feats, batch_size=8, traced=True)
    return {
        "models": names, "batch_size": 8,
        "max_diff": float(np.abs(eager - traced).max()),
    }


def bench_trace_serial(scale: float = 1.0) -> dict:
    """Singleton requests through a traced session stay bit-identical."""
    device = get_device("A100")
    model = _trace_model()
    # Imported lazily: perf must not depend on serve at import time.
    from ..serve.service import ModelSession
    session = ModelSession(model, device)
    feats = _encoded(_TRACE_MODELS + ("lenet", "alexnet"), (1, 8), device)
    direct = [model.predict(f) for f in feats]
    served = [session.predict_features([f])[0] for f in feats]
    return {
        "graphs": len(feats),
        "session_traced": bool(session.traced),
        "bit_identical": served == direct,
    }


def bench_trace_fallback(scale: float = 1.0) -> dict:
    """Signature miss: replay-only mode refuses, eager serves."""
    device = get_device("A100")
    model = _trace_model()
    executor = model.traced_executor()
    seen = collate(_encoded(("rnn",), (1, 2), device))
    # A different graph *count* and pad width: rnn/lstm share a node
    # count, so varying only batch_size would collide in signature.
    unseen = collate(_encoded(("lenet", "alexnet"), (1, 2, 4), device))
    with no_grad():
        executor.run(seen)
        miss_raised = False
        try:
            executor.run(unseen, allow_trace=False)
        except TraceMissError:
            miss_raised = True
        # The production route never sees the miss: predict_batch
        # compiles on first sight and falls back to eager on error.
        eager = np.asarray(model.forward_batch(unseen).data)
    traced = model.predict_batch(
        _encoded(("lenet", "alexnet"), (1, 2, 4), device), traced=True)
    return {
        "miss_raised": miss_raised,
        "fallback_max_diff": float(np.abs(eager - traced).max()),
        "cached_signatures": len(executor.cache.signatures()),
    }


def run_trace_benchmarks(scale: float = 1.0) -> dict:
    """Run the trace suites; returns the ``BENCH_trace.json`` document."""
    from .bench import BENCH_VERSION
    import os
    results = {
        "meta": {
            "bench_version": BENCH_VERSION,
            "simulator_version": SIMULATOR_VERSION,
            "cpu_count": os.cpu_count(),
            "scale": scale,
        },
        "speedup": bench_trace_speedup(scale),
        "equivalence": bench_trace_equivalence(scale),
        "serial": bench_trace_serial(scale),
        "fallback": bench_trace_fallback(scale),
    }
    results["gates"] = evaluate_trace_gates(results)
    return results


def evaluate_trace_gates(results: dict) -> dict:
    """The trace acceptance gates over a benchmark document."""
    return {
        "trace_speedup_2x": results["speedup"]["speedup"] >= 2.0,
        "trace_equivalence_1e6":
            results["speedup"]["max_diff"] <= 1e-6
            and results["equivalence"]["max_diff"] <= 1e-6,
        "trace_serial_bit_identical":
            bool(results["serial"]["bit_identical"]),
        "trace_fallback_on_miss":
            bool(results["fallback"]["miss_raised"])
            and results["fallback"]["fallback_max_diff"] <= 1e-6,
    }


def format_trace_summary(results: dict) -> str:
    """Human-readable digest of a trace benchmark document."""
    s, e = results["speedup"], results["equivalence"]
    f = results["fallback"]
    lines = [
        f"speedup : traced {s['traced_s'] * 1e3:.2f}ms vs eager "
        f"{s['eager_s'] * 1e3:.2f}ms ({s['speedup']:.2f}x) on "
        f"{s['num_graphs']} graphs; tape {s['tape_ops']} ops -> "
        f"{s['replay_steps']} steps, arena {s['arena_bytes'] / 1024:.0f} "
        f"KiB",
        f"equiv   : zoo max diff {e['max_diff']:.2e} over "
        f"{len(e['models'])} models; serial bit-identical: "
        f"{results['serial']['bit_identical']}",
        f"fallback: miss raised={f['miss_raised']}, eager fallback diff "
        f"{f['fallback_max_diff']:.2e}",
        "gates   : " + "  ".join(
            f"{k}={'PASS' if v else 'FAIL'}"
            for k, v in results["gates"].items()),
    ]
    return "\n".join(lines)
