"""repro.perf: the performance layer.

Three prongs (see docs/performance.md):

* :mod:`repro.perf.batching` — masked dense batching so DNN-occu runs one
  vectorized forward/backward per minibatch;
* :mod:`repro.perf.cache` — content-addressed on-disk cache for profiled
  and encoded (graph, device) pairs;
* :mod:`repro.perf.bench` — the micro-benchmark harness behind the
  ``repro bench`` CLI gate.
"""

from .batching import (NEG_INF, GraphBatch, bucket_by_size, clear_spd_memo,
                       collate, ensure_spd, spd_memo_disabled)
from .cache import (PredictionCache, ProfileCache, cache_key, graph_key,
                    structure_key)

__all__ = ["NEG_INF", "GraphBatch", "bucket_by_size", "clear_spd_memo",
           "collate", "ensure_spd", "spd_memo_disabled", "ProfileCache",
           "PredictionCache", "cache_key", "graph_key", "structure_key"]
