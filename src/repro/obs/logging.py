"""Structured logging: stdlib ``logging`` with a key=value formatter.

The reproduction logs through a single ``repro`` logger hierarchy.
:func:`configure_logging` attaches one stderr handler whose
:class:`KeyValueFormatter` renders ``ts= level= logger= msg=`` plus any
extra fields passed via ``logger.info("...", extra={...})`` — the logfmt
convention, trivially grep-able and machine-parseable without a JSON
parser.  Reconfiguring replaces the handler rather than stacking
duplicates, so tests and the CLI can call it repeatedly.
"""

from __future__ import annotations

import logging
import sys

__all__ = ["KeyValueFormatter", "configure_logging", "get_logger",
           "LOG_LEVELS"]

LOG_LEVELS = {"debug": logging.DEBUG, "info": logging.INFO,
              "warning": logging.WARNING}

#: attributes every LogRecord carries; anything else came from ``extra=``
_RESERVED = set(logging.LogRecord("", 0, "", 0, "", (), None).__dict__) \
    | {"message", "asctime", "taskName"}

_HANDLER_TAG = "_repro_obs_handler"

# Library default: silent until configure_logging() opts in.  Without
# this, dataset generation's expected OOM-and-redraw loop would spam
# stderr through logging's last-resort handler.
_base_logger = logging.getLogger("repro")
_base_logger.addHandler(logging.NullHandler())
_base_logger.propagate = False


def _quote(value) -> str:
    text = str(value)
    if " " in text or "=" in text or '"' in text or text == "":
        return '"' + text.replace('"', r'\"') + '"'
    return text


class KeyValueFormatter(logging.Formatter):
    """``ts=... level=... logger=... msg=... key=value ...`` lines."""

    default_time_format = "%Y-%m-%dT%H:%M:%S"
    default_msec_format = "%s.%03d"

    def format(self, record: logging.LogRecord) -> str:
        parts = [
            f"ts={self.formatTime(record)}",
            f"level={record.levelname.lower()}",
            f"logger={record.name}",
            f"msg={_quote(record.getMessage())}",
        ]
        for key in sorted(set(record.__dict__) - _RESERVED):
            parts.append(f"{key}={_quote(record.__dict__[key])}")
        if record.exc_info:
            parts.append(f"exc={_quote(self.formatException(record.exc_info))}")
        return " ".join(parts)


def configure_logging(level: str = "warning",
                      stream=None) -> logging.Logger:
    """Configure the ``repro`` logger; returns it.

    ``level`` is one of ``debug`` / ``info`` / ``warning`` (the CLI's
    ``--log-level`` choices).  Idempotent: a previously installed handler
    is replaced, never duplicated.
    """
    if level not in LOG_LEVELS:
        raise ValueError(f"unknown log level {level!r}; "
                         f"choose from {sorted(LOG_LEVELS)}")
    logger = logging.getLogger("repro")
    logger.setLevel(LOG_LEVELS[level])
    for handler in list(logger.handlers):
        if getattr(handler, _HANDLER_TAG, False):
            logger.removeHandler(handler)
    handler = logging.StreamHandler(stream or sys.stderr)
    handler.setFormatter(KeyValueFormatter())
    setattr(handler, _HANDLER_TAG, True)
    logger.addHandler(handler)
    logger.propagate = False
    return logger


def get_logger(name: str) -> logging.Logger:
    """A child of the ``repro`` logger (e.g. ``get_logger("gpu")``)."""
    return logging.getLogger(f"repro.{name}" if name else "repro")
