"""In-process tracing: nestable spans with a Chrome-trace exporter.

The tracer is the observability backbone of the reproduction: wrap any
region in :func:`span`, install a :class:`Tracer`, and every entered span
becomes a complete-event (``"ph": "X"``) record that
:func:`to_chrome_trace` serializes for ``chrome://tracing`` / Perfetto.

Design constraints, in order:

1. **Zero cost when off.**  No tracer installed (the default) makes
   :func:`span` return a shared no-op context manager — one global read
   and one ``is None`` test on the hot path, no allocation besides the
   caller's kwargs.  Hot loops (per-kernel, per-event) therefore keep
   their instrumentation unconditionally.
2. **Monotonic clocks.**  Timestamps come from ``time.perf_counter_ns``
   relative to the tracer's creation, so spans never go backwards even
   when the wall clock is adjusted.
3. **Thread safety.**  Recording appends under a lock; span nesting depth
   is tracked per-thread so concurrent threads produce independent,
   correctly nested lanes (Chrome groups events by ``tid``).
"""

from __future__ import annotations

import itertools
import json
import os
import threading
import time
from dataclasses import dataclass, field

from .context import current_context

__all__ = ["SpanRecord", "Tracer", "span", "get_tracer", "install_tracer",
           "uninstall_tracer", "tracing_enabled", "to_chrome_trace"]


@dataclass(frozen=True)
class SpanRecord:
    """One completed span: a closed interval on one thread's timeline."""

    name: str
    #: start offset from tracer creation, microseconds
    start_us: float
    duration_us: float
    pid: int
    tid: int
    #: nesting depth on this thread at entry (0 = top level)
    depth: int
    attrs: dict = field(default_factory=dict)
    #: tracer-unique id; 0 only on records built without a tracer
    span_id: int = 0
    #: enclosing span on this thread, else the captured handoff parent
    parent_id: int | None = None
    #: request identity stamped from the ambient SpanContext, if any
    trace_id: str | None = None
    request_id: str | None = None

    @property
    def end_us(self) -> float:
        return self.start_us + self.duration_us


class _ActiveSpan:
    """Context manager recording one span into its tracer on exit."""

    __slots__ = ("_tracer", "_name", "_attrs", "_start_ns", "_depth",
                 "_span_id", "_parent_id", "_ctx")

    def __init__(self, tracer: "Tracer", name: str, attrs: dict):
        self._tracer = tracer
        self._name = name
        self._attrs = attrs

    def __enter__(self) -> "_ActiveSpan":
        self._ctx = current_context()
        self._span_id, self._parent_id, self._depth = \
            self._tracer._enter_span(self._ctx)
        self._start_ns = time.perf_counter_ns()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        end_ns = time.perf_counter_ns()
        if exc_type is not None:
            self._attrs["error"] = exc_type.__name__
        self._tracer._record(self._name, self._start_ns, end_ns,
                             self._depth, self._attrs,
                             span_id=self._span_id,
                             parent_id=self._parent_id, ctx=self._ctx)
        self._tracer._exit_span()
        return False

    @property
    def span_id(self) -> int:
        return self._span_id

    def set_attr(self, **attrs) -> None:
        """Attach attributes discovered while the span is open."""
        self._attrs.update(attrs)


class _NoopSpan:
    """Shared do-nothing span used whenever no tracer is installed."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def set_attr(self, **attrs) -> None:
        pass


NOOP_SPAN = _NoopSpan()


class Tracer:
    """Collects :class:`SpanRecord` events from :func:`span` regions.

    Span ids come from one tracer-wide counter; the per-thread *stack*
    of open span ids both tracks nesting depth and resolves each span's
    parent.  When a thread's stack is empty the parent falls back to the
    ambient :class:`~repro.obs.context.SpanContext`'s captured
    ``parent_span_id`` — that is what stitches dispatcher-thread spans
    onto the submitting request's tree.
    """

    def __init__(self) -> None:
        self._t0_ns = time.perf_counter_ns()
        self._lock = threading.Lock()
        self._local = threading.local()
        self._ids = itertools.count(1)
        self.events: list[SpanRecord] = []

    # -- span bookkeeping ------------------------------------------------ #
    def _stack(self) -> list[int]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _enter_span(self, ctx) -> tuple[int, int | None, int]:
        """Allocate an id; returns (span_id, parent_id, depth)."""
        stack = self._stack()
        if stack:
            parent = stack[-1]
        else:
            parent = ctx.parent_span_id if ctx is not None else None
        span_id = next(self._ids)  # itertools.count: GIL-atomic
        depth = len(stack)
        stack.append(span_id)
        return span_id, parent, depth

    def _exit_span(self) -> None:
        self._stack().pop()

    def current_span_id(self) -> int | None:
        """Id of the innermost span open on the calling thread."""
        stack = getattr(self._local, "stack", None)
        return stack[-1] if stack else None

    def _record(self, name: str, start_ns: int, end_ns: int, depth: int,
                attrs: dict, span_id: int = 0,
                parent_id: int | None = None, ctx=None) -> None:
        rec = SpanRecord(
            name=name,
            start_us=(start_ns - self._t0_ns) / 1e3,
            duration_us=(end_ns - start_ns) / 1e3,
            pid=os.getpid(), tid=threading.get_ident(),
            depth=depth, attrs=attrs, span_id=span_id,
            parent_id=parent_id,
            trace_id=ctx.trace_id if ctx is not None else None,
            request_id=ctx.request_id if ctx is not None else None)
        with self._lock:
            self.events.append(rec)

    # -- public API ------------------------------------------------------ #
    def span(self, name: str, **attrs) -> _ActiveSpan:
        """A context manager timing the enclosed region."""
        return _ActiveSpan(self, name, attrs)

    def __len__(self) -> int:
        return len(self.events)

    def clear(self) -> None:
        with self._lock:
            self.events.clear()


# --------------------------------------------------------------------- #
# Global tracer: None by default so instrumented hot paths stay no-ops.
# --------------------------------------------------------------------- #
_tracer: Tracer | None = None


def install_tracer(tracer: Tracer | None = None) -> Tracer:
    """Install (and return) the process-global tracer; spans now record."""
    global _tracer
    # explicit None test: an empty Tracer is falsy (len 0) but still valid
    _tracer = tracer if tracer is not None else Tracer()
    return _tracer


def uninstall_tracer() -> None:
    """Remove the global tracer; :func:`span` reverts to the no-op path."""
    global _tracer
    _tracer = None


def get_tracer() -> Tracer | None:
    return _tracer


def tracing_enabled() -> bool:
    return _tracer is not None


def span(name: str, **attrs):
    """Time a region against the global tracer (no-op when none installed).

    ::

        with span("profile_graph", model=graph.name):
            ...
    """
    tracer = _tracer
    if tracer is None:
        return NOOP_SPAN
    return tracer.span(name, **attrs)


# --------------------------------------------------------------------- #
# Chrome trace-event exporter
# --------------------------------------------------------------------- #
def to_chrome_trace(tracer: Tracer, metrics: dict | None = None,
                    other_data: dict | None = None) -> str:
    """Serialize a tracer's spans to Chrome trace-event JSON.

    Every span becomes a complete event (``ph: "X"``) with microsecond
    ``ts``/``dur`` and real ``pid``/``tid``, so the file opens directly in
    ``chrome://tracing`` or https://ui.perfetto.dev.  A metrics snapshot
    (from :meth:`repro.obs.metrics.MetricsRegistry.to_dict`) rides along
    under ``otherData.metrics`` so ``repro obs`` can print both.

    Spans recorded inside a request scope additionally carry
    ``trace_id`` / ``request_id`` / ``span_id`` / ``parent_span_id`` in
    ``args``, which is what lets the summarizer regroup a request's
    spans across threads into one tree.  Context-free spans keep their
    bare ``args`` so pre-existing traces round-trip unchanged.
    """
    events = []
    with tracer._lock:
        records = list(tracer.events)
    for rec in sorted(records, key=lambda r: r.start_us):
        args = rec.attrs
        if rec.trace_id is not None:
            args = dict(args)
            args["trace_id"] = rec.trace_id
            args["request_id"] = rec.request_id
            args["span_id"] = rec.span_id
            if rec.parent_id is not None:
                args["parent_span_id"] = rec.parent_id
        events.append({
            "name": rec.name, "ph": "X", "ts": rec.start_us,
            "dur": rec.duration_us, "pid": rec.pid, "tid": rec.tid,
            "args": args,
        })
    trace = {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": dict(other_data or {}),
    }
    if metrics is not None:
        trace["otherData"]["metrics"] = metrics
    return json.dumps(trace)
