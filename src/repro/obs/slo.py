"""Declarative SLOs over the metrics registry, with burn-rate math.

An :class:`SLOSpec` names an objective over the serving metrics — "p99
latency <= 50 ms over the last 60 s", "shed fraction <= 5%" — and the
:class:`SLOEngine` evaluates it from the *existing*
:class:`~repro.obs.metrics.MetricsRegistry`: no second measurement
pipeline, no new instrumentation.  The engine keeps a deque of
timestamped registry snapshots; a window evaluation differences the
newest snapshot against the newest one older than the window, so
cumulative counters/histograms turn into windowed rates exactly the way
a Prometheus ``increase()`` would.

Burn rate follows the SRE convention: *fraction of the error budget
consumed per unit of budget allowed*.  A ratio SLO with objective 5%
observing 10% bad requests burns at 2.0; a latency SLO burns at
``frac_above_objective / (1 - quantile)``.  Burn 1.0 means "exactly on
budget"; sustained burn > 1 exhausts the budget before the window ends.

``repro slo --check`` wires :meth:`SLOEngine.check` into CI: exit 1 on
any breached objective.  Timestamps are injected (``now=``) everywhere
so tests and the bench gate are deterministic.
"""

from __future__ import annotations

import json
from collections import deque
from dataclasses import dataclass, field

from .metrics import Histogram, MetricsRegistry, histogram_quantile

__all__ = ["SLOSpec", "SLOStatus", "SLOEngine", "default_serve_slos",
           "default_fleet_slos", "format_slo_report"]


@dataclass(frozen=True)
class SLOSpec:
    """One objective: either a latency quantile or a bad/total ratio.

    ``kind`` selects the evaluation:

    * ``"quantile"`` — ``histogram`` 's windowed q-quantile must be
      <= ``objective`` (seconds);
    * ``"ratio"`` — windowed ``bad_counter`` / ``total_counter`` must be
      <= ``objective`` (a fraction in (0, 1]).
    """

    name: str
    kind: str
    objective: float
    window_s: float = 60.0
    #: quantile kind
    histogram: str = "serve_latency_seconds"
    quantile: float = 0.99
    #: ratio kind
    bad_counter: str = ""
    total_counter: str = "serve_requests_total"
    description: str = ""

    def __post_init__(self):
        if self.kind not in ("quantile", "ratio"):
            raise ValueError(f"unknown SLO kind {self.kind!r}")
        if self.objective <= 0:
            raise ValueError("objective must be positive")
        if self.kind == "quantile" and not 0.0 < self.quantile < 1.0:
            raise ValueError("quantile must be in (0, 1)")
        if self.kind == "ratio" and not self.bad_counter:
            raise ValueError("ratio SLO needs a bad_counter")


@dataclass
class SLOStatus:
    """Result of evaluating one spec over one window."""

    spec: SLOSpec
    #: measured quantile (seconds) or bad fraction
    value: float
    ok: bool
    #: error-budget consumption rate; 1.0 = exactly on budget
    burn_rate: float
    #: 1 - burn_rate, floored at no lower bound (negative = overspent)
    budget_remaining: float
    #: observations (histogram delta count / counter total delta)
    samples: float
    window_s: float = 0.0

    def to_dict(self) -> dict:
        return {"name": self.spec.name, "kind": self.spec.kind,
                "objective": self.spec.objective, "value": self.value,
                "ok": self.ok, "burn_rate": self.burn_rate,
                "budget_remaining": self.budget_remaining,
                "samples": self.samples, "window_s": self.window_s}


def default_serve_slos() -> tuple[SLOSpec, ...]:
    """The serving path's stock objectives (override per deployment)."""
    return (
        SLOSpec(name="serve-p99-latency", kind="quantile",
                objective=0.050, quantile=0.99,
                histogram="serve_latency_seconds",
                description="p99 end-to-end latency <= 50 ms"),
        SLOSpec(name="serve-shed-rate", kind="ratio", objective=0.05,
                bad_counter="serve_shed_total",
                description="<= 5% of requests shed to the fallback "
                            "chain"),
        SLOSpec(name="serve-error-rate", kind="ratio", objective=0.01,
                bad_counter="serve_dispatch_errors_total",
                description="<= 1% of requests failed by dispatch "
                            "errors"),
    )


def default_fleet_slos() -> tuple[SLOSpec, ...]:
    """Stock objectives for the multi-worker fleet (docs/fleet.md).

    The fallback-rate objective is deliberately generous (10%): under
    worker-kill chaos the fleet is *supposed* to degrade into the
    fallback chain rather than drop tickets, so the SLO flags sustained
    degradation, not the occasional failover.
    """
    return (
        SLOSpec(name="fleet-p99-latency", kind="quantile",
                objective=0.250, quantile=0.99,
                histogram="fleet_request_latency_seconds",
                total_counter="fleet_requests_total",
                description="p99 end-to-end fleet latency <= 250 ms "
                            "(failover + retry headroom over the "
                            "single-process serve objective)"),
        SLOSpec(name="fleet-fallback-rate", kind="ratio", objective=0.10,
                bad_counter="fleet_fallbacks_total",
                total_counter="fleet_requests_total",
                description="<= 10% of fleet requests resolved by the "
                            "fallback chain instead of a worker"),
        SLOSpec(name="fleet-stale-rate", kind="ratio", objective=0.05,
                bad_counter="fleet_stale_results_total",
                total_counter="fleet_requests_total",
                description="<= 5% of fleet requests recomputed after a "
                            "late result from a dead incarnation"),
    )


@dataclass(frozen=True)
class _Snapshot:
    t: float
    counters: dict
    histograms: dict = field(default_factory=dict)


class SLOEngine:
    """Evaluates :class:`SLOSpec` objectives over registry snapshots.

    Call :meth:`snapshot` periodically (every scrape, every bench
    iteration — whatever cadence the caller owns); :meth:`evaluate`
    differences the newest snapshot against the window baseline (the
    newest snapshot at or older than ``now - window_s``).  When no
    snapshot is that old the baseline is *empty* — the window degrades
    to "since process start", which keeps one-shot CLI checks
    meaningful.
    """

    def __init__(self, registry: MetricsRegistry,
                 specs=None, max_snapshots: int = 512):
        self.registry = registry
        self.specs: tuple[SLOSpec, ...] = \
            tuple(specs) if specs is not None else default_serve_slos()
        self._snapshots: deque[_Snapshot] = deque(maxlen=max_snapshots)

    # -- snapshotting ---------------------------------------------------- #
    def snapshot(self, now: float) -> None:
        """Record the registry's cumulative state at time ``now``."""
        counters: dict = {}
        histograms: dict = {}
        for metric in self.registry:
            if metric.kind == "counter":
                counters[metric.name] = \
                    counters.get(metric.name, 0.0) + metric.snapshot()
            elif isinstance(metric, Histogram):
                cumulative, count, _ = metric.state()
                prior = histograms.get(metric.name)
                if prior is not None and prior[0] == metric.buckets:
                    # merge label variants sharing one bucket layout
                    cumulative = [a + b for a, b in
                                  zip(prior[1], cumulative)]
                    count += prior[2]
                histograms[metric.name] = \
                    (metric.buckets, cumulative, count)
        self._snapshots.append(
            _Snapshot(t=float(now), counters=counters,
                      histograms=histograms))

    def _window(self, now: float, window_s: float) \
            -> tuple[_Snapshot, _Snapshot]:
        """(baseline, head) pair for a lookback of ``window_s``."""
        if not self._snapshots:
            raise RuntimeError("snapshot() the engine before evaluating")
        head = self._snapshots[-1]
        cutoff = float(now) - float(window_s)
        baseline = _Snapshot(t=cutoff, counters={})
        for snap in self._snapshots:
            if snap.t > cutoff or snap is head:
                break
            baseline = snap
        return baseline, head

    # -- evaluation ------------------------------------------------------ #
    def evaluate(self, now: float) -> list[SLOStatus]:
        """One :class:`SLOStatus` per spec, at bucket-resolution accuracy."""
        from .metrics import counter as _counter
        out = []
        for spec in self.specs:
            baseline, head = self._window(now, spec.window_s)
            if spec.kind == "ratio":
                status = self._eval_ratio(spec, baseline, head)
            else:
                status = self._eval_quantile(spec, baseline, head)
            status.window_s = head.t - baseline.t
            _counter("slo_evaluations_total",
                     "SLO spec evaluations performed").inc()
            if not status.ok:
                _counter("slo_violations_total",
                         "SLO evaluations that breached objective").inc()
            out.append(status)
        return out

    def _eval_ratio(self, spec: SLOSpec, baseline: _Snapshot,
                    head: _Snapshot) -> SLOStatus:
        bad = head.counters.get(spec.bad_counter, 0.0) \
            - baseline.counters.get(spec.bad_counter, 0.0)
        total = head.counters.get(spec.total_counter, 0.0) \
            - baseline.counters.get(spec.total_counter, 0.0)
        if total <= 0:
            # no traffic in the window: vacuously within objective
            return SLOStatus(spec=spec, value=0.0, ok=True,
                             burn_rate=0.0, budget_remaining=1.0,
                             samples=0.0)
        frac = bad / total
        burn = frac / spec.objective
        return SLOStatus(spec=spec, value=frac,
                         ok=frac <= spec.objective, burn_rate=burn,
                         budget_remaining=1.0 - burn, samples=total)

    def _eval_quantile(self, spec: SLOSpec, baseline: _Snapshot,
                       head: _Snapshot) -> SLOStatus:
        head_h = head.histograms.get(spec.histogram)
        if head_h is None:
            return SLOStatus(spec=spec, value=0.0, ok=True,
                             burn_rate=0.0, budget_remaining=1.0,
                             samples=0.0)
        buckets, head_cum, head_count = head_h
        base_h = baseline.histograms.get(spec.histogram)
        if base_h is not None and base_h[0] == buckets:
            base_cum, base_count = base_h[1], base_h[2]
        else:
            base_cum, base_count = [0] * len(buckets), 0
        cum = [h - b for h, b in zip(head_cum, base_cum)]
        count = head_count - base_count
        if count <= 0:
            return SLOStatus(spec=spec, value=0.0, ok=True,
                             burn_rate=0.0, budget_remaining=1.0,
                             samples=0.0)
        value = histogram_quantile(buckets, cum, count, spec.quantile)
        # fraction of requests slower than the objective, at bucket
        # resolution: the largest bound <= objective is the honest
        # conservative cut line
        at_or_below = 0
        for bound, c in zip(buckets, cum):
            if bound <= spec.objective:
                at_or_below = c
        frac_above = max(0.0, (count - at_or_below) / count)
        burn = frac_above / (1.0 - spec.quantile)
        return SLOStatus(spec=spec, value=value,
                         ok=value <= spec.objective, burn_rate=burn,
                         budget_remaining=1.0 - burn,
                         samples=float(count))

    def check(self, now: float) -> tuple[bool, list[SLOStatus]]:
        """(all objectives met, statuses) — the ``repro slo --check`` gate."""
        statuses = self.evaluate(now)
        return all(s.ok for s in statuses), statuses

    def to_dict(self, now: float) -> dict:
        return {"slos": [s.to_dict() for s in self.evaluate(now)]}

    def to_json(self, now: float, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(now), indent=indent)


def format_slo_report(statuses) -> str:
    """Aligned text report, one line per objective."""
    if not statuses:
        return "(no SLOs configured)"
    rows = []
    for s in statuses:
        rows.append((
            "OK " if s.ok else "FAIL",
            s.spec.name,
            f"{s.value:.6g} <= {s.spec.objective:.6g}",
            f"burn={s.burn_rate:.2f}",
            f"budget={s.budget_remaining:+.2f}",
            f"n={s.samples:.0f}",
            f"window={s.window_s:.0f}s",
        ))
    widths = [max(len(r[i]) for r in rows) for i in range(len(rows[0]))]
    return "\n".join("  " + "  ".join(c.ljust(w)
                                      for c, w in zip(r, widths))
                     for r in rows)
