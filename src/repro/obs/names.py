"""Central metric-name registry: every series the reproduction emits.

Metric names are API.  A typo'd duplicate (``serve_shed_total`` vs
``serve_sheds_total``) silently splits one logical series into two and
every dashboard/SLO built on it under-counts — so the S007 lint pass
requires every literal name passed to :func:`repro.obs.counter` /
:func:`gauge` / :func:`histogram` (or the ``Counter``/``Gauge``/
``Histogram`` constructors) to be declared here.  Declaring is cheap:
add one line with a help string.  Genuinely ad-hoc series (tests,
one-off experiments) can opt out at the call site with
``# obs: adhoc-metric-ok``.

The registry also powers :func:`repro.obs.slo.SLOEngine` defaults and
keeps docs/observability.md's instrumentation table honest.
"""

from __future__ import annotations

__all__ = ["METRIC_NAMES", "declared_names", "is_declared", "declare"]

#: name -> one-line help string.  Keep alphabetized within each block.
METRIC_NAMES: dict[str, str] = {
    # -- fleet ---------------------------------------------------------- #
    "fleet_fallbacks_total": "fleet tickets resolved by the fallback "
                             "chain, labeled by reason",
    "fleet_pending_requests": "fleet requests awaiting a worker result",
    "fleet_request_latency_seconds": "end-to-end fleet request latency",
    "fleet_requests_total": "prediction requests accepted by the fleet",
    "fleet_retries_total": "orphaned requests rerouted to a sibling "
                           "worker after a worker death",
    "fleet_served_total": "fleet requests resolved by a worker, labeled "
                          "by cache tier",
    "fleet_shared_cache_hits_total": "fleet requests served from the "
                                     "shared on-disk prediction tier",
    "fleet_shared_cache_misses_total": "fleet forwards that missed the "
                                       "shared on-disk prediction tier",
    "fleet_stale_results_total": "late results from a detached worker "
                                 "incarnation, discarded",
    "fleet_worker_deaths_total": "fleet worker deaths, labeled by kind "
                                 "(kill / hang / exit)",
    "fleet_worker_restarts_total": "fleet workers restarted by the "
                                   "supervisor",
    # -- lint ----------------------------------------------------------- #
    "lint_concurrency_findings_total": "concurrency lint findings, "
                                       "labeled by code",
    "lint_diagnostics_total": "diagnostics emitted, labeled by code",
    "lint_preflight_failures_total": "graphs rejected by lint preflight",
    "lockwatch_acquisitions_total": "lock acquisitions seen by the "
                                    "sanitizer, labeled by lock",
    "lockwatch_hold_seconds": "lock hold times seen by the sanitizer",
    "lockwatch_inversions_total": "observed lock-order inversions",
    # -- obs ------------------------------------------------------------ #
    "slo_evaluations_total": "SLO spec evaluations performed",
    "slo_violations_total": "SLO evaluations that breached objective",
    # -- perf ----------------------------------------------------------- #
    "perf_batch_pad_waste": "padding fraction per batched forward",
    "perf_cache_corrupt_total": "dataset cache entries dropped as corrupt",
    "perf_cache_hits_total": "dataset cache hits",
    "perf_cache_misses_total": "dataset cache misses",
    "perf_spd_memo_hits_total": "SPD memo hits",
    "perf_spd_memo_misses_total": "SPD memo misses",
    "perf_worker_busy_seconds": "per-worker busy time in parallel "
                                "generation",
    # -- profiler ------------------------------------------------------- #
    "profiler_kernel_duration_us": "simulated kernel durations",
    "profiler_kernel_occupancy": "simulated kernel occupancies",
    "profiler_kernels_total": "kernels profiled",
    "profiler_oom_total": "profiles aborted by simulated OOM",
    # -- resilience ----------------------------------------------------- #
    "resilience_checkpoints_total": "checkpoints written",
    "resilience_fallbacks_total": "fallback-chain tier invocations",
    "resilience_faults_total": "injected faults, labeled by component "
                               "and kind",
    "resilience_restores_total": "checkpoint restores",
    "resilience_retries": "retry attempts per recovered operation",
    # -- sched ---------------------------------------------------------- #
    "sched_events_total": "simulator events processed",
    "sched_gpu_busy_seconds_total": "per-GPU busy time",
    "sched_queue_depth": "jobs waiting for a GPU",
    # -- serve ---------------------------------------------------------- #
    "serve_batch_size": "requests coalesced per micro-batch flush",
    "serve_deadline_shed_total": "requests shed to the fallback chain by "
                                 "a caller-side result deadline",
    "serve_dispatch_errors_total": "requests failed by a dispatch "
                                   "exception",
    "serve_encoding_cache_hits_total": "requests served a memoized "
                                       "encoding",
    "serve_encoding_cache_misses_total": "requests that had to encode "
                                         "features",
    "serve_latency_seconds": "end-to-end serve request latency",
    "serve_quality_abs_residual": "|prediction - simulator ground truth| "
                                  "for sampled requests",
    "serve_quality_ape": "absolute percentage error for sampled requests",
    "serve_quality_drift_alarms_total": "rolling-MAPE drift threshold "
                                        "crossings",
    "serve_quality_drift_score": "rolling MAPE over the quality window",
    "serve_quality_samples_total": "served predictions re-labeled by the "
                                   "quality monitor",
    "serve_queue_depth": "requests waiting in the micro-batch queue",
    "serve_requests_total": "prediction requests accepted by the service",
    "serve_result_cache_hits_total": "requests answered from the result "
                                     "cache",
    "serve_result_cache_misses_total": "requests that needed a forward "
                                       "pass",
    "serve_shed_total": "requests shed to the fallback chain (queue full)",
    # -- trace ---------------------------------------------------------- #
    "trace_arena_bytes": "bytes held by compiled-tape buffer arenas",
    "trace_cache_hits_total": "batched forwards replayed from a "
                              "compiled tape",
    "trace_cache_misses_total": "batched forwards that had to "
                                "trace+compile",
    "trace_fallback_total": "batched forwards that fell back to eager "
                            "after a trace or replay error",
    "trace_fused_ops_total": "tape ops eliminated by peephole fusion",
    # -- trainer -------------------------------------------------------- #
    "trainer_best_state_restores_total": "early-stop best-state restores",
    "trainer_loss": "training loss per epoch",
    "trainer_lr": "learning rate per epoch",
}


def declared_names() -> frozenset[str]:
    """The set of governed metric names (S007 checks against this)."""
    return frozenset(METRIC_NAMES)


def is_declared(name: str) -> bool:
    return name in METRIC_NAMES


def declare(name: str, description: str = "") -> str:
    """Runtime escape hatch for extensions: register a name, return it.

    Downstream code embedding repro can declare its own series instead
    of sprinkling lint opt-outs; returns the name so call sites can do
    ``counter(declare("my_total", "..."))``.
    """
    METRIC_NAMES.setdefault(name, description)
    return name
