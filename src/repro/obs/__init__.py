"""Observability layer: tracing spans, metrics, structured logging.

Everything the reproduction records about itself flows through this
package.  It is intentionally zero-dependency (stdlib only) and inert by
default: until :func:`enable` installs a :class:`~repro.obs.Tracer` and a
:class:`~repro.obs.MetricsRegistry`, every instrumented call site in the
profiler, trainer, and scheduler degrades to a shared no-op object — the
hot paths pay one global read and an ``is None`` test.

Typical use (what ``repro ... --trace-out t.json`` does)::

    from repro import obs

    tracer, registry = obs.enable()
    try:
        ...  # run any instrumented workload
    finally:
        payload = obs.export_chrome_trace(tracer, registry)
        obs.disable()
    open("t.json", "w").write(payload)

Then ``repro obs t.json`` summarizes it, or open it in
``chrome://tracing`` / https://ui.perfetto.dev.
"""

from __future__ import annotations

import contextlib

from .context import (SpanContext, capture_context, current_context,
                      new_request_id, new_trace_id, request_scope,
                      reset_ids, use_context)
from .tracing import (SpanRecord, Tracer, get_tracer, install_tracer, span,
                      to_chrome_trace, tracing_enabled, uninstall_tracer)
from .metrics import (DEFAULT_BUCKETS, Counter, Gauge, Histogram,
                      MetricsRegistry, counter, gauge, get_registry,
                      histogram, histogram_quantile, install_registry,
                      uninstall_registry)
from .names import METRIC_NAMES, declare, declared_names, is_declared
from .logging import (LOG_LEVELS, KeyValueFormatter, configure_logging,
                      get_logger)
from .flight import FlightRecord, FlightRecorder, format_flight_table
from .slo import (SLOEngine, SLOSpec, SLOStatus, default_fleet_slos,
                  default_serve_slos, format_slo_report)
from .summary import (SpanStat, format_metrics_table,
                      format_request_summary, load_trace_file,
                      request_groups, span_stats, span_tree,
                      summarize_trace)

__all__ = [
    "Tracer", "SpanRecord", "span", "get_tracer", "install_tracer",
    "uninstall_tracer", "tracing_enabled", "to_chrome_trace",
    "SpanContext", "current_context", "request_scope", "use_context",
    "capture_context", "new_trace_id", "new_request_id", "reset_ids",
    "Counter", "Gauge", "Histogram", "MetricsRegistry", "DEFAULT_BUCKETS",
    "counter", "gauge", "histogram", "histogram_quantile", "get_registry",
    "install_registry", "uninstall_registry",
    "METRIC_NAMES", "declare", "declared_names", "is_declared",
    "configure_logging", "get_logger", "KeyValueFormatter", "LOG_LEVELS",
    "FlightRecord", "FlightRecorder", "format_flight_table",
    "SLOSpec", "SLOStatus", "SLOEngine", "default_serve_slos",
    "default_fleet_slos",
    "format_slo_report",
    "SpanStat", "load_trace_file", "span_stats", "summarize_trace",
    "format_metrics_table", "request_groups", "span_tree",
    "format_request_summary",
    "enable", "disable", "is_enabled", "observed", "export_chrome_trace",
]


def enable(tracer: Tracer | None = None,
           registry: MetricsRegistry | None = None) \
        -> tuple[Tracer, MetricsRegistry]:
    """Turn observability on: install a global tracer and registry."""
    return install_tracer(tracer), install_registry(registry)


def disable() -> None:
    """Turn observability off; call sites revert to the no-op fast path."""
    uninstall_tracer()
    uninstall_registry()


def is_enabled() -> bool:
    return tracing_enabled() or get_registry() is not None


@contextlib.contextmanager
def observed(tracer: Tracer | None = None,
             registry: MetricsRegistry | None = None):
    """Scope observability to a ``with`` block; yields (tracer, registry).

    Restores whatever tracer/registry (or none) was installed before, so
    nested scopes and tests cannot leak global state.
    """
    prev_tracer, prev_registry = get_tracer(), get_registry()
    pair = enable(tracer, registry)
    try:
        yield pair
    finally:
        if prev_tracer is None:
            uninstall_tracer()
        else:
            install_tracer(prev_tracer)
        if prev_registry is None:
            uninstall_registry()
        else:
            install_registry(prev_registry)


def export_chrome_trace(tracer: Tracer,
                        registry: MetricsRegistry | None = None,
                        **other_data) -> str:
    """Chrome-trace JSON with the registry snapshot under ``otherData``."""
    return to_chrome_trace(
        tracer,
        metrics=registry.to_dict() if registry is not None else None,
        other_data=other_data or None)
