"""Metrics primitives: Counter / Gauge / Histogram + a registry.

Prometheus-shaped but dependency-free.  Instrumented code asks the module
for a handle (:func:`counter` / :func:`gauge` / :func:`histogram`); with
no registry installed — the default — the handle is a shared null metric
whose methods do nothing, so hot paths pay one global read per *call
site*, not per observation (handles are meant to be hoisted out of loops).

Exposition formats:

* :meth:`MetricsRegistry.to_prometheus` — the text exposition format
  (``# HELP`` / ``# TYPE`` / samples, cumulative ``_bucket`` series with
  ``le`` labels) scrapable by an actual Prometheus server;
* :meth:`MetricsRegistry.to_dict` — a JSON-friendly snapshot embedded in
  Chrome trace files by the CLI's ``--trace-out``.
"""

from __future__ import annotations

import json
import threading

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry",
           "DEFAULT_BUCKETS", "histogram_quantile", "counter", "gauge",
           "histogram", "get_registry", "install_registry",
           "uninstall_registry"]

#: Prometheus-style default histogram buckets (upper bounds).
DEFAULT_BUCKETS = (0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5,
                   5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 500.0, 1000.0)


def _label_string(labels: dict[str, str]) -> str:
    if not labels:
        return ""
    inner = ",".join(f'{k}="{v}"' for k, v in sorted(labels.items()))
    return "{" + inner + "}"


def _fmt(value: float) -> str:
    """Render a sample value the way Prometheus clients do."""
    if value == float("inf"):
        return "+Inf"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def histogram_quantile(buckets, cumulative, count: int,
                       q: float) -> float:
    """Quantile over cumulative bucket counts (shared with the SLO engine).

    Edge cases are pinned, not emergent:

    * ``count == 0`` → ``nan`` (no data is not a number);
    * ``q == 0`` → the lower edge of the first *non-empty* bucket
      (``0.0`` when that is the first bucket) — never the upper bound of
      an empty leading bucket;
    * ``q == 1`` → the upper bound of the bucket holding the final
      observation;
    * observations past the last finite bound (the implicit ``+Inf``
      bucket) clamp to the last finite bound, PromQL-style — including
      the all-in-overflow case, where every quantile returns it.

    Within the selected bucket the value is linearly interpolated;
    empty buckets are skipped so the quantile never lands on a bound
    no observation reached.
    """
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"quantile must be in [0, 1], got {q}")
    if count <= 0:
        return float("nan")
    rank = q * count
    prev = 0
    for i, (bound, cum) in enumerate(zip(buckets, cumulative)):
        in_bucket = cum - prev
        if in_bucket > 0 and cum >= rank:
            lower = buckets[i - 1] if i else 0.0
            frac = (rank - prev) / in_bucket
            return lower + (bound - lower) * frac
        prev = cum
    return float(buckets[-1])


class _Metric:
    """Shared name/description/labels plumbing."""

    kind = "untyped"

    def __init__(self, name: str, description: str = "",
                 labels: dict[str, str] | None = None):
        self.name = name
        self.description = description
        self.labels = dict(labels or {})
        self._lock = threading.Lock()

    def _label_str(self) -> str:
        return _label_string(self.labels)


class Counter(_Metric):
    """Monotonically increasing value (events, errors, seconds of work)."""

    kind = "counter"

    def __init__(self, name: str, description: str = "",
                 labels: dict[str, str] | None = None):
        super().__init__(name, description, labels)
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        with self._lock:
            self.value += amount

    def samples(self) -> list[tuple[str, str, float]]:
        return [(self.name, self._label_str(), self.snapshot())]

    def snapshot(self):
        with self._lock:
            return self.value


class Gauge(_Metric):
    """Value that can go up and down (loss, lr, queue depth)."""

    kind = "gauge"

    def __init__(self, name: str, description: str = "",
                 labels: dict[str, str] | None = None):
        super().__init__(name, description, labels)
        self.value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)

    def samples(self) -> list[tuple[str, str, float]]:
        return [(self.name, self._label_str(), self.snapshot())]

    def snapshot(self):
        with self._lock:
            return self.value


class Histogram(_Metric):
    """Distribution over fixed buckets (kernel durations, occupancies)."""

    kind = "histogram"

    def __init__(self, name: str, description: str = "",
                 buckets: tuple[float, ...] = DEFAULT_BUCKETS,
                 labels: dict[str, str] | None = None):
        super().__init__(name, description, labels)
        if not buckets or list(buckets) != sorted(buckets):
            raise ValueError("buckets must be a non-empty ascending tuple")
        self.buckets = tuple(float(b) for b in buckets)
        self.bucket_counts = [0] * len(self.buckets)
        self.count = 0
        self.sum = 0.0

    def observe(self, value: float) -> None:
        with self._lock:
            self.count += 1
            self.sum += value
            for i, bound in enumerate(self.buckets):
                if value <= bound:
                    self.bucket_counts[i] += 1
                    break

    def state(self) -> tuple[list[int], int, float]:
        """Consistent ``(cumulative_counts, count, sum)`` triple.

        Taken under the metric lock, so concurrent ``observe`` calls can
        never produce a torn read where ``count`` disagrees with the
        bucket counts (the SLO engine differences these snapshots, which
        makes torn reads show up as phantom latency spikes).
        """
        with self._lock:
            counts = list(self.bucket_counts)
            count, total = self.count, self.sum
        out, running = [], 0
        for c in counts:
            running += c
            out.append(running)
        return out, count, total

    def quantile(self, q: float) -> float:
        """Prometheus-style ``histogram_quantile`` over this histogram.

        Bucket-resolution accuracy only; serve latency summaries
        (p50/p99) accept that tradeoff for O(1) memory.  Edge-case
        conventions (empty → ``nan``, q=0 → lower edge of the first
        non-empty bucket, overflow clamps to the last finite bound) are
        documented on :func:`histogram_quantile`.
        """
        cumulative, count, _ = self.state()
        return histogram_quantile(self.buckets, cumulative, count, q)

    def cumulative_counts(self) -> list[int]:
        """Prometheus ``le`` semantics: count of observations <= bound."""
        return self.state()[0]

    def samples(self) -> list[tuple[str, str, float]]:
        cumulative, count, total = self.state()
        base = dict(self.labels)
        out = []
        for bound, cum in zip(self.buckets, cumulative):
            label_str = _label_string({**base, "le": _fmt(bound)})
            out.append((f"{self.name}_bucket", label_str, float(cum)))
        out.append((f"{self.name}_bucket",
                    _label_string({**base, "le": "+Inf"}),
                    float(count)))
        out.append((f"{self.name}_sum", self._label_str(), total))
        out.append((f"{self.name}_count", self._label_str(),
                    float(count)))
        return out

    def snapshot(self):
        with self._lock:
            return {"count": self.count, "sum": self.sum,
                    "buckets": {_fmt(b): c for b, c in
                                zip(self.buckets, self.bucket_counts)}}


class _NullMetric:
    """Accepts every metric method and does nothing (registry absent)."""

    __slots__ = ()

    def inc(self, amount: float = 1.0) -> None:
        pass

    def dec(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass


NULL_METRIC = _NullMetric()


class MetricsRegistry:
    """Get-or-create store keyed by (name, labels)."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: dict[tuple, _Metric] = {}

    def _get_or_create(self, cls, name: str, description: str,
                       labels: dict[str, str] | None, **kwargs) -> _Metric:
        key = (name, tuple(sorted((labels or {}).items())))
        with self._lock:
            metric = self._metrics.get(key)
            if metric is None:
                metric = cls(name, description, labels=labels, **kwargs)
                self._metrics[key] = metric
            elif not isinstance(metric, cls):
                raise TypeError(
                    f"metric {name!r} already registered as "
                    f"{metric.kind}, not {cls.kind}")
            return metric

    def counter(self, name: str, description: str = "",
                **labels: str) -> Counter:
        return self._get_or_create(Counter, name, description,
                                   labels or None)

    def gauge(self, name: str, description: str = "",
              **labels: str) -> Gauge:
        return self._get_or_create(Gauge, name, description, labels or None)

    def histogram(self, name: str, description: str = "",
                  buckets: tuple[float, ...] = DEFAULT_BUCKETS,
                  **labels: str) -> Histogram:
        return self._get_or_create(Histogram, name, description,
                                   labels or None, buckets=buckets)

    def __len__(self) -> int:
        with self._lock:
            return len(self._metrics)

    def __iter__(self):
        # snapshot under the lock: a concurrent _get_or_create during a
        # scrape must not raise "dict changed size during iteration"
        with self._lock:
            metrics = list(self._metrics.values())
        return iter(sorted(metrics,
                           key=lambda m: (m.name, m._label_str())))

    # -- exposition ------------------------------------------------------ #
    def to_prometheus(self) -> str:
        """Prometheus text exposition format, version 0.0.4."""
        lines: list[str] = []
        seen_headers: set[str] = set()
        for metric in self:
            if metric.name not in seen_headers:
                seen_headers.add(metric.name)
                if metric.description:
                    lines.append(f"# HELP {metric.name} "
                                 f"{metric.description}")
                lines.append(f"# TYPE {metric.name} {metric.kind}")
            for sample_name, label_str, value in metric.samples():
                lines.append(f"{sample_name}{label_str} {_fmt(value)}")
        return "\n".join(lines) + ("\n" if lines else "")

    def to_dict(self) -> dict:
        """JSON-friendly snapshot: name -> {kind, labels?, value}."""
        out: dict[str, list] = {}
        for metric in self:
            entry = {"kind": metric.kind, "value": metric.snapshot()}
            if metric.labels:
                entry["labels"] = dict(metric.labels)
            out.setdefault(metric.name, []).append(entry)
        return out

    def to_json(self, indent: int | None = None) -> str:
        return json.dumps(self.to_dict(), indent=indent)


# --------------------------------------------------------------------- #
# Global registry: None by default (instrumentation degrades to no-ops).
# --------------------------------------------------------------------- #
_registry: MetricsRegistry | None = None


def install_registry(registry: MetricsRegistry | None = None) \
        -> MetricsRegistry:
    global _registry
    # explicit None test: an empty registry is falsy (len 0) but valid
    _registry = registry if registry is not None else MetricsRegistry()
    return _registry


def uninstall_registry() -> None:
    global _registry
    _registry = None


def get_registry() -> MetricsRegistry | None:
    return _registry


def counter(name: str, description: str = "", **labels: str):
    """Global-registry counter handle (null metric when obs is off)."""
    reg = _registry
    if reg is None:
        return NULL_METRIC
    return reg.counter(name, description, **labels)


def gauge(name: str, description: str = "", **labels: str):
    """Global-registry gauge handle (null metric when obs is off)."""
    reg = _registry
    if reg is None:
        return NULL_METRIC
    return reg.gauge(name, description, **labels)


def histogram(name: str, description: str = "",
              buckets: tuple[float, ...] = DEFAULT_BUCKETS,
              **labels: str):
    """Global-registry histogram handle (null metric when obs is off)."""
    reg = _registry
    if reg is None:
        return NULL_METRIC
    return reg.histogram(name, description, buckets=buckets, **labels)
