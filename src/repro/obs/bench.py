"""Observability overhead + gate benchmarks (``BENCH_obs.json``).

Observability that taxes the serving path gets turned off in production,
so the tax is itself a gated benchmark:

* **tracing_overhead** — warm cache-hit serve throughput in three
  configurations: the untraced baseline (flight recorder off,
  observability off — no per-request context at all), the default
  instrumented-but-off path (flight recorder on, tracer uninstalled),
  and fully traced.  The gate holds the default path within 2% of the
  baseline — the "pay only when observed" contract of PR 1, extended to
  the request-context layer.
* **flight** — the flight recorder ring stays bounded at capacity under
  a flood, while still recording every request.
* **slo** — a deterministic healthy serve workload passes
  ``repro slo --check`` (every default objective met), and a synthetic
  degraded window correctly fails it (burn rate > 1), so the gate
  guards both directions.
* **lockwatch** — the ``repro.lint.sanitizer`` factories are free when
  no watch is installed (a factory-made lock within 2% of a raw
  ``threading.Lock``), and an instrumented serve workload records
  acquisitions with zero lock-order inversions and no acquisition edges
  missing from the static C003 graph (see ``docs/concurrency.md``).

Merged into ``repro bench --check`` via
:func:`repro.perf.bench.run_benchmarks`; standalone via
``repro obs-bench``.
"""

from __future__ import annotations

import os

from ..gpu import SIMULATOR_VERSION, get_device
from ..models import ModelConfig, build_model
from ..perf.bench import BENCH_VERSION
from ..serve.service import PredictorService
from . import observed
from .context import reset_ids
from .metrics import MetricsRegistry
from .slo import SLOEngine, SLOSpec, default_serve_slos

__all__ = ["run_obs_benchmarks", "evaluate_obs_gates",
           "format_obs_summary"]

#: tracer-disabled serve throughput must stay within 2% of untraced
_OVERHEAD_BUDGET = 0.02


def _service_model(seed: int = 7):
    from ..core import DNNOccu, DNNOccuConfig
    return DNNOccu(DNNOccuConfig(hidden=32, num_heads=4), seed=seed)


def bench_tracing_overhead(scale: float = 1.0) -> dict:
    """Warm cache-hit predict cost: baseline vs flight-on vs traced.

    The overhead under test is a few microseconds on a ~150µs request —
    far below run-to-run clock drift, so block timing is hopeless.  Each
    pass times baseline and instrumented services *call-by-call
    interleaved* and compares per-config medians within the pass (GC
    paused while timing); the gate takes the best of several passes.
    The traced configuration is measured the same way in one extra pass
    against its own in-pass baseline (reported, not gated).
    """
    import gc
    import time

    device = get_device("A100")
    model = _service_model()
    graph = build_model("alexnet", ModelConfig(batch_size=16))
    pairs = max(300, int(round(700 * scale)))
    passes = 3

    def timed_pair(base, inst) -> tuple[float, float]:
        tb: list[float] = []
        ti: list[float] = []
        pc = time.perf_counter
        gc_was = gc.isenabled()
        gc.disable()
        try:
            for _ in range(pairs):
                t0 = pc()
                base.predict(graph)
                t1 = pc()
                inst.predict(graph)
                t2 = pc()
                tb.append(t1 - t0)
                ti.append(t2 - t1)
        finally:
            if gc_was:
                gc.enable()
        tb.sort()
        ti.sort()
        return tb[pairs // 2], ti[pairs // 2]

    with PredictorService(model, device, flight_capacity=0) as base, \
            PredictorService(model, device) as inst:
        base.predict(graph)  # populate the result caches
        inst.predict(graph)
        baseline_s = off_s = float("inf")
        off_overhead = float("inf")
        for _ in range(passes):
            b, o = timed_pair(base, inst)
            if o / b - 1.0 < off_overhead:
                off_overhead = o / b - 1.0
                baseline_s, off_s = b, o
        with observed():
            # both configs trace here (observability is global), so the
            # traced cost is read against the untraced baseline median
            _on_base_s, on_s = timed_pair(base, inst)

    return {
        "pairs": pairs, "passes": passes,
        "baseline_s": baseline_s,
        "tracing_off_s": off_s,
        "tracing_on_s": on_s,
        "baseline_predictions_per_s": 1.0 / baseline_s,
        "tracing_off_predictions_per_s": 1.0 / off_s,
        "tracing_on_predictions_per_s": 1.0 / on_s,
        "off_overhead": off_overhead,
        "on_overhead": on_s / baseline_s - 1.0,
        "overhead_budget": _OVERHEAD_BUDGET,
    }


def bench_flight(scale: float = 1.0) -> dict:
    """Ring-bound invariant: capacity-limited, nothing lost en route."""
    device = get_device("A100")
    model = _service_model()
    graph = build_model("lenet", ModelConfig(batch_size=8))
    capacity = 64
    requests = max(200, int(round(400 * scale)))

    with PredictorService(model, device,
                          flight_capacity=capacity) as svc:
        for _ in range(requests):
            svc.predict(graph)
        recorder = svc.flight
        records = recorder.records()

    return {
        "capacity": capacity, "requests": requests,
        "in_ring": len(records),
        "recorded_total": recorder.total,
        "bounded": len(records) == capacity,
        "complete": recorder.total >= requests,
        "newest_is_cache_hit": bool(records)
        and records[-1].cache == "result_hit",
    }


def bench_slo(scale: float = 1.0) -> dict:
    """Healthy workload passes the default SLOs; degraded one fails."""
    device = get_device("A100")
    model = _service_model()
    graphs = [build_model(n, ModelConfig(batch_size=bs))
              for n in ("lenet", "alexnet", "rnn")
              for bs in (4, 8)]
    requests = max(30, int(round(60 * scale)))

    reset_ids()
    with observed() as (_tracer, registry):
        engine = SLOEngine(registry)
        engine.snapshot(now=0.0)
        with PredictorService(model, device) as svc:
            for i in range(requests):
                svc.predict(graphs[i % len(graphs)])
        engine.snapshot(now=30.0)
        healthy_ok, statuses = engine.check(now=30.0)

    # Degraded direction: a synthetic registry where a third of the
    # requests shed must fail the 5% shed-rate objective.
    bad_registry = MetricsRegistry()
    bad_registry.counter("serve_requests_total").inc(300)
    bad_registry.counter("serve_shed_total").inc(100)
    bad_engine = SLOEngine(bad_registry, specs=(
        SLOSpec(name="serve-shed-rate", kind="ratio", objective=0.05,
                bad_counter="serve_shed_total"),))
    bad_engine.snapshot(now=0.0)
    degraded_ok, degraded = bad_engine.check(now=0.0)

    return {
        "requests": requests,
        "objectives": [s.spec.name for s in statuses],
        "healthy": {s.spec.name: {"value": s.value, "ok": s.ok,
                                  "burn_rate": s.burn_rate}
                    for s in statuses},
        "healthy_ok": healthy_ok,
        "degraded_value": degraded[0].value,
        "degraded_burn_rate": degraded[0].burn_rate,
        "degraded_detected": not degraded_ok,
    }


def bench_lockwatch(scale: float = 1.0) -> dict:
    """Sanitizer contract: free when off, observant and clean when on.

    * **off** — with no watch installed the ``new_lock`` factory returns
      a plain ``threading.Lock``, so an acquire/release loop through the
      factory-made lock must stay within 2% of a raw one (interleaved
      in-pass medians, same methodology as :func:`bench_tracing_overhead`
      — this guards against the factories ever growing an always-on
      wrapper).
    * **on** — a serve workload under an installed ``LockWatch`` must be
      observed (acquisitions recorded), show zero lock-order inversions,
      and every observed acquisition edge must appear in the static C003
      graph (``repro.lint.static_acquisition_graph``).
    """
    import gc
    import threading
    import time

    from ..lint.runner import static_acquisition_graph
    from ..lint.sanitizer import (LockWatch, install_watch, new_lock,
                                  uninstall_watch)

    prior = uninstall_watch()
    try:
        plain = threading.Lock()
        factory = new_lock("bench_lockwatch_off")
        samples = max(200, int(round(400 * scale)))
        ops = 200
        passes = 3

        def timed_pair() -> tuple[float, float]:
            tb: list[float] = []
            tf: list[float] = []
            pc = time.perf_counter
            gc_was = gc.isenabled()
            gc.disable()
            try:
                for _ in range(samples):
                    t0 = pc()
                    for _ in range(ops):
                        plain.acquire()
                        plain.release()
                    t1 = pc()
                    for _ in range(ops):
                        factory.acquire()
                        factory.release()
                    t2 = pc()
                    tb.append(t1 - t0)
                    tf.append(t2 - t1)
            finally:
                if gc_was:
                    gc.enable()
            tb.sort()
            tf.sort()
            return tb[samples // 2], tf[samples // 2]

        baseline_s = off_s = float("inf")
        off_overhead = float("inf")
        for _ in range(passes):
            b, o = timed_pair()
            if o / b - 1.0 < off_overhead:
                off_overhead = o / b - 1.0
                baseline_s, off_s = b, o

        watch = LockWatch()
        install_watch(watch)
        try:
            device = get_device("A100")
            model = _service_model()
            graphs = [build_model(n, ModelConfig(batch_size=8))
                      for n in ("lenet", "alexnet")]
            requests = max(40, int(round(80 * scale)))
            with PredictorService(model, device) as svc:
                for i in range(requests):
                    svc.predict(graphs[i % len(graphs)])
                    svc.stats()
            inversions = watch.inversions()
            observed_edges = set(watch.edges())
            acquisitions = sum(watch.acquisitions().values())
        finally:
            uninstall_watch()
        static_edges = static_acquisition_graph()
    finally:
        if prior is not None:
            install_watch(prior)

    return {
        "samples": samples, "ops_per_sample": ops, "passes": passes,
        "factory_is_plain_lock": type(factory) is type(plain),
        "baseline_s": baseline_s,
        "factory_off_s": off_s,
        "off_overhead": off_overhead,
        "overhead_budget": _OVERHEAD_BUDGET,
        "requests": requests,
        "acquisitions": acquisitions,
        "inversions": [sorted(c) for c in inversions],
        "observed_edges": sorted(map(list, observed_edges)),
        "novel_edges": sorted(map(list,
                                  observed_edges - static_edges)),
    }


def run_obs_benchmarks(scale: float = 1.0) -> dict:
    """Run every obs suite; returns the ``BENCH_obs.json`` document."""
    results = {
        "meta": {
            "bench_version": BENCH_VERSION,
            "simulator_version": SIMULATOR_VERSION,
            "cpu_count": os.cpu_count(),
            "scale": scale,
        },
        "tracing_overhead": bench_tracing_overhead(scale),
        "flight": bench_flight(scale),
        "slo": bench_slo(scale),
        "lockwatch": bench_lockwatch(scale),
    }
    results["gates"] = evaluate_obs_gates(results)
    return results


def evaluate_obs_gates(results: dict) -> dict:
    """The obs acceptance gates over a benchmark document."""
    overhead = results["tracing_overhead"]
    flight = results["flight"]
    slo = results["slo"]
    lw = results["lockwatch"]
    return {
        "obs_tracing_off_overhead_2pct":
            overhead["off_overhead"] <= _OVERHEAD_BUDGET,
        "obs_flight_bounded": bool(flight["bounded"]
                                   and flight["complete"]),
        "obs_slo_check": bool(slo["healthy_ok"]
                              and slo["degraded_detected"]),
        "obs_lockwatch_off_overhead_2pct": bool(
            lw["factory_is_plain_lock"]
            and lw["off_overhead"] <= _OVERHEAD_BUDGET),
        "obs_lockwatch_clean": bool(lw["acquisitions"] > 0
                                    and not lw["inversions"]
                                    and not lw["novel_edges"]),
    }


def format_obs_summary(results: dict) -> str:
    """Human-readable digest of an obs benchmark document."""
    o, f, s = (results["tracing_overhead"], results["flight"],
               results["slo"])
    lines = [
        f"overhead: baseline {o['baseline_predictions_per_s']:,.0f}/s | "
        f"tracing off {o['tracing_off_predictions_per_s']:,.0f}/s "
        f"({100 * o['off_overhead']:+.2f}%) | on "
        f"{o['tracing_on_predictions_per_s']:,.0f}/s "
        f"({100 * o['on_overhead']:+.2f}%)",
        f"flight  : {f['recorded_total']} records through a "
        f"{f['capacity']}-slot ring, {f['in_ring']} retained "
        f"(bounded: {f['bounded']})",
        f"slo     : healthy workload ok={s['healthy_ok']}, degraded "
        f"shed-rate {s['degraded_value']:.2f} detected="
        f"{s['degraded_detected']} (burn {s['degraded_burn_rate']:.1f})",
    ]
    lw = results["lockwatch"]
    lines.append(
        f"lockwatch: off overhead {100 * lw['off_overhead']:+.2f}% | "
        f"{lw['acquisitions']} acquisitions observed, "
        f"{len(lw['inversions'])} inversions, "
        f"{len(lw['novel_edges'])} novel edges")
    lines.append("gates   : " + "  ".join(
        f"{k}={'PASS' if v else 'FAIL'}"
        for k, v in results["gates"].items()))
    return "\n".join(lines)
