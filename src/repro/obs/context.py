"""Request-scoped span context: ids that survive thread handoffs.

PR 1's tracer nests spans with a per-thread depth counter, which is
exactly wrong for the serving path: a request enters on the caller
thread, waits in the :class:`~repro.serve.batcher.MicroBatcher` queue,
and is *finished on the dispatcher thread* — so its spans land in two
disconnected lanes.  This module adds the missing causal glue:

* :class:`SpanContext` — immutable ``(trace_id, request_id,
  parent_span_id)`` triple identifying one logical request;
* a ``contextvars.ContextVar`` holding the current context, so every
  span opened inside :func:`request_scope` is stamped with the ids;
* :func:`capture_context` — snapshot the current context *plus the
  currently open span's id* at a handoff point (Ticket creation), and
  :func:`use_context` — re-attach it on the far side (dispatch), so the
  dispatcher-side spans parent to the request's root span and the whole
  lifecycle renders as one connected tree.

Ids are deterministic per process (``trace-000001`` / ``req-000001``
from a shared monotonic counter) — :func:`reset_ids` pins them for
tests.  Creating a scope costs two counter bumps and a contextvar set;
there is no clock read and no lock on the hot path.
"""

from __future__ import annotations

import contextlib
import contextvars
import itertools
from typing import NamedTuple, Optional

__all__ = ["SpanContext", "current_context", "request_scope",
           "use_context", "capture_context", "new_trace_id",
           "new_request_id", "new_request_seq", "reset_ids"]


class SpanContext(NamedTuple):
    """Identity of one logical request as it crosses threads.

    A NamedTuple, not a dataclass: request scopes sit on the serve fast
    path and creation cost is part of the <=2% tracing-overhead budget.
    ``parent_span_id`` is only populated by :func:`capture_context` at a
    handoff point: it names the span that was open where the context was
    captured, so spans opened under :func:`use_context` on another
    thread can parent to it.
    """

    trace_id: str
    request_id: str
    parent_span_id: Optional[int] = None


_current: contextvars.ContextVar[SpanContext | None] = \
    contextvars.ContextVar("repro_span_context", default=None)

# no lock: next() on itertools.count is a single GIL-atomic bytecode
_trace_ids = itertools.count(1)
_request_ids = itertools.count(1)


def new_trace_id() -> str:
    return f"trace-{next(_trace_ids):06d}"


def new_request_id() -> str:
    return f"req-{next(_request_ids):06d}"


def new_request_seq() -> int:
    """Raw request sequence number, same counter as :func:`new_request_id`.

    For writers that defer the ``req-NNNNNN`` formatting off their hot
    path (the flight recorder formats at read time).
    """
    return next(_request_ids)


def reset_ids(start: int = 1) -> None:
    """Pin the id counters (deterministic ids in tests and benches)."""
    global _trace_ids, _request_ids
    _trace_ids = itertools.count(start)
    _request_ids = itertools.count(start)


def current_context() -> SpanContext | None:
    """The context governing spans opened on this thread, if any."""
    return _current.get()


@contextlib.contextmanager
def request_scope(trace_id: str | None = None,
                  request_id: str | None = None):
    """Open a request scope: mints a request id, inherits the trace id.

    Nested scopes share the ambient trace id (a ``predict_many`` call or
    a simulate run is one trace containing many requests); a scope with
    no ambient context starts a fresh trace.  Yields the
    :class:`SpanContext`.
    """
    ambient = _current.get()
    ctx = SpanContext(
        trace_id=trace_id or (ambient.trace_id if ambient is not None
                              else new_trace_id()),
        request_id=request_id or new_request_id())
    token = _current.set(ctx)
    try:
        yield ctx
    finally:
        _current.reset(token)


@contextlib.contextmanager
def use_context(ctx: SpanContext | None):
    """Re-attach a captured context (the dispatch side of a handoff)."""
    token = _current.set(ctx)
    try:
        yield ctx
    finally:
        _current.reset(token)


def capture_context() -> SpanContext | None:
    """Snapshot the current context for a cross-thread handoff.

    Returns the ambient :class:`SpanContext` with ``parent_span_id`` set
    to the innermost span currently open on *this* thread (so the far
    side's spans parent to it), or ``None`` when no request scope is
    active — handoffs outside a scope stay untraced.
    """
    ctx = _current.get()
    if ctx is None:
        return None
    from .tracing import get_tracer  # import here: tracing imports us
    tracer = get_tracer()
    span_id = tracer.current_span_id() if tracer is not None else None
    if span_id is None or span_id == ctx.parent_span_id:
        return ctx
    return ctx._replace(parent_span_id=span_id)
