"""Trace summarization: the terminal-side view of a saved Chrome trace.

``repro obs trace.json`` needs answers without opening Perfetto: where
did the time go (top spans by *self* time — duration minus time spent in
child spans), and what did the metrics end with.  Works on any file in
the Chrome trace-event format, including the kernel timelines written by
``repro trace`` and the observability traces written by ``--trace-out``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass

__all__ = ["SpanStat", "load_trace_file", "span_stats", "summarize_trace",
           "format_metrics_table", "request_groups", "span_tree",
           "format_request_summary"]


@dataclass
class SpanStat:
    """Aggregate over all events sharing one span name."""

    name: str
    count: int
    total_us: float
    self_us: float

    @property
    def mean_us(self) -> float:
        return self.total_us / self.count if self.count else 0.0


def load_trace_file(path: str) -> dict:
    """Read a Chrome trace file; accepts the object or bare-array form."""
    with open(path) as fh:
        data = json.load(fh)
    if isinstance(data, list):  # bare traceEvents array is legal too
        data = {"traceEvents": data}
    if "traceEvents" not in data:
        raise ValueError(f"{path}: not a Chrome trace-event file "
                         "(no traceEvents key)")
    return data


def span_stats(trace: dict) -> list[SpanStat]:
    """Per-name totals with self-time, sorted by self-time descending.

    Self-time is computed per (pid, tid) lane with an interval-nesting
    stack: an event is a child of the innermost open event that contains
    it, and a parent's self-time excludes its direct children.
    """
    lanes: dict[tuple, list[dict]] = {}
    for ev in trace.get("traceEvents", ()):
        if ev.get("ph") != "X":
            continue
        lanes.setdefault((ev.get("pid", 0), ev.get("tid", 0)),
                         []).append(ev)

    totals: dict[str, SpanStat] = {}
    for events in lanes.values():
        events.sort(key=lambda e: (e["ts"], -e.get("dur", 0.0)))
        # stack of (end_ts, child_duration_accumulator index into opened)
        stack: list[dict] = []
        child_dur: dict[int, float] = {}
        for ev in events:
            ts, dur = float(ev["ts"]), float(ev.get("dur", 0.0))
            while stack and \
                    float(stack[-1]["ts"]) + float(
                        stack[-1].get("dur", 0.0)) <= ts:
                stack.pop()
            if stack:
                child_dur[id(stack[-1])] = \
                    child_dur.get(id(stack[-1]), 0.0) + dur
            stack.append(ev)
        for ev in events:
            ts, dur = float(ev["ts"]), float(ev.get("dur", 0.0))
            name = str(ev.get("name", "?"))
            self_us = max(0.0, dur - child_dur.get(id(ev), 0.0))
            stat = totals.get(name)
            if stat is None:
                totals[name] = SpanStat(name, 1, dur, self_us)
            else:
                stat.count += 1
                stat.total_us += dur
                stat.self_us += self_us
    return sorted(totals.values(), key=lambda s: -s.self_us)


def format_metrics_table(metrics: dict) -> str:
    """Render a ``MetricsRegistry.to_dict`` snapshot as an aligned table."""
    rows: list[tuple[str, str, str]] = []
    for name in sorted(metrics):
        for entry in metrics[name]:
            labels = entry.get("labels") or {}
            label_str = ",".join(f"{k}={v}"
                                 for k, v in sorted(labels.items()))
            shown = f"{name}{{{label_str}}}" if label_str else name
            value = entry["value"]
            if entry["kind"] == "histogram":
                mean = value["sum"] / value["count"] if value["count"] \
                    else 0.0
                text = (f"count={value['count']} sum={value['sum']:.6g} "
                        f"mean={mean:.6g}")
            else:
                text = f"{value:.6g}"
            rows.append((shown, entry["kind"], text))
    if not rows:
        return "(no metrics recorded)"
    width = max(len(r[0]) for r in rows)
    return "\n".join(f"  {name:<{width}s}  {kind:<9s}  {text}"
                     for name, kind, text in rows)


def request_groups(trace: dict) -> dict[str, list[dict]]:
    """Events grouped by ``args.request_id``, each sorted by start time.

    Only spans recorded inside a request scope carry the id (see
    :mod:`repro.obs.context`); context-free spans are not grouped.
    """
    groups: dict[str, list[dict]] = {}
    for ev in trace.get("traceEvents", ()):
        if ev.get("ph") != "X":
            continue
        rid = (ev.get("args") or {}).get("request_id")
        if rid is not None:
            groups.setdefault(str(rid), []).append(ev)
    for events in groups.values():
        events.sort(key=lambda e: float(e.get("ts", 0.0)))
    return groups


def span_tree(events) -> dict:
    """Parent/child structure of one request's events, by span id.

    A *root* is an event whose ``parent_span_id`` is absent or resolves
    outside the group (the enclosing non-request span, e.g. a
    ``predict_many`` or simulate wrapper).  ``connected`` is the
    acceptance property: exactly one root, every other span's parent in
    the group — i.e. caller-thread and dispatcher-thread spans stitched
    into a single tree.
    """
    by_id: dict[int, dict] = {}
    for ev in events:
        sid = (ev.get("args") or {}).get("span_id")
        if sid is not None:
            by_id[int(sid)] = ev
    roots: list[int] = []
    children: dict[int, list[int]] = {}
    for sid, ev in sorted(by_id.items()):
        parent = (ev.get("args") or {}).get("parent_span_id")
        if parent is not None and int(parent) in by_id:
            children.setdefault(int(parent), []).append(sid)
        else:
            roots.append(sid)
    return {"roots": roots, "children": children,
            "spans": sorted(by_id),
            "connected": len(roots) == 1 and len(by_id) > 0}


def format_request_summary(trace: dict, limit: int = 10) -> str:
    """Per-request view: one line per request, newest requests last.

    Shows each request's span tree rendered root-first with
    indentation, flagging any request whose spans do not form a single
    connected tree (a broken context handoff).
    """
    groups = request_groups(trace)
    if not groups:
        return "(no request-scoped spans in trace)"
    lines = [f"requests: {len(groups)} traced"
             f" (showing last {min(limit, len(groups))})"]
    shown = sorted(groups.items(),
                   key=lambda kv: float(kv[1][0].get("ts", 0.0)))[-limit:]
    for rid, events in shown:
        tree = span_tree(events)
        trace_id = (events[0].get("args") or {}).get("trace_id", "?")
        flag = "" if tree["connected"] else "  [DISCONNECTED]"
        lines.append(f"  {rid} ({trace_id}, {len(events)} spans){flag}")
        by_id = {int((e.get('args') or {})['span_id']): e
                 for e in events
                 if (e.get("args") or {}).get("span_id") is not None}

        def _render(sid: int, indent: int) -> None:
            ev = by_id[sid]
            dur = float(ev.get("dur", 0.0))
            lines.append(f"    {'  ' * indent}{ev.get('name', '?')} "
                         f"({dur / 1e3:.3f} ms)")
            for child in tree["children"].get(sid, ()):
                _render(child, indent + 1)

        for root in tree["roots"]:
            _render(root, 0)
    return "\n".join(lines)


def summarize_trace(trace: dict, top: int = 15) -> str:
    """Human-readable summary: header, top spans by self-time, metrics."""
    events = [e for e in trace.get("traceEvents", ())
              if e.get("ph") == "X"]
    other = trace.get("otherData", {}) or {}
    header_bits = [f"{len(events)} events"]
    for key in ("model", "device"):
        if key in other:
            header_bits.append(f"{key}={other[key]}")
    if events:
        t_lo = min(float(e["ts"]) for e in events)
        t_hi = max(float(e["ts"]) + float(e.get("dur", 0.0))
                   for e in events)
        header_bits.append(f"span {t_lo / 1e3:.3f}..{t_hi / 1e3:.3f} ms")
    lines = ["trace: " + ", ".join(header_bits)]

    stats = span_stats(trace)[:top]
    if stats:
        lines.append("")
        lines.append(f"  {'span':<36s} {'count':>7s} {'total ms':>10s} "
                     f"{'self ms':>10s} {'mean us':>10s}")
        for s in stats:
            lines.append(
                f"  {s.name:<36.36s} {s.count:7d} "
                f"{s.total_us / 1e3:10.3f} {s.self_us / 1e3:10.3f} "
                f"{s.mean_us:10.1f}")

    metrics = other.get("metrics")
    if metrics:
        lines.append("")
        lines.append("metrics:")
        lines.append(format_metrics_table(metrics))

    groups = request_groups(trace)
    if groups:
        broken = sum(1 for evs in groups.values()
                     if not span_tree(evs)["connected"])
        note = f", {broken} disconnected" if broken else ""
        lines.append("")
        lines.append(f"requests: {len(groups)} traced{note} "
                     "(--requests N expands per-request trees)")
    flight = other.get("flight")
    if flight:
        lines.append(f"flight recorder: {len(flight)} request records "
                     "(--requests N prints them)")
    return "\n".join(lines)
