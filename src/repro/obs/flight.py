"""Flight recorder: a bounded ring of the last N serve request records.

Traces answer "where did the time go" and metrics answer "how much", but
neither answers the on-call question "what did the last hundred requests
actually do?"  The flight recorder does: every completed
:class:`~repro.serve.PredictorService` request appends one compact
:class:`FlightRecord` (ids, timing, batch size, cache outcome, fallback
tier, the prediction itself), and ``repro obs --requests`` prints the
tail next to the span tree it belongs to.

The ring is always on (the service records by default, tracer or not),
so its write path is budgeted like the tracer's no-op path: the ring is
a ``deque(maxlen=N)`` written without a lock — ``deque.append`` and
``itertools.count`` steps are single GIL-atomic operations, and readers
snapshot with ``list(deque)``.  Writers may append a bare field tuple
(and an integer request sequence number) instead of a finished
:class:`FlightRecord`; readers coerce on the way out, keeping NamedTuple
construction and id formatting off the serving path.
"""

from __future__ import annotations

import itertools
from collections import deque
from typing import NamedTuple, Optional

__all__ = ["FlightRecord", "FlightRecorder", "format_flight_table"]


class FlightRecord(NamedTuple):
    """One completed request, as the service saw it end-to-end."""

    request_id: str
    #: "-" when the request ran without a tracer (ids still minted for
    #: the ring, but there is no trace to correlate with)
    trace_id: str
    graph: str
    device: str
    #: "served" (cache or dispatch), "shed" (fallback), "error"
    outcome: str
    #: "result_hit" | "encoding_hit" | "miss" — deepest cache consulted
    cache: str
    latency_s: float
    prediction: Optional[float]
    #: flush size the request was dispatched in; 0 = never batched
    #: (cache hit or shed)
    batch_size: int = 0
    fallback_tier: Optional[str] = None
    error: Optional[str] = None


class FlightRecorder:
    """Bounded ring buffer of :class:`FlightRecord` (thread-safe, lockless)."""

    def __init__(self, capacity: int = 256):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = int(capacity)
        self._records: deque[FlightRecord] = deque(maxlen=self.capacity)
        self._written = itertools.count(1)
        self._total = 0

    def record(self, rec) -> None:
        """Append a :class:`FlightRecord` or a bare 11-field tuple."""
        # conc: lockfree-ok -- deque.append with maxlen and next() on
        # itertools.count are single GIL-atomic operations; readers
        # snapshot via list(self._records) and never see a torn state
        self._records.append(rec)
        self._total = next(self._written)

    @staticmethod
    def _coerce(raw) -> FlightRecord:
        rec = raw if isinstance(raw, FlightRecord) \
            else FlightRecord._make(raw)
        if isinstance(rec.request_id, int):
            rec = rec._replace(request_id=f"req-{rec.request_id:06d}")
        return rec

    def records(self) -> list[FlightRecord]:
        """Oldest-to-newest snapshot of the ring."""
        return [self._coerce(r) for r in self._records]

    def to_dicts(self) -> list[dict]:
        """JSON-friendly form (rides in Chrome traces' ``otherData``)."""
        return [r._asdict() for r in self.records()]

    def summary(self) -> dict:
        """Counts by outcome and cache over the current ring contents."""
        by_outcome: dict[str, int] = {}
        by_cache: dict[str, int] = {}
        for rec in self.records():
            by_outcome[rec.outcome] = by_outcome.get(rec.outcome, 0) + 1
            by_cache[rec.cache] = by_cache.get(rec.cache, 0) + 1
        return {"recorded_total": self.total, "in_ring": len(self),
                "by_outcome": by_outcome, "by_cache": by_cache}

    @property
    def total(self) -> int:
        """Records ever written (>= len(self) once the ring wraps)."""
        return self._total

    def __len__(self) -> int:
        return len(self._records)

    def clear(self) -> None:
        self._records.clear()


def format_flight_table(records, limit: int = 20) -> str:
    """Aligned text table of the newest ``limit`` records.

    Accepts :class:`FlightRecord` objects or their dict form (as loaded
    back out of a trace file's ``otherData.flight``).
    """
    rows = []
    for rec in list(records)[-limit:]:
        d = rec if isinstance(rec, dict) else rec._asdict()
        pred = d.get("prediction")
        detail = d.get("fallback_tier") or d.get("error") or ""
        rows.append((
            str(d.get("request_id", "?")),
            str(d.get("graph", "?"))[:18],
            str(d.get("outcome", "?")),
            str(d.get("cache", "?")),
            f"{1e3 * float(d.get('latency_s') or 0.0):.3f}",
            str(int(d.get("batch_size") or 0)),
            "-" if pred is None else f"{float(pred):.4f}",
            str(detail),
        ))
    if not rows:
        return "(flight recorder empty)"
    header = ("request", "graph", "outcome", "cache", "ms", "batch",
              "pred", "detail")
    widths = [max(len(header[i]), *(len(r[i]) for r in rows))
              for i in range(len(header))]
    lines = ["  " + "  ".join(h.ljust(w) for h, w in zip(header, widths))]
    for r in rows:
        lines.append("  " + "  ".join(c.ljust(w)
                                      for c, w in zip(r, widths)))
    return "\n".join(lines)
