"""Graph transforms: training-graph augmentation.

The Table I edge-type feature distinguishes *Forward* and *Backward* data
flow.  Inference graphs (the paper's prediction target) contain only
forward edges; :func:`add_backward_edges` derives the training-iteration
graph by mirroring every forward edge with a backward (gradient) edge —
useful for extending the predictor to training workloads.
"""

from __future__ import annotations

from .graph import ComputationGraph
from .node import DataEdge, OpNode

__all__ = ["add_backward_edges"]


def add_backward_edges(graph: ComputationGraph,
                       name: str = "") -> ComputationGraph:
    """Return a copy of ``graph`` with a backward edge mirroring each
    forward edge.

    The backward edge carries the gradient tensor, which has the shape of
    the forward activation it differentiates.  Note the result is not a
    DAG extension of the forward graph (gradients flow dst -> src), so the
    copy keeps backward edges as *annotations*: they connect src -> dst in
    the same direction (preserving acyclicity, as ONNX training exports
    do) but are typed ``"backward"`` for feature purposes.
    """
    out = ComputationGraph(name or f"{graph.name}_train")
    for node in graph.nodes.values():
        out.add_node(OpNode.from_dict(node.to_dict()))
    for edge in graph.edges:
        out.add_edge(DataEdge.from_dict(edge.to_dict()))
    for edge in graph.edges:
        out.add_edge(DataEdge(src=edge.src, dst=edge.dst,
                              tensor_shape=edge.tensor_shape,
                              edge_type="backward"))
    return out
