"""Fluent builder for computation graphs with automatic shape inference.

The model zoo (:mod:`repro.models`) constructs every Table II architecture
through this builder.  Each method creates an operator node, infers its
output shape, computes its FLOPs and workspace via :mod:`repro.graph.flops`,
and wires data-flow edges from its inputs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from .flops import op_flops, op_temp_bytes
from .graph import ComputationGraph
from .node import DataEdge, OpNode

__all__ = ["GraphBuilder", "TensorRef", "builder_emitted_ops",
           "EMITTER_METHODS"]

#: op type -> name of the :class:`GraphBuilder` method that emits it.
#: Populated by the ``@_emits`` decorator; the cross-registry coverage
#: pass (``repro lint --registries``, code R001) checks every entry of
#: ``OP_TYPES`` appears here, so the builder cannot silently lag the
#: operator vocabulary.
EMITTER_METHODS: dict[str, str] = {}


def _emits(*op_types: str):
    """Declare which op types a builder method can emit."""
    def deco(fn):
        for op in op_types:
            EMITTER_METHODS.setdefault(op, fn.__name__)
        return fn
    return deco


def builder_emitted_ops() -> frozenset[str]:
    """Every op type some :class:`GraphBuilder` method emits."""
    return frozenset(EMITTER_METHODS)


@dataclass(frozen=True)
class TensorRef:
    """Handle to a node's output tensor while building a graph."""

    node_id: int
    shape: tuple[int, ...]

    @property
    def numel(self) -> int:
        n = 1
        for s in self.shape:
            n *= s
        return n


def _pair(v) -> tuple[int, int]:
    return tuple(v) if isinstance(v, (tuple, list)) else (int(v), int(v))


def _conv_out(size: int, kernel: int, stride: int, padding: int) -> int:
    out = (size + 2 * padding - kernel) // stride + 1
    if out <= 0:
        raise ValueError(
            f"convolution produces non-positive spatial size "
            f"(in={size}, k={kernel}, s={stride}, p={padding})")
    return out


class GraphBuilder:
    """Accumulates nodes/edges and returns :class:`TensorRef` handles."""

    def __init__(self, name: str = ""):
        self.graph = ComputationGraph(name)
        self._next_id = 0

    # ------------------------------------------------------------------ #
    # Core node machinery
    # ------------------------------------------------------------------ #
    def _emit(self, op_type: str, inputs: Sequence[TensorRef],
              output_shape: tuple[int, ...], attrs: dict | None = None,
              name: str = "") -> TensorRef:
        attrs = dict(attrs or {})
        input_shapes = [tuple(r.shape) for r in inputs]
        flops = op_flops(op_type, attrs, input_shapes, output_shape)
        temp = op_temp_bytes(op_type, attrs, input_shapes, output_shape)
        node = OpNode(
            node_id=self._next_id,
            op_type=op_type,
            attrs=attrs,
            input_shapes=input_shapes,
            output_shape=tuple(output_shape),
            flops=flops,
            temp_bytes=temp,
            name=name or f"{op_type.lower()}_{self._next_id}",
        )
        self.graph.add_node(node)
        self._next_id += 1
        for ref in inputs:
            self.graph.add_edge(DataEdge(
                src=ref.node_id, dst=node.node_id,
                tensor_shape=tuple(ref.shape), edge_type="forward"))
        return TensorRef(node.node_id, tuple(output_shape))

    def finish(self) -> ComputationGraph:
        """Validate and return the built graph."""
        self.graph.validate()
        return self.graph

    # ------------------------------------------------------------------ #
    # Sources
    # ------------------------------------------------------------------ #
    @_emits("Input")
    def input(self, shape: Sequence[int], name: str = "input") -> TensorRef:
        return self._emit("Input", [], tuple(shape), name=name)

    # ------------------------------------------------------------------ #
    # Convolutions & pooling (NCHW)
    # ------------------------------------------------------------------ #
    @_emits("Conv2d", "DepthwiseConv2d")
    def conv2d(self, x: TensorRef, out_channels: int, kernel_size,
               stride=1, padding=0, groups: int = 1,
               name: str = "") -> TensorRef:
        n, c, h, w = x.shape
        r, s = _pair(kernel_size)
        sh, sw = _pair(stride)
        ph, pw = _pair(padding)
        if c % groups != 0 or out_channels % groups != 0:
            raise ValueError("channels must be divisible by groups")
        p = _conv_out(h, r, sh, ph)
        q = _conv_out(w, s, sw, pw)
        op = "DepthwiseConv2d" if groups == c and groups > 1 else "Conv2d"
        attrs = {"in_channels": c, "out_channels": out_channels,
                 "kernel_size": (r, s), "stride": (sh, sw),
                 "padding": (ph, pw), "groups": groups}
        return self._emit(op, [x], (n, out_channels, p, q), attrs, name)

    @_emits("MaxPool2d")
    def maxpool2d(self, x: TensorRef, kernel_size, stride=None,
                  padding=0) -> TensorRef:
        return self._pool("MaxPool2d", x, kernel_size, stride, padding)

    @_emits("AvgPool2d")
    def avgpool2d(self, x: TensorRef, kernel_size, stride=None,
                  padding=0) -> TensorRef:
        return self._pool("AvgPool2d", x, kernel_size, stride, padding)

    def _pool(self, op: str, x: TensorRef, kernel_size, stride,
              padding) -> TensorRef:
        n, c, h, w = x.shape
        r, s = _pair(kernel_size)
        sh, sw = _pair(stride if stride is not None else kernel_size)
        ph, pw = _pair(padding)
        p = _conv_out(h, r, sh, ph)
        q = _conv_out(w, s, sw, pw)
        attrs = {"kernel_size": (r, s), "stride": (sh, sw),
                 "padding": (ph, pw)}
        return self._emit(op, [x], (n, c, p, q), attrs)

    @_emits("GlobalAvgPool")
    def global_avgpool(self, x: TensorRef) -> TensorRef:
        n, c = x.shape[0], x.shape[1]
        return self._emit("GlobalAvgPool", [x], (n, c, 1, 1))

    @_emits("AdaptiveAvgPool2d")
    def adaptive_avgpool(self, x: TensorRef, out_hw) -> TensorRef:
        n, c = x.shape[0], x.shape[1]
        oh, ow = _pair(out_hw)
        return self._emit("AdaptiveAvgPool2d", [x], (n, c, oh, ow),
                          {"output_size": (oh, ow)})

    # ------------------------------------------------------------------ #
    # Normalization & activations
    # ------------------------------------------------------------------ #
    @_emits("BatchNorm2d")
    def batchnorm2d(self, x: TensorRef) -> TensorRef:
        return self._emit("BatchNorm2d", [x], x.shape,
                          {"num_features": x.shape[1]})

    @_emits("LayerNorm")
    def layernorm(self, x: TensorRef) -> TensorRef:
        return self._emit("LayerNorm", [x], x.shape,
                          {"normalized_shape": x.shape[-1]})

    @_emits("GroupNorm")
    def groupnorm(self, x: TensorRef, groups: int) -> TensorRef:
        return self._emit("GroupNorm", [x], x.shape, {"groups": groups})

    @_emits("ReLU")
    def relu(self, x: TensorRef) -> TensorRef:
        return self._emit("ReLU", [x], x.shape)

    @_emits("ReLU6")
    def relu6(self, x: TensorRef) -> TensorRef:
        return self._emit("ReLU6", [x], x.shape)

    @_emits("Erf")
    def erf(self, x: TensorRef) -> TensorRef:
        """Exact-GELU error function (the tanh-free formulation)."""
        return self._emit("Erf", [x], x.shape)

    @_emits("Identity")
    def identity(self, x: TensorRef) -> TensorRef:
        """Pass-through (a residual branch's no-op projection)."""
        return self._emit("Identity", [x], x.shape)

    @_emits("Sqrt")
    def sqrt(self, x: TensorRef) -> TensorRef:
        return self._emit("Sqrt", [x], x.shape)

    @_emits("Pow")
    def pow(self, x: TensorRef, exponent: float = 2.0) -> TensorRef:
        return self._emit("Pow", [x], x.shape, {"exponent": exponent})

    @_emits("GELU")
    def gelu(self, x: TensorRef) -> TensorRef:
        return self._emit("GELU", [x], x.shape)

    @_emits("SiLU")
    def silu(self, x: TensorRef) -> TensorRef:
        return self._emit("SiLU", [x], x.shape)

    @_emits("Sigmoid")
    def sigmoid(self, x: TensorRef) -> TensorRef:
        return self._emit("Sigmoid", [x], x.shape)

    @_emits("Tanh")
    def tanh(self, x: TensorRef) -> TensorRef:
        return self._emit("Tanh", [x], x.shape)

    @_emits("Softmax")
    def softmax(self, x: TensorRef, axis: int = -1) -> TensorRef:
        return self._emit("Softmax", [x], x.shape, {"axis": axis})

    # ------------------------------------------------------------------ #
    # Linear algebra
    # ------------------------------------------------------------------ #
    @_emits("Gemm")
    def linear(self, x: TensorRef, out_features: int,
               name: str = "") -> TensorRef:
        in_features = x.shape[-1]
        out_shape = x.shape[:-1] + (out_features,)
        attrs = {"in_features": in_features, "out_features": out_features}
        return self._emit("Gemm", [x], out_shape, attrs, name)

    @_emits("MatMul")
    def matmul(self, a: TensorRef, b: TensorRef) -> TensorRef:
        if a.shape[-1] != b.shape[-2]:
            raise ValueError(f"matmul shape mismatch {a.shape} @ {b.shape}")
        batch = a.shape[:-2]
        out_shape = batch + (a.shape[-2], b.shape[-1])
        return self._emit("MatMul", [a, b], out_shape,
                          {"reduce_dim": a.shape[-1]})

    # ------------------------------------------------------------------ #
    # Elementwise combiners & shape ops
    # ------------------------------------------------------------------ #
    @_emits("Add")
    def add(self, a: TensorRef, b: TensorRef) -> TensorRef:
        if a.shape != b.shape:
            raise ValueError(f"add shape mismatch {a.shape} vs {b.shape}")
        return self._emit("Add", [a, b], a.shape)

    @_emits("Mul")
    def mul(self, a: TensorRef, b: TensorRef) -> TensorRef:
        if a.shape != b.shape:
            raise ValueError(f"mul shape mismatch {a.shape} vs {b.shape}")
        return self._emit("Mul", [a, b], a.shape)

    @_emits("Div")
    def div(self, a: TensorRef, b: TensorRef) -> TensorRef:
        if a.shape != b.shape:
            raise ValueError(f"div shape mismatch {a.shape} vs {b.shape}")
        return self._emit("Div", [a, b], a.shape)

    @_emits("Scale")
    def scale(self, x: TensorRef) -> TensorRef:
        return self._emit("Scale", [x], x.shape)

    @_emits("Concat")
    def concat(self, xs: Sequence[TensorRef], axis: int) -> TensorRef:
        base = list(xs[0].shape)
        for x in xs[1:]:
            for i, (a, b) in enumerate(zip(base, x.shape)):
                if i != axis % len(base) and a != b:
                    raise ValueError("concat shapes disagree off-axis")
            base[axis] += x.shape[axis]
        return self._emit("Concat", list(xs), tuple(base), {"axis": axis})

    @_emits("Flatten")
    def flatten(self, x: TensorRef, start_dim: int = 1) -> TensorRef:
        keep = x.shape[:start_dim]
        rest = 1
        for s in x.shape[start_dim:]:
            rest *= s
        return self._emit("Flatten", [x], keep + (rest,),
                          {"start_dim": start_dim})

    @_emits("Reshape")
    def reshape(self, x: TensorRef, shape: Sequence[int]) -> TensorRef:
        shape = tuple(int(s) for s in shape)
        if x.numel != TensorRef(-1, shape).numel:
            raise ValueError(f"reshape {x.shape} -> {shape} changes numel")
        return self._emit("Reshape", [x], shape)

    @_emits("Transpose")
    def transpose(self, x: TensorRef, axes: Sequence[int]) -> TensorRef:
        out = tuple(x.shape[a] for a in axes)
        return self._emit("Transpose", [x], out, {"axes": tuple(axes)})

    @_emits("Slice")
    def slice(self, x: TensorRef, out_shape: Sequence[int]) -> TensorRef:
        return self._emit("Slice", [x], tuple(out_shape))

    @_emits("Split")
    def split(self, x: TensorRef, sections: int,
              axis: int) -> list[TensorRef]:
        """Split ``x`` into ``sections`` equal chunks along ``axis``.

        The IR is single-output, so a split lowers to one ``Split`` node
        per chunk, each consuming ``x`` (mirroring how multi-output ONNX
        ops are commonly normalized).
        """
        rank = len(x.shape)
        ax = axis % rank
        if x.shape[ax] % sections != 0:
            raise ValueError(
                f"axis {ax} extent {x.shape[ax]} not divisible into "
                f"{sections} sections")
        out = list(x.shape)
        out[ax] //= sections
        return [self._emit("Split", [x], tuple(out),
                           {"axis": ax, "sections": sections, "index": i})
                for i in range(sections)]

    @_emits("Pad")
    def pad(self, x: TensorRef, padding) -> TensorRef:
        """Zero-pad the spatial dims of an NCHW tensor."""
        n, c, h, w = x.shape
        ph, pw = _pair(padding)
        return self._emit("Pad", [x], (n, c, h + 2 * ph, w + 2 * pw),
                          {"padding": (ph, pw)})

    @_emits("PatchMerge")
    def patch_merge(self, x: TensorRef) -> TensorRef:
        """Swin-style 2x2 patch merge: (N, L, C) -> (N, L/4, 4C)."""
        n, l, c = x.shape
        if l % 4 != 0:
            raise ValueError(f"token count {l} not divisible by 4")
        return self._emit("PatchMerge", [x], (n, l // 4, 4 * c))

    @_emits("ReduceMean")
    def reduce_mean(self, x: TensorRef, axis: int) -> TensorRef:
        shape = list(x.shape)
        del shape[axis % len(shape)]
        return self._emit("ReduceMean", [x], tuple(shape), {"axis": axis})

    @_emits("Shift")
    def shift_window(self, x: TensorRef) -> TensorRef:
        """Swin-style cyclic shift (data movement only)."""
        return self._emit("Shift", [x], x.shape)

    # ------------------------------------------------------------------ #
    # Sequence operators
    # ------------------------------------------------------------------ #
    @_emits("Embedding")
    def embedding(self, x: TensorRef, vocab_size: int,
                  embed_dim: int) -> TensorRef:
        out_shape = x.shape + (embed_dim,)
        return self._emit("Embedding", [x], out_shape,
                          {"vocab_size": vocab_size, "embed_dim": embed_dim})

    @_emits("LSTM")
    def lstm(self, x: TensorRef, hidden_size: int,
             num_layers: int = 1) -> TensorRef:
        batch, seq, inp = x.shape
        attrs = {"batch": batch, "seq_len": seq, "input_size": inp,
                 "hidden_size": hidden_size, "num_layers": num_layers}
        return self._emit("LSTM", [x], (batch, seq, hidden_size), attrs)

    @_emits("RNN")
    def rnn(self, x: TensorRef, hidden_size: int,
            num_layers: int = 1) -> TensorRef:
        batch, seq, inp = x.shape
        attrs = {"batch": batch, "seq_len": seq, "input_size": inp,
                 "hidden_size": hidden_size, "num_layers": num_layers}
        return self._emit("RNN", [x], (batch, seq, hidden_size), attrs)
