"""FLOPs and workspace formulas per operator type.

The Conv2d formula matches Section III-C verbatim:

    FLOPs(Conv2d) = 2 * K * C * R * S * N * P * Q

GEMM-style operators use ``2 * M * N * K`` (times batch); elementwise and
normalization operators are counted per element.  Recurrent operators use
the input/output-size formulation the paper describes for RNN-based models.
"""

from __future__ import annotations

from typing import Any, Callable

from .node import tensor_numel

__all__ = ["op_flops", "op_temp_bytes", "OP_TYPES", "op_type_index",
           "flops_rule_ops", "has_flops_rule"]


def _conv2d(attrs: dict[str, Any], inputs, output) -> int:
    n, _, p, q = output
    k = attrs["out_channels"]
    c = attrs["in_channels"] // attrs.get("groups", 1)
    r, s = attrs["kernel_size"]
    return 2 * k * c * r * s * n * p * q


def _matmul(attrs: dict[str, Any], inputs, output) -> int:
    # inputs: (..., M, K) @ (..., K, N) -> output (..., M, N)
    k = attrs.get("reduce_dim")
    if k is None:
        k = inputs[0][-1]
    batch = tensor_numel(output[:-2]) if len(output) > 2 else 1
    m, n = output[-2], output[-1]
    return 2 * batch * m * n * k


def _gemm(attrs: dict[str, Any], inputs, output) -> int:
    # Linear layer: (B..., K) -> (B..., N)
    k = attrs.get("in_features", inputs[0][-1] if inputs else 1)
    n = attrs.get("out_features", output[-1])
    batch = tensor_numel(output[:-1])
    return 2 * batch * n * k


def _elementwise(mult: float) -> Callable:
    def fn(attrs, inputs, output):
        return int(mult * tensor_numel(output))
    return fn


def _pool(attrs: dict[str, Any], inputs, output) -> int:
    r, s = attrs.get("kernel_size", (1, 1))
    return tensor_numel(output) * r * s


def _global_pool(attrs, inputs, output) -> int:
    return tensor_numel(inputs[0]) if inputs else tensor_numel(output)


def _batchnorm(attrs, inputs, output) -> int:
    # Inference: scale + shift per element.
    return 2 * tensor_numel(output)


def _layernorm(attrs, inputs, output) -> int:
    # mean, variance, normalize, affine: ~8 ops/element.
    return 8 * tensor_numel(output)


def _softmax(attrs, inputs, output) -> int:
    # max-subtract, exp, sum, divide: ~5 ops/element.
    return 5 * tensor_numel(output)


def _lstm(attrs: dict[str, Any], inputs, output) -> int:
    """Full unrolled LSTM cost from I/O sizes (paper Section III-C)."""
    batch = attrs["batch"]
    seq = attrs["seq_len"]
    hidden = attrs["hidden_size"]
    inp = attrs["input_size"]
    layers = attrs.get("num_layers", 1)
    per_step = 8 * hidden * (inp + hidden) + 24 * hidden
    per_step_rest = 8 * hidden * (hidden + hidden) + 24 * hidden
    total = per_step + max(0, layers - 1) * per_step_rest
    return total * batch * seq


def _rnn(attrs: dict[str, Any], inputs, output) -> int:
    batch = attrs["batch"]
    seq = attrs["seq_len"]
    hidden = attrs["hidden_size"]
    inp = attrs["input_size"]
    layers = attrs.get("num_layers", 1)
    per_step = 2 * hidden * (inp + hidden) + 2 * hidden
    per_step_rest = 2 * hidden * (hidden + hidden) + 2 * hidden
    total = per_step + max(0, layers - 1) * per_step_rest
    return total * batch * seq


def _embedding(attrs, inputs, output) -> int:
    # Pure gather: negligible FLOPs, but nonzero to keep features informative.
    return tensor_numel(output)


def _zero(attrs, inputs, output) -> int:
    return 0


#: FLOPs formula registry; every model-zoo operator must appear here.
_FLOPS: dict[str, Callable] = {
    "Input": _zero,
    "Conv2d": _conv2d,
    "DepthwiseConv2d": _conv2d,
    "MatMul": _matmul,
    "Gemm": _gemm,
    "BatchNorm2d": _batchnorm,
    "LayerNorm": _layernorm,
    "GroupNorm": _layernorm,
    "ReLU": _elementwise(1),
    "ReLU6": _elementwise(1),
    "GELU": _elementwise(8),
    "SiLU": _elementwise(4),
    "Sigmoid": _elementwise(4),
    "Tanh": _elementwise(4),
    "Softmax": _softmax,
    "MaxPool2d": _pool,
    "AvgPool2d": _pool,
    "AdaptiveAvgPool2d": _global_pool,
    "GlobalAvgPool": _global_pool,
    "Add": _elementwise(1),
    "Mul": _elementwise(1),
    "Div": _elementwise(1),
    "Concat": _zero,
    "Split": _zero,
    "Slice": _zero,
    "Flatten": _zero,
    "Reshape": _zero,
    "Transpose": _zero,
    "Identity": _zero,
    "Embedding": _embedding,
    "LSTM": _lstm,
    "RNN": _rnn,
    "Scale": _elementwise(1),
    "Erf": _elementwise(8),
    "Pad": _zero,
    "Shift": _zero,
    "PatchMerge": _elementwise(1),
    "Pow": _elementwise(1),
    "Sqrt": _elementwise(1),
    "ReduceMean": _elementwise(1),
}

#: canonical operator ordering for one-hot encoding (sorted for stability)
OP_TYPES: tuple[str, ...] = tuple(sorted(_FLOPS))

_OP_INDEX = {op: i for i, op in enumerate(OP_TYPES)}


def op_type_index(op_type: str) -> int:
    """Index of ``op_type`` in the canonical one-hot ordering."""
    return _OP_INDEX[op_type]


def flops_rule_ops() -> frozenset[str]:
    """Every op type with a registered FLOPs formula."""
    return frozenset(_FLOPS)


def has_flops_rule(op_type: str) -> bool:
    """True when ``op_type`` has a registered FLOPs formula."""
    return op_type in _FLOPS


def op_flops(op_type: str, attrs: dict[str, Any],
             input_shapes: list[tuple[int, ...]],
             output_shape: tuple[int, ...]) -> int:
    """FLOPs of one operator invocation. Raises for unknown operators."""
    try:
        fn = _FLOPS[op_type]
    except KeyError:
        raise KeyError(f"no FLOPs formula registered for operator {op_type!r}")
    return int(fn(attrs, input_shapes, output_shape))


def op_temp_bytes(op_type: str, attrs: dict[str, Any],
                  input_shapes: list[tuple[int, ...]],
                  output_shape: tuple[int, ...]) -> int:
    """Workspace ("temporary tensor") bytes used by the operator.

    Conv2d is modelled as implicit-GEMM with an im2col-sized workspace;
    Softmax/LayerNorm keep per-row statistics; MatMul needs no extra space.
    """
    if op_type in ("Conv2d", "DepthwiseConv2d"):
        n, _, p, q = output_shape
        c = attrs["in_channels"] // attrs.get("groups", 1)
        r, s = attrs["kernel_size"]
        return 4 * n * c * r * s * p * q
    if op_type in ("Softmax", "LayerNorm", "GroupNorm", "ReduceMean"):
        # One float of statistics per normalization row.
        return 4 * max(1, tensor_numel(output_shape) // max(1, output_shape[-1]))
    if op_type in ("LSTM", "RNN"):
        return 4 * 4 * attrs["hidden_size"] * attrs["batch"]
    return 0
