"""Graph visualization: Graphviz DOT export for computation graphs."""

from __future__ import annotations

from .graph import ComputationGraph

__all__ = ["to_dot"]

_FAMILY_COLORS = {
    "Conv2d": "lightblue", "DepthwiseConv2d": "lightblue",
    "Gemm": "lightsalmon", "MatMul": "lightsalmon",
    "LSTM": "palegreen", "RNN": "palegreen",
    "Softmax": "khaki", "LayerNorm": "khaki", "BatchNorm2d": "khaki",
    "Input": "white",
}


def to_dot(graph: ComputationGraph, max_label_len: int = 24) -> str:
    """Render ``graph`` as Graphviz DOT.

    Node labels show the operator type and output shape; heavy operator
    families are color-coded.  Paste the output into any DOT renderer.
    """
    lines = [f'digraph "{graph.name or "graph"}" {{',
             "  rankdir=TB;",
             '  node [shape=box, style=filled, fontsize=10];']
    for nid in sorted(graph.nodes):
        node = graph.nodes[nid]
        shape = "x".join(str(s) for s in node.output_shape)
        label = f"{node.op_type}\\n{shape}"[:max_label_len * 2]
        color = _FAMILY_COLORS.get(node.op_type, "gainsboro")
        lines.append(f'  n{nid} [label="{label}", fillcolor="{color}"];')
    for edge in graph.edges:
        style = ' [style=dashed]' if edge.edge_type == "backward" else ""
        lines.append(f"  n{edge.src} -> n{edge.dst}{style};")
    lines.append("}")
    return "\n".join(lines)
