"""Graph elements: operator nodes and data-flow edges.

A DL model is represented exactly as in the paper (Section II-A): a directed
acyclic *computation graph* whose nodes are tensor operators (``Conv2d``,
``MatMul``, ...) and whose edges carry tensors between operators.  This IR
plays the role ONNX plays in the original system.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

__all__ = ["OpNode", "DataEdge", "tensor_numel", "tensor_bytes", "DTYPE_BYTES"]

#: bytes per element for the simulated FP32 inference path
DTYPE_BYTES = 4


def tensor_numel(shape: tuple[int, ...]) -> int:
    """Number of elements of a tensor shape (1 for scalars)."""
    n = 1
    for s in shape:
        n *= int(s)
    return n


def tensor_bytes(shape: tuple[int, ...]) -> int:
    """FP32 byte size of a tensor shape."""
    return tensor_numel(shape) * DTYPE_BYTES


@dataclass
class OpNode:
    """A tensor-computation operator (one graph node).

    Attributes mirror Table I's node features:

    * ``op_type`` — operator type (one-hot encoded downstream);
    * ``attrs`` — operator hyperparameters (kernel size, channels, ...);
    * ``input_shapes`` / ``output_shape`` — I/O tensor shapes;
    * ``flops`` — floating-point operations of the operator;
    * ``temp_bytes`` — workspace (temporary variable) bytes.

    Device-level features (GPU FLOPS, memory capacity, SM count) are appended
    at featurization time, since the same graph is profiled on many devices.
    """

    node_id: int
    op_type: str
    attrs: dict[str, Any] = field(default_factory=dict)
    input_shapes: list[tuple[int, ...]] = field(default_factory=list)
    output_shape: tuple[int, ...] = ()
    flops: int = 0
    temp_bytes: int = 0
    name: str = ""

    @property
    def input_numel(self) -> int:
        return sum(tensor_numel(s) for s in self.input_shapes)

    @property
    def output_numel(self) -> int:
        return tensor_numel(self.output_shape)

    @property
    def input_bytes(self) -> int:
        return self.input_numel * DTYPE_BYTES

    @property
    def output_bytes(self) -> int:
        return self.output_numel * DTYPE_BYTES

    def to_dict(self) -> dict[str, Any]:
        return {
            "node_id": self.node_id,
            "op_type": self.op_type,
            "attrs": dict(self.attrs),
            "input_shapes": [list(s) for s in self.input_shapes],
            "output_shape": list(self.output_shape),
            "flops": int(self.flops),
            "temp_bytes": int(self.temp_bytes),
            "name": self.name,
        }

    @classmethod
    def from_dict(cls, d: dict[str, Any]) -> "OpNode":
        # JSON round trips turn tuple attrs (kernel_size, stride, ...) into
        # lists; normalize back so attr comparisons stay exact.
        attrs = {k: tuple(v) if isinstance(v, list) else v
                 for k, v in d.get("attrs", {}).items()}
        return cls(
            node_id=int(d["node_id"]),
            op_type=str(d["op_type"]),
            attrs=attrs,
            input_shapes=[tuple(s) for s in d.get("input_shapes", [])],
            output_shape=tuple(d.get("output_shape", ())),
            flops=int(d.get("flops", 0)),
            temp_bytes=int(d.get("temp_bytes", 0)),
            name=str(d.get("name", "")),
        )


@dataclass
class DataEdge:
    """A data-flow edge (Table I edge features).

    ``edge_type`` is "forward" for inference data flow (the only kind the
    paper's inference-time graphs contain; "backward" is reserved for
    training graphs).  ``tensor_shape`` is the shape of the tensor the edge
    delivers; bandwidth is a device property added at featurization.
    """

    src: int
    dst: int
    tensor_shape: tuple[int, ...] = ()
    edge_type: str = "forward"

    @property
    def tensor_numel(self) -> int:
        return tensor_numel(self.tensor_shape)

    @property
    def tensor_bytes(self) -> int:
        return tensor_bytes(self.tensor_shape)

    def to_dict(self) -> dict[str, Any]:
        return {
            "src": self.src,
            "dst": self.dst,
            "tensor_shape": list(self.tensor_shape),
            "edge_type": self.edge_type,
        }

    @classmethod
    def from_dict(cls, d: dict[str, Any]) -> "DataEdge":
        return cls(
            src=int(d["src"]),
            dst=int(d["dst"]),
            tensor_shape=tuple(d.get("tensor_shape", ())),
            edge_type=str(d.get("edge_type", "forward")),
        )
