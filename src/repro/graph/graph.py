"""The computation graph container (directed acyclic graph of operators)."""

from __future__ import annotations

import json
from typing import Any

import networkx as nx

from .node import DataEdge, OpNode

__all__ = ["ComputationGraph", "GraphValidationError"]


class GraphValidationError(ValueError):
    """Raised when a graph violates a structural invariant."""


class ComputationGraph:
    """A DAG of :class:`OpNode` connected by :class:`DataEdge`.

    Provides topological ordering (the kernel-launch order the GPU substrate
    consumes), validation, disjoint union (used to fuse CLIP's two encoder
    graphs into one multimodal graph), and JSON serialization (our stand-in
    for ONNX export).
    """

    def __init__(self, name: str = ""):
        self.name = name
        self.nodes: dict[int, OpNode] = {}
        self.edges: list[DataEdge] = []
        self._out_adj: dict[int, list[int]] = {}
        self._in_adj: dict[int, list[int]] = {}

    # -- construction ---------------------------------------------------- #
    def add_node(self, node: OpNode) -> OpNode:
        if node.node_id in self.nodes:
            raise GraphValidationError(f"duplicate node id {node.node_id}")
        self.nodes[node.node_id] = node
        self._out_adj[node.node_id] = []
        self._in_adj[node.node_id] = []
        return node

    def add_edge(self, edge: DataEdge) -> DataEdge:
        if edge.src not in self.nodes or edge.dst not in self.nodes:
            raise GraphValidationError(
                f"edge ({edge.src} -> {edge.dst}) references unknown node")
        if edge.src == edge.dst:
            raise GraphValidationError(f"self-loop at node {edge.src}")
        self.edges.append(edge)
        self._out_adj[edge.src].append(edge.dst)
        self._in_adj[edge.dst].append(edge.src)
        return edge

    # -- basic queries ----------------------------------------------------- #
    @property
    def num_nodes(self) -> int:
        return len(self.nodes)

    @property
    def num_edges(self) -> int:
        return len(self.edges)

    def successors(self, node_id: int) -> list[int]:
        return list(self._out_adj[node_id])

    def predecessors(self, node_id: int) -> list[int]:
        return list(self._in_adj[node_id])

    def in_edges(self, node_id: int) -> list[DataEdge]:
        return [e for e in self.edges if e.dst == node_id]

    def out_edges(self, node_id: int) -> list[DataEdge]:
        return [e for e in self.edges if e.src == node_id]

    def total_flops(self) -> int:
        return sum(n.flops for n in self.nodes.values())

    def op_type_histogram(self) -> dict[str, int]:
        hist: dict[str, int] = {}
        for n in self.nodes.values():
            hist[n.op_type] = hist.get(n.op_type, 0) + 1
        return hist

    # -- ordering / validation --------------------------------------------- #
    def topological_order(self) -> list[int]:
        """Kahn's algorithm; deterministic (lowest node id first).

        Raises :class:`GraphValidationError` on cycles.
        """
        indeg = {nid: len(self._in_adj[nid]) for nid in self.nodes}
        import heapq
        ready = [nid for nid, d in indeg.items() if d == 0]
        heapq.heapify(ready)
        order: list[int] = []
        while ready:
            nid = heapq.heappop(ready)
            order.append(nid)
            for succ in self._out_adj[nid]:
                indeg[succ] -= 1
                if indeg[succ] == 0:
                    heapq.heappush(ready, succ)
        if len(order) != len(self.nodes):
            raise GraphValidationError(f"graph {self.name!r} contains a cycle")
        return order

    def validate(self) -> None:
        """Check all structural invariants; raise on the first violation."""
        self.topological_order()  # acyclicity
        for edge in self.edges:
            src = self.nodes[edge.src]
            if edge.tensor_shape and src.output_shape and \
                    edge.tensor_shape != src.output_shape:
                raise GraphValidationError(
                    f"edge ({edge.src}->{edge.dst}) carries {edge.tensor_shape} "
                    f"but source outputs {src.output_shape}")
        for node in self.nodes.values():
            if node.flops < 0 or node.temp_bytes < 0:
                raise GraphValidationError(
                    f"node {node.node_id} has negative cost")

    # -- composition --------------------------------------------------------- #
    def disjoint_union(self, other: "ComputationGraph",
                       name: str = "") -> "ComputationGraph":
        """Combine two graphs with re-numbered nodes (multimodal fusion).

        This is how CLIP's image and text encoder graphs become one graph
        that runs "both encoders simultaneously" (Section V-A2).
        """
        merged = ComputationGraph(name or f"{self.name}+{other.name}")
        for node in self.nodes.values():
            merged.add_node(OpNode.from_dict(node.to_dict()))
        offset = (max(self.nodes) + 1) if self.nodes else 0
        for node in other.nodes.values():
            d = node.to_dict()
            d["node_id"] = node.node_id + offset
            merged.add_node(OpNode.from_dict(d))
        for e in self.edges:
            merged.add_edge(DataEdge.from_dict(e.to_dict()))
        for e in other.edges:
            d = e.to_dict()
            d["src"] += offset
            d["dst"] += offset
            merged.add_edge(DataEdge.from_dict(d))
        return merged

    # -- interop ------------------------------------------------------------- #
    def to_networkx(self) -> nx.DiGraph:
        g = nx.DiGraph(name=self.name)
        for nid, node in self.nodes.items():
            g.add_node(nid, op_type=node.op_type, flops=node.flops)
        for e in self.edges:
            g.add_edge(e.src, e.dst, tensor_bytes=e.tensor_bytes)
        return g

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "nodes": [n.to_dict() for n in self.nodes.values()],
            "edges": [e.to_dict() for e in self.edges],
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict())

    @classmethod
    def from_dict(cls, d: dict[str, Any]) -> "ComputationGraph":
        g = cls(d.get("name", ""))
        for nd in d["nodes"]:
            g.add_node(OpNode.from_dict(nd))
        for ed in d["edges"]:
            g.add_edge(DataEdge.from_dict(ed))
        return g

    @classmethod
    def from_json(cls, s: str) -> "ComputationGraph":
        return cls.from_dict(json.loads(s))

    def __repr__(self) -> str:  # pragma: no cover
        return (f"ComputationGraph({self.name!r}, nodes={self.num_nodes}, "
                f"edges={self.num_edges})")
