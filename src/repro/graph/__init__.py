"""Computation-graph IR: nodes, edges, builder, FLOPs formulas."""

from .node import DataEdge, OpNode, tensor_bytes, tensor_numel, DTYPE_BYTES
from .graph import ComputationGraph, GraphValidationError
from .builder import GraphBuilder, TensorRef
from .flops import OP_TYPES, op_flops, op_temp_bytes, op_type_index
from .transforms import add_backward_edges
from .visualize import to_dot

__all__ = [
    "OpNode", "DataEdge", "tensor_numel", "tensor_bytes", "DTYPE_BYTES",
    "ComputationGraph", "GraphValidationError",
    "GraphBuilder", "TensorRef",
    "OP_TYPES", "op_flops", "op_temp_bytes", "op_type_index",
    "add_backward_edges", "to_dot",
]
