"""Atomic, checksummed checkpoint files.

The container format is deliberately dumb so corruption is detectable
and recovery is boring::

    RPCKPT1\\n<sha256 hex of payload>\\n<payload: npz bytes>

The payload is a standard ``np.savez`` archive whose ``__meta__`` entry
holds a JSON document (UTF-8 bytes) and whose remaining entries are the
caller's arrays.  Writes go through a same-directory temporary file and
``os.replace``, so a checkpoint on disk is either the complete previous
one or the complete new one — a process killed mid-write never leaves a
half-checkpoint that a resume would silently load.  Loads verify the
digest before touching the payload and raise :class:`CheckpointError`
on any mismatch or malformation.
"""

from __future__ import annotations

import hashlib
import io
import json
import os
import tempfile

import numpy as np

from ..obs.metrics import counter

__all__ = ["CheckpointError", "save_checkpoint", "load_checkpoint"]

_MAGIC = b"RPCKPT1\n"
_META_KEY = "__meta__"


class CheckpointError(RuntimeError):
    """A checkpoint file is missing, truncated, corrupt, or mismatched."""


def save_checkpoint(path: str, arrays: dict[str, np.ndarray],
                    meta: dict, component: str = "generic") -> str:
    """Atomically write ``arrays`` + JSON-serializable ``meta`` to ``path``.

    Returns the content digest (hex sha256 of the payload).  The write is
    atomic with respect to readers of ``path``; partial writes are
    impossible to observe.
    """
    if _META_KEY in arrays:
        raise ValueError(f"array name {_META_KEY!r} is reserved")
    meta_bytes = json.dumps(meta, sort_keys=True).encode("utf-8")
    buf = io.BytesIO()
    np.savez(buf, **{_META_KEY: np.frombuffer(meta_bytes, dtype=np.uint8)},
             **arrays)
    payload = buf.getvalue()
    digest = hashlib.sha256(payload).hexdigest()

    directory = os.path.dirname(os.path.abspath(path)) or "."
    fd, tmp_path = tempfile.mkstemp(prefix=".ckpt-", dir=directory)
    try:
        with os.fdopen(fd, "wb") as fh:
            fh.write(_MAGIC)
            fh.write(digest.encode("ascii"))
            fh.write(b"\n")
            fh.write(payload)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp_path, path)
    except BaseException:
        # Never leave temp litter behind a failed/interrupted save.
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise
    counter("resilience_checkpoints_total",
            "checkpoints written", component=component).inc()
    return digest


def load_checkpoint(path: str, component: str = "generic") \
        -> tuple[dict[str, np.ndarray], dict]:
    """Read and verify a checkpoint; returns ``(arrays, meta)``.

    Raises :class:`CheckpointError` when the file is not a checkpoint,
    its digest does not match its payload (bit rot, torn copy), or the
    payload fails to parse.
    """
    try:
        with open(path, "rb") as fh:
            raw = fh.read()
    except OSError as exc:
        raise CheckpointError(f"cannot read checkpoint {path!r}: {exc}") \
            from exc
    if not raw.startswith(_MAGIC):
        raise CheckpointError(f"{path!r} is not a checkpoint file "
                              f"(bad magic)")
    header_end = raw.find(b"\n", len(_MAGIC))
    if header_end < 0:
        raise CheckpointError(f"{path!r} is truncated (no digest line)")
    digest = raw[len(_MAGIC):header_end].decode("ascii", "replace")
    payload = raw[header_end + 1:]
    actual = hashlib.sha256(payload).hexdigest()
    if actual != digest:
        counter("resilience_faults_total",
                "faults observed by resilience machinery",
                component="checkpoint", kind="corrupt").inc()
        raise CheckpointError(
            f"checkpoint {path!r} is corrupt: digest mismatch "
            f"(recorded {digest[:12]}..., actual {actual[:12]}...)")
    try:
        with np.load(io.BytesIO(payload), allow_pickle=False) as data:
            arrays = {k: data[k] for k in data.files if k != _META_KEY}
            meta = json.loads(bytes(data[_META_KEY].tobytes())
                              .decode("utf-8"))
    except (ValueError, KeyError, OSError) as exc:
        raise CheckpointError(
            f"checkpoint {path!r} payload failed to parse: {exc}") from exc
    counter("resilience_restores_total",
            "checkpoints successfully restored", component=component).inc()
    return arrays, meta
