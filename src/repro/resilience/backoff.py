"""Capped exponential backoff: the one sanctioned retry-delay policy.

Every retry loop in the repo — simulated (scheduler re-queue delays) or
real (a future service front-end) — must compute its delays through
:class:`ExponentialBackoff` rather than hand-rolled ``time.sleep``
arithmetic.  The ``S004`` self-lint pass enforces this: raw ``time.sleep``
calls anywhere outside this module are flagged as errors, because ad-hoc
sleeps are untestable, unbounded, and invisible to the fault model.

The helper is pure (it *computes* delays; callers decide whether the
delay is simulated time or wall-clock time), which is what lets the
scheduler simulator and the trainer share one retry policy and what keeps
chaos experiments deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["ExponentialBackoff"]


@dataclass(frozen=True)
class ExponentialBackoff:
    """``delay(k) = min(cap_s, base_s * factor**(k-1))`` for attempt k>=1."""

    base_s: float = 1.0
    factor: float = 2.0
    cap_s: float = 60.0

    def __post_init__(self) -> None:
        if self.base_s <= 0:
            raise ValueError("backoff base must be positive")
        if self.factor < 1.0:
            raise ValueError("backoff factor must be >= 1")
        if self.cap_s < self.base_s:
            raise ValueError("backoff cap must be >= base")

    def delay(self, attempt: int) -> float:
        """Delay before retry number ``attempt`` (1-based)."""
        if attempt < 1:
            raise ValueError("attempt is 1-based")
        # Guard the power: past the cap the exact exponent is irrelevant
        # and factor**attempt would overflow for large budgets.
        exponent = min(attempt - 1, 64)
        return min(self.cap_s, self.base_s * self.factor ** exponent)

    def schedule(self, attempts: int) -> list[float]:
        """Delays for retries ``1..attempts`` (useful for tests/docs)."""
        return [self.delay(k) for k in range(1, attempts + 1)]
