"""Seeded, deterministic fault injection for the cluster simulator.

A :class:`FaultInjector` is a pure source of *when things break*: GPU
failure/recovery windows, per-attempt job crashes, and multiplicative
noise on the occupancy predictions the scheduler sees.  The simulator
asks it questions; it never mutates simulation state itself.

Determinism is the design center: every stream of randomness is keyed by
``(seed, stream tag, entity id)`` through NumPy's ``SeedSequence``
spawning, so the answer for GPU 3's second outage or job 17's fourth
attempt does not depend on how many other questions were asked first.
Two simulations with the same injector seed therefore produce identical
fault timelines — the property the chaos-determinism tests pin.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterator

import numpy as np

from .backoff import ExponentialBackoff

__all__ = ["FaultConfig", "FaultInjector"]

# Stream tags keeping per-purpose RNG substreams independent.
_STREAM_OUTAGE = 1
_STREAM_CRASH = 2
_STREAM_NOISE = 3
_STREAM_WORKER = 4


@dataclass(frozen=True)
class FaultConfig:
    """What can go wrong, and how the cluster responds.

    ``gpu_mtbf_s`` / ``gpu_mttr_s`` parameterize exponential up/down
    durations per GPU (``None`` MTBF disables outages; an infinite MTTR
    makes the first failure permanent).  ``crash_prob`` is the
    per-*attempt* probability that a job dies partway through; the crash
    point is uniform over the attempt's remaining work.
    ``mispredict_std`` is the sigma of log-normal noise applied to
    scheduler-visible occupancy predictions.  ``checkpoint_interval_s``
    is the job checkpoint period: an evicted job resumes from its last
    completed interval instead of from zero (``None`` = no checkpoints,
    full restart).  Retries are bounded by ``max_retries`` and spaced by
    the capped exponential ``backoff``.
    """

    gpu_mtbf_s: float | None = None
    gpu_mttr_s: float = 60.0
    crash_prob: float = 0.0
    mispredict_std: float = 0.0
    checkpoint_interval_s: float | None = None
    max_retries: int = 100
    backoff: ExponentialBackoff = field(default_factory=ExponentialBackoff)
    #: per-request probability that the serving worker handling the
    #: request dies mid-flight (process exit / thread death) without
    #: resolving it — the repro.fleet supervisor must reroute + restart.
    worker_kill_prob: float = 0.0
    #: per-request probability that the worker stalls instead: it stops
    #: heartbeating and never responds, so only the supervisor's
    #: hung-worker deadline can reclaim it.
    worker_hang_prob: float = 0.0

    def __post_init__(self) -> None:
        if self.gpu_mtbf_s is not None and self.gpu_mtbf_s <= 0:
            raise ValueError("gpu_mtbf_s must be positive (or None)")
        if self.gpu_mttr_s <= 0:
            raise ValueError("gpu_mttr_s must be positive (inf = "
                             "permanent outage)")
        if not 0.0 <= self.crash_prob < 1.0:
            raise ValueError("crash_prob must be in [0, 1)")
        if self.mispredict_std < 0:
            raise ValueError("mispredict_std must be non-negative")
        if self.checkpoint_interval_s is not None \
                and self.checkpoint_interval_s <= 0:
            raise ValueError("checkpoint_interval_s must be positive "
                             "(or None)")
        if self.max_retries < 0:
            raise ValueError("max_retries must be non-negative")
        if not 0.0 <= self.worker_kill_prob <= 1.0:
            raise ValueError("worker_kill_prob must be in [0, 1]")
        if not 0.0 <= self.worker_hang_prob <= 1.0:
            raise ValueError("worker_hang_prob must be in [0, 1]")
        if self.worker_kill_prob + self.worker_hang_prob > 1.0:
            raise ValueError("worker_kill_prob + worker_hang_prob must "
                             "not exceed 1")


class FaultInjector:
    """Deterministic oracle for outages, crashes, and prediction noise."""

    def __init__(self, config: FaultConfig | None = None, seed: int = 0):
        self.config = config or FaultConfig()
        self.seed = int(seed)

    def _rng(self, stream: int, *ids: int) -> np.random.Generator:
        return np.random.default_rng(
            np.random.SeedSequence((self.seed, stream, *ids)))

    # -- GPU outages ----------------------------------------------------- #
    def transitions(self, gpu_id: int) -> Iterator[tuple[float, bool]]:
        """Yield ``(time_s, is_up_after)`` availability transitions.

        The GPU starts up at t=0; the stream alternates down events
        (``False``) and recovery events (``True``).  A permanent outage
        (infinite MTTR) ends the stream after its down event.  The
        generator is infinite otherwise — consume lazily.
        """
        cfg = self.config
        if cfg.gpu_mtbf_s is None:
            return
        rng = self._rng(_STREAM_OUTAGE, gpu_id)
        t = 0.0
        while True:
            t += float(rng.exponential(cfg.gpu_mtbf_s))
            yield (t, False)
            if math.isinf(cfg.gpu_mttr_s):
                return
            t += float(rng.exponential(cfg.gpu_mttr_s))
            yield (t, True)

    # -- job crashes ----------------------------------------------------- #
    def crash_fraction(self, job_id: int, attempt: int) -> float | None:
        """Crash point for this attempt as a fraction of remaining work.

        Returns ``None`` when the attempt survives.  Keyed by
        ``(job_id, attempt)`` so an unlucky job's retry rolls fresh dice.
        """
        cfg = self.config
        if cfg.crash_prob <= 0.0:
            return None
        rng = self._rng(_STREAM_CRASH, job_id, attempt)
        if float(rng.random()) >= cfg.crash_prob:
            return None
        # Uniform in (0, 1): a crash exactly at 0 or 1 would be a no-op
        # or a completion, neither of which exercises recovery.
        return float(rng.uniform(0.05, 0.95))

    # -- prediction noise ------------------------------------------------ #
    def perturb_occupancy(self, job_id: int, value: float) -> float:
        """Log-normal multiplicative noise on a predicted occupancy."""
        if self.config.mispredict_std <= 0.0:
            return float(value)
        rng = self._rng(_STREAM_NOISE, job_id)
        noisy = value * math.exp(
            float(rng.normal(0.0, self.config.mispredict_std)))
        return float(min(1.0, max(0.0, noisy)))

    # -- serving-worker faults ------------------------------------------- #
    def worker_fault(self, worker_id: int, incarnation: int,
                     request_index: int) -> str | None:
        """Fault verdict for one request on one worker incarnation.

        Returns ``None`` (healthy), ``"kill"`` (the worker dies without
        resolving the request), or ``"hang"`` (the worker stops
        heartbeating and never responds).  Keyed by
        ``(worker_id, incarnation, request_index)`` so a restarted
        worker rolls fresh dice from its first request, and the verdict
        for request *k* never depends on what other workers were asked.
        """
        cfg = self.config
        if cfg.worker_kill_prob <= 0.0 and cfg.worker_hang_prob <= 0.0:
            return None
        rng = self._rng(_STREAM_WORKER, worker_id, incarnation,
                        request_index)
        draw = float(rng.random())
        if draw < cfg.worker_kill_prob:
            return "kill"
        if draw < cfg.worker_kill_prob + cfg.worker_hang_prob:
            return "hang"
        return None

    # -- retry pacing ---------------------------------------------------- #
    def requeue_delay(self, job_id: int, attempt: int) -> float:
        """Simulated seconds an evicted job waits before re-queueing."""
        return self.config.backoff.delay(attempt)
