"""Graceful predictor degradation: a tiered fallback chain.

Scheduling experiments die in stupid ways: one graph fails the lint
preflight, one feature matrix picks up a NaN, one model raises — and the
whole sweep aborts.  :class:`FallbackPredictor` turns those per-sample
failures into per-sample downgrades instead: it tries each tier in order
(typically GNN → analytical baseline → conservative constant), validates
the result, and serves the first tier that produces a finite occupancy
in ``[0, 1]``.  The terminal constant tier cannot fail, so a scheduling
experiment fed a :class:`FallbackPredictor` always completes — with
degraded packing quality where inputs were bad, which is exactly the
trade a production scheduler makes.

Which tier served each prediction is observable: failures increment
``resilience_faults_total{component="predictor", tier=...}`` and every
non-primary serve increments ``resilience_fallbacks_total{tier=...}``;
per-instance ``tier_counts`` give the same numbers without a registry.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from ..obs import get_logger
from ..obs.metrics import counter

__all__ = ["FallbackPredictor", "gnn_tier", "analytical_tier",
           "constant_tier", "default_fallback_chain"]

_log = get_logger("resilience.fallback")

#: A tier: (name, fn) where fn(graph, device) -> float | (mean, std).
Tier = tuple[str, Callable]


class FallbackPredictor:
    """Serve predictions from the first healthy tier in a chain.

    Instances are drop-in workload predictors: ``wants_graph`` tells
    :func:`repro.sched.make_job` to pass the raw computation graph and
    device (so tier-internal encoding/lint failures stay catchable here)
    instead of pre-encoded features.
    """

    #: make_job calls us with (graph, device), not encoded features
    wants_graph = True

    def __init__(self, tiers: Sequence[Tier], conservative: float = 1.0):
        if not tiers:
            raise ValueError("need at least one tier")
        names = [name for name, _ in tiers]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate tier names: {names}")
        if not 0.0 <= conservative <= 1.0:
            raise ValueError("conservative constant must be in [0, 1]")
        self.tiers: list[Tier] = list(tiers)
        self.conservative = conservative
        #: serves per tier name (plus "conservative" for total exhaustion)
        self.tier_counts: dict[str, int] = {name: 0 for name in names}
        self.last_tier: str | None = None

    def __call__(self, graph, device=None) -> tuple[float, float]:
        """Predict ``(mean, std)`` occupancy, degrading tier by tier."""
        for rank, (name, fn) in enumerate(self.tiers):
            try:
                mean, std = self._validate(fn(graph, device))
            except Exception as exc:
                counter("resilience_faults_total",
                        "faults observed by resilience machinery",
                        component="predictor", tier=name).inc()
                _log.warning("prediction tier failed", extra={
                    "tier": name,
                    "graph": getattr(graph, "name", "") or "<graph>",
                    "error": f"{type(exc).__name__}: {exc}"})
                continue
            self._record(rank, name)
            return mean, std
        # Defensive terminal: reachable only if the caller built a chain
        # whose last tier can fail (the default chain's constant cannot).
        self._record(len(self.tiers), "conservative")
        return self.conservative, 0.0

    def _validate(self, out) -> tuple[float, float]:
        mean, std = out if isinstance(out, tuple) else (out, 0.0)
        mean, std = float(mean), float(std)
        if not (np.isfinite(mean) and np.isfinite(std)):
            raise ValueError(f"non-finite prediction ({mean}, {std})")
        return min(1.0, max(0.0, mean)), max(0.0, std)

    def _record(self, rank: int, name: str) -> None:
        self.last_tier = name
        self.tier_counts[name] = self.tier_counts.get(name, 0) + 1
        if rank > 0:
            counter("resilience_fallbacks_total",
                    "predictions served by a non-primary tier",
                    tier=name).inc()

    def counts(self) -> dict[str, int]:
        """Copy of the per-tier serve counts."""
        return dict(self.tier_counts)


# --------------------------------------------------------------------- #
# Tier builders.  Heavy imports stay inside the closures so this module
# (imported by repro.resilience, reachable from repro.core) never drags
# the gpu/feature layers in at import time.
# --------------------------------------------------------------------- #

def gnn_tier(model, preflight: bool = True) -> Tier:
    """Primary tier: lint preflight, feature encoding, GNN inference.

    ``model`` is anything with ``predict(GraphFeatures) -> float`` (a
    :class:`repro.core.DNNOccu`, an ensemble, or a trained baseline).
    Raises — and thus falls through — on lint-gate errors, non-finite
    features, or model exceptions.
    """
    def _predict(graph, device):
        from ..features import encode_graph
        from ..lint import preflight_features, preflight_graph
        if preflight:
            preflight_graph(graph, device=device)
        feats = encode_graph(graph, device)
        preflight_features(feats, origin=getattr(graph, "name", ""))
        return float(model.predict(feats))
    return ("gnn", _predict)


def analytical_tier(predictor) -> Tier:
    """Middle tier: a fitted :class:`~repro.baselines.AnalyticalPredictor`.

    Skips the lint gate on purpose: graph-level summary statistics are
    robust to the structural defects that reject a graph from the GNN
    path, which is what makes this tier a useful fallback rather than a
    second copy of the same failure.
    """
    def _predict(graph, device):
        from ..features import encode_graph
        return float(predictor.predict_one(encode_graph(graph, device)))
    return ("analytical", _predict)


def constant_tier(value: float = 1.0) -> Tier:
    """Terminal tier: a conservative constant that can never fail.

    The default of 1.0 makes the scheduler treat an unpredictable job as
    saturating — it gets a GPU to itself, trading utilization for safety.
    """
    if not 0.0 <= value <= 1.0:
        raise ValueError("constant tier value must be in [0, 1]")
    return ("constant", lambda graph, device=None: float(value))


def default_fallback_chain(model=None, analytical=None,
                           conservative: float = 1.0) -> FallbackPredictor:
    """GNN → analytical → constant, skipping tiers without a backend."""
    tiers: list[Tier] = []
    if model is not None:
        tiers.append(gnn_tier(model))
    if analytical is not None:
        tiers.append(analytical_tier(analytical))
    tiers.append(constant_tier(conservative))
    return FallbackPredictor(tiers, conservative=conservative)
