"""Resilience layer: fault injection, checkpoint/restart, degradation.

Real clusters lose GPUs, kill jobs, and feed schedulers mispredictions;
real training runs get preempted.  This package gives the reproduction
the machinery to express and survive all of that:

* :mod:`~repro.resilience.faults` — a seeded, deterministic
  :class:`FaultInjector` (GPU outage windows, per-attempt job crashes,
  occupancy-misprediction noise) consumed by the scheduler simulator's
  ``faults=`` parameter;
* :mod:`~repro.resilience.backoff` — the capped
  :class:`ExponentialBackoff` retry-delay policy (the only module where
  raw ``time.sleep`` is permitted, per lint ``S004``);
* :mod:`~repro.resilience.checkpoint` — atomic, sha256-checksummed
  checkpoint files used by ``Trainer.fit(checkpoint_path=...)`` /
  ``resume_from=``;
* :mod:`~repro.resilience.fallback` — the GNN → analytical → constant
  :class:`FallbackPredictor` chain that lets scheduling experiments
  degrade per-sample instead of aborting.

Everything is observable through :mod:`repro.obs`
(``resilience_faults_total``, ``resilience_fallbacks_total``,
``resilience_checkpoints_total`` / ``resilience_restores_total``, and
the simulator's ``resilience_retries`` histogram); ``docs/resilience.md``
documents the fault model, checkpoint format, and fallback semantics.
"""

from __future__ import annotations

from .backoff import ExponentialBackoff
from .checkpoint import CheckpointError, load_checkpoint, save_checkpoint
from .faults import FaultConfig, FaultInjector
from .fallback import (FallbackPredictor, analytical_tier, constant_tier,
                       default_fallback_chain, gnn_tier)

__all__ = [
    "ExponentialBackoff",
    "CheckpointError", "save_checkpoint", "load_checkpoint",
    "FaultConfig", "FaultInjector",
    "FallbackPredictor", "gnn_tier", "analytical_tier", "constant_tier",
    "default_fallback_chain",
]
