"""Dataset persistence: save/load profiled datasets as ``.npz`` archives.

Profiling (even simulated) is the expensive step of the pipeline, so
datasets are first-class artifacts: :func:`save_dataset` writes every
sample's feature arrays and metadata into one compressed archive that
:func:`load_dataset` restores bit-exactly.
"""

from __future__ import annotations

import json

import numpy as np

from ..features import GraphFeatures
from ..models import ModelConfig
from .dataset import Dataset, GraphSample

__all__ = ["save_dataset", "load_dataset"]

_FORMAT_VERSION = 1


def save_dataset(dataset: Dataset, path: str) -> None:
    """Write ``dataset`` to ``path`` (a ``.npz`` file)."""
    arrays: dict[str, np.ndarray] = {}
    meta = {"version": _FORMAT_VERSION, "num_samples": len(dataset),
            "samples": []}
    for i, s in enumerate(dataset):
        arrays[f"s{i}_node_features"] = s.features.node_features
        arrays[f"s{i}_edge_features"] = s.features.edge_features
        arrays[f"s{i}_edge_index"] = s.features.edge_index
        meta["samples"].append({
            "occupancy": s.occupancy,
            "nvml_utilization": s.nvml_utilization,
            "wall_time_s": s.wall_time_s,
            "model_name": s.model_name,
            "device_name": s.device_name,
            "num_nodes": s.num_nodes,
            "num_edges": s.num_edges,
            "config": {
                "batch_size": s.config.batch_size,
                "in_channels": s.config.in_channels,
                "image_size": s.config.image_size,
                "seq_len": s.config.seq_len,
                "input_size": s.config.input_size,
                "hidden_size": s.config.hidden_size,
                "num_classes": s.config.num_classes,
            },
        })
    arrays["meta_json"] = np.array(json.dumps(meta))
    np.savez_compressed(path, **arrays)


def load_dataset(path: str) -> Dataset:
    """Restore a dataset written by :func:`save_dataset`."""
    ds = Dataset()
    with np.load(path) as data:
        meta = json.loads(str(data["meta_json"]))
        if meta.get("version") != _FORMAT_VERSION:
            raise ValueError(
                f"unsupported dataset format version {meta.get('version')}")
        for i, m in enumerate(meta["samples"]):
            features = GraphFeatures(
                node_features=data[f"s{i}_node_features"],
                edge_features=data[f"s{i}_edge_features"],
                edge_index=data[f"s{i}_edge_index"].astype(np.intp),
                model_name=m["model_name"],
                device_name=m["device_name"],
            )
            ds.samples.append(GraphSample(
                features=features,
                occupancy=float(m["occupancy"]),
                nvml_utilization=float(m["nvml_utilization"]),
                wall_time_s=float(m["wall_time_s"]),
                model_name=m["model_name"],
                device_name=m["device_name"],
                config=ModelConfig(**m["config"]),
                num_nodes=int(m["num_nodes"]),
                num_edges=int(m["num_edges"]),
            ))
    return ds
