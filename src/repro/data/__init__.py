"""Dataset generation (Table II domains, profiling labels, splits)."""

from .dataset import (Dataset, GraphSample, SEEN_MODELS, UNSEEN_MODELS,
                      config_domain, generate_dataset, sample_config)
from .io import load_dataset, save_dataset
from .stats import k_fold, summarize

__all__ = [
    "Dataset", "GraphSample", "SEEN_MODELS", "UNSEEN_MODELS",
    "config_domain", "generate_dataset", "sample_config",
    "save_dataset", "load_dataset", "k_fold", "summarize",
]
