"""Dataset generation: Table II hyperparameter domains and profiling labels.

Reproduces the paper's dataset protocol (Section IV-A): for every model a
stochastic strategy samples hyperparameter configurations from the family's
domain, each configuration is profiled (here: by the GPU simulator instead
of Nsight Compute), configurations that exceed device memory are discarded
(the paper ran "until OOM"), and the duration-weighted mean occupancy
becomes the regression label.
"""

from __future__ import annotations

import functools
import os
import time
from dataclasses import dataclass, field
from typing import Iterable, Sequence

import numpy as np

from ..features import GraphFeatures, encode_graph
from ..gpu import DeviceSpec, OutOfMemoryError, get_device, profile_graph
from ..models import MODEL_FAMILY, ModelConfig, build_model
from ..obs.metrics import gauge

__all__ = ["GraphSample", "Dataset", "sample_config", "generate_dataset",
           "SEEN_MODELS", "UNSEEN_MODELS", "config_domain"]

#: the paper's training ("seen") models — Section V's 80/20 split set
SEEN_MODELS = ("vit-t", "lstm", "rnn", "resnet-34", "resnet-18", "vgg-16",
               "vgg-13", "vgg-11", "alexnet", "lenet")

#: models whose configurations never appear in training (Section V)
UNSEEN_MODELS = ("vit-s", "bert", "convnext-b", "resnet-50")


@dataclass
class GraphSample:
    """One labelled example: encoded graph + measured occupancy."""

    features: GraphFeatures
    occupancy: float
    nvml_utilization: float
    wall_time_s: float
    model_name: str
    device_name: str
    config: ModelConfig
    num_nodes: int
    num_edges: int


@dataclass
class Dataset:
    """A list of samples with family/split bookkeeping."""

    samples: list[GraphSample] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.samples)

    def __iter__(self):
        return iter(self.samples)

    def __getitem__(self, i: int) -> GraphSample:
        return self.samples[i]

    def filter_models(self, names: Iterable[str]) -> "Dataset":
        keys = {n.lower() for n in names}
        return Dataset([s for s in self.samples
                        if s.model_name.lower() in keys])

    def filter_devices(self, names: Iterable[str]) -> "Dataset":
        keys = {n.lower() for n in names}
        return Dataset([s for s in self.samples
                        if s.device_name.lower() in keys])

    def split(self, train_frac: float,
              rng: np.random.Generator) -> tuple["Dataset", "Dataset"]:
        """Random split (the paper's 80/20 within seen models)."""
        idx = rng.permutation(len(self.samples))
        cut = int(round(train_frac * len(idx)))
        return (Dataset([self.samples[i] for i in idx[:cut]]),
                Dataset([self.samples[i] for i in idx[cut:]]))

    def labels(self) -> np.ndarray:
        return np.array([s.occupancy for s in self.samples])


@functools.lru_cache(maxsize=None)
def _domain_items(family: str) -> tuple[tuple[str, tuple[int, ...]], ...]:
    """Memoized immutable form of :func:`config_domain` per family."""
    if family == "cnn":
        return (("batch_size", tuple(range(16, 129, 4))),
                ("in_channels", tuple(range(1, 11))))
    if family == "rnn":
        return (("batch_size", tuple(range(128, 513, 8))),
                ("seq_len", tuple(range(16, 129, 8))))
    return (("batch_size", tuple(range(16, 129, 4))),
            ("in_channels", tuple(range(1, 11))),
            ("seq_len", tuple(range(20, 513, 4))))


def config_domain(model_name: str) -> dict[str, tuple[int, ...]]:
    """Table II hyperparameter domain for a model's family.

    CNN-based: batch size 16..128 step 4, input channels 1..10.
    RNN-based: batch size 128..512 step 8, sequence length 16..128 step 8.
    Transformer-based: batch 16..128 step 4, channels 1..10, seq 20..512.

    Memoized per family (it used to be rebuilt on every config draw);
    callers get a fresh dict, so the cache cannot be mutated through a
    returned mapping.
    """
    return dict(_domain_items(MODEL_FAMILY[model_name.lower()]))


def sample_config(model_name: str, rng: np.random.Generator,
                  base: ModelConfig | None = None) -> ModelConfig:
    """Draw one configuration from the model's Table II domain."""
    domain = config_domain(model_name)
    cfg = base or ModelConfig()
    draws = {key: int(rng.choice(vals)) for key, vals in domain.items()}
    return cfg.replace(**draws)


def _attempt_rng(seed: int, mi: int, di: int, k: int) -> np.random.Generator:
    """Independent RNG substream for attempt ``k`` of pair ``(mi, di)``.

    ``SeedSequence`` spawn keys give every (model, device, attempt) work
    item its own statistically independent stream that depends only on
    the item's identity — never on which worker evaluates it or in what
    order — which is what makes parallel generation bit-identical to
    serial for any worker count.
    """
    return np.random.default_rng(
        np.random.SeedSequence(entropy=seed, spawn_key=(mi, di, k)))


def _evaluate_attempt(item: tuple) -> dict:
    """Profile + encode one candidate configuration (pool worker body).

    Pure function of its inputs: the simulator and encoder are
    deterministic, so the result is identical wherever it runs.
    """
    name, cfg, device_name = item
    t0 = time.perf_counter()
    device = get_device(device_name)
    graph = build_model(name, cfg)
    try:
        prof = profile_graph(graph, device)
    except OutOfMemoryError:
        return {"oom": True, "pid": os.getpid(),
                "elapsed": time.perf_counter() - t0}
    features = encode_graph(graph, device)
    # Imported lazily: repro.perf reaches repro.core, which imports
    # this module at package-import time.
    from ..perf.batching import ensure_spd
    spd = ensure_spd(features)
    return {"oom": False, "profile": prof, "features": features,
            "spd": spd, "num_nodes": graph.num_nodes,
            "num_edges": graph.num_edges, "pid": os.getpid(),
            "elapsed": time.perf_counter() - t0}


class _LazyPool:
    """Multiprocessing pool that forks only on first real dispatch.

    Cache-warm generations (and single-item waves) never fan out, so
    they must not pay pool start-up: on a cold cache the fork cost
    amortizes over profiling work, on a warm one it would dominate.
    """

    def __init__(self, n_workers: int):
        self.n_workers = n_workers
        self._pool = None

    def map(self, fn, items: list) -> list:
        if self.n_workers <= 1 or len(items) < 2:
            return [fn(it) for it in items]
        if self._pool is None:
            import multiprocessing as mp
            try:
                ctx = mp.get_context("fork")
            except ValueError:  # pragma: no cover - non-fork platforms
                ctx = mp.get_context()
            self._pool = ctx.Pool(processes=self.n_workers)
        return self._pool.map(fn, items)

    def close(self) -> None:
        if self._pool is not None:
            self._pool.close()
            self._pool.join()
            self._pool = None


def generate_dataset(model_names: Sequence[str], devices: Sequence[DeviceSpec],
                     configs_per_model: int, seed: int = 0,
                     base: ModelConfig | None = None,
                     max_attempts_factor: int = 4,
                     aggregation: str = "mean",
                     workers: int | None = None,
                     cache_dir: str | None = None) -> Dataset:
    """Profile ``configs_per_model`` sampled configs of each model per device.

    OOM configurations are skipped and redrawn (up to
    ``max_attempts_factor * configs_per_model`` attempts), mirroring the
    paper's "run until OOM" boundary.  ``aggregation`` selects the kernel
    aggregation for the label (Section III-A: mean / max / min; the paper
    studies mean).

    ``workers=N`` (N > 1) fans candidate evaluations out over a
    ``multiprocessing`` pool.  Every attempt draws its configuration from
    a per-item ``SeedSequence`` substream and acceptance is replayed
    serially in attempt order, so the returned dataset is **bit-identical
    for any worker count** (including serial) at the same ``seed``.

    ``cache_dir`` enables the content-addressed profile/encoding cache
    (:class:`repro.perf.cache.ProfileCache`): repeated generations reuse
    on-disk results keyed by graph hash + device + simulator version.
    Cache hits return the exact arrays a fresh evaluation would produce,
    so caching never changes the dataset either.
    """
    cache = None
    if cache_dir is not None:
        from ..perf.cache import ProfileCache
        cache = ProfileCache(cache_dir)
    n_workers = int(workers or 1)
    pool = _LazyPool(n_workers)
    busy_s: dict[int, float] = {}
    try:
        ds = Dataset()
        for mi, name in enumerate(model_names):
            for di, device in enumerate(devices):
                _generate_pair(ds, mi, name, di, device, configs_per_model,
                               seed, base, max_attempts_factor,
                               aggregation, cache, pool, n_workers, busy_s)
    finally:
        pool.close()
    for pid, seconds in sorted(busy_s.items()):
        gauge("perf_worker_busy_seconds",
              "seconds of evaluation work per generation worker",
              worker=str(pid)).set(seconds)
    return ds


def _generate_pair(ds: Dataset, mi: int, name: str, di: int,
                   device: DeviceSpec, configs_per_model: int, seed: int,
                   base: ModelConfig | None, max_attempts_factor: int,
                   aggregation: str, cache, pool, n_workers: int,
                   busy_s: dict[int, float]) -> None:
    """Generate the samples of one (model, device) pair into ``ds``.

    Evaluation (profile + encode, parallelizable, order-free) is
    separated from acceptance (dedup -> OOM skip -> accept until quota,
    replayed serially in attempt order), so results cannot depend on
    worker count or scheduling.
    """
    limit = max_attempts_factor * configs_per_model
    cfgs = [sample_config(name, _attempt_rng(seed, mi, di, k), base)
            for k in range(limit)]
    results: dict[int, dict] = {}
    # Graphs built in the parent for cache-key lookups, kept so a miss
    # does not have to rebuild the same graph for the cache.put.
    graphs: dict[int, object] = {}
    evaluated_upto = 0
    # Wave size: enough to keep every worker busy while usually covering
    # the whole quota in one round trip.
    wave = max(configs_per_model, n_workers)

    def ensure_evaluated(k: int) -> None:
        nonlocal evaluated_upto
        if k < evaluated_upto:
            return
        hi = min(limit, max(k + 1, evaluated_upto + wave))
        pending: list[int] = []
        first_of: dict[tuple, int] = {}
        for j in range(evaluated_upto, hi):
            cfg = cfgs[j]
            ckey = (cfg.batch_size, cfg.in_channels, cfg.seq_len)
            if ckey in first_of:
                # Same config, same deterministic result: evaluate once.
                results[j] = results.get(first_of[ckey], {"alias": first_of[ckey]})
                continue
            first_of[ckey] = j
            if cache is not None:
                graphs[j] = graph = build_model(name, cfg)
                entry = cache.get(graph, device)
                if entry is not None:
                    if entry.oom:
                        results[j] = {"oom": True}
                    else:
                        results[j] = {
                            "oom": False, "profile": entry.profile,
                            "features": entry.features,
                            "num_nodes": entry.features.num_nodes,
                            "num_edges": entry.features.num_edges}
                    continue
            pending.append(j)
        if pending:
            items = [(name, cfgs[j], device.name) for j in pending]
            outs = pool.map(_evaluate_attempt, items)
            for j, out in zip(pending, outs):
                busy_s[out["pid"]] = busy_s.get(out["pid"], 0.0) \
                    + out["elapsed"]
                results[j] = out
                if cache is not None:
                    cache.put(graphs[j], device,
                              None if out["oom"] else out["profile"],
                              None if out["oom"] else out["features"],
                              spd=out.get("spd"))
        # Resolve aliases recorded before their target was evaluated.
        for j in range(evaluated_upto, hi):
            if "alias" in results[j]:
                results[j] = results[results[j]["alias"]]
        evaluated_upto = hi

    accepted = 0
    seen_cfgs: set[tuple] = set()
    for k in range(limit):
        if accepted >= configs_per_model:
            break
        ensure_evaluated(k)
        cfg = cfgs[k]
        key = (cfg.batch_size, cfg.in_channels, cfg.seq_len)
        if key in seen_cfgs:
            continue
        out = results[k]
        if out["oom"]:
            continue
        seen_cfgs.add(key)
        accepted += 1
        prof = out["profile"]
        ds.samples.append(GraphSample(
            features=out["features"],
            occupancy=prof.aggregate_occupancy(aggregation),
            nvml_utilization=prof.nvml_utilization,
            wall_time_s=prof.wall_time_s,
            model_name=name.lower(),
            device_name=device.name,
            config=cfg,
            num_nodes=out["num_nodes"],
            num_edges=out["num_edges"],
        ))
