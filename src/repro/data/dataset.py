"""Dataset generation: Table II hyperparameter domains and profiling labels.

Reproduces the paper's dataset protocol (Section IV-A): for every model a
stochastic strategy samples hyperparameter configurations from the family's
domain, each configuration is profiled (here: by the GPU simulator instead
of Nsight Compute), configurations that exceed device memory are discarded
(the paper ran "until OOM"), and the duration-weighted mean occupancy
becomes the regression label.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

import numpy as np

from ..features import GraphFeatures, encode_graph
from ..gpu import DeviceSpec, OutOfMemoryError, profile_graph
from ..models import MODEL_FAMILY, ModelConfig, build_model

__all__ = ["GraphSample", "Dataset", "sample_config", "generate_dataset",
           "SEEN_MODELS", "UNSEEN_MODELS", "config_domain"]

#: the paper's training ("seen") models — Section V's 80/20 split set
SEEN_MODELS = ("vit-t", "lstm", "rnn", "resnet-34", "resnet-18", "vgg-16",
               "vgg-13", "vgg-11", "alexnet", "lenet")

#: models whose configurations never appear in training (Section V)
UNSEEN_MODELS = ("vit-s", "bert", "convnext-b", "resnet-50")


@dataclass
class GraphSample:
    """One labelled example: encoded graph + measured occupancy."""

    features: GraphFeatures
    occupancy: float
    nvml_utilization: float
    wall_time_s: float
    model_name: str
    device_name: str
    config: ModelConfig
    num_nodes: int
    num_edges: int


@dataclass
class Dataset:
    """A list of samples with family/split bookkeeping."""

    samples: list[GraphSample] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.samples)

    def __iter__(self):
        return iter(self.samples)

    def __getitem__(self, i: int) -> GraphSample:
        return self.samples[i]

    def filter_models(self, names: Iterable[str]) -> "Dataset":
        keys = {n.lower() for n in names}
        return Dataset([s for s in self.samples
                        if s.model_name.lower() in keys])

    def filter_devices(self, names: Iterable[str]) -> "Dataset":
        keys = {n.lower() for n in names}
        return Dataset([s for s in self.samples
                        if s.device_name.lower() in keys])

    def split(self, train_frac: float,
              rng: np.random.Generator) -> tuple["Dataset", "Dataset"]:
        """Random split (the paper's 80/20 within seen models)."""
        idx = rng.permutation(len(self.samples))
        cut = int(round(train_frac * len(idx)))
        return (Dataset([self.samples[i] for i in idx[:cut]]),
                Dataset([self.samples[i] for i in idx[cut:]]))

    def labels(self) -> np.ndarray:
        return np.array([s.occupancy for s in self.samples])


def config_domain(model_name: str) -> dict[str, tuple[int, ...]]:
    """Table II hyperparameter domain for a model's family.

    CNN-based: batch size 16..128 step 4, input channels 1..10.
    RNN-based: batch size 128..512 step 8, sequence length 16..128 step 8.
    Transformer-based: batch 16..128 step 4, channels 1..10, seq 20..512.
    """
    family = MODEL_FAMILY[model_name.lower()]
    if family == "cnn":
        return {"batch_size": tuple(range(16, 129, 4)),
                "in_channels": tuple(range(1, 11))}
    if family == "rnn":
        return {"batch_size": tuple(range(128, 513, 8)),
                "seq_len": tuple(range(16, 129, 8))}
    return {"batch_size": tuple(range(16, 129, 4)),
            "in_channels": tuple(range(1, 11)),
            "seq_len": tuple(range(20, 513, 4))}


def sample_config(model_name: str, rng: np.random.Generator,
                  base: ModelConfig | None = None) -> ModelConfig:
    """Draw one configuration from the model's Table II domain."""
    domain = config_domain(model_name)
    cfg = base or ModelConfig()
    draws = {key: int(rng.choice(vals)) for key, vals in domain.items()}
    return cfg.replace(**draws)


def generate_dataset(model_names: Sequence[str], devices: Sequence[DeviceSpec],
                     configs_per_model: int, seed: int = 0,
                     base: ModelConfig | None = None,
                     max_attempts_factor: int = 4,
                     aggregation: str = "mean") -> Dataset:
    """Profile ``configs_per_model`` sampled configs of each model per device.

    OOM configurations are skipped and redrawn (up to
    ``max_attempts_factor * configs_per_model`` attempts), mirroring the
    paper's "run until OOM" boundary.  ``aggregation`` selects the kernel
    aggregation for the label (Section III-A: mean / max / min; the paper
    studies mean).
    """
    rng = np.random.default_rng(seed)
    ds = Dataset()
    for name in model_names:
        for device in devices:
            accepted = 0
            attempts = 0
            seen_cfgs: set[tuple] = set()
            limit = max_attempts_factor * configs_per_model
            while accepted < configs_per_model and attempts < limit:
                attempts += 1
                cfg = sample_config(name, rng, base)
                key = (cfg.batch_size, cfg.in_channels, cfg.seq_len)
                if key in seen_cfgs:
                    continue
                graph = build_model(name, cfg)
                try:
                    prof = profile_graph(graph, device)
                except OutOfMemoryError:
                    continue
                seen_cfgs.add(key)
                accepted += 1
                ds.samples.append(GraphSample(
                    features=encode_graph(graph, device),
                    occupancy=prof.aggregate_occupancy(aggregation),
                    nvml_utilization=prof.nvml_utilization,
                    wall_time_s=prof.wall_time_s,
                    model_name=name.lower(),
                    device_name=device.name,
                    config=cfg,
                    num_nodes=graph.num_nodes,
                    num_edges=graph.num_edges,
                ))
    return ds
