"""Dataset utilities: k-fold splits and summary statistics."""

from __future__ import annotations

from typing import Iterator

import numpy as np

from ..models import MODEL_FAMILY
from .dataset import Dataset

__all__ = ["k_fold", "summarize"]


def k_fold(dataset: Dataset, k: int,
           rng: np.random.Generator) -> Iterator[tuple[Dataset, Dataset]]:
    """Yield ``k`` (train, validation) splits covering every sample once.

    Fold sizes differ by at most one sample; the permutation is drawn from
    ``rng`` so folds are reproducible by seed.
    """
    if k < 2:
        raise ValueError("k must be at least 2")
    if len(dataset) < k:
        raise ValueError(f"dataset of {len(dataset)} cannot make {k} folds")
    idx = rng.permutation(len(dataset))
    folds = np.array_split(idx, k)
    for i in range(k):
        val_idx = set(folds[i].tolist())
        train = Dataset([dataset[j] for j in idx if j not in val_idx])
        val = Dataset([dataset[j] for j in folds[i]])
        yield train, val


def summarize(dataset: Dataset) -> dict:
    """Summary statistics: per-family and per-device label distributions.

    Returns a nested dict with counts, occupancy mean/min/max, and graph
    size ranges — the sanity view printed by the dataset CLI and examples.
    """
    if len(dataset) == 0:
        return {"count": 0, "families": {}, "devices": {}}

    def stats(samples) -> dict:
        occ = np.array([s.occupancy for s in samples])
        nodes = np.array([s.num_nodes for s in samples])
        return {
            "count": len(samples),
            "occupancy_mean": float(occ.mean()),
            "occupancy_min": float(occ.min()),
            "occupancy_max": float(occ.max()),
            "nodes_min": int(nodes.min()),
            "nodes_max": int(nodes.max()),
        }

    by_family: dict[str, list] = {}
    by_device: dict[str, list] = {}
    for s in dataset:
        family = MODEL_FAMILY.get(s.model_name, "unknown")
        by_family.setdefault(family, []).append(s)
        by_device.setdefault(s.device_name, []).append(s)
    return {
        "count": len(dataset),
        "overall": stats(list(dataset)),
        "families": {k: stats(v) for k, v in sorted(by_family.items())},
        "devices": {k: stats(v) for k, v in sorted(by_device.items())},
    }
