"""DNN-occu reproduction: GPU occupancy prediction for DL models with GNNs.

Reproduction of Mei et al., "GPU Occupancy Prediction of Deep Learning
Models Using Graph Neural Network" (IEEE CLUSTER 2023), built entirely on
NumPy/SciPy/NetworkX:

* :mod:`repro.tensor` / :mod:`repro.nn` -- autograd engine and NN layers;
* :mod:`repro.graph` -- the computation-graph IR (ONNX stand-in);
* :mod:`repro.models` -- builders for every Table II architecture;
* :mod:`repro.gpu` -- simulated GPU substrate: occupancy calculator, kernel
  lowering, profiler (Nsight Compute / NVML stand-in);
* :mod:`repro.features` / :mod:`repro.data` -- Table I features, datasets;
* :mod:`repro.core` -- the DNN-occu model and trainer;
* :mod:`repro.baselines` -- MLP, LSTM, Transformer, DNNPerf, BRP-NAS;
* :mod:`repro.sched` -- trace-driven co-location scheduling (Table VI);
* :mod:`repro.metrics` -- MRE/MSE and bucketing;
* :mod:`repro.obs` -- observability: tracing spans, metrics registry,
  structured logging, Chrome-trace / Prometheus exporters;
* :mod:`repro.resilience` -- fault injection, checkpoint/restart, and
  graceful-degradation fallback chains (docs/resilience.md).
"""

__version__ = "1.2.0"

from . import (baselines, core, data, features, fleet, graph, gpu, metrics,
               models, nn, obs, resilience, sched, tensor)

__all__ = [
    "tensor", "nn", "graph", "models", "gpu", "features", "data", "core",
    "baselines", "sched", "metrics", "obs", "resilience", "fleet",
    "__version__",
]
