"""DNN-occu: the full occupancy predictor (Section III-D, Fig. 3).

Composition: ANEE layer(s) encode node+edge features → Graphormer layers
propagate with structural attention → Set Transformer decoder pools the
node set → MLP head emits occupancy.  The head's sigmoid keeps predictions
in the physically valid (0, 1) occupancy range.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..features import GraphFeatures, edge_feature_dim, node_feature_dim
from ..nn import Linear
from ..tensor import Module, ModuleList, Tensor
from .anee import ANEELayer
from .graphormer import GraphormerLayer
from .set_transformer import SetTransformerDecoder

__all__ = ["DNNOccuConfig", "DNNOccu"]


@dataclass(frozen=True)
class DNNOccuConfig:
    """Architecture hyperparameters.

    Paper values (Section V): 1 ANEE layer, 2 Graphormer layers, 2 Set
    Transformer decoder SABs, hidden 256.  ``hidden=64`` is a practical
    CPU-scale default that preserves the architecture.
    """

    hidden: int = 64
    anee_layers: int = 1
    graphormer_layers: int = 2
    set_decoder_sabs: int = 2
    num_heads: int = 4
    pma_seeds: int = 1

    @classmethod
    def paper(cls) -> "DNNOccuConfig":
        """The exact configuration from the paper."""
        return cls(hidden=256, anee_layers=1, graphormer_layers=2,
                   set_decoder_sabs=2, num_heads=8, pma_seeds=1)


class DNNOccu(Module):
    """GNN-based GPU occupancy predictor for computation graphs."""

    #: duck-typing flag for serving layers: batched inference may route
    #: through the trace-and-replay executor (docs/compile.md)
    supports_traced_batches = True

    def __init__(self, config: DNNOccuConfig | None = None,
                 seed: int = 0, node_dim: int | None = None,
                 edge_dim: int | None = None):
        super().__init__()
        self.config = config or DNNOccuConfig()
        rng = np.random.default_rng(seed)
        cfg = self.config
        nd = node_dim if node_dim is not None else node_feature_dim()
        ed = edge_dim if edge_dim is not None else edge_feature_dim()

        anee = []
        n_in, e_in = nd, ed
        for _ in range(cfg.anee_layers):
            anee.append(ANEELayer(n_in, e_in, cfg.hidden, rng))
            n_in = e_in = cfg.hidden
        self.anee = ModuleList(anee)

        self.graphormer = ModuleList([
            GraphormerLayer(cfg.hidden, cfg.num_heads, 2 * cfg.hidden, rng)
            for _ in range(cfg.graphormer_layers)
        ])
        self.decoder = SetTransformerDecoder(
            cfg.hidden, cfg.num_heads, cfg.pma_seeds, cfg.set_decoder_sabs,
            rng)
        self.head_fc1 = Linear(cfg.pma_seeds * cfg.hidden, cfg.hidden, rng)
        self.head_fc2 = Linear(cfg.hidden, 1, rng)
        # Start the sigmoid near its linear region (predictions ~0.5):
        # large initial logits saturate the output and stall training.
        self.head_fc2.weight.data *= 0.1

    def forward(self, features: GraphFeatures) -> Tensor:
        """Predict occupancy for one encoded graph; returns a () Tensor."""
        h = Tensor(features.node_features)
        e = Tensor(features.edge_features)
        for layer in self.anee:
            h, e = layer(h, e, features.edge_index)

        spd = self._spd(features)
        for layer in self.graphormer:
            h = layer(h, spd)

        pooled = self.decoder(h)                      # (k, hidden)
        flat = pooled.reshape(1, pooled.shape[0] * pooled.shape[1])
        z = self.head_fc1(flat).relu()
        out = self.head_fc2(z).sigmoid()
        return out.reshape(())

    def forward_batch(self, batch) -> Tensor:
        """Vectorized forward over a collated minibatch; returns ``(B,)``.

        ``batch`` is a :class:`~repro.perf.batching.GraphBatch`.  Message
        passing runs on the packed disjoint union (edges never cross
        member graphs), attention on the padded dense view under the
        block-diagonal validity mask; predictions and gradients match a
        loop of :meth:`forward` calls within 1e-6 (see
        docs/performance.md for the equivalence argument).
        """
        h = Tensor(batch.node_features)
        e = Tensor(batch.edge_features)
        for layer in self.anee:
            h, e = layer.forward_batch(h, e, batch.edge_index,
                                       edgeless_mask=batch.edgeless_mask)

        hidden = h.shape[1]
        b, n_max = batch.node_mask.shape
        # pack -> pad: one appended zero row serves every padding slot,
        # so the gather's backward is a pure scatter-add.
        h_ext = Tensor.concat([h, Tensor(np.zeros((1, hidden)))], axis=0)
        h = h_ext[batch.pad_index].reshape(b, n_max, hidden)

        for layer in self.graphormer:
            h = layer(h, batch.spd, key_bias=batch.key_bias)

        pooled = self.decoder(h, key_bias=batch.key_bias)  # (B, k, hidden)
        flat = pooled.reshape(b, pooled.shape[1] * pooled.shape[2])
        z = self.head_fc1(flat).relu()
        out = self.head_fc2(z).sigmoid()                   # (B, 1)
        return out.reshape((b,))

    def predict(self, features: GraphFeatures) -> float:
        """Inference-only scalar prediction."""
        from ..tensor import no_grad
        with no_grad():
            return float(self.forward(features).data)

    def traced_executor(self):
        """This model's lazily created trace-and-replay executor."""
        # Imported lazily: core must not depend on trace at import time.
        from ..tensor.trace import TracedExecutor
        if getattr(self, "_trace_exec", None) is None:
            self._trace_exec = TracedExecutor(self)
        return self._trace_exec

    def predict_batch(self, features_list, batch_size: int | None = None,
                      traced: bool = False) -> np.ndarray:
        """Inference-only predictions for many graphs in one forward.

        With ``batch_size`` set, members are size-bucketed (sorted by node
        count, chunked, results scattered back to input order) so each
        chunk pads to a near-uniform size instead of the global maximum.

        With ``traced=True`` each collated chunk replays a compiled op
        tape instead of building a ``Tensor`` graph (docs/compile.md),
        falling back to the eager forward on any trace or replay error
        and honoring the ``REPRO_NO_TRACE`` escape hatch.
        """
        # Imported lazily: core must not depend on perf at import time.
        from ..perf.batching import bucket_by_size, collate
        from ..tensor import no_grad
        from ..tensor.trace import tracing_disabled
        feats = list(features_list)
        if not feats:
            return np.zeros(0)
        use_trace = traced and not tracing_disabled()
        with no_grad():
            if batch_size is None:
                return self._forward_collated(collate(feats), use_trace)
            out = np.zeros(len(feats))
            for idx, chunk in bucket_by_size(feats, batch_size):
                out[idx] = self._forward_collated(collate(chunk),
                                                  use_trace)
            return out

    def _forward_collated(self, batch, use_trace: bool) -> np.ndarray:
        """One collated forward: traced replay with eager fallback."""
        if use_trace:
            from ..obs.metrics import counter
            from ..tensor.trace import TraceError
            try:
                return self.traced_executor().run(batch)
            except TraceError:
                # GradModeError is deliberately not caught: a traced
                # call under grad is a caller bug, not a cache miss.
                counter("trace_fallback_total",
                        "batched forwards that fell back to eager after "
                        "a trace or replay error").inc()
        return np.array(self.forward_batch(batch).data)

    @staticmethod
    def _spd(features: GraphFeatures) -> np.ndarray:
        """Cached shortest-path-distance buckets for the graph.

        Delegates to :func:`repro.perf.batching.ensure_spd`, whose memo is
        keyed by the *content hash* of the topology — a fresh
        ``GraphFeatures`` object for an already-seen structure reuses the
        matrix instead of recomputing it per object.
        """
        # Imported lazily: core must not depend on perf at import time.
        from ..perf.batching import ensure_spd
        return ensure_spd(features)
