"""Set Transformer decoder (Lee et al. 2019), as specified in Section III-D:

    MAB(X, Y)  = LN(H̄ + FFN(H̄)),  H̄ = LN(X + MHA(X, Y, Y))
    SAB(X)     = MAB(X, X)
    PMA_k(H)   = MAB(S, FFN(H))        with k learnable seeds S
    Decoder(H) = FFN(SAB(PMA_k(H)))

The decoder pools a variable-size node set into ``k`` fixed vectors through
attention — a permutation-invariant, size-invariant readout, which is the
architectural source of DNN-occu's cross-model generalization.
"""

from __future__ import annotations

import numpy as np

from ..nn import FeedForward, LayerNorm, MultiHeadAttention
from ..tensor import Module, ModuleList, Parameter, Tensor, init

__all__ = ["MAB", "SAB", "PMA", "SetTransformerDecoder"]


class MAB(Module):
    """Multihead Attention Block with post-LN residuals."""

    def __init__(self, dim: int, num_heads: int, rng: np.random.Generator):
        super().__init__()
        self.attn = MultiHeadAttention(dim, num_heads, rng)
        self.ffn = FeedForward(dim, dim, rng)
        self.ln1 = LayerNorm(dim)
        self.ln2 = LayerNorm(dim)

    def forward(self, x: Tensor, y: Tensor,
                key_bias: "np.ndarray | None" = None) -> Tensor:
        """``key_bias`` — additive pre-softmax mask on the attention onto
        ``y`` (``(B, 1, n)``, ``-1e30`` on padded slots); used by the
        batched execution path so pooling never reads padding."""
        h = self.ln1(x + self.attn(x, y, attn_bias=key_bias))
        return self.ln2(h + self.ffn(h))


class SAB(Module):
    """Set Attention Block: self-attention MAB."""

    def __init__(self, dim: int, num_heads: int, rng: np.random.Generator):
        super().__init__()
        self.mab = MAB(dim, num_heads, rng)

    def forward(self, x: Tensor) -> Tensor:
        return self.mab(x, x)


class PMA(Module):
    """Pooling by Multihead Attention with ``k`` learnable seed vectors."""

    def __init__(self, dim: int, num_heads: int, k: int,
                 rng: np.random.Generator):
        super().__init__()
        self.seeds = Parameter(init.xavier_uniform((k, dim), rng))
        self.ffn = FeedForward(dim, dim, rng)
        self.mab = MAB(dim, num_heads, rng)

    def forward(self, h: Tensor,
                key_bias: "np.ndarray | None" = None) -> Tensor:
        seeds = self.seeds
        if h.ndim == 3:
            # Broadcast the shared seeds over the batch axis; the
            # broadcast-add routes each member's seed gradient back into
            # the single shared parameter.
            seeds = self.seeds.reshape(1, *self.seeds.shape) \
                + Tensor(np.zeros((h.shape[0], 1, 1)))
        return self.mab(seeds, self.ffn(h), key_bias=key_bias)


class SetTransformerDecoder(Module):
    """PMA_k → SAB × num_sabs → FFN, producing (k, dim)."""

    def __init__(self, dim: int, num_heads: int, k: int, num_sabs: int,
                 rng: np.random.Generator):
        super().__init__()
        self.pma = PMA(dim, num_heads, k, rng)
        self.sabs = ModuleList([SAB(dim, num_heads, rng)
                                for _ in range(num_sabs)])
        self.out_ffn = FeedForward(dim, dim, rng)

    def forward(self, h: Tensor,
                key_bias: "np.ndarray | None" = None) -> Tensor:
        x = self.pma(h, key_bias=key_bias)
        for sab in self.sabs:
            x = sab(x)
        return self.out_ffn(x)
