"""Seed ensembles: average the predictions of independently trained models.

Small-data GNN training has nontrivial seed variance; the standard remedy
is a seed ensemble.  :class:`EnsemblePredictor` wraps K trained members and
averages their outputs; :func:`train_ensemble` builds and trains the
members from a factory.
"""

from __future__ import annotations

from typing import Callable, Sequence

from ..data import Dataset
from ..features import GraphFeatures
from ..tensor import Module, Tensor
from .trainer import TrainConfig, Trainer

__all__ = ["EnsemblePredictor", "train_ensemble"]


class EnsemblePredictor(Module):
    """Average of member predictions; drop-in for a single predictor."""

    def __init__(self, members: Sequence[Module]):
        super().__init__()
        if not members:
            raise ValueError("ensemble needs at least one member")
        self.members = list(members)

    def forward(self, features: GraphFeatures) -> Tensor:
        out = self.members[0](features)
        for m in self.members[1:]:
            out = out + m(features)
        return out * (1.0 / len(self.members))

    def predict(self, features: GraphFeatures) -> float:
        from ..tensor import no_grad
        with no_grad():
            return float(self.forward(features).data)

    def predict_with_std(self, features: GraphFeatures) -> tuple[float, float]:
        """Mean and member-disagreement std — a cheap uncertainty estimate
        usable as a safety margin by risk-aware packing policies."""
        from ..tensor import no_grad
        with no_grad():
            preds = [float(m(features).data) for m in self.members]
        n = len(preds)
        mean = sum(preds) / n
        var = sum((p - mean) ** 2 for p in preds) / n
        return mean, var ** 0.5

    def named_parameters(self, prefix: str = ""):
        for i, m in enumerate(self.members):
            yield from m.named_parameters(prefix=f"{prefix}members.{i}.")


def train_ensemble(factory: Callable[[int], Module], train: Dataset,
                   config: TrainConfig, num_members: int = 3,
                   val: Dataset | None = None) -> EnsemblePredictor:
    """Train ``num_members`` models from ``factory(seed)`` and wrap them.

    Each member gets a distinct model seed *and* data-order seed.
    """
    if num_members <= 0:
        raise ValueError("num_members must be positive")
    members = []
    for k in range(num_members):
        model = factory(config.seed + k)
        member_cfg = TrainConfig(
            lr=config.lr, weight_decay=config.weight_decay,
            epochs=config.epochs, batch_size=config.batch_size,
            grad_clip=config.grad_clip, seed=config.seed + k,
            lr_decay=config.lr_decay, lr_min=config.lr_min,
            patience=config.patience)
        Trainer(model, member_cfg).fit(train, val=val)
        members.append(model)
    return EnsemblePredictor(members)
