"""DNN-occu: ANEE + Graphormer + Set Transformer occupancy predictor."""

from .anee import ANEELayer
from .graphormer import GraphormerLayer, MAX_SPD, spatial_encoding
from .set_transformer import MAB, PMA, SAB, SetTransformerDecoder
from .model import DNNOccu, DNNOccuConfig
from .trainer import TrainConfig, Trainer, TrainHistory, fit_best_of
from .ensemble import EnsemblePredictor, train_ensemble

__all__ = [
    "ANEELayer", "GraphormerLayer", "spatial_encoding", "MAX_SPD",
    "MAB", "SAB", "PMA", "SetTransformerDecoder",
    "DNNOccu", "DNNOccuConfig",
    "Trainer", "TrainConfig", "TrainHistory", "fit_best_of",
    "EnsemblePredictor", "train_ensemble",
]
