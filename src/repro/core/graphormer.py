"""Graphormer layers: transformer encoding with structural attention bias.

Graphormer (Ying et al. 2021) injects graph structure into full self-
attention through a learnable *spatial encoding*: each attention logit
(i, j) receives a bias indexed by the shortest-path distance between nodes
i and j.  We use undirected SPD capped at :data:`MAX_SPD`, one extra bucket
for unreachable pairs, shared across heads.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp
from scipy.sparse.csgraph import shortest_path

from ..nn import TransformerEncoderLayer
from ..tensor import Module, Parameter, Tensor

__all__ = ["GraphormerLayer", "spatial_encoding", "MAX_SPD"]

#: shortest-path distances are clipped here; +1 bucket for "unreachable"
MAX_SPD = 8


def spatial_encoding(num_nodes: int, edge_index: np.ndarray) -> np.ndarray:
    """(n, n) int matrix of clipped undirected shortest-path distances.

    Bucket ``MAX_SPD + 1`` marks unreachable pairs.  The self-distance is 0.
    """
    n = num_nodes
    if n == 0:
        return np.zeros((0, 0), dtype=np.intp)
    if edge_index.shape[1] == 0:
        d = np.full((n, n), MAX_SPD + 1, dtype=np.intp)
        np.fill_diagonal(d, 0)
        return d
    src, dst = edge_index
    data = np.ones(len(src))
    adj = sp.coo_matrix((data, (src, dst)), shape=(n, n))
    dist = shortest_path(adj.tocsr(), method="D", directed=False,
                         unweighted=True)
    unreachable = ~np.isfinite(dist)
    dist[unreachable] = 0  # placeholder; bucket assigned below
    out = np.minimum(dist, MAX_SPD).astype(np.intp)
    out[unreachable] = MAX_SPD + 1
    return out


class GraphormerLayer(Module):
    """Pre-LN transformer block + learnable SPD bias (Section III-D):

        h̄ = MHA(LN(h)) + h
        h  = FFN(LN(h̄)) + h̄
    """

    def __init__(self, dim: int, num_heads: int, ffn_dim: int,
                 rng: np.random.Generator):
        super().__init__()
        self.block = TransformerEncoderLayer(dim, num_heads, ffn_dim, rng)
        # One learnable bias per SPD bucket (0..MAX_SPD, unreachable).
        self.spd_bias = Parameter(np.zeros(MAX_SPD + 2))

    def forward(self, h: Tensor, spd: np.ndarray,
                key_bias: "np.ndarray | None" = None) -> Tensor:
        """``h``: (n, dim) node states; ``spd``: (n, n) distance buckets.

        Batched execution passes ``h`` as (B, n_max, dim) padded states
        with ``spd`` as (B, n_max, n_max) buckets and ``key_bias`` as the
        (B, 1, n_max) additive validity mask (``-1e30`` on padded key
        slots), which keeps attention block-diagonal: a node can never
        attend to a padding slot or to another graph in the batch.
        """
        bias = self.spd_bias[spd]  # gather -> (n, n) | (B, n, n) Tensor
        if key_bias is not None:
            bias = bias + key_bias
        return self.block(h, attn_bias=bias)
