"""Training harness shared by DNN-occu and every baseline predictor.

MSE loss over per-graph predictions, Adam with the paper's
``lr = weight_decay = 1e-4`` defaults (overridable), per-minibatch gradient
accumulation (graphs have different sizes, so there is no tensor batching),
and gradient clipping for the recurrent baseline's stability.
"""

from __future__ import annotations

import time
from dataclasses import asdict, dataclass, field

import numpy as np

from ..data import Dataset
from ..metrics import evaluate_predictions
from ..obs import get_logger
from ..obs.metrics import counter, gauge
from ..obs.tracing import span
from ..tensor import Adam, Module, Tensor, clip_grad_norm, no_grad

#: TrainConfig fields that shape the optimization trajectory; a resumed
#: run must match its checkpoint on all of them to stay bit-identical.
_RESUME_CRITICAL = ("lr", "weight_decay", "epochs", "batch_size",
                    "grad_clip", "seed", "lr_decay", "lr_min", "patience")

_CKPT_VERSION = 1

_log = get_logger("core.trainer")

__all__ = ["TrainConfig", "Trainer", "TrainHistory", "fit_best_of"]


@dataclass(frozen=True)
class TrainConfig:
    """Optimization hyperparameters (paper defaults).

    ``lr_decay="cosine"`` anneals the learning rate to ``lr_min`` over the
    epoch budget; ``patience`` enables early stopping on the validation
    MSE (requires a ``val`` dataset in :meth:`Trainer.fit`).
    """

    lr: float = 1e-4
    weight_decay: float = 1e-4
    epochs: int = 30
    batch_size: int = 8
    grad_clip: float = 5.0
    seed: int = 0
    lr_decay: str = "none"      # "none" | "cosine"
    lr_min: float = 1e-5
    patience: int | None = None
    #: lint every sample's features/label before the first epoch and
    #: fail fast on non-finite values or out-of-range labels
    preflight: bool = True


@dataclass
class TrainHistory:
    """Per-epoch training (and optional validation) loss curve.

    ``epoch_time_s`` keeps the wall-clock seconds each epoch took — the
    training-cost axis of every loss curve, and what the observability
    layer reads back out.
    """

    train_loss: list[float] = field(default_factory=list)
    val_loss: list[float] = field(default_factory=list)
    epoch_time_s: list[float] = field(default_factory=list)

    @property
    def total_time_s(self) -> float:
        """Wall-clock seconds spent fitting, summed over epochs."""
        return float(sum(self.epoch_time_s))


class Trainer:
    """Fits any predictor exposing ``forward(GraphFeatures) -> Tensor``."""

    def __init__(self, model: Module, config: TrainConfig | None = None):
        self.model = model
        self.config = config or TrainConfig()
        self.optimizer = Adam(model.parameters(), lr=self.config.lr,
                              weight_decay=self.config.weight_decay)
        self.history = TrainHistory()

    @staticmethod
    def _preflight(train: Dataset, val: Dataset | None) -> None:
        """Lint every sample before touching the optimizer.

        One non-finite feature (F001) or out-of-range label (F002)
        silently poisons every weight it backpropagates through, so the
        whole run is rejected up front; rejections are counted as
        ``lint_preflight_failures_total{gate="trainer"}``.
        """
        # Imported lazily: repro.lint reaches the gpu package, which the
        # tensor/core layers must not depend on at import time.
        from ..lint import preflight_features
        with span("trainer.preflight"):
            for name, ds in (("train", train), ("val", val)):
                if ds is None:
                    continue
                for i in range(len(ds)):
                    sample = ds[i]
                    preflight_features(
                        sample.features, label=sample.occupancy,
                        origin=f"{name}[{i}]:{sample.model_name}")

    # -- checkpoint/restart (durability against preemption) ------------- #
    def _save_checkpoint(self, path: str, next_epoch: int,
                         rng: np.random.Generator, best_val: float,
                         best_state: dict | None, stale: int) -> None:
        """Atomically persist everything :meth:`fit` needs to resume."""
        from ..resilience.checkpoint import save_checkpoint
        arrays: dict[str, np.ndarray] = {}
        for name, arr in self.model.state_dict().items():
            arrays[f"model__{name}"] = arr
        if best_state is not None:
            for name, arr in best_state.items():
                arrays[f"best__{name}"] = np.asarray(arr)
        opt = self.optimizer.state_dict()
        for i, m in enumerate(opt["m"]):
            arrays[f"opt_m__{i}"] = m
        for i, v in enumerate(opt["v"]):
            arrays[f"opt_v__{i}"] = v
        arrays["hist__train_loss"] = np.asarray(
            self.history.train_loss, dtype=np.float64)
        arrays["hist__val_loss"] = np.asarray(
            self.history.val_loss, dtype=np.float64)
        arrays["hist__epoch_time_s"] = np.asarray(
            self.history.epoch_time_s, dtype=np.float64)
        meta = {
            "kind": "trainer", "version": _CKPT_VERSION,
            "epoch": next_epoch,
            "config": {k: getattr(self.config, k)
                       for k in _RESUME_CRITICAL},
            "rng_state": rng.bit_generator.state,
            "best_val": best_val, "stale": stale,
            "has_best": best_state is not None,
            "opt_t": opt["t"], "opt_lr": opt["lr"],
        }
        save_checkpoint(path, arrays, meta, component="trainer")

    def _restore_checkpoint(self, path: str,
                            rng: np.random.Generator) \
            -> tuple[int, float, dict | None, int]:
        """Load a checkpoint into the trainer; returns resume state.

        Raises :class:`~repro.resilience.CheckpointError` on corruption
        and ``ValueError`` when the checkpoint was produced under a
        different optimization configuration (resuming would silently
        diverge from the uninterrupted run).
        """
        from ..resilience.checkpoint import CheckpointError, load_checkpoint
        arrays, meta = load_checkpoint(path, component="trainer")
        if meta.get("kind") != "trainer" \
                or meta.get("version") != _CKPT_VERSION:
            raise CheckpointError(
                f"{path!r} is not a trainer checkpoint "
                f"(kind={meta.get('kind')!r}, "
                f"version={meta.get('version')!r})")
        ours = {k: getattr(self.config, k) for k in _RESUME_CRITICAL}
        theirs = meta.get("config", {})
        if ours != theirs:
            diff = sorted(k for k in _RESUME_CRITICAL
                          if ours.get(k) != theirs.get(k))
            raise ValueError(
                f"cannot resume from {path!r}: TrainConfig differs on "
                f"{diff}; a resumed run must use the checkpoint's "
                f"optimization settings")
        split: dict[str, dict[str, np.ndarray]] = \
            {"model": {}, "best": {}, "opt_m": {}, "opt_v": {},
             "hist": {}}
        for key, arr in arrays.items():
            prefix, _, rest = key.partition("__")
            split[prefix][rest] = arr
        self.model.load_state_dict(split["model"])
        n = len(self.optimizer.params)
        self.optimizer.load_state_dict({
            "t": meta["opt_t"], "lr": meta["opt_lr"],
            "m": [split["opt_m"][str(i)] for i in range(n)],
            "v": [split["opt_v"][str(i)] for i in range(n)]})
        self.history.train_loss = [float(x)
                                   for x in split["hist"]["train_loss"]]
        self.history.val_loss = [float(x)
                                 for x in split["hist"]["val_loss"]]
        self.history.epoch_time_s = [
            float(x) for x in split["hist"]["epoch_time_s"]]
        rng.bit_generator.state = meta["rng_state"]
        best_state = ({name: arr for name, arr in split["best"].items()}
                      if meta["has_best"] else None)
        _log.info("resumed from checkpoint", extra={
            "path": path, "epoch": meta["epoch"]})
        return (int(meta["epoch"]), float(meta["best_val"]), best_state,
                int(meta["stale"]))

    def fit(self, train: Dataset, val: Dataset | None = None, *,
            batched: bool = False,
            checkpoint_path: str | None = None,
            checkpoint_every: int = 1,
            resume_from: str | None = None) -> TrainHistory:
        """Train for ``config.epochs``; returns the loss history.

        ``batched=True`` runs each minibatch as ONE vectorized
        forward/backward through the model's ``forward_batch`` (see
        :mod:`repro.perf.batching`) instead of ``batch_size`` Python-level
        passes.  Epoch order, minibatch composition, and the loss are
        unchanged; gradients match the per-graph path within float
        tolerance, so both paths train to the same optimum.

        ``checkpoint_path`` enables durability: every
        ``checkpoint_every`` epochs the full training state (weights,
        optimizer moments, RNG, loss history, early-stopping bookkeeping)
        is written atomically with a content checksum.  A run killed
        mid-training and restarted with ``resume_from=`` continues from
        the last checkpoint and finishes **bit-identically** to an
        uninterrupted run with the same config.
        """
        if len(train) == 0:
            raise ValueError("empty training dataset")
        if batched and not hasattr(self.model, "forward_batch"):
            raise TypeError(
                f"batched=True requires a model with forward_batch(); "
                f"{type(self.model).__name__} only supports the "
                f"per-graph path")
        collate = None
        if batched:
            # Imported lazily: core must not depend on perf at import time.
            from ..perf.batching import collate
        cfg = self.config
        if cfg.lr_decay not in ("none", "cosine"):
            raise ValueError(f"unknown lr_decay {cfg.lr_decay!r}")
        if cfg.patience is not None and (val is None or len(val) == 0):
            raise ValueError("early stopping requires a validation set")
        if checkpoint_every < 1:
            raise ValueError("checkpoint_every must be >= 1")
        if cfg.preflight:
            self._preflight(train, val)
        rng = np.random.default_rng(cfg.seed)
        start_epoch = 0
        best_val = np.inf
        best_state = None
        stale = 0
        if resume_from is not None:
            start_epoch, best_val, best_state, stale = \
                self._restore_checkpoint(resume_from, rng)
        self.model.train()
        # Hoisted metric handles (no-ops when observability is off).
        loss_gauge = gauge("trainer_loss", "last epoch mean train loss")
        lr_gauge = gauge("trainer_lr", "current learning rate")
        for epoch in range(start_epoch, cfg.epochs):
            epoch_t0 = time.perf_counter()
            stop = False
            with span("trainer.epoch", epoch=epoch):
                if cfg.lr_decay == "cosine":
                    frac = epoch / max(1, cfg.epochs - 1)
                    self.optimizer.lr = cfg.lr_min \
                        + 0.5 * (cfg.lr - cfg.lr_min) \
                        * (1.0 + np.cos(np.pi * frac))
                order = rng.permutation(len(train))
                epoch_loss = 0.0
                for start in range(0, len(order), cfg.batch_size):
                    batch = order[start:start + cfg.batch_size]
                    self.optimizer.zero_grad()
                    if batched:
                        # perf: per-sample-ok — O(batch_size) gather
                        # feeding the vectorized forward, not a loop
                        # over the dataset.
                        samples = [train[i] for i in batch]
                        preds = self.model.forward_batch(
                            collate([s.features for s in samples]))
                        ys = Tensor(np.array(
                            [s.occupancy for s in samples]))
                        loss = ((preds - ys) ** 2).sum() \
                            * (1.0 / len(batch))
                    else:
                        loss = None
                        # perf: per-sample-ok — reference path kept for
                        # models without forward_batch and for the
                        # batched-equivalence tests.
                        for i in batch:
                            sample = train[i]
                            pred = self.model(sample.features)
                            err = (pred - sample.occupancy) ** 2
                            loss = err if loss is None else loss + err
                        loss = loss * (1.0 / len(batch))
                    loss.backward()
                    clip_grad_norm(self.model.parameters(), cfg.grad_clip)
                    self.optimizer.step()
                    epoch_loss += float(loss.data) * len(batch)
                train_loss = epoch_loss / len(train)
                self.history.train_loss.append(train_loss)
                if val is not None and len(val) > 0:
                    with span("trainer.validate", epoch=epoch):
                        val_mse = self.evaluate(val)["mse"]
                    self.model.train()  # evaluate() switches to eval mode
                    self.history.val_loss.append(val_mse)
                    if cfg.patience is not None:
                        if val_mse < best_val - 1e-12:
                            best_val = val_mse
                            best_state = self.model.state_dict()
                            stale = 0
                        else:
                            stale += 1
                            if stale > cfg.patience:
                                stop = True
            self.history.epoch_time_s.append(
                time.perf_counter() - epoch_t0)
            loss_gauge.set(train_loss)
            lr_gauge.set(self.optimizer.lr)
            _log.debug("epoch done", extra={
                "epoch": epoch, "train_loss": round(train_loss, 6),
                "wall_s": round(self.history.epoch_time_s[-1], 4)})
            if checkpoint_path is not None and \
                    ((epoch + 1) % checkpoint_every == 0 or stop
                     or epoch + 1 == cfg.epochs):
                with span("trainer.checkpoint", epoch=epoch):
                    self._save_checkpoint(checkpoint_path, epoch + 1,
                                          rng, best_val, best_state,
                                          stale)
            if stop:
                break
        if best_state is not None:
            self.model.load_state_dict(best_state)
            # Counted so interrupted-vs-resumed traces can be compared:
            # both runs must restore the same best epoch exactly once.
            counter("trainer_best_state_restores_total",
                    "early-stopping best-weights restorations").inc()
        self.model.eval()
        return self.history

    def predict(self, dataset: Dataset) -> np.ndarray:
        """Inference-only predictions for every sample in ``dataset``."""
        self.model.eval()
        with no_grad():
            # perf: per-sample-ok — evaluation reference path; eval
            # sets mix graph sizes, where dense batching mostly pads
            # (see perf_batch_pad_waste).  Batched inference is
            # DNNOccu.predict_batch.
            return np.array([float(self.model(s.features).data)
                             for s in dataset])

    def evaluate(self, dataset: Dataset) -> dict[str, float]:
        """MRE (percent) and MSE on ``dataset``, plus the wall-clock
        seconds :meth:`fit` has spent so far (``fit_time_s``)."""
        pred = self.predict(dataset)
        out = evaluate_predictions(pred, dataset.labels())
        out["fit_time_s"] = self.history.total_time_s
        return out


def fit_best_of(factory, train: Dataset, config: TrainConfig,
                tries: int = 2, val: Dataset | None = None) -> Trainer:
    """Train ``tries`` models from ``factory(seed)``; keep the best.

    Small-data GNN training occasionally lands in a bad basin; restarting
    from a different seed and selecting by *training* loss (or validation
    MSE when ``val`` is given) recovers without ever touching test data.
    Returns the winning, already-fitted :class:`Trainer`.
    """
    if tries < 1:
        raise ValueError("tries must be at least 1")
    best: Trainer | None = None
    best_score = np.inf
    for k in range(tries):
        cfg = TrainConfig(
            lr=config.lr, weight_decay=config.weight_decay,
            epochs=config.epochs, batch_size=config.batch_size,
            grad_clip=config.grad_clip, seed=config.seed + k,
            lr_decay=config.lr_decay, lr_min=config.lr_min,
            patience=config.patience, preflight=config.preflight)
        trainer = Trainer(factory(cfg.seed), cfg)
        hist = trainer.fit(train, val=val)
        score = (trainer.evaluate(val)["mse"] if val is not None
                 and len(val) else hist.train_loss[-1])
        if score < best_score:
            best_score = score
            best = trainer
    return best
