"""ANEE: attention-based node-edge encoder (Section III-D, from DNNPerf).

Implements the paper's equations, vectorized over edges:

    h̄_u      = LeakyReLU(W_u h_u^{i-1})
    e_l      = σ(aᵀ (h̄_s ‖ h̄_d) · W_e e_l^{i-1})        for l = (s, d)
    f(u',l') = Softmax(W_m e_{l'}) ⊙ h̄_{u'}
    h_u      = LeakyReLU( Σ_{l'=(u',u)} f(u', l') )

The scalar edge attention ``aᵀ(h̄_s‖h̄_d)`` gates the linearly transformed
edge state; the softmaxed ``W_m e`` acts as a feature-wise gate on the
source node embedding before aggregation into the destination node.
"""

from __future__ import annotations

import numpy as np

from ..tensor import Module, Parameter, Tensor, init

__all__ = ["ANEELayer"]


class ANEELayer(Module):
    """One round of attention-based node/edge message passing.

    Parameters
    ----------
    node_in, edge_in:
        Input feature widths of nodes and edges.
    hidden:
        Output width for both node and edge states (N1 in the paper).
    """

    def __init__(self, node_in: int, edge_in: int, hidden: int,
                 rng: np.random.Generator):
        super().__init__()
        self.hidden = hidden
        self.w_u = Parameter(init.xavier_uniform((hidden, node_in), rng))
        self.w_e = Parameter(init.xavier_uniform((hidden, edge_in), rng))
        self.w_m = Parameter(init.xavier_uniform((hidden, hidden), rng))
        self.attn_a = Parameter(init.xavier_uniform((2 * hidden, 1), rng))

    def forward(self, h: Tensor, e: Tensor,
                edge_index: np.ndarray) -> tuple[Tensor, Tensor]:
        """One message-passing round.

        ``h``: (n, node_in) node states; ``e``: (m, edge_in) edge states;
        ``edge_index``: (2, m) int array of (src, dst).
        Returns updated ``(h', e')`` of widths ``hidden``.
        """
        return self.forward_batch(h, e, edge_index)

    def forward_batch(self, h: Tensor, e: Tensor, edge_index: np.ndarray,
                      edgeless_mask: "np.ndarray | None" = None,
                      ) -> tuple[Tensor, Tensor]:
        """Message passing over a packed disjoint union of graphs.

        Because aggregation follows ``edge_index`` and edges never cross
        graph boundaries, running the packed node/edge arrays of a whole
        minibatch through this method is mathematically identical to one
        :meth:`forward` call per member graph — with one corner: a graph
        with *no* edges returns its node transform ``h̄`` from
        :meth:`forward`, whereas scatter-aggregation would zero its rows.
        ``edgeless_mask`` — an ``(n, 1)`` 0/1 float array marking the
        nodes of edgeless member graphs — substitutes the ``h̄`` rows for
        exactly those nodes, preserving per-graph semantics.
        """
        n = h.shape[0]
        src, dst = edge_index[0], edge_index[1]

        h_bar = (h @ self.w_u.T).leaky_relu()          # (n, hidden)
        if e.shape[0] == 0:
            # Isolated-node graph(s): only the node transform applies.
            return h_bar, e

        h_src = h_bar[src]                              # (m, hidden)
        h_dst = h_bar[dst]                              # (m, hidden)
        pair = Tensor.concat([h_src, h_dst], axis=1)    # (m, 2*hidden)
        score = pair @ self.attn_a                      # (m, 1)
        e_new = (score * (e @ self.w_e.T)).sigmoid()    # (m, hidden)

        gate = (e_new @ self.w_m.T).softmax(axis=-1)    # (m, hidden)
        messages = gate * h_src                         # (m, hidden)
        agg = Tensor.scatter_add(messages, dst, n)      # (n, hidden)
        h_new = agg.leaky_relu()
        if edgeless_mask is not None and edgeless_mask.any():
            keep = edgeless_mask
            h_new = h_new * (1.0 - keep) + h_bar * keep
        return h_new, e_new
