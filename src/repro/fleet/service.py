"""FleetService: the supervised multi-worker prediction router.

Requests enter :meth:`FleetService.predict_async`, are keyed by
:func:`repro.perf.cache.graph_key`, and consistent-hash to their home
worker (:class:`~repro.fleet.hashring.HashRing`) so each worker's
private LRUs stay hot on a disjoint slice of the key space.  Below the
LRUs sits the shared on-disk :class:`~repro.perf.PredictionCache` tier;
below everything, the :class:`~repro.resilience.FallbackPredictor`
chain.  The full resolution ladder for one ticket:

1. home worker (its LRU → shared tier → forward);
2. on worker death/hang: retry-with-rehash to the next ring candidate,
   up to ``max_retries`` re-dispatches;
3. on no candidates / retries exhausted / post-close: shared tier read
   from the parent, then the fallback chain — synchronously, so every
   ticket resolves no matter what the fleet is doing.

Robustness comes from the :class:`~repro.fleet.supervisor.Supervisor`:
per-tick heartbeat checks declare silent workers hung past
``hang_deadline_s``, dead workers leave the ring immediately (orphaned
requests re-dispatch), and restarts come back with
:class:`~repro.resilience.ExponentialBackoff` delays under a fresh
*incarnation* number — late results from a dead incarnation are
detected and discarded (``fleet_stale_results_total``), never served.

Lock order (checked statically by the C003 lint and dynamically by the
lockwatch): ``FleetService._cond`` → ``HashRing._lock`` / handle
``_cond``.  The supervisor's condition is never held across a call
into the service (callbacks fire lock-free), and worker callbacks into
the service hold no handle locks, so the hierarchy is acyclic.
"""

from __future__ import annotations

import time
from dataclasses import replace

from ..gpu import DeviceSpec, get_device
from ..lint.sanitizer import new_condition
from ..obs import get_logger
from ..obs.context import use_context
from ..obs.metrics import Histogram, counter, gauge, histogram
from ..obs.tracing import span
from ..perf.cache import PredictionCache, graph_key
from ..resilience import (ExponentialBackoff, FallbackPredictor,
                          FaultConfig, default_fallback_chain)
from ..serve.batcher import Ticket
from .hashring import HashRing
from .supervisor import Supervisor
from .worker import (InProcessWorker, ProcessWorker, WorkerBusyError,
                     WorkerSpec, WorkerUnavailableError,
                     default_model_factory)

__all__ = ["FleetService"]

_log = get_logger("fleet.service")

#: fleet_request_latency_seconds buckets: LRU hits through a failover
#: retry that waits out the hang deadline plus a restart backoff.
_LATENCY_BUCKETS = (0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
                    0.1, 0.25, 0.5, 1.0, 2.5)


class _Pending:
    """One in-flight request: its ticket plus routing state."""

    __slots__ = ("ticket", "graph", "device", "device_name", "key",
                 "start", "wid", "inc", "attempts")

    def __init__(self, ticket, graph, device, device_name, key, start):
        self.ticket = ticket
        self.graph = graph
        self.device = device
        self.device_name = device_name
        self.key = key
        self.start = start
        #: current assignment; None between dispatches
        self.wid: "int | None" = None
        self.inc = -1
        #: dispatch attempts consumed (re-dispatches after deaths)
        self.attempts = 0


class FleetService:
    """N supervised workers behind a consistent-hash router.

    Parameters
    ----------
    num_workers:
        Fleet size.  Worker ids are ``0..num_workers-1`` and stable
        across restarts (an id keeps its ring position; only its
        incarnation number advances).
    mode:
        ``"thread"`` (default) hosts workers as in-process threads —
        deterministic, cheap, the mode tests and chaos benchmarks use.
        ``"process"`` spawns real child processes over pipes.
    model_factory / model_kwargs:
        Picklable factory (imported by qualified name in spawned
        children) and its kwargs; every worker builds an identical
        model, so any worker's answer for a graph is *the* answer.
    device:
        Default :class:`~repro.gpu.DeviceSpec` (or registry name) for
        requests; per-call overrides are routed by device *name*
        through the device registry.
    shared_cache_dir:
        Directory for the shared :class:`~repro.perf.PredictionCache`
        tier below the per-worker LRUs; ``None`` disables it.
    fallback:
        :class:`~repro.resilience.FallbackPredictor` chain — the
        terminal tier of the resolution ladder.
    fault_config / fault_seed:
        Worker-chaos injection (``worker_kill_prob`` /
        ``worker_hang_prob``), deterministic per
        (worker, incarnation, request index).
    max_retries:
        Re-dispatches a request may consume after worker deaths before
        it degrades to the fallback ladder.
    hang_deadline_s:
        Heartbeat silence past this declares a worker hung.  Workers
        beat between requests, not during a forward pass, so this must
        exceed the worst-case *single-request* service time for the
        workload (chaos tests with small graphs can run it much
        tighter than the conservative default).
    restart_backoff:
        :class:`~repro.resilience.ExponentialBackoff` for restart
        delays (default: 10 ms base, cap 1 s).
    """

    def __init__(self, *, num_workers: int = 2, mode: str = "thread",
                 model_factory=default_model_factory,
                 model_kwargs: "dict | None" = None,
                 device: "DeviceSpec | str" = "A100",
                 shared_cache_dir: "str | None" = None,
                 cache_size: int = 1024,
                 fallback: "FallbackPredictor | None" = None,
                 fault_config: "FaultConfig | None" = None,
                 fault_seed: int = 0,
                 max_retries: int = 3, max_inflight: int = 256,
                 hb_interval_s: float = 0.02,
                 hang_deadline_s: float = 5.0,
                 restart_backoff: "ExponentialBackoff | None" = None,
                 supervisor_tick_s: float = 0.02,
                 ring_replicas: int = 64):
        if num_workers < 1:
            raise ValueError("num_workers must be >= 1")
        if mode not in ("thread", "process"):
            raise ValueError(f"unknown fleet mode {mode!r}")
        self.mode = mode
        self.num_workers = int(num_workers)
        self.max_retries = int(max_retries)
        self.hang_deadline_s = float(hang_deadline_s)
        self._device = get_device(device) if isinstance(device, str) \
            else device
        self.fallback = fallback if fallback is not None \
            else default_fallback_chain()
        self._shared = PredictionCache(shared_cache_dir) \
            if shared_cache_dir else None
        self._spec_proto = WorkerSpec(
            worker_id=-1, incarnation=0,
            device_name=self._device.name,
            model_factory=model_factory,
            model_kwargs=dict(model_kwargs or {}),
            cache_size=cache_size, shared_cache_dir=shared_cache_dir,
            fault_config=fault_config, fault_seed=fault_seed,
            hb_interval_s=hb_interval_s, max_inflight=max_inflight)

        self._cond = new_condition("FleetService._cond")
        self._ring = HashRing(replicas=ring_replicas)
        self._handles: dict = {}
        self._incarnations: dict = {}
        self._pending: dict = {}
        self._req_seq = 0
        self._requests = 0
        self._deaths = 0
        self._restarts = 0
        self._retries = 0
        self._stale = 0
        self._served: dict = {}
        self._fallbacks: dict = {}
        self._closed = False
        self._latency = Histogram(
            "fleet_request_latency_seconds",
            "end-to-end fleet request latency",
            buckets=_LATENCY_BUCKETS)

        # workers first (the supervisor's first health tick must see a
        # fully-populated fleet, and callbacks guard on a None
        # supervisor until it exists)
        self._supervisor: "Supervisor | None" = None
        for wid in range(self.num_workers):
            handle = self._make_handle(wid, 0)
            self._incarnations[wid] = 0
            self._handles[wid] = handle
            self._ring.add(wid)
        self._supervisor = Supervisor(
            health_cb=self._check_health,
            restart_cb=self._restart_worker,
            backoff=restart_backoff, tick_s=supervisor_tick_s)

    # -- request paths --------------------------------------------------- #
    def predict(self, graph, device=None,
                timeout: "float | None" = None) -> float:
        """Predict occupancy for one graph, blocking until resolved.

        With ``timeout``, an unresolved ticket at the deadline is shed:
        the parent-side ladder (shared tier, then fallback chain)
        answers synchronously and wins the ticket's one-shot race, so a
        late worker result is discarded rather than double-delivered.
        """
        ticket = self.predict_async(graph, device)
        if timeout is None:
            return ticket.result()
        try:
            return ticket.result(timeout)
        except TimeoutError:
            return self._deadline_shed(ticket, graph, device)

    def predict_async(self, graph, device=None) -> Ticket:
        """Enqueue one request; returns its one-shot :class:`Ticket`."""
        start = time.monotonic()
        counter("fleet_requests_total",
                "prediction requests accepted by the fleet").inc()
        dev, dev_name = self._resolve_device(device)
        ticket = Ticket()
        entry = _Pending(ticket, graph, dev, dev_name,
                         graph_key(graph, dev), start)
        with self._cond:
            self._requests += 1
            closed = self._closed
            if not closed:
                req_id = self._req_seq
                self._req_seq += 1
                self._pending[req_id] = entry
                gauge("fleet_pending_requests",
                      "fleet requests awaiting a worker result").set(
                          len(self._pending))
        if closed:
            self._resolve_fallback(entry, "closed")
            return ticket
        with span("fleet.dispatch",
                  graph=getattr(graph, "name", "") or "<graph>"):
            self._dispatch(req_id)
        return ticket

    def predict_many(self, graphs, device=None) -> list:
        """Bulk convenience: fan every graph out, gather in order."""
        tickets = [self.predict_async(g, device) for g in graphs]
        return [t.result() for t in tickets]

    #: make_job protocol: call me with (graph, device), not features.
    wants_graph = True

    def __call__(self, graph, device=None) -> tuple[float, float]:
        """Workload-predictor protocol: ``(mean, std)`` with std 0."""
        return self.predict(graph, device), 0.0

    # -- routing ---------------------------------------------------------- #
    def _resolve_device(self, device) -> tuple:
        if device is None:
            return self._device, self._device.name
        if isinstance(device, str):
            dev = get_device(device)
            return dev, dev.name
        return device, getattr(device, "name", None)

    def _dispatch(self, req_id: int) -> None:
        """Place one pending request on a live worker, or degrade.

        Candidates come from the ring in consistent order — the home
        worker first, then the stable failover sequence.  Dead workers
        are not candidates (death removed them from the ring), so a
        re-dispatch after a death *is* the rehash to the next sibling.

        When every worker is momentarily dead (a chaos burst caught the
        whole fleet between death and backoff-restart) the request
        stays *parked* — pending with no assignment — and
        :meth:`_restart_worker` re-dispatches it the instant a worker
        rejoins the ring.  Only bounded conditions degrade immediately:
        all live workers at capacity (``overloaded``) or a closed
        service (``closed``).
        """
        reason = None
        entry = None
        with self._cond:
            entry = self._pending.get(req_id)
            if entry is None:
                return
            if self._closed:
                self._pending.pop(req_id, None)
                self._cond.notify_all()
                reason = "closed"
            else:
                placed = False
                busy = False
                for wid in self._ring.candidates(entry.key):
                    handle = self._handles.get(wid)
                    if handle is None:
                        continue
                    try:
                        handle.submit(req_id, entry.graph,
                                      entry.device_name)
                    except WorkerBusyError:
                        busy = True
                        continue
                    except WorkerUnavailableError:
                        continue
                    entry.wid = wid
                    entry.inc = handle.incarnation
                    placed = True
                    break
                if not placed:
                    if busy:
                        self._pending.pop(req_id, None)
                        self._cond.notify_all()
                        reason = "overloaded"
                    else:
                        # fleet-wide outage: park unassigned until a
                        # restart rejoins the ring
                        entry.wid = None
        if reason is not None:
            self._resolve_fallback(entry, reason)

    # -- worker callbacks (no handle locks held when these fire) ---------- #
    def _on_result(self, worker_id: int, incarnation: int, req_id: int,
                   value: float, tier: str) -> None:
        with self._cond:
            entry = self._pending.get(req_id)
            if entry is None or entry.wid != worker_id \
                    or entry.inc != incarnation:
                self._stale += 1
                entry = None
            else:
                self._pending.pop(req_id)
                self._served[tier] = self._served.get(tier, 0) + 1
                gauge("fleet_pending_requests",
                      "fleet requests awaiting a worker result").set(
                          len(self._pending))
                self._cond.notify_all()
        if entry is None:
            counter("fleet_stale_results_total",
                    "late results from a detached worker incarnation, "
                    "discarded").inc()
            return
        counter("fleet_served_total",
                "fleet requests resolved by a worker, by cache tier",
                tier=tier).inc()
        if self._shared is not None:
            if tier == "shared":
                counter("fleet_shared_cache_hits_total",
                        "fleet requests served from the shared on-disk "
                        "prediction tier").inc()
            elif tier == "forward":
                counter("fleet_shared_cache_misses_total",
                        "fleet forwards that missed the shared on-disk "
                        "prediction tier").inc()
        self._observe_latency(entry.start)
        sup = self._supervisor
        if sup is not None:
            sup.note_healthy(worker_id)
        with use_context(entry.ticket.ctx), \
                span("fleet.resolve", worker=worker_id, tier=tier):
            entry.ticket.set_result(float(value))

    def _on_death(self, worker_id: int, incarnation: int,
                  kind: str) -> None:
        """Detach a dead worker; reroute its orphans; schedule restart.

        Called from handle reader threads (kill/error/exit), from the
        supervisor's health tick (hang), or redundantly from both — the
        incarnation check makes every call after the first a no-op.
        """
        with self._cond:
            handle = self._handles.get(worker_id)
            if handle is None or handle.incarnation != incarnation:
                return
            self._handles.pop(worker_id)
            self._ring.remove(worker_id)
            self._deaths += 1
            closed = self._closed
            orphans = []
            exhausted = []
            for rid, e in list(self._pending.items()):
                if e.wid != worker_id or e.inc != incarnation:
                    continue
                e.wid = None
                e.attempts += 1
                if e.attempts > self.max_retries:
                    exhausted.append(self._pending.pop(rid))
                else:
                    orphans.append(rid)
            self._retries += len(orphans)
            if exhausted:
                self._cond.notify_all()
        handle.kill()
        counter("fleet_worker_deaths_total",
                "fleet worker deaths, by kind", kind=kind).inc()
        _log.warning("worker died; rerouting orphans", extra={
            "worker": worker_id, "incarnation": incarnation,
            "kind": kind, "orphans": len(orphans) + len(exhausted)})
        sup = self._supervisor
        if sup is not None and not closed:
            sup.schedule_restart(worker_id)
        for rid in orphans:
            counter("fleet_retries_total",
                    "orphaned requests rerouted to a sibling worker "
                    "after a worker death").inc()
            self._dispatch(rid)
        for entry in exhausted:
            self._resolve_fallback(entry, "retries_exhausted")

    # -- supervisor callbacks (no supervisor locks held) ------------------ #
    def _check_health(self, now: float) -> None:
        with self._cond:
            snapshot = list(self._handles.items())
        hung = [(wid, h.incarnation) for wid, h in snapshot
                if h.heartbeat_age(now) > self.hang_deadline_s]
        for wid, inc in hung:
            _log.warning("worker heartbeat stale; declaring hung",
                         extra={"worker": wid,
                                "deadline_s": self.hang_deadline_s})
            self._on_death(wid, inc, "hang")

    def _restart_worker(self, worker_id: int) -> None:
        with self._cond:
            if self._closed or worker_id in self._handles:
                return
            inc = self._incarnations.get(worker_id, 0) + 1
            self._incarnations[worker_id] = inc
            self._restarts += 1
        # the build (for process mode: a spawn) happens outside every
        # lock; close() racing in is resolved by the re-check below
        handle = self._make_handle(worker_id, inc)
        stale = False
        with self._cond:
            if self._closed:
                stale = True
            else:
                self._handles[worker_id] = handle
                self._ring.add(worker_id)
        if stale:
            handle.kill()
            handle.close()
            return
        counter("fleet_worker_restarts_total",
                "fleet workers restarted by the supervisor").inc()
        _log.info("worker restarted", extra={
            "worker": worker_id, "incarnation": inc})
        # drain the parked backlog: requests that found an empty ring
        # during a fleet-wide outage dispatch onto the fresh worker
        with self._cond:
            parked = [rid for rid, e in self._pending.items()
                      if e.wid is None]
        for rid in parked:
            self._dispatch(rid)

    def _make_handle(self, worker_id: int, incarnation: int):
        spec = replace(self._spec_proto, worker_id=worker_id,
                       incarnation=incarnation)
        if self.mode == "process":
            return ProcessWorker(spec, self._on_result, self._on_death)
        return InProcessWorker(spec, self._on_result, self._on_death)

    # -- degradation ------------------------------------------------------ #
    def _resolve_fallback(self, entry: _Pending, reason: str) -> None:
        """Terminal ladder: shared tier, then the fallback chain."""
        value = None
        tier = None
        if self._shared is not None:
            shared_value = self._shared.get(entry.key)
            if shared_value is not None:
                value, tier = float(shared_value), "shared_tier"
        if value is None:
            with span("fleet.fallback", reason=reason) as sp:
                mean, _std = self.fallback(entry.graph, entry.device)
                sp.set_attr(tier=self.fallback.last_tier)
            value, tier = float(mean), self.fallback.last_tier
        with self._cond:
            self._fallbacks[reason] = self._fallbacks.get(reason, 0) + 1
        counter("fleet_fallbacks_total",
                "fleet tickets resolved by the fallback chain, "
                "by reason", reason=reason).inc()
        _log.warning("request degraded to fallback ladder", extra={
            "reason": reason, "tier": tier,
            "graph": getattr(entry.graph, "name", "") or "<graph>"})
        self._observe_latency(entry.start)
        entry.ticket.set_result(value)

    def _deadline_shed(self, ticket: Ticket, graph, device) -> float:
        """Caller-side deadline expiry: degrade now, discard late wins."""
        with self._cond:
            for rid, e in list(self._pending.items()):
                if e.ticket is ticket:
                    self._pending.pop(rid)
                    self._cond.notify_all()
                    break
        dev, _name = self._resolve_device(device)
        key = graph_key(graph, dev)
        value = None
        if self._shared is not None:
            shared_value = self._shared.get(key)
            if shared_value is not None:
                value = float(shared_value)
        if value is None:
            mean, _std = self.fallback(graph, dev)
            value = float(mean)
        if not ticket.set_result(value):
            return ticket.result()
        with self._cond:
            self._fallbacks["deadline"] = \
                self._fallbacks.get("deadline", 0) + 1
        counter("fleet_fallbacks_total",
                "fleet tickets resolved by the fallback chain, "
                "by reason", reason="deadline").inc()
        return value

    def _observe_latency(self, start: float) -> float:
        elapsed = time.monotonic() - start
        self._latency.observe(elapsed)
        histogram("fleet_request_latency_seconds",
                  "end-to-end fleet request latency",
                  buckets=_LATENCY_BUCKETS).observe(elapsed)
        return elapsed

    # -- introspection / lifecycle ---------------------------------------- #
    def latency_quantiles(self) -> dict:
        return {"p50": self._latency.quantile(0.50),
                "p90": self._latency.quantile(0.90),
                "p99": self._latency.quantile(0.99)}

    def stats(self) -> dict:
        """Snapshot of fleet counters and per-worker status."""
        with self._cond:
            workers = {
                wid: {"incarnation": h.incarnation, "alive": h.alive()}
                for wid, h in sorted(self._handles.items())}
            out = {
                "mode": self.mode,
                "requests": self._requests,
                "pending": len(self._pending),
                "served": dict(self._served),
                "fallbacks": dict(self._fallbacks),
                "deaths": self._deaths,
                "restarts": self._restarts,
                "retries": self._retries,
                "stale_results": self._stale,
                "closed": self._closed,
                "ring_members": self._ring.members(),
                "workers": workers,
            }
        out["latency"] = self.latency_quantiles()
        out["fallback_tiers"] = self.fallback.counts()
        return out

    def close(self, drain_timeout_s: float = 10.0) -> None:
        """Graceful drain, then stop everything.  Idempotent.

        Stops accepting (post-close requests degrade synchronously),
        waits up to ``drain_timeout_s`` for in-flight tickets to
        resolve — worker deaths during the drain still reroute, so a
        chaos-ridden drain converges — then stops the supervisor and
        workers.  Whatever is *still* unresolved past the deadline is
        degraded through the fallback ladder: close never strands a
        ticket.
        """
        with self._cond:
            if self._closed:
                return
            self._closed = True
            deadline = time.monotonic() + drain_timeout_s
            while self._pending and time.monotonic() < deadline:
                self._cond.wait(0.05)
            leftovers = list(self._pending.values())
            self._pending.clear()
            handles = list(self._handles.values())
            self._handles.clear()
            for wid in self._ring.members():
                self._ring.remove(wid)
        sup = self._supervisor
        if sup is not None:
            sup.close()
        for handle in handles:
            handle.kill()
        for handle in handles:
            handle.close()
        for entry in leftovers:
            self._resolve_fallback(entry, "closed")

    def __enter__(self) -> "FleetService":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
