"""Fleet supervision: health ticks and backoff-scheduled restarts.

The supervisor owns one monitor thread and two callbacks injected by
the fleet service:

* ``health_cb(now)`` — invoked every tick; the service checks each
  worker's heartbeat age against the hung-worker deadline and detaches
  any that went silent.
* ``restart_cb(worker_id)`` — invoked when a scheduled restart comes
  due; the service builds the next incarnation and re-adds it to the
  hash ring.

Restart delays come from :class:`repro.resilience.ExponentialBackoff`
keyed by a per-worker attempt counter — a crash-looping worker backs
off exponentially instead of thrashing spawn/rebuild, and
:meth:`note_healthy` resets the counter once the new incarnation
actually serves a request.

Locking: everything mutable lives under the supervisor's own
condition, and **both callbacks fire with no supervisor locks held**
(due work is popped first, then invoked), so the service is free to
take its own condition inside them without ever nesting the two —
the lock order in docs/fleet.md stays acyclic by construction.
"""

from __future__ import annotations

import threading
import time

from ..lint.sanitizer import new_condition
from ..obs import get_logger
from ..resilience import ExponentialBackoff

__all__ = ["Supervisor"]

_log = get_logger("fleet.supervisor")


class Supervisor:
    """Monitor thread: run health checks, fire due restarts."""

    def __init__(self, *, health_cb, restart_cb,
                 backoff: "ExponentialBackoff | None" = None,
                 tick_s: float = 0.02):
        if tick_s <= 0:
            raise ValueError("tick_s must be positive")
        self._health_cb = health_cb
        self._restart_cb = restart_cb
        self.backoff = backoff if backoff is not None \
            else ExponentialBackoff(base_s=0.01, factor=2.0, cap_s=1.0)
        self.tick_s = float(tick_s)
        self._cond = new_condition("Supervisor._cond")
        #: worker_id -> monotonic due time of its pending restart
        self._due: dict[int, float] = {}
        #: worker_id -> consecutive restart attempts (backoff exponent)
        self._attempts: dict[int, int] = {}
        self._stopped = False
        self._thread = threading.Thread(
            target=self._run, name="repro-fleet-supervisor", daemon=True)
        self._thread.start()

    # -- client side ---------------------------------------------------- #
    def schedule_restart(self, worker_id: int,
                         now: "float | None" = None) -> float:
        """Queue a restart for ``worker_id``; returns the delay used."""
        t = now if now is not None else time.monotonic()
        with self._cond:
            attempt = self._attempts.get(worker_id, 0) + 1
            self._attempts[worker_id] = attempt
            delay = self.backoff.delay(attempt)
            self._due[worker_id] = t + delay
            self._cond.notify_all()
        _log.info("restart scheduled", extra={
            "worker": worker_id, "attempt": attempt,
            "delay_s": round(delay, 4)})
        return delay

    def note_healthy(self, worker_id: int) -> None:
        """Reset the backoff counter: the incarnation is serving."""
        with self._cond:
            self._attempts.pop(worker_id, None)

    def pending_restarts(self) -> list[int]:
        with self._cond:
            return sorted(self._due)

    def attempts(self, worker_id: int) -> int:
        with self._cond:
            return self._attempts.get(worker_id, 0)

    def close(self, timeout: float = 5.0) -> None:
        """Stop the monitor thread and join it; idempotent."""
        with self._cond:
            self._stopped = True
            self._cond.notify_all()
        self._thread.join(timeout)

    def __enter__(self) -> "Supervisor":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- monitor thread -------------------------------------------------- #
    def _run(self) -> None:
        while True:
            with self._cond:
                if self._stopped:
                    return
                self._cond.wait(self.tick_s)
                if self._stopped:
                    return
                now = time.monotonic()
                ready = [wid for wid, due in self._due.items()
                         if due <= now]
                for wid in ready:
                    self._due.pop(wid, None)
            # Callbacks run with no supervisor locks held: the service
            # takes its own condition (and handle locks below it)
            # inside these without ever nesting against ours.  A
            # callback exception must not kill supervision — log it and
            # keep ticking (the restart is consumed either way; the
            # next death reschedules it).
            for wid in ready:
                try:
                    self._restart_cb(wid)
                except Exception as exc:
                    _log.warning("restart callback failed", extra={
                        "worker": wid, "error": type(exc).__name__})
            try:
                self._health_cb(now)
            except Exception as exc:
                _log.warning("health callback failed", extra={
                    "error": type(exc).__name__})
