"""repro.fleet: supervised multi-worker predictor fleet.

The horizontal-scale layer above :mod:`repro.serve` (docs/fleet.md):
N workers — in-process threads or spawned child processes — each
hosting a warm :class:`~repro.serve.ModelSession`, behind a router
that consistent-hashes :func:`repro.perf.cache.graph_key` to workers
so their private LRUs stay hot on disjoint key ranges, over a shared
content-addressed on-disk prediction tier.

The robustness core: a supervisor with heartbeat health checks and a
hung-worker deadline, automatic restarts under
:class:`~repro.resilience.ExponentialBackoff`, retry-with-rehash to a
sibling on worker death, graceful drain on shutdown, and last-resort
degradation into the :class:`~repro.resilience.FallbackPredictor`
chain — every ticket resolves even under worker-kill chaos.
"""

from .hashring import HashRing
from .service import FleetService
from .supervisor import Supervisor
from .worker import (InProcessWorker, ProcessWorker, WorkerBusyError,
                     WorkerCore, WorkerSpec, WorkerUnavailableError,
                     default_model_factory)

__all__ = ["FleetService", "HashRing", "Supervisor", "InProcessWorker",
           "ProcessWorker", "WorkerCore", "WorkerSpec",
           "WorkerBusyError", "WorkerUnavailableError",
           "default_model_factory"]
