"""Consistent-hash ring routing graph keys to fleet workers.

The fleet's router must send the same graph to the same worker so that
worker's private result/encoding LRUs run hot on a disjoint slice of
the key space — and it must keep doing so *stably* as workers die and
rejoin.  A modulo assignment reshuffles almost every key when the
worker count changes; a consistent-hash ring with virtual nodes moves
only the keys that mapped to the departed worker (~1/N of the space),
so a single worker death does not flush the other N-1 LRUs.

Keys are :func:`repro.perf.cache.graph_key` sha256 hexdigests; their
leading 64 bits are already uniform, so the key side needs no second
hash.  Worker placement hashes ``"worker#replica"`` the same way.
:meth:`HashRing.candidates` walks clockwise from the key's point and
returns *distinct* workers in ring order — candidate 0 is the home
worker, candidates 1.. are the deterministic failover sequence the
service retries through when the home worker dies mid-request.

All methods take the ring's own lock: the service mutates membership
from supervisor-driven restart paths while client threads route, and
the C001/C002 concurrency lint holds this class to the same guard
discipline as the rest of the serving path.
"""

from __future__ import annotations

import bisect
import hashlib

from ..lint.sanitizer import new_lock

__all__ = ["HashRing"]


def _point(token: str) -> int:
    """A 64-bit ring position for an arbitrary token."""
    return int(hashlib.sha256(token.encode("utf-8")).hexdigest()[:16], 16)


def key_point(key: str) -> int:
    """Ring position of a request key.

    ``graph_key`` hexdigests are uniform already — slice the leading 64
    bits directly; anything non-hex is hashed like a worker token.
    """
    try:
        return int(key[:16], 16)
    except ValueError:
        return _point(key)


class HashRing:
    """Virtual-node consistent-hash ring over integer worker ids."""

    def __init__(self, replicas: int = 64):
        if replicas < 1:
            raise ValueError("replicas must be >= 1")
        self.replicas = int(replicas)
        self._lock = new_lock("HashRing._lock")
        #: sorted, parallel: vnode ring positions and their worker ids
        self._points: list[int] = []
        self._owners: list[int] = []
        self._members: set[int] = set()

    def _vnode_points(self, worker_id: int) -> list[int]:
        return [_point(f"worker-{worker_id}#{i}")
                for i in range(self.replicas)]

    def add(self, worker_id: int) -> None:
        """Place ``worker_id``'s virtual nodes; idempotent."""
        with self._lock:
            if worker_id in self._members:
                return
            self._members.add(worker_id)
            for p in self._vnode_points(worker_id):
                idx = bisect.bisect_left(self._points, p)
                self._points.insert(idx, p)
                self._owners.insert(idx, worker_id)

    def remove(self, worker_id: int) -> None:
        """Drop ``worker_id`` from the ring; idempotent."""
        with self._lock:
            if worker_id not in self._members:
                return
            self._members.discard(worker_id)
            keep = [(p, w) for p, w in zip(self._points, self._owners)
                    if w != worker_id]
            self._points = [p for p, _ in keep]
            self._owners = [w for _, w in keep]

    def candidates(self, key: str, limit: int | None = None) -> list[int]:
        """Distinct workers clockwise from ``key``'s ring position.

        ``candidates(key)[0]`` is the key's home worker; the rest are
        the stable failover order.  Empty when the ring is empty.
        """
        with self._lock:
            if not self._points:
                return []
            want = len(self._members) if limit is None \
                else min(limit, len(self._members))
            start = bisect.bisect_right(self._points, key_point(key))
            out: list[int] = []
            n = len(self._owners)
            for i in range(n):
                w = self._owners[(start + i) % n]
                if w not in out:
                    out.append(w)
                    if len(out) >= want:
                        break
            return out

    def members(self) -> list[int]:
        with self._lock:
            return sorted(self._members)

    def __contains__(self, worker_id: int) -> bool:
        with self._lock:
            return worker_id in self._members

    def __len__(self) -> int:
        with self._lock:
            return len(self._members)
