"""Fleet benchmark suite behind ``repro fleet-bench`` and the bench gates.

Three suites, emitted as ``BENCH_fleet.json``:

* **scaling** — the same distinct-graph workload through fleets of
  1/2/4 thread-mode workers.  Two numbers per width: the **measured**
  wall time on this host, and a **modeled makespan** computed from the
  measured per-request service times and the *actual* consistent-hash
  assignment of each request's ``graph_key`` to a worker (so hash skew
  is in the model, not assumed away).  On a multi-core host the two
  agree; on a single-core CI box thread-mode workers timeshare one CPU
  and the measured wall cannot scale, which is why the headline
  scaling gate is on the modeled makespan — ``meta.cpu_count`` is
  recorded next to both so nobody mistakes one for the other (see
  docs/fleet.md).
* **chaos** — the workload through a 4-worker fleet under
  :class:`~repro.resilience.FaultInjector` worker-kill **and**
  worker-hang chaos.  Every ticket must resolve to a finite occupancy
  in ``[0, 1]`` (zero dropped requests), and once the storm passes
  every killed worker must have been restarted and re-joined the hash
  ring with no restarts still pending.
* **shared** — two fleets run back-to-back over one shared
  content-addressed disk tier: the second fleet's workers start with
  cold LRUs but must serve the repeat workload entirely from the
  shared tier, paying zero forwards.

Gates (merged into ``repro bench --check``): modeled 4-worker speedup
>= 2.5x, chaos completes with zero dropped requests, the post-chaos
fleet recovers to full strength, and the shared tier fully absorbs the
second fleet's workload.
"""

from __future__ import annotations

import os
import tempfile
import threading
import time

from ..features import encode_graph
from ..gpu import get_device
from ..models import ModelConfig, build_model
from ..perf.bench import BENCH_VERSION
from ..perf.cache import graph_key
from ..resilience import FaultConfig
from .hashring import HashRing
from .service import FleetService
from .worker import default_model_factory

__all__ = ["run_fleet_benchmarks", "evaluate_fleet_gates",
           "format_fleet_summary", "FLEET_SUITES"]

FLEET_SUITES = ("scaling", "chaos", "shared")

#: small-graph zoo slice: fleet routing/failover overhead is per
#: request, which small graphs keep visible (large graphs are
#: forward-bound on every width and speedups trivially converge)
_FLEET_MODELS = ("lenet", "alexnet", "rnn", "lstm")
_BATCH_SIZES = (1, 2, 4, 8, 16, 32)
_WIDTHS = (1, 2, 4)


def _workload(count: int) -> list:
    """``count`` structurally distinct graphs (model x batch-size grid)."""
    graphs = []
    for bs in _BATCH_SIZES:
        for name in _FLEET_MODELS:
            graphs.append(build_model(name, ModelConfig(batch_size=bs)))
            if len(graphs) == count:
                return graphs
    raise ValueError(f"grid exhausted below {count} graphs")


def bench_scaling(scale: float = 1.0) -> dict:
    """Measured wall + hash-aware modeled makespan at widths 1/2/4."""
    device = get_device("A100")
    # Floored at 24 graphs regardless of scale: with fewer keys the
    # hash-skew in the makespan model is dominated by quantization
    # noise and the 2.5x gate would be judging luck, not routing.
    graphs = _workload(min(32, max(24, int(round(24 * scale)))))
    keys = [graph_key(g, device) for g in graphs]

    # Per-request service time of the worker's forward path (encode +
    # predict on a warm model) — the quantity each worker's busy-sum is
    # made of.  Best-of-2 to shave scheduler noise.
    model = default_model_factory()
    model.predict(encode_graph(graphs[0], device))  # warm lazy paths
    service_s = []
    for g in graphs:
        best = None
        for _ in range(2):
            t0 = time.perf_counter()
            model.predict(encode_graph(g, device))
            dt = time.perf_counter() - t0
            best = dt if best is None else min(best, dt)
        service_s.append(best)
    total_service_s = sum(service_s)

    measured = {}
    modeled = {}
    for width in _WIDTHS:
        svc = FleetService(num_workers=width, mode="thread")
        try:
            t0 = time.perf_counter()
            svc.predict_many(graphs)
            wall = time.perf_counter() - t0
            served = svc.stats()["served"]
        finally:
            svc.close()
        measured[str(width)] = {
            "wall_s": wall,
            "predictions_per_s": len(graphs) / wall,
            "served": served,
        }
        # The model replays the *actual* ring assignment: each request
        # lands on the worker that owns its graph_key, and the fleet
        # finishes when the busiest worker drains.  Hash skew between
        # workers is therefore measured, not idealized away.
        ring = HashRing()
        for wid in range(width):
            ring.add(wid)
        busy = {wid: 0.0 for wid in range(width)}
        for key, dt in zip(keys, service_s):
            busy[ring.candidates(key, limit=1)[0]] += dt
        makespan = max(busy.values())
        modeled[str(width)] = {
            "makespan_s": makespan,
            "busy_s": {str(w): b for w, b in sorted(busy.items())},
            "speedup": total_service_s / makespan,
        }

    return {
        "graphs": len(graphs),
        "total_service_s": total_service_s,
        "per_request_service_s": {
            "min": min(service_s), "max": max(service_s),
            "mean": total_service_s / len(service_s)},
        "measured": measured,
        "modeled": modeled,
        "modeled_speedup_at_4": modeled["4"]["speedup"],
        "measured_speedup_at_4": (measured["1"]["wall_s"]
                                  / measured["4"]["wall_s"]),
        "cpu_count": os.cpu_count(),
    }


def bench_chaos(scale: float = 1.0) -> dict:
    """Worker-kill + worker-hang chaos: zero drops, full recovery."""
    graphs = _workload(8)
    passes = max(4, int(round(6 * scale)))
    num_workers = 4
    svc = FleetService(
        num_workers=num_workers, mode="thread",
        fault_config=FaultConfig(worker_kill_prob=0.2,
                                 worker_hang_prob=0.08),
        fault_seed=11, hang_deadline_s=2.0)
    try:
        t0 = time.perf_counter()
        values = []
        for _ in range(passes):
            values.extend(svc.predict(g) for g in graphs)
        wall = time.perf_counter() - t0
        resolved = [v for v in values
                    if isinstance(v, float) and 0.0 <= v <= 1.0]
        # Let the last scheduled restarts land before judging recovery
        # (the supervisor pops them on its own tick; a rebuilt model
        # takes a moment to construct).
        gate = threading.Event()
        deadline = time.monotonic() + 30.0
        while time.monotonic() < deadline:
            st = svc.stats()
            if (len(st["ring_members"]) == num_workers
                    and st["restarts"] >= st["deaths"]):
                break
            gate.wait(0.05)
        st = svc.stats()
    finally:
        svc.close()
    return {
        "requests": len(values),
        "resolved": len(resolved),
        "dropped": len(values) - len(resolved),
        "wall_s": wall,
        "deaths": st["deaths"],
        "restarts": st["restarts"],
        "retries": st["retries"],
        "stale_results": st["stale_results"],
        "served": st["served"],
        "fallbacks": st["fallbacks"],
        "ring_members": st["ring_members"],
        "num_workers": num_workers,
        "recovered": (len(st["ring_members"]) == num_workers
                      and st["restarts"] >= st["deaths"]),
    }


def bench_shared(scale: float = 1.0) -> dict:
    """Second fleet over the same disk tier must pay zero forwards."""
    graphs = _workload(min(16, max(6, int(round(12 * scale)))))
    with tempfile.TemporaryDirectory(prefix="repro-fleet-bench-") as root:
        first = FleetService(num_workers=2, mode="thread",
                             shared_cache_dir=root)
        try:
            a = first.predict_many(graphs)
            first_served = first.stats()["served"]
        finally:
            first.close()
        second = FleetService(num_workers=2, mode="thread",
                              shared_cache_dir=root)
        try:
            b = second.predict_many(graphs)
            second_served = second.stats()["served"]
        finally:
            second.close()
    return {
        "graphs": len(graphs),
        "bit_identical": a == b,
        "first_served": first_served,
        "second_served": second_served,
        "second_forwards": second_served.get("forward", 0),
        "second_shared_hits": second_served.get("shared", 0),
    }


_SUITE_FNS = {"scaling": bench_scaling, "chaos": bench_chaos,
              "shared": bench_shared}


def run_fleet_benchmarks(scale: float = 1.0,
                         suites: "tuple[str, ...]" = FLEET_SUITES) -> dict:
    """Run the selected suites; returns the ``BENCH_fleet.json`` document."""
    unknown = [s for s in suites if s not in _SUITE_FNS]
    if unknown:
        raise ValueError(f"unknown fleet suites: {unknown}")
    results = {
        "meta": {
            "bench_version": BENCH_VERSION,
            "cpu_count": os.cpu_count(),
            "scale": scale,
            "suites": list(suites),
        },
    }
    for name in FLEET_SUITES:
        if name in suites:
            results[name] = _SUITE_FNS[name](scale)
    results["gates"] = evaluate_fleet_gates(results)
    return results


def evaluate_fleet_gates(results: dict) -> dict:
    """Fleet acceptance gates over whichever suites are present."""
    gates = {}
    if "scaling" in results:
        gates["fleet_scaling_2_5x"] = \
            results["scaling"]["modeled_speedup_at_4"] >= 2.5
    if "chaos" in results:
        c = results["chaos"]
        gates["fleet_chaos_zero_dropped"] = c["dropped"] == 0
        gates["fleet_chaos_recovers"] = bool(c["recovered"])
    if "shared" in results:
        s = results["shared"]
        gates["fleet_shared_tier_hits"] = (
            s["bit_identical"] and s["second_forwards"] == 0
            and s["second_shared_hits"] == s["graphs"])
    return gates


def format_fleet_summary(results: dict) -> str:
    """Human-readable digest of a fleet benchmark document."""
    lines = []
    if "scaling" in results:
        s = results["scaling"]
        modeled = " ".join(
            f"w{w}={m['speedup']:.2f}x" for w, m in s["modeled"].items())
        lines.append(
            f"scaling : modeled {modeled} over {s['graphs']} graphs "
            f"(measured w4 {s['measured_speedup_at_4']:.2f}x on "
            f"{s['cpu_count']} cpu)")
    if "chaos" in results:
        c = results["chaos"]
        lines.append(
            f"chaos   : {c['resolved']}/{c['requests']} resolved "
            f"({c['dropped']} dropped), {c['deaths']} deaths / "
            f"{c['restarts']} restarts / {c['retries']} retries, "
            f"fallbacks {c['fallbacks']}, ring "
            f"{len(c['ring_members'])}/{c['num_workers']}")
    if "shared" in results:
        s = results["shared"]
        lines.append(
            f"shared  : second fleet {s['second_shared_hits']}/"
            f"{s['graphs']} from disk tier, {s['second_forwards']} "
            f"forwards, bit-identical: {s['bit_identical']}")
    lines.append("gates   : " + "  ".join(
        f"{k}={'PASS' if v else 'FAIL'}"
        for k, v in results["gates"].items()))
    return "\n".join(lines)
