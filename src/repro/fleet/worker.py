"""Fleet workers: a warm model session behind a submit/callback surface.

One worker = one :class:`~repro.serve.ModelSession` (private result +
encoding LRUs) stacked on the shared on-disk
:class:`~repro.perf.PredictionCache` tier.  :class:`WorkerCore` is the
mode-agnostic serving logic — LRU, then shared tier, then forward —
plus the deterministic per-request fault draw
(:meth:`repro.resilience.FaultInjector.worker_fault`).

Two hosts wrap the core behind one handle interface
(``submit`` / ``heartbeat_age`` / ``alive`` / ``kill`` / ``close`` and
the ``on_result`` / ``on_death`` callbacks):

* :class:`InProcessWorker` — a thread in this process.  Deterministic
  and cheap; the default for tests and the chaos benchmarks.  A
  ``kill`` fault marks the worker dead and fires ``on_death``; a
  ``hang`` fault stops heartbeating until the supervisor kills it.
* :class:`ProcessWorker` — a real **spawned** child process over a
  duplex pipe.  Spawn, not fork: the parent runs supervisor/reader
  threads and holds obs/logging locks, and forking a locked thread is
  a deadlock factory — the child instead rebuilds the model from the
  picklable :class:`WorkerSpec` (same seed → bit-identical weights).
  A ``kill`` fault is a hard ``os._exit``; a ``hang`` fault goes
  silent until terminated.  Parent-side sender/reader threads keep
  ``submit`` non-blocking (a hung child can never wedge a client
  holding service locks) and turn pipe EOF into ``on_death``.

Callbacks are always invoked with **no handle locks held**, so the
service may take its own condition inside them (lock order:
``FleetService._cond`` → handle ``_cond``; see docs/fleet.md).
"""

from __future__ import annotations

import multiprocessing as mp
import os
import threading
import time
from dataclasses import dataclass, field

from ..core import DNNOccu, DNNOccuConfig
from ..gpu import get_device
from ..lint.sanitizer import new_condition
from ..obs import get_logger
from ..perf.cache import PredictionCache
from ..resilience import FaultConfig, FaultInjector
from ..serve.service import ModelSession

__all__ = ["WorkerSpec", "WorkerCore", "InProcessWorker", "ProcessWorker",
           "WorkerBusyError", "WorkerUnavailableError",
           "default_model_factory"]

_log = get_logger("fleet.worker")

#: idle-poll period for worker loops; submits/close notify immediately
_POLL_S = 0.02

#: child exit code for an injected kill fault (diagnosable in waitpid)
_KILL_EXIT = 87


class WorkerBusyError(RuntimeError):
    """The worker's inbox is at capacity; try a sibling."""


class WorkerUnavailableError(RuntimeError):
    """The worker is dead or stopped; rehash to a sibling."""


def default_model_factory(hidden: int = 32, num_heads: int = 4,
                          seed: int = 7) -> DNNOccu:
    """Build the stock DNN-occu predictor (picklable by reference).

    Spawned workers import this function by qualified name and rebuild
    the model in-process; the seed makes every incarnation's weights
    bit-identical, so a restarted worker predicts exactly what its
    predecessor did.
    """
    return DNNOccu(DNNOccuConfig(hidden=hidden, num_heads=num_heads),
                   seed=seed)


@dataclass
class WorkerSpec:
    """Everything needed to (re)build one worker, picklable for spawn."""

    worker_id: int
    incarnation: int = 0
    device_name: str = "A100"
    model_factory: "object" = default_model_factory
    model_kwargs: dict = field(default_factory=dict)
    cache_size: int = 1024
    #: shared on-disk prediction tier; None disables it
    shared_cache_dir: "str | None" = None
    #: fault injection; None or all-zero probabilities = no chaos
    fault_config: "FaultConfig | None" = None
    fault_seed: int = 0
    #: child heartbeat period (process mode) / idle-beat period
    hb_interval_s: float = 0.02
    #: how long a hung child blocks before giving up and exiting
    hang_block_s: float = 60.0
    #: submit raises WorkerBusyError beyond this many queued requests
    max_inflight: int = 256
    #: heartbeat grace before the first beat (spawn + import + build)
    spawn_grace_s: float = 30.0
    #: drain cap: queued requests served per wake as one batched forward
    max_batch: int = 8


class WorkerCore:
    """Mode-agnostic request handling: LRU → shared tier → forward.

    Single-threaded by construction — exactly one worker thread (or the
    child process main loop) ever touches a core.
    """

    def __init__(self, spec: WorkerSpec):
        self.spec = spec
        model = spec.model_factory(**spec.model_kwargs)
        device = get_device(spec.device_name)
        self.session = ModelSession(model, device,
                                    cache_size=spec.cache_size)
        self.shared = PredictionCache(spec.shared_cache_dir) \
            if spec.shared_cache_dir else None
        cfg = spec.fault_config
        self.injector = FaultInjector(cfg, seed=spec.fault_seed) \
            if cfg is not None and (cfg.worker_kill_prob > 0
                                    or cfg.worker_hang_prob > 0) else None
        self._handled = 0

    def next_fault(self) -> "str | None":
        """Draw this request's fault verdict; advances the request index.

        Deterministic in ``(fault_seed, worker_id, incarnation,
        request_index)`` — thread and process mode draw identical
        verdicts for identical arrival orders.
        """
        # conc: lockfree-ok -- a WorkerCore is owned by exactly one
        # host thread (the InProcessWorker run loop or the child
        # process main loop); no second thread ever touches it
        idx = self._handled
        self._handled += 1
        if self.injector is None:
            return None
        return self.injector.worker_fault(self.spec.worker_id,
                                          self.spec.incarnation, idx)

    def handle(self, graph, device_name: "str | None" = None) \
            -> tuple[float, str]:
        """Serve one graph; returns ``(prediction, tier)``.

        ``tier`` is where the answer came from: ``"lru"`` (private
        result cache), ``"shared"`` (on-disk tier, promoted into the
        LRU), or ``"forward"`` (computed here and published to both).
        """
        return self.handle_many([(graph, device_name)])[0]

    def handle_many(self, requests) -> "list[tuple[float, str]]":
        """Serve a drained micro-batch of ``(graph, device_name)`` pairs.

        Cache tiers resolve per request; the residual cache misses run
        as **one** forward through
        :meth:`~repro.serve.ModelSession.predict_features` — a single
        miss keeps the eager per-graph forward (bit-identical to
        :meth:`~repro.core.DNNOccu.predict`), two or more replay the
        compiled batched tape (docs/compile.md).  Returns one
        ``(prediction, tier)`` pair per request, in request order.
        """
        results: "list[tuple[float, str] | None]" = [None] * len(requests)
        misses: "list[tuple[int, str, object]]" = []
        for pos, (graph, device_name) in enumerate(requests):
            device = get_device(device_name) if device_name \
                else self.session.device
            key = self.session.key_for(graph, device)
            cached = self.session.results.get(key)
            if cached is not None:
                results[pos] = (float(cached), "lru")
                continue
            if self.shared is not None:
                value = self.shared.get(key)
                if value is not None:
                    self.session.results.put(key, value)
                    results[pos] = (float(value), "shared")
                    continue
            feats = self.session.encode(graph, device, key=key)
            misses.append((pos, key, feats))
        if misses:
            values = self.session.predict_features(
                [feats for _, _, feats in misses])
            for (pos, key, _), value in zip(misses, values):
                value = float(value)
                self.session.results.put(key, value)
                if self.shared is not None:
                    self.shared.put(key, value)
                results[pos] = (value, "forward")
        return results


class InProcessWorker:
    """One worker thread in this process — the deterministic mode.

    The model is built eagerly in the constructor (no spawn latency),
    requests queue through a bounded deque, and the worker thread
    simulates the same fault behaviors a child process exhibits: a kill
    verdict drops the queue and fires ``on_death``; a hang verdict
    stops heartbeats until :meth:`kill`.
    """

    def __init__(self, spec: WorkerSpec, on_result, on_death):
        self._spec = spec
        self._on_result = on_result
        self._on_death = on_death
        self._core = WorkerCore(spec)
        self._cond = new_condition("InProcessWorker._cond")
        self._queue: "list[tuple]" = []
        self._stopped = False
        self._dead = False
        self._beat = time.monotonic()
        self._hang_wake = threading.Event()
        self._thread = threading.Thread(
            target=self._run, name=f"repro-fleet-w{spec.worker_id}",
            daemon=True)
        self._thread.start()

    @property
    def worker_id(self) -> int:
        return self._spec.worker_id

    @property
    def incarnation(self) -> int:
        return self._spec.incarnation

    # -- client side ---------------------------------------------------- #
    def submit(self, req_id: int, graph,
               device_name: "str | None") -> None:
        with self._cond:
            if self._dead or self._stopped:
                raise WorkerUnavailableError(
                    f"worker {self._spec.worker_id} is not accepting")
            if len(self._queue) >= self._spec.max_inflight:
                raise WorkerBusyError(
                    f"worker {self._spec.worker_id} inbox full")
            self._queue.append((req_id, graph, device_name))
            self._cond.notify_all()

    def heartbeat_age(self, now: "float | None" = None) -> float:
        with self._cond:
            return (now if now is not None else time.monotonic()) \
                - self._beat

    def alive(self) -> bool:
        with self._cond:
            return not self._dead and not self._stopped

    def kill(self) -> None:
        """Force-stop without firing ``on_death`` (the caller knows)."""
        with self._cond:
            self._dead = True
            self._stopped = True
            self._queue.clear()
            self._cond.notify_all()
        self._hang_wake.set()

    def close(self, timeout: float = 5.0) -> None:
        """Stop the worker thread and join it; idempotent."""
        with self._cond:
            self._stopped = True
            self._cond.notify_all()
        self._hang_wake.set()
        self._thread.join(timeout)

    # -- worker thread --------------------------------------------------- #
    def _run(self) -> None:
        while True:
            with self._cond:
                while not self._queue and not self._stopped:
                    self._cond.wait(_POLL_S)
                    self._beat = time.monotonic()
                if self._stopped:
                    return
                drained = self._queue[:self._spec.max_batch]
                del self._queue[:len(drained)]
                self._beat = time.monotonic()
            # Draw each drained request's fault verdict in arrival order,
            # stopping at the first fault: the clean prefix is served as
            # one batch, the faulted request and everything drained
            # behind it die with the worker — the same orphan-then-retry
            # outcome as the serial loop, where _die clears the queue.
            serve: "list[tuple]" = []
            fault = None
            for item in drained:
                verdict = self._core.next_fault()
                if verdict is not None:
                    fault = verdict
                    break
                serve.append(item)
            if serve:
                try:
                    outs = self._core.handle_many(
                        [(graph, device_name)
                         for _, graph, device_name in serve])
                except Exception as exc:
                    _log.warning("worker request failed; dying", extra={
                        "worker": self._spec.worker_id,
                        "error": type(exc).__name__})
                    self._die("error")
                    return
                for (req_id, _, _), (value, tier) in zip(serve, outs):
                    self._on_result(self._spec.worker_id,
                                    self._spec.incarnation,
                                    req_id, value, tier)
            if fault == "kill":
                self._die("kill")
                return
            if fault == "hang":
                self._hang()
                return
            with self._cond:
                self._beat = time.monotonic()

    def _die(self, kind: str) -> None:
        """Simulated crash: drop everything, report once, exit."""
        with self._cond:
            already = self._dead
            self._dead = True
            self._stopped = True
            self._queue.clear()
            self._cond.notify_all()
        if not already:
            self._on_death(self._spec.worker_id, self._spec.incarnation,
                           kind)

    def _hang(self) -> None:
        """Simulated hang: no beats, no progress, until killed."""
        while True:
            self._hang_wake.wait(_POLL_S)
            with self._cond:
                if self._dead or self._stopped:
                    self._queue.clear()
                    return


def _process_worker_main(spec: WorkerSpec, conn) -> None:
    """Child-process entry point: serve requests off the pipe.

    Heartbeats ride the idle ``poll`` timeout — a responsive child
    beats at least every ``hb_interval_s``.  A kill fault announces its
    kind (so the parent labels the death correctly) then hard-exits; a
    hang fault just goes silent, exactly the failure the heartbeat
    deadline exists to catch.
    """
    core = WorkerCore(spec)
    try:
        conn.send(("hb",))
    except OSError:
        return
    while True:
        try:
            if not conn.poll(spec.hb_interval_s):
                conn.send(("hb",))
                continue
            msg = conn.recv()
        except (EOFError, OSError):
            return
        if msg[0] == "close":
            return
        # Drain whatever else is already on the pipe (up to the batch
        # cap) so queued-up requests share one batched forward.
        batch = [msg]
        closing = False
        try:
            while len(batch) < spec.max_batch and conn.poll(0):
                nxt = conn.recv()
                if nxt[0] == "close":
                    closing = True
                    break
                batch.append(nxt)
        except (EOFError, OSError):
            return
        # Same arrival-order fault draw as the thread mode: the clean
        # prefix is served, the faulted request and the drained suffix
        # die with the worker (the parent reroutes them on death).
        serve: "list[tuple]" = []
        fault = None
        for _, req_id, graph, device_name in batch:
            verdict = core.next_fault()
            if verdict is not None:
                fault = verdict
                break
            serve.append((req_id, graph, device_name))
        if serve:
            try:
                outs = core.handle_many(
                    [(graph, device_name)
                     for _, graph, device_name in serve])
            except Exception:
                # A real serving bug: die loudly; the parent sees EOF
                # and reroutes, the supervisor restarts with backoff.
                os._exit(1)
            for (req_id, _, _), (value, tier) in zip(serve, outs):
                try:
                    conn.send(("ok", req_id, value, tier))
                except (EOFError, OSError):
                    return
        if fault == "kill":
            try:
                conn.send(("fault", "kill"))
            except OSError:
                pass
            os._exit(_KILL_EXIT)
        if fault == "hang":
            # Block without beating until the parent terminates us (or
            # the grace expires and we exit on our own).
            threading.Event().wait(spec.hang_block_s)
            return
        if closing:
            return


class ProcessWorker:
    """One spawned child process behind parent-side pump threads.

    ``submit`` only appends to a bounded outbox under the handle lock —
    the **sender** thread does the potentially blocking pipe write, so
    a hung child (full pipe) can never block a client thread that is
    holding service locks.  The **reader** thread turns child messages
    into callbacks and pipe EOF into a single ``on_death``.
    """

    def __init__(self, spec: WorkerSpec, on_result, on_death):
        self._spec = spec
        self._on_result = on_result
        self._on_death = on_death
        ctx = mp.get_context("spawn")
        self._conn, child_conn = ctx.Pipe(duplex=True)
        self._proc = ctx.Process(
            target=_process_worker_main, args=(spec, child_conn),
            name=f"repro-fleet-w{spec.worker_id}", daemon=True)
        self._proc.start()
        child_conn.close()
        self._cond = new_condition("ProcessWorker._cond")
        self._outbox: "list[tuple]" = []
        self._stopped = False
        self._dead = False
        #: None until the child's first heartbeat lands (spawn grace)
        self._beat: "float | None" = None
        self._started_at = time.monotonic()
        self._death_kind: "str | None" = None
        self._sender = threading.Thread(
            target=self._send_loop,
            name=f"repro-fleet-w{spec.worker_id}-send", daemon=True)
        self._reader = threading.Thread(
            target=self._read_loop,
            name=f"repro-fleet-w{spec.worker_id}-read", daemon=True)
        self._sender.start()
        self._reader.start()

    @property
    def worker_id(self) -> int:
        return self._spec.worker_id

    @property
    def incarnation(self) -> int:
        return self._spec.incarnation

    # -- client side ---------------------------------------------------- #
    def submit(self, req_id: int, graph,
               device_name: "str | None") -> None:
        with self._cond:
            if self._dead or self._stopped:
                raise WorkerUnavailableError(
                    f"worker {self._spec.worker_id} is not accepting")
            if len(self._outbox) >= self._spec.max_inflight:
                raise WorkerBusyError(
                    f"worker {self._spec.worker_id} outbox full")
            self._outbox.append(("req", req_id, graph, device_name))
            self._cond.notify_all()

    def heartbeat_age(self, now: "float | None" = None) -> float:
        """Seconds since the last child heartbeat.

        Before the first beat the child is still spawning (interpreter
        start + imports + model build); age only starts counting past
        ``spawn_grace_s`` so a cold start is not mistaken for a hang.
        """
        t = now if now is not None else time.monotonic()
        with self._cond:
            if self._beat is not None:
                return t - self._beat
            return t - self._started_at - self._spec.spawn_grace_s

    def alive(self) -> bool:
        with self._cond:
            return not self._dead and not self._stopped

    def kill(self) -> None:
        """Terminate the child without firing ``on_death``."""
        with self._cond:
            self._dead = True
            self._stopped = True
            self._cond.notify_all()
        try:
            self._proc.terminate()
        except (OSError, ValueError):
            pass

    def close(self, timeout: float = 5.0) -> None:
        """Graceful stop: close message, join pumps and the child."""
        with self._cond:
            if not self._dead:
                self._outbox.append(("close",))
            self._stopped = True
            self._cond.notify_all()
        self._sender.join(timeout)
        self._reader.join(timeout)
        self._proc.join(timeout)
        if self._proc.is_alive():
            try:
                self._proc.terminate()
            except (OSError, ValueError):
                pass
            self._proc.join(timeout)

    # -- pump threads ----------------------------------------------------- #
    def _send_loop(self) -> None:
        while True:
            with self._cond:
                while not self._outbox and not self._stopped \
                        and not self._dead:
                    self._cond.wait(_POLL_S)
                if self._dead or (self._stopped and not self._outbox):
                    return
                msg = self._outbox.pop(0)
            try:
                self._conn.send(msg)
            except (OSError, ValueError, BrokenPipeError):
                return

    def _read_loop(self) -> None:
        while True:
            try:
                if not self._conn.poll(_POLL_S):
                    with self._cond:
                        if self._stopped or self._dead:
                            return
                    continue
                msg = self._conn.recv()
            except (EOFError, OSError):
                break
            kind = msg[0]
            if kind == "hb":
                with self._cond:
                    self._beat = time.monotonic()
            elif kind == "fault":
                with self._cond:
                    self._death_kind = msg[1]
            elif kind == "ok":
                with self._cond:
                    self._beat = time.monotonic()
                self._on_result(self._spec.worker_id,
                                self._spec.incarnation,
                                msg[1], msg[2], msg[3])
        # EOF: the child is gone.  Report it unless the parent already
        # knows (kill() marked dead, or close() is tearing down).
        with self._cond:
            already = self._dead or self._stopped
            self._dead = True
            kind = self._death_kind or "exit"
            self._cond.notify_all()
        if not already:
            self._on_death(self._spec.worker_id, self._spec.incarnation,
                           kind)
