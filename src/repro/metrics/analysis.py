"""Analysis utilities: per-family error breakdowns, correlation helpers,
and plain-text table rendering (used by the CLI and benchmark reports)."""

from __future__ import annotations

from typing import Sequence

import numpy as np
from scipy import stats

from .metrics import mre, mse

__all__ = ["per_group_errors", "correlations", "format_table"]


def per_group_errors(pred: Sequence[float], true: Sequence[float],
                     groups: Sequence[str]) -> dict[str, dict[str, float]]:
    """MRE (percent) and MSE per group label (e.g. per model or family).

    ``groups[i]`` labels sample ``i``; insertion order of first appearance
    is preserved in the result.
    """
    pred = np.asarray(pred, dtype=float)
    true = np.asarray(true, dtype=float)
    groups = list(groups)
    if not (len(pred) == len(true) == len(groups)):
        raise ValueError("pred, true, and groups must align")
    out: dict[str, dict[str, float]] = {}
    for g in dict.fromkeys(groups):
        mask = np.array([x == g for x in groups])
        out[g] = {
            "count": int(mask.sum()),
            "mre_percent": 100.0 * mre(pred[mask], true[mask]),
            "mse": mse(pred[mask], true[mask]),
        }
    return out


def correlations(x: Sequence[float], y: Sequence[float]) -> dict[str, float]:
    """Pearson and Spearman correlations (the Fig. 6 / Fig. 7 statistics)."""
    x = np.asarray(x, dtype=float)
    y = np.asarray(y, dtype=float)
    if x.shape != y.shape or x.size < 2:
        raise ValueError("need two aligned series of length >= 2")
    return {
        "pearson": float(stats.pearsonr(x, y).statistic),
        "spearman": float(stats.spearmanr(x, y).statistic),
    }


def format_table(headers: Sequence[str], rows: Sequence[Sequence],
                 float_fmt: str = "{:.3f}") -> str:
    """Render an aligned plain-text table.

    Numbers are formatted with ``float_fmt``; everything else with
    ``str``.  Column widths adapt to content.
    """
    def render(cell) -> str:
        if isinstance(cell, bool):
            return str(cell)
        if isinstance(cell, float):
            return float_fmt.format(cell)
        return str(cell)

    rendered = [[render(c) for c in row] for row in rows]
    for row in rendered:
        if len(row) != len(headers):
            raise ValueError("row width does not match headers")
    widths = [max(len(h), *(len(r[i]) for r in rendered)) if rendered
              else len(h) for i, h in enumerate(headers)]
    lines = [" ".join(h.rjust(w) for h, w in zip(headers, widths))]
    lines.append(" ".join("-" * w for w in widths))
    for row in rendered:
        lines.append(" ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)
