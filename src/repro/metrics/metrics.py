"""Evaluation metrics (Section IV-C): MRE and MSE, plus bucketing helpers
for the robustness analysis (Fig. 5)."""

from __future__ import annotations

import numpy as np

__all__ = ["mre", "mse", "evaluate_predictions", "bucketize"]


def mre(pred, true) -> float:
    """Mean Relative Error: mean(|ŷ - y| / |y|).

    Matches the paper's definition; reported as a percentage elsewhere
    (multiply by 100).
    """
    pred = np.asarray(pred, dtype=float)
    true = np.asarray(true, dtype=float)
    if pred.shape != true.shape:
        raise ValueError(f"shape mismatch {pred.shape} vs {true.shape}")
    if np.any(true == 0):
        raise ValueError("MRE undefined for zero ground-truth values")
    return float(np.mean(np.abs((pred - true) / true)))


def mse(pred, true) -> float:
    """Mean Squared Error."""
    pred = np.asarray(pred, dtype=float)
    true = np.asarray(true, dtype=float)
    if pred.shape != true.shape:
        raise ValueError(f"shape mismatch {pred.shape} vs {true.shape}")
    return float(np.mean((pred - true) ** 2))


def evaluate_predictions(pred, true) -> dict[str, float]:
    """Both paper metrics at once; MRE in percent."""
    return {"mre_percent": 100.0 * mre(pred, true), "mse": mse(pred, true)}


def bucketize(values, edges) -> list[np.ndarray]:
    """Index masks splitting ``values`` by half-open ``edges`` intervals.

    ``edges = [a, b, c]`` produces buckets [a, b), [b, c), [c, inf) — the
    node/edge-count ranges of Fig. 5.
    """
    values = np.asarray(values)
    masks = []
    for i, lo in enumerate(edges):
        hi = edges[i + 1] if i + 1 < len(edges) else np.inf
        masks.append(np.flatnonzero((values >= lo) & (values < hi)))
    return masks
