"""Prediction metrics (MRE, MSE) and bucketing helpers."""

from .metrics import bucketize, evaluate_predictions, mre, mse
from .analysis import correlations, format_table, per_group_errors

__all__ = ["mre", "mse", "evaluate_predictions", "bucketize",
           "per_group_errors", "correlations", "format_table"]
