"""Table I feature engineering: node and edge feature vectors.

Node features (Section III-C):

* operator type — one-hot over the canonical operator set;
* hyperparameters — a fixed slot layout of the operator's hyperparameter
  values (kernel size, stride, channels, hidden size, ...);
* temporary tensor size — workspace bytes;
* input / output tensor sizes — total elements and the output shape dims;
* operator FLOPs;
* GPU FLOPS, GPU memory capacity, number of SMs — runtime configuration.

Edge features: edge type one-hot (forward / backward), delivered tensor
size, and processing bandwidth (device memory bandwidth — the rate at which
the delivered tensor moves).

Magnitudes spanning many orders (FLOPs, bytes) are ``log1p``-compressed and
divided by a fixed constant so every feature is O(1) without any
dataset-dependent statistics — which is what lets a trained predictor see
unseen models without renormalization.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass

import numpy as np

from ..graph import (ComputationGraph, DataEdge, OP_TYPES, OpNode,
                     op_type_index, tensor_numel)
from ..gpu import DeviceSpec

__all__ = ["GraphFeatures", "encode_graph", "encode_node", "encode_edge",
           "node_feature_dim", "edge_feature_dim", "feature_blocks",
           "zero_feature_block", "ENCODED_ATTRS", "UNENCODED_ATTRS"]

#: log1p(x) / _LOG_SCALE keeps even exa-scale magnitudes within ~[0, 1.5]
_LOG_SCALE = 28.0

#: hyperparameter slot layout (zero when an operator lacks the attribute)
_HPARAM_SLOTS = (
    "kernel_r", "kernel_s", "stride_h", "stride_w", "padding_h", "padding_w",
    "groups", "in_channels", "out_channels", "in_features", "out_features",
    "hidden_size", "seq_len", "batch", "embed_dim", "axis",
)

_EDGE_TYPES = ("forward", "backward")

#: operator attributes :func:`encode_node` maps into ``_HPARAM_SLOTS``
ENCODED_ATTRS = frozenset({
    "kernel_size", "stride", "padding", "groups", "in_channels",
    "out_channels", "in_features", "out_features", "hidden_size",
    "seq_len", "batch", "embed_dim", "axis",
})

#: schema attributes deliberately left without a feature slot.  Each is
#: redundant with information the encoder already captures (shapes, sizes,
#: FLOPs) or is pure bookkeeping; the cross-registry pass R006 flags any
#: schema attribute in neither set, so this list is the single place such
#: exemptions are argued.
UNENCODED_ATTRS = frozenset({
    "output_size",        # equals the recorded output spatial dims
    "num_features",       # equals the channel dim of the output shape
    "normalized_shape",   # equals the last output dim
    "reduce_dim",         # captured by input shapes + FLOPs
    "start_dim",          # view bookkeeping; shapes carry the effect
    "axes",               # permutation bookkeeping; shapes carry it
    "vocab_size",         # weight-table size; FLOPs/temp capture cost
    "input_size",         # equals the recurrent input's last dim
    "num_layers",         # folded into the FLOPs formula
    "sections",           # split bookkeeping; output shape carries it
    "index",              # split chunk index; cost-irrelevant
    "exponent",           # elementwise cost is exponent-independent here
})


def _log_scale(x: float) -> float:
    return float(np.log1p(max(0.0, x)) / _LOG_SCALE)


def _hparam_vector(node: OpNode) -> np.ndarray:
    a = node.attrs
    vals = np.zeros(len(_HPARAM_SLOTS))

    def put(slot: str, v) -> None:
        vals[_HPARAM_SLOTS.index(slot)] = _log_scale(float(v))

    if "kernel_size" in a:
        put("kernel_r", a["kernel_size"][0])
        put("kernel_s", a["kernel_size"][1])
    if "stride" in a:
        put("stride_h", a["stride"][0])
        put("stride_w", a["stride"][1])
    if "padding" in a:
        put("padding_h", a["padding"][0])
        put("padding_w", a["padding"][1])
    for key in ("groups", "in_channels", "out_channels", "in_features",
                "out_features", "hidden_size", "seq_len", "batch",
                "embed_dim"):
        if key in a:
            put(key, a[key])
    if "axis" in a:
        vals[_HPARAM_SLOTS.index("axis")] = float(a["axis"]) / 8.0
    return vals


def _device_vector(device: DeviceSpec) -> np.ndarray:
    return np.array([
        device.fp32_tflops / 50.0,
        device.mem_capacity_gb / 100.0,
        device.sm_count / 150.0,
        device.max_warps_per_sm / 64.0,
        device.mem_bandwidth_gbs / 2500.0,
    ])


#: number of device features appended to every node
_DEVICE_DIM = 5
#: output-shape dims retained (batch, channel/feature, spatial, spatial)
_SHAPE_DIMS = 4


@functools.lru_cache(maxsize=None)
def node_feature_dim() -> int:
    """Length of the node feature vector (memoized; called per encode)."""
    # one-hot + hyperparams + (temp, in, flops, out) + log shape +
    # linear batch channel + device
    return (len(OP_TYPES) + len(_HPARAM_SLOTS) + 4 + _SHAPE_DIMS + 1
            + _DEVICE_DIM)


@functools.lru_cache(maxsize=None)
def edge_feature_dim() -> int:
    """Length of the edge feature vector (memoized; called per encode)."""
    return len(_EDGE_TYPES) + 2


def encode_node(node: OpNode, device: DeviceSpec) -> np.ndarray:
    """Feature vector for one operator node (Table I node features)."""
    onehot = np.zeros(len(OP_TYPES))
    onehot[op_type_index(node.op_type)] = 1.0

    sizes = np.array([
        _log_scale(node.temp_bytes),          # temporary tensor size
        _log_scale(node.input_numel),         # input tensor size
        _log_scale(node.output_numel),        # output tensor size
    ])
    shape = np.zeros(_SHAPE_DIMS)
    for i, s in enumerate(node.output_shape[:_SHAPE_DIMS]):
        shape[i] = _log_scale(s)
    # Linear batch channel: log1p/28 compresses a batch-size doubling to a
    # ~0.02 feature delta, too faint for small-data training.  Only the
    # leading (batch) dimension gets a linear companion — its Table II
    # domain is shared across every model family, so the channel never
    # extrapolates on unseen architectures (unlike channel/hidden dims).
    batch_lin = np.array([
        min(4.0, node.output_shape[0] / 128.0) if node.output_shape else 0.0
    ])
    flops = np.array([_log_scale(node.flops)])
    # Layout: [one-hot | hyperparams | temp, in | flops | out |
    #          log shape | linear batch | device]
    return np.concatenate([
        onehot, _hparam_vector(node), sizes[:2], flops, sizes[2:], shape,
        batch_lin, _device_vector(device),
    ])


def encode_edge(edge: DataEdge, device: DeviceSpec) -> np.ndarray:
    """Feature vector for one data-flow edge (Table I edge features)."""
    onehot = np.zeros(len(_EDGE_TYPES))
    onehot[_EDGE_TYPES.index(edge.edge_type)] = 1.0
    return np.concatenate([
        onehot,
        [_log_scale(edge.tensor_numel)],
        [device.mem_bandwidth_gbs / 2500.0],
    ])


@functools.lru_cache(maxsize=None)
def _feature_block_items() -> tuple[tuple[str, slice], ...]:
    """Memoized immutable form of :func:`feature_blocks`."""
    n_op = len(OP_TYPES)
    n_hp = len(_HPARAM_SLOTS)
    items = []
    start = 0
    for name, width in (("op_type", n_op), ("hyperparams", n_hp),
                        ("sizes", 2), ("flops", 1), ("out_size", 1),
                        ("shape", _SHAPE_DIMS), ("batch_linear", 1),
                        ("device", _DEVICE_DIM)):
        items.append((name, slice(start, start + width)))
        start += width
    assert start == node_feature_dim()
    return tuple(items)


def feature_blocks() -> dict[str, slice]:
    """Column ranges of each logical block in the node feature vector.

    Used by feature-ablation experiments to zero out one block at a time.
    The layout is memoized; callers get a fresh dict each time, so the
    cache can never be mutated through a returned mapping.
    """
    return dict(_feature_block_items())


def zero_feature_block(features: "GraphFeatures", block: str,
                       ) -> "GraphFeatures":
    """Copy of ``features`` with one node-feature block zeroed.

    ``block`` is a key of :func:`feature_blocks`, or ``"edges"`` to zero
    the edge features instead.
    """
    if block == "edges":
        return GraphFeatures(
            node_features=features.node_features.copy(),
            edge_features=np.zeros_like(features.edge_features),
            edge_index=features.edge_index,
            model_name=features.model_name,
            device_name=features.device_name)
    blocks = feature_blocks()
    if block not in blocks:
        raise KeyError(f"unknown block {block!r}; "
                       f"known: {sorted(blocks)} + ['edges']")
    nf = features.node_features.copy()
    nf[:, blocks[block]] = 0.0
    return GraphFeatures(node_features=nf,
                         edge_features=features.edge_features.copy(),
                         edge_index=features.edge_index,
                         model_name=features.model_name,
                         device_name=features.device_name)


@dataclass
class GraphFeatures:
    """Dense feature arrays for one (graph, device) pair.

    ``edge_index`` is a ``(2, m)`` int array of (src, dst) positions into
    the node arrays (positions follow node-id sort order).
    """

    node_features: np.ndarray   # (n, F_n)
    edge_features: np.ndarray   # (m, F_e)
    edge_index: np.ndarray      # (2, m)
    model_name: str = ""
    device_name: str = ""

    @property
    def num_nodes(self) -> int:
        return self.node_features.shape[0]

    @property
    def num_edges(self) -> int:
        return self.edge_index.shape[1]


def _log_scale_array(x: np.ndarray) -> np.ndarray:
    """Vectorized :func:`_log_scale`: bit-identical per element."""
    return np.log1p(np.maximum(0.0, x)) / _LOG_SCALE


def _encode_nodes(nodes: list[OpNode], device: DeviceSpec) -> np.ndarray:
    """Vectorized :func:`encode_node` over all nodes of one graph.

    Python only *gathers* per-node attributes into raw value matrices;
    every transform (``log1p`` compression, clipping, scaling) runs as
    one array op per feature block.  Each output row is bit-identical to
    :func:`encode_node` on that node.
    """
    n = len(nodes)
    blocks = feature_blocks()
    nf = np.zeros((n, node_feature_dim()))
    rows = np.arange(n)

    op_idx = np.fromiter((op_type_index(nd.op_type) for nd in nodes),
                         dtype=np.intp, count=n)
    nf[rows, blocks["op_type"].start + op_idx] = 1.0

    # Hyperparameters: raw values + fill mask per slot, scaled in bulk.
    hp_raw = np.zeros((n, len(_HPARAM_SLOTS)))
    hp_mask = np.zeros((n, len(_HPARAM_SLOTS)), dtype=bool)

    def put(i: int, slot: str, v) -> None:
        j = _HPARAM_SLOTS.index(slot)
        hp_raw[i, j] = float(v)
        hp_mask[i, j] = True

    for i, nd in enumerate(nodes):
        a = nd.attrs
        if "kernel_size" in a:
            put(i, "kernel_r", a["kernel_size"][0])
            put(i, "kernel_s", a["kernel_size"][1])
        if "stride" in a:
            put(i, "stride_h", a["stride"][0])
            put(i, "stride_w", a["stride"][1])
        if "padding" in a:
            put(i, "padding_h", a["padding"][0])
            put(i, "padding_w", a["padding"][1])
        for key in ("groups", "in_channels", "out_channels", "in_features",
                    "out_features", "hidden_size", "seq_len", "batch",
                    "embed_dim", "axis"):
            if key in a:
                put(i, key, a[key])
    hp = np.where(hp_mask, _log_scale_array(hp_raw), 0.0)
    axis_col = _HPARAM_SLOTS.index("axis")
    hp[:, axis_col] = np.where(hp_mask[:, axis_col],
                               hp_raw[:, axis_col] / 8.0, 0.0)
    nf[:, blocks["hyperparams"]] = hp

    sizes_raw = np.array([[nd.temp_bytes, nd.input_numel] for nd in nodes],
                         dtype=np.float64).reshape(n, 2)
    nf[:, blocks["sizes"]] = _log_scale_array(sizes_raw)
    nf[:, blocks["flops"]] = _log_scale_array(np.array(
        [[nd.flops] for nd in nodes], dtype=np.float64).reshape(n, 1))
    nf[:, blocks["out_size"]] = _log_scale_array(np.array(
        [[nd.output_numel] for nd in nodes],
        dtype=np.float64).reshape(n, 1))

    shape_raw = np.zeros((n, _SHAPE_DIMS))
    shape_mask = np.zeros((n, _SHAPE_DIMS), dtype=bool)
    batch_raw = np.zeros(n)
    for i, nd in enumerate(nodes):
        dims = nd.output_shape[:_SHAPE_DIMS]
        shape_raw[i, :len(dims)] = dims
        shape_mask[i, :len(dims)] = True
        batch_raw[i] = nd.output_shape[0] if nd.output_shape else 0.0
    nf[:, blocks["shape"]] = np.where(shape_mask,
                                      _log_scale_array(shape_raw), 0.0)
    nf[:, blocks["batch_linear"]] = \
        np.minimum(4.0, batch_raw / 128.0).reshape(n, 1)

    # Hoisted: one device vector broadcast to all rows (previously
    # rebuilt per node).
    nf[:, blocks["device"]] = _device_vector(device)
    return nf


def encode_graph(graph: ComputationGraph,
                 device: DeviceSpec) -> GraphFeatures:
    """Encode a full computation graph for ``device``.

    Vectorized over nodes and edges: rows are bit-identical to stacking
    :func:`encode_node` / :func:`encode_edge` (the scalar reference
    implementations, kept for single-item callers and as the equivalence
    oracle in the test suite).
    """
    order = sorted(graph.nodes)
    pos = {nid: i for i, nid in enumerate(order)}
    nf = _encode_nodes([graph.nodes[nid] for nid in order], device) \
        if order else np.zeros((0, node_feature_dim()))
    if graph.edges:
        m = len(graph.edges)
        ef = np.zeros((m, edge_feature_dim()))
        etype = np.fromiter((_EDGE_TYPES.index(e.edge_type)
                             for e in graph.edges), dtype=np.intp, count=m)
        ef[np.arange(m), etype] = 1.0
        ef[:, len(_EDGE_TYPES)] = _log_scale_array(np.fromiter(
            (e.tensor_numel for e in graph.edges), dtype=np.float64,
            count=m))
        ef[:, len(_EDGE_TYPES) + 1] = device.mem_bandwidth_gbs / 2500.0
        ei = np.array([[pos[e.src] for e in graph.edges],
                       [pos[e.dst] for e in graph.edges]], dtype=np.intp)
    else:
        ef = np.zeros((0, edge_feature_dim()))
        ei = np.zeros((2, 0), dtype=np.intp)
    return GraphFeatures(node_features=nf, edge_features=ef, edge_index=ei,
                         model_name=graph.name, device_name=device.name)
