"""Feature engineering (Table I) for graphs, nodes, and edges."""

from .encode import (GraphFeatures, edge_feature_dim, encode_edge,
                     encode_graph, encode_node, feature_blocks,
                     node_feature_dim, zero_feature_block)

__all__ = [
    "GraphFeatures", "encode_graph", "encode_node", "encode_edge",
    "node_feature_dim", "edge_feature_dim",
    "feature_blocks", "zero_feature_block",
]
