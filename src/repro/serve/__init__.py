"""repro.serve: the online prediction service.

The deployment story of the paper (occu-packing scheduling driven by
pre-execution predictions) assumes cheap, repeated occupancy queries.
This package provides them (see docs/serving.md):

* :mod:`repro.serve.batcher` — adaptive micro-batching: concurrent
  single-graph requests coalesce into one masked dense forward, flushed
  on max-batch-size or a ~2 ms deadline, whichever first;
* :mod:`repro.serve.service` — warm :class:`ModelSession` (preloaded
  weights + content-addressed result/encoding caches) behind the
  synchronous :class:`PredictorService` facade, with bounded-queue
  overload shedding into the resilience fallback chain;
* :mod:`repro.serve.quality` — background :class:`QualityMonitor`
  re-labeling sampled predictions against the simulator (rolling MAPE,
  calibration bins, drift alarms; see docs/observability.md);
* :mod:`repro.serve.bench` — the serving throughput/latency suite behind
  the ``repro serve-bench`` CLI and the ``repro bench --check`` gates.

Requests are request-scoped for observability: each carries a
``request_id``/``trace_id`` across the batcher's thread handoff, lands
in the service's flight-recorder ring, and renders as one connected
span tree in Chrome-trace exports.
"""

from .batcher import MicroBatcher, QueueFullError, Ticket
from .quality import QualityMonitor, simulator_labeler
from .service import ModelSession, PredictorService

__all__ = ["MicroBatcher", "QueueFullError", "Ticket", "ModelSession",
           "PredictorService", "QualityMonitor", "simulator_labeler"]
