"""repro.serve: the online prediction service.

The deployment story of the paper (occu-packing scheduling driven by
pre-execution predictions) assumes cheap, repeated occupancy queries.
This package provides them (see docs/serving.md):

* :mod:`repro.serve.batcher` — adaptive micro-batching: concurrent
  single-graph requests coalesce into one masked dense forward, flushed
  on max-batch-size or a ~2 ms deadline, whichever first;
* :mod:`repro.serve.service` — warm :class:`ModelSession` (preloaded
  weights + content-addressed result/encoding caches) behind the
  synchronous :class:`PredictorService` facade, with bounded-queue
  overload shedding into the resilience fallback chain;
* :mod:`repro.serve.bench` — the serving throughput/latency suite behind
  the ``repro serve-bench`` CLI and the ``repro bench --check`` gates.
"""

from .batcher import MicroBatcher, QueueFullError, Ticket
from .service import ModelSession, PredictorService

__all__ = ["MicroBatcher", "QueueFullError", "Ticket", "ModelSession",
           "PredictorService"]
