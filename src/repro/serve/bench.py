"""Serving benchmark suite behind ``repro serve-bench`` and the bench gates.

Five suites, emitted as ``BENCH_serve.json``:

* **throughput** — batch-32 service throughput (``predict_many`` over 32
  distinct graphs, result cache cleared per repeat so every prediction
  pays a forward) vs a sequential ``model.predict`` loop over the same
  pre-encoded, SPD-warm features;
* **warm_cache** — repeated predictions of one already-served graph (the
  content-addressed hit path: hash + LRU lookup, no encode/SPD/forward)
  vs direct ``model.predict`` calls;
* **latency** — concurrent client threads through ``predict``; p50/p99
  from the service's latency histogram plus flush-trigger counts;
* **equivalence** — service vs direct ``predict`` across the full model
  zoo: serial requests must be **bit-identical** (single-request flushes
  dispatch the per-graph forward), the bulk path within 1e-6;
* **overload** — a paused dispatcher and a flood of ``predict_async``
  past the queue bound: shed requests must be counted and served by the
  fallback chain, and every ticket must still resolve.

Gates (merged into ``repro bench --check``): throughput >= 3x,
warm-cache >= 10x, zoo equivalence <= 1e-6, serial bit-identity, and
overload actually sheds.
"""

from __future__ import annotations

import os
import threading
import time

import numpy as np

from ..features import encode_graph
from ..gpu import get_device
from ..models import ModelConfig, build_model, list_models
from ..perf.batching import clear_spd_memo, ensure_spd
from ..perf.bench import BENCH_VERSION, _best_of
from .service import PredictorService

__all__ = ["run_serve_benchmarks", "evaluate_serve_gates",
           "format_serve_summary"]

#: small-graph zoo slice: the micro-batching win is amortizing per-graph
#: Python/tape overhead, which small graphs isolate (large graphs are
#: matmul-bound and batching approaches 1x)
_SERVE_MODELS = ("lenet", "alexnet", "rnn", "lstm")
_BATCH_SIZES = (1, 2, 4, 8, 16, 32, 64, 128)

_DEFAULT_HIDDEN = 32


def _service_model(seed: int = 7):
    from ..core import DNNOccu, DNNOccuConfig
    return DNNOccu(DNNOccuConfig(hidden=_DEFAULT_HIDDEN, num_heads=4),
                   seed=seed)


def _distinct_graphs(count: int = 32) -> list:
    """``count`` structurally distinct graphs (model x batch-size grid)."""
    graphs = []
    for bs in _BATCH_SIZES:
        for name in _SERVE_MODELS:
            graphs.append(build_model(name, ModelConfig(batch_size=bs)))
            if len(graphs) == count:
                return graphs
    raise ValueError(f"grid exhausted below {count} graphs")


def bench_throughput(scale: float = 1.0) -> dict:
    """Batch-32 service throughput vs a sequential predict loop."""
    device = get_device("A100")
    model = _service_model()
    graphs = _distinct_graphs(32)
    feats = [encode_graph(g, device) for g in graphs]
    for f in feats:
        ensure_spd(f)
    repeats = max(2, int(round(3 * scale)))

    model.predict(feats[0])  # warm any lazy imports out of the timing
    seq_s = _best_of(lambda: [model.predict(f) for f in feats], repeats)

    with PredictorService(model, device, max_batch_size=32) as svc:
        svc.predict_many(graphs)  # warm the encoding memo

        def served() -> None:
            svc.session.results.clear()
            svc.predict_many(graphs)

        svc_s = _best_of(served, repeats)

    return {
        "graphs": len(graphs), "models": list(_SERVE_MODELS),
        "hidden": _DEFAULT_HIDDEN, "repeats": repeats,
        "sequential_s": seq_s, "service_s": svc_s,
        "sequential_predictions_per_s": len(graphs) / seq_s,
        "service_predictions_per_s": len(graphs) / svc_s,
        "speedup": seq_s / svc_s,
    }


def bench_warm_cache(scale: float = 1.0) -> dict:
    """Content-addressed hit path vs direct per-call forwards."""
    device = get_device("A100")
    model = _service_model()
    graph = build_model("alexnet", ModelConfig(batch_size=16))
    feats = encode_graph(graph, device)
    ensure_spd(feats)
    reps = max(20, int(round(50 * scale)))

    model.predict(feats)
    direct_s = _best_of(
        lambda: [model.predict(feats) for _ in range(reps)], 3)

    with PredictorService(model, device) as svc:
        svc.predict(graph)  # fill the result cache
        warm_s = _best_of(
            lambda: [svc.predict(graph) for _ in range(reps)], 3)
        hit_value = svc.predict(graph)

    return {
        "graph": graph.name, "repeats": reps,
        "direct_s": direct_s, "warm_s": warm_s,
        "speedup": direct_s / warm_s,
        "hit_matches_direct": bool(hit_value == model.predict(feats)),
    }


def bench_latency(scale: float = 1.0) -> dict:
    """Concurrent clients: latency quantiles + flush-trigger mix."""
    device = get_device("A100")
    model = _service_model()
    graphs = _distinct_graphs(16)
    threads = 4
    rounds = max(2, int(round(3 * scale)))

    with PredictorService(model, device, max_batch_size=8,
                          deadline_s=0.002) as svc:
        svc.predict_many(graphs)  # warm encodings; timed path = queue+fwd
        errors: list[Exception] = []

        def client(part: list) -> None:
            try:
                for _ in range(rounds):
                    svc.session.results.clear()
                    for g in part:
                        svc.predict(g)
            except Exception as exc:  # surfaced below, not swallowed
                errors.append(exc)

        t0 = time.perf_counter()
        workers = [threading.Thread(target=client,
                                    args=(graphs[i::threads],))
                   for i in range(threads)]
        for w in workers:
            w.start()
        for w in workers:
            w.join()
        wall_s = time.perf_counter() - t0
        if errors:
            raise errors[0]
        stats = svc.stats()

    served = stats["requests"]
    return {
        "client_threads": threads, "rounds": rounds,
        "requests": served, "wall_s": wall_s,
        "requests_per_s": served / wall_s,
        "latency_s": stats["latency"],
        "flush_reasons": stats["flush_reasons"],
        "mean_batch": (stats["requests_dispatched"]
                       / max(1, stats["batches_dispatched"])),
    }


def bench_equivalence() -> dict:
    """Service vs direct predictions across the full model zoo."""
    device = get_device("A100")
    model = _service_model()
    graphs = [build_model(n, ModelConfig(batch_size=16))
              for n in list_models()]
    direct = np.array([model.predict(encode_graph(g, device))
                       for g in graphs])

    with PredictorService(model, device) as svc:
        serial = np.array([svc.predict(g) for g in graphs])
    with PredictorService(model, device) as svc:
        bulk = svc.predict_many(graphs)

    return {
        "zoo_size": len(graphs),
        "serial_max_diff": float(np.abs(serial - direct).max()),
        "serial_bit_identical": bool(np.array_equal(serial, direct)),
        "bulk_max_diff": float(np.abs(bulk - direct).max()),
    }


def bench_overload() -> dict:
    """Queue-full shedding: bounded depth, fallback serves, all resolve."""
    device = get_device("A100")
    model = _service_model()
    graphs = _distinct_graphs(12)

    with PredictorService(model, device, max_batch_size=2,
                          max_queue_depth=4) as svc:
        svc.batcher.pause()
        tickets = [svc.predict_async(g) for g in graphs]
        shed_while_paused = svc.stats()["shed"]
        svc.batcher.resume()
        values = [t.result(timeout=30.0) for t in tickets]
        stats = svc.stats()

    return {
        "flood": len(graphs),
        "max_queue_depth": 4,
        "shed": stats["shed"],
        "shed_while_paused": shed_while_paused,
        "fallback_tiers": stats["fallback_tiers"],
        "all_resolved": bool(all(isinstance(v, float) for v in values)),
    }


def run_serve_benchmarks(scale: float = 1.0) -> dict:
    """Run every serving suite; returns the ``BENCH_serve.json`` document."""
    clear_spd_memo()  # suites measure their own warm-up, not a prior run's
    results = {
        "meta": {
            "bench_version": BENCH_VERSION,
            "cpu_count": os.cpu_count(),
            "scale": scale,
        },
        "throughput": bench_throughput(scale),
        "warm_cache": bench_warm_cache(scale),
        "latency": bench_latency(scale),
        "equivalence": bench_equivalence(),
        "overload": bench_overload(),
    }
    results["gates"] = evaluate_serve_gates(results)
    return results


def evaluate_serve_gates(results: dict) -> dict:
    """The serving acceptance gates over a benchmark document."""
    eq = results["equivalence"]
    ov = results["overload"]
    return {
        "serve_throughput_3x": results["throughput"]["speedup"] >= 3.0,
        "serve_warm_cache_10x": results["warm_cache"]["speedup"] >= 10.0,
        "serve_equivalence_1e6": (eq["serial_max_diff"] <= 1e-6
                                  and eq["bulk_max_diff"] <= 1e-6),
        "serve_serial_bit_identical": bool(eq["serial_bit_identical"]),
        "serve_overload_sheds": (ov["shed"] > 0 and ov["all_resolved"]),
    }


def format_serve_summary(results: dict) -> str:
    """Human-readable digest of a serving benchmark document."""
    t, w, l = results["throughput"], results["warm_cache"], \
        results["latency"]
    e, o = results["equivalence"], results["overload"]
    lat = l["latency_s"]
    lines = [
        f"throughput: service {t['service_predictions_per_s']:.1f} "
        f"pred/s vs sequential {t['sequential_predictions_per_s']:.1f} "
        f"({t['speedup']:.1f}x at batch {t['graphs']})",
        f"warm cache: hit path {w['speedup']:.0f}x over direct predict "
        f"({w['repeats']} repeats)",
        f"latency   : p50 {lat['p50'] * 1e3:.2f}ms p90 "
        f"{lat['p90'] * 1e3:.2f}ms p99 {lat['p99'] * 1e3:.2f}ms over "
        f"{l['requests']} reqs ({l['client_threads']} threads, mean "
        f"batch {l['mean_batch']:.1f}, flushes {l['flush_reasons']})",
        f"equivalence: serial diff {e['serial_max_diff']:.2e} "
        f"(bit-identical: {e['serial_bit_identical']}), bulk diff "
        f"{e['bulk_max_diff']:.2e} over {e['zoo_size']} zoo graphs",
        f"overload  : {o['shed']}/{o['flood']} shed at depth "
        f"{o['max_queue_depth']}, tiers {o['fallback_tiers']}, "
        f"all resolved: {o['all_resolved']}",
        "gates     : " + "  ".join(
            f"{k}={'PASS' if v else 'FAIL'}"
            for k, v in results["gates"].items()),
    ]
    return "\n".join(lines)
