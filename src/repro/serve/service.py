"""Warm model session + synchronous prediction facade.

:class:`ModelSession` owns the preloaded model weights and two bounded
content-addressed memos keyed by :func:`repro.perf.cache.graph_key`
(sha256 of graph content + device, simulator-agnostic):

* a **result cache** — repeated graphs skip encode, SPD, *and* forward;
* an **encoding memo** — cache-warm structures skip encode/SPD and pay
  only the forward.

:class:`PredictorService` is the client surface the scheduler and
colocation planner adopt: ``predict`` / ``predict_many`` /
``predict_async``, plus the ``wants_graph`` protocol so an instance
drops into :func:`repro.sched.make_job` unchanged.  Misses are coalesced
by the :class:`~repro.serve.batcher.MicroBatcher`; a full queue sheds the
request to a :class:`~repro.resilience.FallbackPredictor` chain instead
of queueing unbounded latency.

Numerical contract: a **single-request flush dispatches through
``model.forward``** — bit-identical to a direct ``model.predict`` call —
so serial callers (the scheduler's per-job queries) reproduce pre-service
results exactly.  Multi-request flushes run the masked dense
``forward_batch``, which matches per-graph execution within 1e-6 (in
practice ~1e-15; see docs/performance.md).
"""

from __future__ import annotations

import time
from collections import OrderedDict

import numpy as np

from ..features import GraphFeatures, encode_graph
from ..gpu import DeviceSpec
from ..lint.sanitizer import new_lock
from ..obs import get_logger
from ..obs.context import request_scope, new_request_seq
from ..obs.flight import FlightRecorder
from ..obs.metrics import Histogram, counter, histogram
from ..obs.tracing import span, tracing_enabled
from ..perf.batching import bucket_by_size, ensure_spd
from ..perf.cache import graph_key
from ..resilience import FallbackPredictor, default_fallback_chain
from .batcher import MicroBatcher, QueueFullError, Ticket

__all__ = ["ModelSession", "PredictorService"]

_log = get_logger("serve.service")

#: serve_latency_seconds buckets: the hot path is sub-millisecond cache
#: hits through ~tens of ms for a cold deadline-flushed forward.
_LATENCY_BUCKETS = (0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005,
                    0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0)


class _LRU:
    """Tiny thread-safe bounded LRU (OrderedDict under a lock)."""

    def __init__(self, capacity: int):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = int(capacity)
        self._data: OrderedDict = OrderedDict()
        self._lock = new_lock("_LRU._lock")

    def get(self, key):
        with self._lock:
            try:
                self._data.move_to_end(key)
            except KeyError:
                return None
            return self._data[key]

    def put(self, key, value) -> None:
        with self._lock:
            self._data[key] = value
            self._data.move_to_end(key)
            while len(self._data) > self.capacity:
                self._data.popitem(last=False)

    def __len__(self) -> int:
        with self._lock:
            return len(self._data)

    def clear(self) -> None:
        with self._lock:
            self._data.clear()


class _Request:
    """One queued prediction request, as the dispatcher will see it.

    Carries the request/trace ids minted at enqueue plus enough identity
    (graph, device, cache outcome) for the flight recorder and quality
    monitor to describe the request after it resolves on the dispatcher
    thread.  (Span re-attachment across the queue is the
    :class:`~repro.serve.batcher.Ticket`'s job, not this one's.)
    """

    __slots__ = ("feats", "key", "start", "graph", "device", "cache",
                 "rid", "tid")

    def __init__(self, feats, key, start, graph, device, cache,
                 rid, tid):
        self.feats = feats
        self.key = key
        self.start = start
        self.graph = graph
        self.device = device
        self.cache = cache
        self.rid = rid
        self.tid = tid


class ModelSession:
    """Preloaded weights plus content-addressed request/encoding memos.

    ``device`` is the default prediction target; per-call devices are
    honored (the content key includes the device, so entries never mix).
    """

    def __init__(self, model, device: DeviceSpec, *,
                 cache_size: int = 1024, traced: bool = True):
        self.model = model
        self.device = device
        self.results = _LRU(cache_size)      # graph_key -> float
        self.encodings = _LRU(cache_size)    # graph_key -> GraphFeatures
        # Traced replay applies only to multi-graph batches, and only to
        # models that opt in; single-graph requests stay on the eager
        # per-graph forward (bit-identical).  See docs/compile.md.
        self.traced = traced and getattr(
            model, "supports_traced_batches", False)

    def key_for(self, graph, device: DeviceSpec | None = None) -> str:
        return graph_key(graph, device or self.device)

    def encode(self, graph, device: DeviceSpec | None = None,
               key: str | None = None) -> GraphFeatures:
        """Memoized encode + SPD for one (graph, device) pair."""
        dev = device or self.device
        if key is None:
            key = graph_key(graph, dev)
        feats = self.encodings.get(key)
        if feats is None:
            counter("serve_encoding_cache_misses_total",
                    "serve requests that had to encode features").inc()
            feats = encode_graph(graph, dev)
            ensure_spd(feats)
            self.encodings.put(key, feats)
        else:
            counter("serve_encoding_cache_hits_total",
                    "serve requests served a memoized encoding").inc()
        return feats

    def predict_features(self, feats_list) -> list[float]:
        """Forward 1..B encoded graphs on the calling thread.

        A single graph runs :meth:`~repro.core.DNNOccu.predict` (the
        per-graph forward, bit-identical to a direct call); larger lists
        run the masked dense batch — through the trace-and-replay
        executor when the model supports it (``traced=False`` or the
        ``REPRO_NO_TRACE`` environment knob restores eager batches).
        """
        if len(feats_list) == 1:
            return [self.model.predict(feats_list[0])]
        if self.traced:
            return [float(v) for v in
                    self.model.predict_batch(feats_list, traced=True)]
        return [float(v) for v in self.model.predict_batch(feats_list)]


class PredictorService:
    """Synchronous micro-batched prediction facade over a warm session.

    Parameters
    ----------
    model:
        Anything with ``predict(features)`` / ``predict_batch(list)``
        (normally a :class:`repro.core.DNNOccu`).  Ignored when
        ``session`` is given.
    device:
        Default :class:`~repro.gpu.DeviceSpec` for requests.
    session:
        A prebuilt :class:`ModelSession` (overrides model/device).
    max_batch_size / deadline_s / max_queue_depth:
        Batching knobs, forwarded to :class:`MicroBatcher`.
    fallback:
        :class:`FallbackPredictor` chain serving *shed* requests when the
        queue is full.  Defaults to the terminal constant tier (1.0 — the
        conservative "assume saturating" answer), so shedding is O(1);
        pass :func:`repro.resilience.default_fallback_chain` built with a
        model/analytical baseline for graceful gnn→analytical→constant
        degradation instead.
    cache_size:
        Capacity of the result and encoding LRUs.
    flight_capacity:
        Ring size of the request :class:`~repro.obs.FlightRecorder`
        (last-N request records, always on).  0 disables recording —
        together with observability off, that removes per-request
        context creation entirely (the bench overhead guard's
        "untraced baseline").
    quality:
        Optional :class:`~repro.serve.quality.QualityMonitor`; every
        served or shed prediction is offered to it for sampled
        re-labeling against the simulator.  The caller owns its
        lifecycle.
    """

    #: make_job protocol: call me with (graph, device), not features.
    wants_graph = True

    def __init__(self, model=None, device: DeviceSpec | None = None, *,
                 session: ModelSession | None = None,
                 max_batch_size: int = 32, deadline_s: float = 0.002,
                 max_queue_depth: int = 256,
                 fallback: FallbackPredictor | None = None,
                 cache_size: int = 1024, flight_capacity: int = 256,
                 quality=None):
        if session is None:
            if model is None or device is None:
                raise ValueError(
                    "need either a ModelSession or a (model, device) pair")
            session = ModelSession(model, device, cache_size=cache_size)
        self.session = session
        self.fallback = fallback if fallback is not None \
            else default_fallback_chain()
        self.flight = FlightRecorder(flight_capacity) \
            if flight_capacity > 0 else None
        self.quality = quality
        self._device_name = getattr(session.device, "name", "?")
        self.batcher = MicroBatcher(
            self._dispatch_batch,
            max_batch_size=max_batch_size, deadline_s=deadline_s,
            max_queue_depth=max_queue_depth)
        # Local latency histogram: always populated (the registry copy
        # only exists while obs is enabled), feeds latency_quantiles().
        self._latency = Histogram(
            "serve_latency_seconds",
            "end-to-end serve request latency",
            buckets=_LATENCY_BUCKETS)
        self._shed = 0
        self._deadline_sheds = 0
        self._requests = 0
        self._closed = False
        self._stat_lock = new_lock("PredictorService._stat_lock")

    # -- core request paths --------------------------------------------- #
    def predict(self, graph, device: DeviceSpec | None = None,
                timeout: float | None = None) -> float:
        """Predict occupancy for one graph, blocking until served.

        With ``timeout`` (seconds), a request still unresolved at the
        deadline is *shed*: the fallback chain answers synchronously and
        the caller returns immediately with that value.  The ticket is
        resolved with the fallback answer (first resolution wins), so
        the dispatcher's late result is discarded rather than racing —
        the value this call returned is the value every other observer
        of the ticket sees.
        """
        ticket = self.predict_async(graph, device)
        if timeout is None:
            return ticket.result()
        try:
            return ticket.result(timeout)
        except TimeoutError:
            return self._deadline_shed(ticket, graph, device)

    def predict_async(self, graph,
                      device: DeviceSpec | None = None) -> Ticket:
        """Enqueue one request; returns a :class:`Ticket`.

        Resolved immediately on a result-cache hit and on shed (the
        fallback chain runs synchronously on the calling thread — bounded
        latency is the whole point of shedding).

        With the flight recorder or tracing active, the request runs
        inside a :func:`~repro.obs.request_scope`: it gets a
        ``request_id``/``trace_id``, a ``serve.request`` root span, and
        one :class:`~repro.obs.FlightRecord` at completion.  With both
        off the original untraced fast path runs unchanged.
        """
        start = time.monotonic()
        self._count_request()
        if tracing_enabled():
            with request_scope() as ctx:
                with span("serve.request",
                          graph=getattr(graph, "name", "") or "<graph>"):
                    return self._request(graph, device, start,
                                         ctx.request_id, ctx.trace_id)
        if self.flight is not None:
            # Flight-only: mint a raw sequence number for the ring
            # without paying for a context scope or the id formatting
            # (the recorder formats at read time); the record carries
            # the "-" placeholder trace id.
            return self._request(graph, device, start,
                                 new_request_seq(), "-")
        return self._request(graph, device, start, None, None)

    def _request(self, graph, device, start: float, rid, tid) -> Ticket:
        """Cache lookup → encode → enqueue (or shed), one request."""
        key = self.session.key_for(graph, device)
        cached = self.session.results.get(key)
        if cached is not None:
            counter("serve_result_cache_hits_total",
                    "serve requests answered from the result cache").inc()
            ticket = Ticket()
            ticket.set_result(cached)
            elapsed = self._observe_latency(start)
            self._finish(rid, tid, graph, device, elapsed, "served",
                         "result_hit", cached)
            return ticket
        counter("serve_result_cache_misses_total",
                "serve requests that needed a forward pass").inc()
        cache = "encoding_hit" if rid is not None and \
            self.session.encodings.get(key) is not None else "miss"
        with span("serve.encode"):
            feats = self.session.encode(graph, device, key=key)
        try:
            with span("serve.enqueue"):
                return self.batcher.submit(
                    _Request(feats, key, start, graph, device, cache,
                             rid, tid))
        except QueueFullError:
            return self._shed_request(graph, device, start, rid, tid,
                                      reason="queue full")
        except RuntimeError:
            # Submission raced close(): the batcher is draining or gone.
            # A closed service still answers — synchronously, through
            # the fallback chain — instead of surfacing the internal
            # lifecycle error to the caller.
            return self._shed_request(graph, device, start, rid, tid,
                                      reason="closed")

    def predict_many(self, graphs, device: DeviceSpec | None = None) \
            -> np.ndarray:
        """Bulk path: size-bucketed batches, bypassing the request queue.

        The caller already holds the whole workload, so there is nothing
        to coalesce — chunks go straight to the batched forward (sorted
        by node count to minimize pad waste) and results scatter back to
        input order.  Cache semantics match :meth:`predict`.
        """
        graphs = list(graphs)
        if not tracing_enabled():
            return self._predict_many(graphs, device)
        with request_scope():
            with span("serve.predict_many", n=len(graphs)):
                return self._predict_many(graphs, device)

    def _predict_many(self, graphs, device) -> np.ndarray:
        out = np.zeros(len(graphs))
        miss_idx: list[int] = []
        miss_feats: list[GraphFeatures] = []
        miss_keys: list[str] = []
        for i, graph in enumerate(graphs):
            self._count_request()
            key = self.session.key_for(graph, device)
            cached = self.session.results.get(key)
            if cached is not None:
                counter("serve_result_cache_hits_total",
                        "serve requests answered from the result "
                        "cache").inc()
                out[i] = cached
                continue
            counter("serve_result_cache_misses_total",
                    "serve requests that needed a forward pass").inc()
            miss_idx.append(i)
            miss_feats.append(self.session.encode(graph, device, key=key))
            miss_keys.append(key)
        for idx, chunk in bucket_by_size(miss_feats,
                                         self.batcher.max_batch_size):
            with span("serve.forward", batch=len(chunk)):
                values = self.session.predict_features(chunk)
            for j, value in zip(idx, values):
                out[miss_idx[j]] = value
                self.session.results.put(miss_keys[j], value)
        if self.quality is not None:
            for i, graph in enumerate(graphs):
                self.quality.offer(graph, device or self.session.device,
                                   float(out[i]))
        return out

    def __call__(self, graph, device: DeviceSpec | None = None) \
            -> tuple[float, float]:
        """Workload-predictor protocol (``wants_graph``): ``(mean, std)``.

        The GNN is deterministic given the graph, so the predictive std
        is 0.0 — matching what ``make_job`` assumes for plain callables.
        """
        return self.predict(graph, device), 0.0

    # -- plumbing -------------------------------------------------------- #
    def _count_request(self) -> None:
        counter("serve_requests_total",
                "prediction requests accepted by the service").inc()
        with self._stat_lock:
            self._requests += 1

    def _shed_request(self, graph, device, start: float,
                      rid, tid, reason: str = "queue full") -> Ticket:
        counter("serve_shed_total",
                "requests shed to the fallback chain (queue full)").inc()
        with self._stat_lock:
            self._shed += 1
        _log.warning("%s; shedding to fallback chain", reason, extra={
            "graph": getattr(graph, "name", "") or "<graph>",
            "depth": self.batcher.max_queue_depth})
        with span("serve.fallback") as sp:
            mean, _std = self.fallback(graph,
                                       device or self.session.device)
            sp.set_attr(tier=self.fallback.last_tier)
        ticket = Ticket()
        ticket.set_result(float(mean))
        elapsed = self._observe_latency(start)
        self._finish(rid, tid, graph, device, elapsed, "shed", "miss",
                     float(mean), tier=self.fallback.last_tier)
        return ticket

    def _deadline_shed(self, ticket: Ticket, graph, device) -> float:
        """Resolve a deadline-expired ticket with the fallback answer.

        Runs on the *caller's* thread after ``ticket.result(timeout)``
        timed out.  If the dispatcher resolved the ticket in the window
        between the timeout and our :meth:`Ticket.set_result`, the
        one-shot contract makes it lose gracefully: ``set_result``
        returns ``False`` and we return the real value instead — the
        late result is never double-delivered, and no request is ever
        answered twice with different numbers.
        """
        with span("serve.fallback") as sp:
            mean, _std = self.fallback(graph,
                                       device or self.session.device)
            sp.set_attr(tier=self.fallback.last_tier)
        if not ticket.set_result(float(mean)):
            return ticket.result()
        counter("serve_deadline_shed_total",
                "requests shed to the fallback chain by a caller-side "
                "result deadline").inc()
        with self._stat_lock:
            self._deadline_sheds += 1
        _log.warning("result deadline expired; shed to fallback chain",
                     extra={"graph": getattr(graph, "name", "")
                            or "<graph>",
                            "tier": self.fallback.last_tier})
        return float(mean)

    def _dispatch_batch(self, requests) -> list[float]:
        """MicroBatcher dispatch: forward, fill the cache, record latency.

        Each queued item is a :class:`_Request`; runs on the dispatcher
        thread.  A forward failure records one flight ``error`` entry
        per request before the exception fails the batch's tickets.
        """
        try:
            with span("serve.forward", batch=len(requests)):
                values = self.session.predict_features(
                    [r.feats for r in requests])
        except Exception as exc:
            now = time.monotonic()
            for req in requests:
                self._finish(req.rid, req.tid, req.graph, req.device,
                             now - req.start, "error", req.cache, None,
                             batch=len(requests),
                             error=type(exc).__name__)
            raise
        for req, value in zip(requests, values):
            self.session.results.put(req.key, value)
            elapsed = self._observe_latency(req.start)
            self._finish(req.rid, req.tid, req.graph, req.device,
                         elapsed, "served", req.cache, value,
                         batch=len(requests))
        return values

    def _finish(self, rid, tid, graph, device, latency_s: float,
                outcome: str, cache: str, value, batch: int = 0,
                tier=None, error=None) -> None:
        """Request epilogue: flight record + quality sample offer."""
        if self.quality is not None and value is not None:
            self.quality.offer(graph, device or self.session.device,
                               float(value))
        if self.flight is not None and rid is not None:
            # Bare tuple append: this runs per request even with the
            # tracer off, inside the 2% overhead budget — the recorder
            # coerces to FlightRecord when read.
            self.flight.record((
                rid, tid,
                getattr(graph, "name", "") or "<graph>",
                self._device_name if device is None
                else getattr(device, "name", "?"),
                outcome, cache, latency_s,
                None if value is None else float(value),
                batch, tier, error))

    def _observe_latency(self, start: float) -> float:
        elapsed = time.monotonic() - start
        self._latency.observe(elapsed)
        histogram("serve_latency_seconds",
                  "end-to-end serve request latency",
                  buckets=_LATENCY_BUCKETS).observe(elapsed)
        return elapsed

    # -- introspection / lifecycle --------------------------------------- #
    def latency_quantiles(self) -> dict[str, float]:
        """p50/p90/p99 over every request served so far (bucket accuracy)."""
        return {"p50": self._latency.quantile(0.50),
                "p90": self._latency.quantile(0.90),
                "p99": self._latency.quantile(0.99)}

    def stats(self) -> dict:
        """Snapshot of the service's counters and queue accounting."""
        with self._stat_lock:
            requests, shed = self._requests, self._shed
            deadline_sheds = self._deadline_sheds
            closed = self._closed
        # the batcher counters are written on the dispatcher thread;
        # MicroBatcher.stats() snapshots them under the batcher's own
        # condition (reading the attributes bare here raced the
        # dispatcher — the C002 lint finding this fixed)
        out = {
            "requests": requests,
            "shed": shed,
            "deadline_shed": deadline_sheds,
            "closed": closed,
            "result_cache_entries": len(self.session.results),
            "encoding_cache_entries": len(self.session.encodings),
            "latency": self.latency_quantiles(),
            "fallback_tiers": self.fallback.counts(),
            **self.batcher.stats(),
        }
        if self.flight is not None:
            out["flight"] = self.flight.summary()
        if self.quality is not None:
            out["quality"] = self.quality.stats()
        return out

    def close(self) -> None:
        """Drain and stop the dispatcher.  Idempotent and non-fatal.

        The first call drains the queue (in-flight ``predict_async``
        tickets resolve normally — the batcher's drain flush serves
        them) and stops the dispatcher thread; repeat calls return
        immediately.  Requests submitted *after* close are not errors:
        they route synchronously through the fallback chain (see
        :meth:`_request`), so a torn-down service degrades instead of
        raising into callers that still hold a reference.
        """
        with self._stat_lock:
            if self._closed:
                return
            self._closed = True
        self.batcher.close()

    def __enter__(self) -> "PredictorService":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
