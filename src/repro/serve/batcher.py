"""Adaptive micro-batching queue for the prediction service.

Concurrent single-graph requests land in one bounded FIFO; a dedicated
dispatcher thread coalesces them into batches and flushes on whichever
comes first:

* **full flush** — the queue holds ``max_batch_size`` requests;
* **deadline flush** — the *oldest* queued request has waited
  ``deadline_s`` (default 2 ms), bounding the latency a lone request pays
  for the chance of being batched.

The queue is bounded: :meth:`MicroBatcher.submit` raises
:class:`QueueFullError` at ``max_queue_depth`` instead of growing an
unbounded backlog, which is what lets the service layer shed overload
into the resilience fallback chain with bounded latency.

Synchronization is a single :class:`threading.Condition`; the dispatcher
sleeps in :meth:`Condition.wait` with a timeout (never a raw
``time.sleep`` — the S004 lint pass forbids those outside the backoff
module) so a submit can wake it immediately.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Callable, Sequence

from ..lint.sanitizer import new_condition, new_lock
from ..obs.context import capture_context, use_context
from ..obs.metrics import counter, gauge, histogram
from ..obs.tracing import span

__all__ = ["MicroBatcher", "Ticket", "QueueFullError"]

#: serve_batch_size buckets: powers of two up to the typical max batch.
_BATCH_BUCKETS = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0)

#: idle-poll period while the queue is empty or paused; submits and
#: close() notify the condition, so this only bounds shutdown latency.
_IDLE_WAIT_S = 0.05


class QueueFullError(RuntimeError):
    """The batcher's bounded queue is at ``max_queue_depth``."""


class Ticket:
    """One submitted request's future result — resolved exactly once.

    ``result()`` blocks the submitting thread until the dispatcher
    resolves the ticket (or re-raises the dispatch exception).  The
    first :meth:`set_result` / :meth:`set_exception` wins; later
    resolutions are discarded and report ``False``.  That one-shot
    contract is what makes deadline shedding safe: a caller whose
    ``result(timeout=...)`` expired can resolve the ticket with a
    fallback value, and the dispatcher's late result (or a fleet
    worker's, after a failover retry) is dropped instead of silently
    replacing the value the caller already acted on.

    Creation captures the submitting thread's span context (``ctx``) —
    the request/trace ids plus the id of the span open at the handoff —
    so the dispatcher thread can re-attach it when resolving and its
    spans parent into the request's tree instead of starting a
    disconnected root.  ``None`` outside a request scope.
    """

    __slots__ = ("_event", "_value", "_exc", "_lock", "enqueued_at",
                 "ctx")

    def __init__(self) -> None:
        self._event = threading.Event()
        self._value = None
        self._exc: BaseException | None = None
        self._lock = new_lock("Ticket._lock")
        self.enqueued_at = time.monotonic()
        self.ctx = capture_context()

    def done(self) -> bool:
        return self._event.is_set()

    def set_result(self, value) -> bool:
        """Resolve with ``value``; ``False`` if already resolved."""
        with self._lock:
            if self._event.is_set():
                return False
            self._value = value
            self._event.set()
            return True

    def set_exception(self, exc: BaseException) -> bool:
        """Fail with ``exc``; ``False`` if already resolved."""
        with self._lock:
            if self._event.is_set():
                return False
            self._exc = exc
            self._event.set()
            return True

    def result(self, timeout: float | None = None):
        """The resolved value, waiting up to ``timeout`` seconds.

        Raises :class:`TimeoutError` when the deadline expires first —
        at which point the caller may shed (resolve the ticket itself
        with a fallback value) and any late resolution is discarded.
        """
        if not self._event.wait(timeout):
            raise TimeoutError("ticket not resolved within timeout")
        if self._exc is not None:
            raise self._exc
        return self._value


class MicroBatcher:
    """Bounded request queue + dispatcher thread with adaptive flushing.

    Parameters
    ----------
    dispatch:
        ``dispatch(items) -> results`` called on the dispatcher thread
        with 1..max_batch_size queued items (FIFO order); must return one
        result per item.  An exception fails every ticket in the flush.
    max_batch_size:
        Flush immediately once this many requests are queued.
    deadline_s:
        Flush once the oldest queued request has waited this long.
    max_queue_depth:
        :meth:`submit` raises :class:`QueueFullError` beyond this depth.
    """

    def __init__(self, dispatch: Callable[[Sequence], Sequence], *,
                 max_batch_size: int = 32, deadline_s: float = 0.002,
                 max_queue_depth: int = 256):
        if max_batch_size < 1:
            raise ValueError("max_batch_size must be >= 1")
        if deadline_s <= 0:
            raise ValueError("deadline_s must be positive")
        if max_queue_depth < max_batch_size:
            raise ValueError("max_queue_depth must be >= max_batch_size")
        self._dispatch = dispatch
        self.max_batch_size = int(max_batch_size)
        self.deadline_s = float(deadline_s)
        self.max_queue_depth = int(max_queue_depth)

        self._cond = new_condition("MicroBatcher._cond")
        self._pending: deque[tuple[object, Ticket]] = deque()
        self._closed = False
        self._paused = False
        #: flushes by trigger: "full" | "deadline" | "drain" (close-time)
        self.flush_reasons: dict[str, int] = {
            "full": 0, "deadline": 0, "drain": 0}
        self.batches_dispatched = 0
        self.requests_dispatched = 0
        self._thread = threading.Thread(
            target=self._run, name="repro-serve-dispatch", daemon=True)
        self._thread.start()

    # -- client side ---------------------------------------------------- #
    def submit(self, item) -> Ticket:
        """Enqueue one request; returns its :class:`Ticket`.

        Raises :class:`QueueFullError` when the queue is at capacity and
        ``RuntimeError`` after :meth:`close`.
        """
        with self._cond:
            if self._closed:
                raise RuntimeError("cannot submit to a closed MicroBatcher")
            if len(self._pending) >= self.max_queue_depth:
                raise QueueFullError(
                    f"queue depth {len(self._pending)} at capacity "
                    f"{self.max_queue_depth}")
            ticket = Ticket()
            self._pending.append((item, ticket))
            gauge("serve_queue_depth",
                  "requests waiting in the micro-batch queue").set(
                      len(self._pending))
            self._cond.notify_all()
            return ticket

    @property
    def depth(self) -> int:
        with self._cond:
            return len(self._pending)

    def stats(self) -> dict:
        """Dispatch counters, snapshotted under the batcher's condition.

        The counters are written by the dispatcher thread inside
        ``_collect``'s locked region; cross-thread readers (the
        service's ``stats()``) must come through here rather than read
        the attributes bare — the C002 concurrency lint enforces it.
        """
        with self._cond:
            return {
                "batches_dispatched": self.batches_dispatched,
                "requests_dispatched": self.requests_dispatched,
                "flush_reasons": dict(self.flush_reasons),
            }

    # -- test / lifecycle controls -------------------------------------- #
    def pause(self) -> None:
        """Hold all flushing (deterministic queue build-up in tests)."""
        with self._cond:
            self._paused = True

    def resume(self) -> None:
        with self._cond:
            self._paused = False
            self._cond.notify_all()

    def close(self, timeout: float = 5.0) -> None:
        """Drain the queue, stop the dispatcher, reject new submits."""
        with self._cond:
            self._closed = True
            self._paused = False
            self._cond.notify_all()
        self._thread.join(timeout)

    def __enter__(self) -> "MicroBatcher":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- dispatcher thread ---------------------------------------------- #
    def _run(self) -> None:
        while True:
            batch = self._collect()
            if batch is None:
                return
            items = [item for item, _ in batch]
            now = time.monotonic()
            try:
                with span("serve.flush", batch=len(items)):
                    results = list(self._dispatch(items))
                    if len(results) != len(items):
                        raise RuntimeError(
                            f"dispatch returned {len(results)} results "
                            f"for {len(items)} requests")
            except Exception as exc:
                counter("serve_dispatch_errors_total",
                        "requests failed by a dispatch exception").inc(
                            len(batch))
                for _, ticket in batch:
                    self._resolve(ticket, len(items), now,
                                  exception=exc)
            else:
                for (_, ticket), value in zip(batch, results):
                    self._resolve(ticket, len(items), now, value=value)

    def _resolve(self, ticket: Ticket, batch_size: int, flushed_at: float,
                 value=None, exception: BaseException | None = None) \
            -> None:
        """Resolve one ticket under its captured request context.

        The re-attach is what joins the dispatcher's side of the story
        to the request tree: ``serve.resolve`` parents to the span that
        was open when the ticket was created (normally
        ``serve.request`` on the caller thread).
        """
        with use_context(ticket.ctx), \
                span("serve.resolve", batch=batch_size,
                     wait_ms=round(1e3 * (flushed_at
                                          - ticket.enqueued_at), 3)):
            if exception is not None:
                ticket.set_exception(exception)
            else:
                ticket.set_result(value)

    def _collect(self) -> list[tuple[object, Ticket]] | None:
        """Block until a flush fires; pop and account for its batch."""
        with self._cond:
            while True:
                while not self._pending or self._paused:
                    if self._closed:
                        if not self._pending:
                            return None
                        break  # close() cleared _paused: drain the rest
                    self._cond.wait(_IDLE_WAIT_S)
                deadline = self._pending[0][1].enqueued_at + self.deadline_s
                while (len(self._pending) < self.max_batch_size
                       and not self._closed and not self._paused):
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        break
                    self._cond.wait(remaining)
                if self._paused and not self._closed:
                    continue  # paused mid-wait: go back to idling
                break
            take = min(self.max_batch_size, len(self._pending))
            batch = [self._pending.popleft() for _ in range(take)]
            gauge("serve_queue_depth",
                  "requests waiting in the micro-batch queue").set(
                      len(self._pending))
            if take == self.max_batch_size:
                reason = "full"
            elif self._closed:
                reason = "drain"
            else:
                reason = "deadline"
            self.flush_reasons[reason] += 1
            self.batches_dispatched += 1
            self.requests_dispatched += take
        histogram("serve_batch_size",
                  "requests coalesced per micro-batch flush",
                  buckets=_BATCH_BUCKETS).observe(take)
        return batch
