"""Prediction-quality telemetry: sampled re-labeling against ground truth.

Latency SLOs say the service is *fast*; nothing so far says it is
*right*.  Because the reproduction owns its ground truth (the kernel
simulator in :mod:`repro.gpu` — the same oracle that labeled the
training set), we can close the loop online: the
:class:`QualityMonitor` samples served predictions, re-labels them on a
background thread via :func:`repro.gpu.profile_graph`, and maintains

* rolling absolute-residual and APE windows (MAPE = mean APE),
* calibration bins over [0, 1] (mean predicted vs. mean actual
  occupancy per predicted-value decile),
* a **drift score** — the rolling MAPE — with a threshold alarm counter
  (``serve_quality_drift_alarms_total``), the trigger ROADMAP item 3's
  retraining hook will subscribe to.

Sampling is deterministic (every ``sample_every``-th offer, counted
from the first), re-labeling is off the serving path (bounded queue;
overflow drops the sample, never blocks a request), and
:meth:`QualityMonitor.flush` gives tests a barrier: after it returns,
every accepted sample is reflected in :meth:`stats`.
"""

from __future__ import annotations

import threading
import time
from collections import deque

from ..lint.sanitizer import new_condition, new_lock
from ..obs import get_logger
from ..obs.metrics import counter, gauge, histogram

__all__ = ["QualityMonitor", "simulator_labeler"]

_log = get_logger("serve.quality")

#: serve_quality_abs_residual buckets: occupancy is in [0, 1], so
#: residuals beyond 0.5 are catastrophic.
_RESIDUAL_BUCKETS = (0.005, 0.01, 0.02, 0.05, 0.1, 0.2, 0.5, 1.0)
#: serve_quality_ape buckets: 2% is excellent, >50% is garbage.
_APE_BUCKETS = (0.01, 0.02, 0.05, 0.1, 0.2, 0.5, 1.0, 2.0)


def simulator_labeler(graph, device) -> float:
    """Ground-truth occupancy from the simulator (the training oracle)."""
    from ..gpu import profile_graph
    return float(profile_graph(graph, device).occupancy)


class QualityMonitor:
    """Samples served predictions and re-labels them off-thread.

    Parameters
    ----------
    labeler:
        ``labeler(graph, device) -> float`` ground truth; defaults to
        :func:`simulator_labeler`.
    sample_every:
        Sample the 1st, ``1 + sample_every``-th, ... offer (1 = every
        request; serving-rate deployments want 50-100).
    window:
        Rolling window length for MAPE / residual stats.
    drift_threshold:
        Rolling MAPE above this (with at least ``min_samples`` labeled)
        counts a drift alarm.
    min_samples:
        Alarm suppression until the window has this many labels.
    calibration_bins:
        Number of equal-width predicted-occupancy bins over [0, 1].
    queue_depth:
        Pending re-label bound; overflow drops the sample (the serving
        path never blocks on the labeler).
    """

    def __init__(self, *, labeler=None, sample_every: int = 16,
                 window: int = 256, drift_threshold: float = 0.15,
                 min_samples: int = 8, calibration_bins: int = 10,
                 queue_depth: int = 64):
        if sample_every < 1:
            raise ValueError("sample_every must be >= 1")
        if window < 1:
            raise ValueError("window must be >= 1")
        if calibration_bins < 1:
            raise ValueError("calibration_bins must be >= 1")
        self.labeler = labeler if labeler is not None \
            else simulator_labeler
        self.sample_every = int(sample_every)
        self.drift_threshold = float(drift_threshold)
        self.min_samples = int(min_samples)

        self._lock = new_lock("QualityMonitor._lock")
        self._offered = 0
        self._sampled = 0
        self._dropped = 0
        self._labeled = 0
        self._alarms = 0
        self._residuals: deque[float] = deque(maxlen=window)
        self._apes: deque[float] = deque(maxlen=window)
        # bin -> [count, sum_predicted, sum_actual]
        self._bins = [[0, 0.0, 0.0] for _ in range(calibration_bins)]

        self._cond = new_condition("QualityMonitor._cond")
        self._pending: deque = deque()
        self._queue_depth = int(queue_depth)
        self._closed = False
        self._thread = threading.Thread(
            target=self._run, name="repro-serve-quality", daemon=True)
        self._thread.start()

    # -- serving-path side ----------------------------------------------- #
    def offer(self, graph, device, prediction: float) -> bool:
        """Offer one served prediction; True when it was sampled."""
        with self._lock:
            self._offered += 1
            if (self._offered - 1) % self.sample_every != 0:
                return False
            self._sampled += 1
        with self._cond:
            if self._closed or len(self._pending) >= self._queue_depth:
                with self._lock:
                    self._dropped += 1
                return False
            self._pending.append((graph, device, float(prediction)))
            self._cond.notify_all()
        return True

    # -- labeling thread -------------------------------------------------- #
    def _run(self) -> None:
        while True:
            with self._cond:
                while not self._pending and not self._closed:
                    self._cond.wait()
                if not self._pending and self._closed:
                    return
                item = self._pending.popleft()
            try:
                self._label(*item)
            except Exception as exc:
                with self._lock:
                    self._labeled += 1  # consumed, even if the label failed
                _log.warning("quality re-label failed", extra={
                    "error": type(exc).__name__})
            with self._cond:
                self._cond.notify_all()  # wake flush() waiters

    def _label(self, graph, device, prediction: float) -> None:
        actual = float(self.labeler(graph, device))
        residual = prediction - actual
        ape = abs(residual) / max(abs(actual), 1e-6)
        counter("serve_quality_samples_total",
                "served predictions re-labeled by the quality "
                "monitor").inc()
        histogram("serve_quality_abs_residual",
                  "|prediction - simulator ground truth| for sampled "
                  "requests", buckets=_RESIDUAL_BUCKETS).observe(
                      abs(residual))
        histogram("serve_quality_ape",
                  "absolute percentage error for sampled requests",
                  buckets=_APE_BUCKETS).observe(ape)
        with self._lock:
            self._labeled += 1
            self._residuals.append(residual)
            self._apes.append(ape)
            b = min(len(self._bins) - 1,
                    int(max(0.0, min(prediction, 1.0)) * len(self._bins)))
            self._bins[b][0] += 1
            self._bins[b][1] += prediction
            self._bins[b][2] += actual
            drift = sum(self._apes) / len(self._apes)
            alarm = len(self._apes) >= self.min_samples \
                and drift > self.drift_threshold
            if alarm:
                self._alarms += 1
        gauge("serve_quality_drift_score",
              "rolling MAPE over the quality window").set(drift)
        if alarm:
            counter("serve_quality_drift_alarms_total",
                    "rolling-MAPE drift threshold crossings").inc()
            _log.warning("prediction drift above threshold", extra={
                "drift": round(drift, 4),
                "threshold": self.drift_threshold})

    # -- introspection / lifecycle ---------------------------------------- #
    def flush(self, timeout: float = 10.0) -> bool:
        """Block until every accepted sample is labeled (test barrier)."""
        deadline = time.monotonic() + timeout
        with self._cond:
            while self._pending:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return False
                self._cond.wait(remaining)
        # the worker may have popped the last item but not finished it
        with self._cond:
            while True:
                with self._lock:
                    done = self._labeled >= self._sampled - self._dropped
                if done:
                    return True
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return False
                self._cond.wait(remaining)

    def drift_score(self) -> float:
        """Rolling MAPE (nan with no labeled samples yet)."""
        with self._lock:
            if not self._apes:
                return float("nan")
            return sum(self._apes) / len(self._apes)

    def calibration(self) -> list[dict]:
        """Per-bin mean predicted vs. mean actual occupancy."""
        out = []
        with self._lock:
            n = len(self._bins)
            for i, (count, p_sum, a_sum) in enumerate(self._bins):
                entry = {"lo": i / n, "hi": (i + 1) / n, "count": count}
                if count:
                    entry["mean_predicted"] = p_sum / count
                    entry["mean_actual"] = a_sum / count
                out.append(entry)
        return out

    def stats(self) -> dict:
        with self._lock:
            residuals = list(self._residuals)
            apes = list(self._apes)
            out = {"offered": self._offered, "sampled": self._sampled,
                   "dropped": self._dropped, "labeled": self._labeled,
                   "alarms": self._alarms,
                   "drift_threshold": self.drift_threshold}
        out["mape"] = sum(apes) / len(apes) if apes else float("nan")
        out["mean_residual"] = sum(residuals) / len(residuals) \
            if residuals else float("nan")
        out["max_abs_residual"] = max((abs(r) for r in residuals),
                                      default=float("nan"))
        out["calibration"] = self.calibration()
        return out

    def close(self, timeout: float = 5.0) -> None:
        with self._cond:
            self._closed = True
            self._cond.notify_all()
        self._thread.join(timeout)

    def __enter__(self) -> "QualityMonitor":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
