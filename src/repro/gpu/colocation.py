"""Kernel-level co-location simulation.

The scheduling layer uses a parametric interference model (Fig. 7).  This
module *derives* that behaviour from the substrate: it co-runs the kernel
streams of several profiled models on one device and measures the slowdown
each stream suffers.

Sharing model (per instant):

* each stream's current segment demands its achieved occupancy (warp
  share); dispatch gaps demand zero;
* if the summed demand fits under the device's warp capacity (<= 1), every
  kernel runs at full rate, paying only a bandwidth-sharing tax
  proportional to the co-runners' demand;
* if demand exceeds capacity, the warp scheduler time-slices: each stream
  receives capacity proportional to its demand, so every over-committed
  kernel slows by the total over-subscription factor.

:func:`calibrate_interference` then fits the scheduler's parametric
:class:`~repro.sched.interference.InterferenceModel` to slowdowns sampled
from this simulation, closing the loop between the two layers.
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass

import numpy as np

from ..obs.context import request_scope
from ..obs.tracing import span, tracing_enabled
from .profiler import ProfileResult

__all__ = ["co_run", "pair_slowdown", "calibrate_interference",
           "plan_colocation", "BANDWIDTH_TAX"]

#: fractional rate loss per unit of co-runner occupancy (cache/DRAM sharing)
BANDWIDTH_TAX = 0.25


@dataclass
class _Stream:
    """Flattened (duration, occupancy-demand) segments of one profile."""

    segments: list[tuple[float, float]]
    idx: int = 0
    remaining: float = 0.0
    finish: float | None = None

    @classmethod
    def from_profile(cls, profile: ProfileResult) -> "_Stream":
        n = max(1, sum(r.count for r in profile.records))
        gap = max(0.0, profile.wall_time_s - profile.busy_time_s) / n
        segments: list[tuple[float, float]] = []
        for rec in profile.records:
            per_launch = rec.duration_s / rec.count
            # Collapse repeats: one gap+kernel pair per launch, merged.
            if gap > 0.0:
                segments.append((gap * rec.count, 0.0))
            segments.append((per_launch * rec.count, rec.occupancy))
        stream = cls(segments=segments)
        stream.remaining = segments[0][0] if segments else 0.0
        return stream

    @property
    def done(self) -> bool:
        return self.idx >= len(self.segments)

    @property
    def demand(self) -> float:
        return 0.0 if self.done else self.segments[self.idx][1]


def co_run(profiles: list[ProfileResult]) -> list[float]:
    """Co-run the kernel streams; return each stream's completion time.

    All profiles must come from the same device for the sharing semantics
    to make sense (warp shares are device-relative).
    """
    if not profiles:
        raise ValueError("need at least one profile")
    devices = {p.device_name for p in profiles}
    if len(devices) != 1:
        raise ValueError(f"profiles span devices {sorted(devices)}")

    streams = [_Stream.from_profile(p) for p in profiles]
    for s in streams:
        if s.done:  # kernel-less profile (e.g. an Input-only graph)
            s.finish = 0.0
    now = 0.0
    while any(not s.done for s in streams):
        active = [s for s in streams if not s.done]
        total = sum(s.demand for s in active)

        rates = {}
        for s in active:
            if s.demand == 0.0:
                rates[id(s)] = 1.0  # CPU gap: unaffected by GPU sharing
                continue
            others = total - s.demand
            rate = 1.0 / (1.0 + BANDWIDTH_TAX * others)
            if total > 1.0:
                rate *= 1.0 / total  # time-sliced warp capacity
            rates[id(s)] = rate

        dt = min(s.remaining / rates[id(s)] for s in active)
        now += dt
        for s in active:
            s.remaining -= dt * rates[id(s)]
            if s.remaining <= 1e-15:
                s.idx += 1
                if s.done:
                    s.finish = now
                else:
                    s.remaining = s.segments[s.idx][0]
    return [s.finish for s in streams]


def pair_slowdown(prof_a: ProfileResult,
                  prof_b: ProfileResult) -> tuple[float, float]:
    """Kernel-level slowdown of each model when co-located with the other.

    Streams loop until the longer one finishes once; we approximate with a
    single pass each (both models run continuously in steady state, so a
    single-iteration pass captures the contention mix).
    """
    t_a, t_b = co_run([prof_a, prof_b])
    return t_a / prof_a.wall_time_s, t_b / prof_b.wall_time_s


def plan_colocation(service, graphs, device=None, cap: float = 1.0,
                    max_residents: int | None = None) -> list[list[int]]:
    """Occu-pack graphs into co-location groups via the serving layer.

    The paper's deployment loop (Sec. V): query the predictor for each
    candidate model's occupancy *before* execution, then pack models onto
    a device while the predicted occupancy sum stays under ``cap``.
    Predictions go through ``service`` — a
    :class:`repro.serve.PredictorService` (its ``predict_many`` bulk path
    amortizes one batched forward over the whole candidate set) — never
    through direct per-graph model calls; the S006 lint pass enforces
    that boundary.

    Packs first-fit-decreasing on predicted occupancy; ``max_residents``
    optionally bounds the number of co-resident models per group.
    Returns groups of indices into ``graphs``.
    """
    graphs = list(graphs)
    if not graphs:
        return []
    # One planning pass is one trace: the predict_many call below opens
    # its own request scope *inside* this one, so the serve spans share
    # the plan's trace_id and parent under colocation.plan.
    scope = request_scope() if tracing_enabled() \
        else contextlib.nullcontext()
    with scope, span("colocation.plan", graphs=len(graphs),
                     cap=cap) as sp:
        occs = np.clip(service.predict_many(graphs, device), 0.0, 1.0)
        order = sorted(range(len(graphs)), key=lambda i: -occs[i])
        groups: list[list[int]] = []
        loads: list[float] = []
        for i in order:
            for g, load in enumerate(loads):
                if load + occs[i] <= cap and (
                        max_residents is None
                        or len(groups[g]) < max_residents):
                    groups[g].append(i)
                    loads[g] = load + occs[i]
                    break
            else:
                groups.append([i])
                loads.append(float(occs[i]))
        for group in groups:
            group.sort()
        sp.set_attr(groups=len(groups))
        return groups


def calibrate_interference(profiles: list[ProfileResult],
                           num_pairs: int = 100, seed: int = 0,
                           cap: float = 1.0):
    """Fit the parametric scheduler model to kernel-level slowdowns.

    Samples random pairs from ``profiles``, measures their kernel-level
    slowdowns, and least-squares fits

        slowdown - 1 = alpha * other_occ + beta * max(0, total - cap)^2

    Returns a :class:`repro.sched.InterferenceModel`.
    """
    from ..sched import InterferenceModel

    if len(profiles) < 2:
        raise ValueError("need at least two profiles")
    rng = np.random.default_rng(seed)
    rows_x, rows_y = [], []
    for _ in range(num_pairs):
        i, j = rng.integers(0, len(profiles), size=2)
        if i == j:
            continue
        a, b = profiles[int(i)], profiles[int(j)]
        s_a, s_b = pair_slowdown(a, b)
        for own, other, s in ((a.occupancy, b.occupancy, s_a),
                              (b.occupancy, a.occupancy, s_b)):
            over = max(0.0, own + other - cap)
            rows_x.append([other, over * over])
            rows_y.append(max(0.0, s - 1.0))
    x = np.asarray(rows_x)
    y = np.asarray(rows_y)
    # The quadratic term is only identifiable with real over-cap support;
    # with a near-zero column its coefficient explodes on residual noise.
    over_support = int(np.sum(x[:, 1] > 0.01))
    if over_support < 5:
        x = x[:, :1]
    # Ridge regularization keeps the fit conditioned.
    lam = 1e-3 * len(y)
    a = x.T @ x + lam * np.eye(x.shape[1])
    coef = np.linalg.solve(a, x.T @ y)
    alpha = float(np.clip(coef[0], 0.0, 2.0))
    beta = float(np.clip(coef[1], 0.0, 10.0)) if x.shape[1] == 2 \
        else InterferenceModel().beta
    return InterferenceModel(alpha=alpha, beta=beta, cap=cap)
