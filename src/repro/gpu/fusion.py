"""Elementwise fusion pass over computation graphs.

Vendor libraries fuse cheap elementwise epilogues (bias add, ReLU, scale)
into the producing GEMM/convolution kernel instead of launching a separate
vectorized kernel.  :func:`fuse_elementwise` reproduces this: an
elementwise operator with exactly one predecessor that is a heavy
(GEMM-like) operator and exactly one consumer chain is absorbed into the
producer — the producer keeps its launch configuration (the epilogue is
register-resident) and inherits the epilogue's FLOPs and output traffic.

This changes the kernel stream the profiler sees: fewer launches, slightly
longer heavy kernels, and a higher duration share for low-occupancy GEMM
kernels — the fusion/no-fusion contrast is an ablation axis for the
occupancy labels.
"""

from __future__ import annotations

from ..graph import ComputationGraph, DataEdge, OpNode

__all__ = ["fuse_elementwise", "FUSABLE_OPS", "HEAVY_OPS"]

#: elementwise epilogues vendor kernels absorb
FUSABLE_OPS = frozenset({"ReLU", "ReLU6", "GELU", "SiLU", "Sigmoid", "Tanh",
                         "Scale", "BatchNorm2d"})

#: producers with an epilogue slot
HEAVY_OPS = frozenset({"Conv2d", "DepthwiseConv2d", "Gemm", "MatMul"})


def fuse_elementwise(graph: ComputationGraph,
                     name: str = "") -> ComputationGraph:
    """Return a copy of ``graph`` with elementwise epilogues fused.

    A node is fused when (a) its op type is in :data:`FUSABLE_OPS`, (b) it
    has exactly one predecessor, and (c) that predecessor is in
    :data:`HEAVY_OPS` or is itself a node already absorbing an epilogue
    chain.  Chains (Conv → BN → ReLU) collapse fully.
    """
    # Map each node to its fusion target (itself if not fused).
    target: dict[int, int] = {}
    order = graph.topological_order()
    for nid in order:
        node = graph.nodes[nid]
        preds = graph.predecessors(nid)
        target[nid] = nid
        if node.op_type in FUSABLE_OPS and len(preds) == 1:
            pred = preds[0]
            # The producer's raw output must have no other consumer, and
            # the (transitive) fusion target must be a heavy kernel.
            if len(set(graph.successors(pred))) == 1 and \
                    graph.nodes[target[pred]].op_type in HEAVY_OPS:
                target[nid] = target[pred]

    fused = ComputationGraph(name or f"{graph.name}_fused")
    # Create surviving nodes with accumulated costs.
    extra_flops: dict[int, int] = {}
    final_shape: dict[int, tuple[int, ...]] = {}
    for nid in order:
        t = target[nid]
        if t != nid:
            extra_flops[t] = extra_flops.get(t, 0) + graph.nodes[nid].flops
            final_shape[t] = graph.nodes[nid].output_shape
    for nid in order:
        if target[nid] != nid:
            continue
        src = graph.nodes[nid]
        d = src.to_dict()
        d["flops"] = src.flops + extra_flops.get(nid, 0)
        if nid in final_shape:
            d["output_shape"] = list(final_shape[nid])
            d["name"] = f"{src.name}_fused"
        fused.add_node(OpNode.from_dict(d))

    # Re-route edges through fusion targets, dropping internal edges.
    seen: set[tuple[int, int]] = set()
    for edge in graph.edges:
        s, t = target[edge.src], target[edge.dst]
        if s == t or (s, t) in seen:
            continue
        seen.add((s, t))
        fused.add_edge(DataEdge(
            src=s, dst=t,
            tensor_shape=tuple(fused.nodes[s].output_shape),
            edge_type=edge.edge_type))
    fused.validate()
    return fused
