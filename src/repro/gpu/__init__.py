"""GPU substrate: devices, occupancy calculator, kernel lowering, profiler."""

from .device import A100, DEVICES, P40, RTX2080TI, DeviceSpec, get_device, WARP_SIZE
from .occupancy import OccupancyResult, achieved_occupancy, theoretical_occupancy
from .kernels import GemmShape, KernelLaunch, lower_node
from .profiler import (KernelRecord, OutOfMemoryError, ProfileResult,
                       SIMULATOR_VERSION, check_memory_or_raise,
                       estimate_memory_bytes, profile_graph)
from .trace import occupancy_report, to_chrome_trace
from .fusion import FUSABLE_OPS, HEAVY_OPS, fuse_elementwise
from .colocation import (BANDWIDTH_TAX, calibrate_interference, co_run,
                         pair_slowdown, plan_colocation)
from .memory import (ALLOCATOR_OVERHEAD_BYTES, peak_activation_bytes,
                     peak_memory_breakdown, peak_memory_bytes, weight_bytes)
from .training import lower_backward, profile_training_graph

__all__ = [
    "DeviceSpec", "A100", "RTX2080TI", "P40", "DEVICES", "get_device",
    "WARP_SIZE",
    "OccupancyResult", "theoretical_occupancy", "achieved_occupancy",
    "KernelLaunch", "GemmShape", "lower_node",
    "KernelRecord", "ProfileResult", "profile_graph", "SIMULATOR_VERSION",
    "estimate_memory_bytes", "check_memory_or_raise", "OutOfMemoryError",
    "to_chrome_trace", "occupancy_report",
    "fuse_elementwise", "FUSABLE_OPS", "HEAVY_OPS",
    "co_run", "pair_slowdown", "calibrate_interference",
    "plan_colocation", "BANDWIDTH_TAX",
    "peak_activation_bytes", "weight_bytes", "peak_memory_bytes",
    "peak_memory_breakdown", "ALLOCATOR_OVERHEAD_BYTES",
    "profile_training_graph", "lower_backward",
]
