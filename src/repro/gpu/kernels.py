"""Operator → kernel lowering (the cuDNN/cuBLAS stand-in).

Each computation-graph operator is lowered to one or more GPU kernel
launches with concrete launch configurations (grid size, threads per block,
registers per thread, shared memory per block).  The heuristics mimic how
vendor libraries pick kernels:

* GEMM-like operators choose a tile from a small catalogue based on the
  problem shape — large tiles use many registers and much shared memory
  (high throughput, low occupancy), small tiles the reverse;
* 3x3 stride-1 convolutions take a Winograd-flavoured variant;
* elementwise operators use vectorized 128-thread kernels (high occupancy);
* row reductions (softmax, layer norm) launch one block per row with
  shared-memory scratch;
* recurrent operators launch one fused GEMM + one pointwise kernel per
  timestep (the ``count`` field collapses the repetition).

The exact constants are not claimed to match any particular cuDNN version;
what matters for the reproduction is that the mapping is *opaque to the
predictor*, deterministic, device-dependent, and produces the occupancy
regimes real DL workloads show (GEMM-bound models ≈ 12–50%, elementwise-
heavy models higher).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from math import ceil

from ..graph import DTYPE_BYTES, OpNode, tensor_numel
from .device import DeviceSpec

__all__ = ["KernelLaunch", "lower_node", "GemmShape", "LOWERABLE_OPS"]

#: op types :func:`lower_node` can lower.  This registry is load-bearing:
#: ``lower_node`` rejects anything outside it up front, and the
#: cross-registry coverage pass (``repro lint --registries``, code R003)
#: checks it covers all of ``OP_TYPES`` — so an operator added to the
#: vocabulary without a lowering fails the lint gate, not a profile run.
LOWERABLE_OPS: frozenset[str] = frozenset({
    "Input",
    "Conv2d", "DepthwiseConv2d", "Gemm", "MatMul",
    "ReLU", "ReLU6", "GELU", "SiLU", "Sigmoid", "Tanh", "Add", "Mul",
    "Div", "Scale", "Erf", "Identity", "Pow", "Sqrt", "Shift",
    "PatchMerge", "Pad",
    "Concat", "Split", "Slice", "Flatten", "Reshape", "Transpose",
    "BatchNorm2d", "LayerNorm", "GroupNorm", "Softmax", "ReduceMean",
    "MaxPool2d", "AvgPool2d", "AdaptiveAvgPool2d", "GlobalAvgPool",
    "Embedding", "LSTM", "RNN",
})


@dataclass(frozen=True)
class KernelLaunch:
    """One kernel launch (repeated ``count`` times back-to-back)."""

    name: str
    grid_blocks: int
    threads_per_block: int
    regs_per_thread: int
    smem_per_block: int
    #: FLOPs of a single launch
    flops: float
    #: DRAM bytes moved by a single launch
    bytes_moved: float
    #: identical back-to-back launches (e.g. LSTM timesteps)
    count: int = 1
    #: efficiency of the kernel's inner loop at full occupancy (0..1]
    compute_efficiency: float = 0.7


@dataclass(frozen=True)
class GemmShape:
    """Logical GEMM problem: ``batch`` independent (m x k) @ (k x n)."""

    m: int
    n: int
    k: int
    batch: int = 1


# --------------------------------------------------------------------------- #
# GEMM tile catalogue: (tile_m, tile_n, threads, regs/thread, smem bytes,
# inner-loop efficiency).  Mirrors the ampere_sgemm_{128x128,64x64,32x32}
# family naming.
# --------------------------------------------------------------------------- #
_GEMM_TILES = (
    (128, 128, 256, 80, 33 * 1024, 0.78),
    (64, 64, 128, 64, 17 * 1024, 0.62),
    (32, 32, 64, 40, 9 * 1024, 0.45),
)


def _select_gemm_tile(shape: GemmShape):
    """Pick the largest tile the problem can fill reasonably."""
    for tm, tn, threads, regs, smem, eff in _GEMM_TILES:
        if shape.m >= tm and shape.n >= tn:
            return tm, tn, threads, regs, smem, eff
    return _GEMM_TILES[-1]


def _lower_gemm(name: str, shape: GemmShape, weight_bytes: float,
                io_bytes: float, count: int = 1) -> KernelLaunch:
    tm, tn, threads, regs, smem, eff = _select_gemm_tile(shape)
    grid = ceil(shape.m / tm) * ceil(shape.n / tn) * shape.batch
    # Deep reductions spill into extra unrolled registers.
    if shape.k >= 1024:
        regs = min(255, regs + 16)
    flops = 2.0 * shape.m * shape.n * shape.k * shape.batch
    return KernelLaunch(
        name=f"{name}_{tm}x{tn}", grid_blocks=grid,
        threads_per_block=threads, regs_per_thread=regs,
        smem_per_block=smem, flops=flops,
        bytes_moved=weight_bytes + io_bytes, count=count,
        compute_efficiency=eff,
    )


def _elementwise_kernel(name: str, numel: int, bytes_moved: float,
                        flops: float, regs: int = 18,
                        count: int = 1) -> KernelLaunch:
    threads = 128
    vec = 4  # float4 vectorization
    grid = max(1, ceil(numel / (threads * vec)))
    return KernelLaunch(
        name=name, grid_blocks=grid, threads_per_block=threads,
        regs_per_thread=regs, smem_per_block=0, flops=flops,
        bytes_moved=bytes_moved, count=count, compute_efficiency=0.85,
    )


def _next_pow2(n: int) -> int:
    p = 1
    while p < n:
        p <<= 1
    return p


def _row_reduce_kernel(name: str, rows: int, cols: int, bytes_moved: float,
                       flops: float, count: int = 1) -> KernelLaunch:
    threads = min(1024, max(64, _next_pow2(min(cols, 1024))))
    smem = 2 * threads * DTYPE_BYTES
    return KernelLaunch(
        name=name, grid_blocks=max(1, rows), threads_per_block=threads,
        regs_per_thread=26, smem_per_block=smem, flops=flops,
        bytes_moved=bytes_moved, count=count, compute_efficiency=0.6,
    )


def _io_bytes(node: OpNode) -> float:
    return float(node.input_bytes + node.output_bytes)


# --------------------------------------------------------------------------- #
# Per-operator lowering
# --------------------------------------------------------------------------- #
def lower_node(node: OpNode, device: DeviceSpec) -> list[KernelLaunch]:
    """Lower one operator to its kernel launches on ``device``.

    The device only affects lowering marginally (Pascal lacks the largest
    tile's shared-memory carveout, pushing big GEMMs to the 64x64 tile) —
    most device dependence enters later through the occupancy calculator
    and roofline timing.
    """
    op = node.op_type
    attrs = node.attrs
    if op not in LOWERABLE_OPS:
        raise KeyError(f"no kernel lowering for operator {op!r}")

    if op == "Input":
        return []

    if op in ("Conv2d", "DepthwiseConv2d"):
        return _lower_conv(node, device)

    if op == "Gemm":
        batch = max(1, node.output_numel // node.output_shape[-1])
        shape = GemmShape(m=batch, n=attrs["out_features"],
                          k=attrs["in_features"])
        w_bytes = attrs["in_features"] * attrs["out_features"] * DTYPE_BYTES
        return [_clamp_tile(_lower_gemm("sgemm", shape, w_bytes,
                                        _io_bytes(node)), device)]

    if op == "MatMul":
        m, n = node.output_shape[-2], node.output_shape[-1]
        k = attrs.get("reduce_dim", node.input_shapes[0][-1])
        batch = max(1, tensor_numel(node.output_shape[:-2]))
        shape = GemmShape(m=m, n=n, k=k, batch=batch)
        return [_clamp_tile(_lower_gemm("sgemm_batched", shape, 0.0,
                                        _io_bytes(node)), device)]

    if op in ("ReLU", "ReLU6", "GELU", "SiLU", "Sigmoid", "Tanh", "Add",
              "Mul", "Div", "Scale", "Erf", "Identity", "Pow", "Sqrt",
              "Shift", "PatchMerge", "Pad"):
        return [_elementwise_kernel(
            f"vectorized_elementwise_{op.lower()}", node.output_numel,
            _io_bytes(node), float(node.flops))]

    if op in ("Concat", "Split", "Slice", "Flatten", "Reshape", "Transpose"):
        # Data movement (or free view).  Transpose/concat copy memory.
        if op in ("Flatten", "Reshape"):
            return []  # views: no kernel
        return [_elementwise_kernel(f"copy_{op.lower()}", node.output_numel,
                                    _io_bytes(node), 0.0, regs=14)]

    if op == "BatchNorm2d":
        return [_elementwise_kernel("bn_inference_scale_shift",
                                    node.output_numel, _io_bytes(node),
                                    float(node.flops), regs=22)]

    if op in ("LayerNorm", "GroupNorm", "Softmax", "ReduceMean"):
        cols = node.output_shape[-1] if node.output_shape else 1
        rows = max(1, node.output_numel // max(1, cols))
        return [_row_reduce_kernel(f"{op.lower()}_rowwise", rows, cols,
                                   _io_bytes(node), float(node.flops))]

    if op in ("MaxPool2d", "AvgPool2d"):
        return [_elementwise_kernel(f"pooling_{op.lower()}",
                                    node.output_numel, _io_bytes(node),
                                    float(node.flops), regs=30)]

    if op in ("AdaptiveAvgPool2d", "GlobalAvgPool"):
        n, c = node.output_shape[0], node.output_shape[1]
        in_hw = (tensor_numel(node.input_shapes[0]) // max(1, n * c)
                 if node.input_shapes else 1)
        return [_row_reduce_kernel("global_pool_reduce", n * c, in_hw,
                                   _io_bytes(node), float(node.flops))]

    if op == "Embedding":
        return [_elementwise_kernel("embedding_gather", node.output_numel,
                                    _io_bytes(node), 0.0, regs=20)]

    if op in ("LSTM", "RNN"):
        return _lower_recurrent(node, device)

    raise RuntimeError(  # pragma: no cover - registry/dispatch drift
        f"operator {op!r} is in LOWERABLE_OPS but no dispatch branch "
        f"handles it")


def _lower_conv(node: OpNode, device: DeviceSpec) -> list[KernelLaunch]:
    attrs = node.attrs
    n, k_out, p, q = node.output_shape
    c = attrs["in_channels"] // attrs.get("groups", 1)
    r, s = attrs["kernel_size"]
    stride = attrs.get("stride", (1, 1))
    w_bytes = attrs["out_channels"] * c * r * s * DTYPE_BYTES

    if node.op_type == "DepthwiseConv2d":
        return [_elementwise_kernel("depthwise_conv2d", node.output_numel,
                                    _io_bytes(node) + w_bytes,
                                    float(node.flops), regs=40)]

    if (r, s) == (3, 3) and stride == (1, 1):
        # Winograd F(2x2, 3x3): transform + batched GEMM fused variant.
        shape = GemmShape(m=n * ceil(p / 2) * ceil(q / 2), n=k_out, k=c * 16)
        kern = _lower_gemm("winograd_fused_conv", shape, w_bytes,
                           _io_bytes(node))
        # Winograd reduces arithmetic ~2.25x; keep graph-level FLOPs but
        # reflect the saving in efficiency instead of FLOPs.
        kern = KernelLaunch(
            name=kern.name, grid_blocks=kern.grid_blocks,
            threads_per_block=kern.threads_per_block,
            regs_per_thread=min(255, kern.regs_per_thread + 16),
            smem_per_block=kern.smem_per_block,
            flops=float(node.flops), bytes_moved=kern.bytes_moved,
            compute_efficiency=min(0.95, kern.compute_efficiency * 1.35),
        )
        return [_clamp_tile(kern, device)]

    # Implicit GEMM: M = N*P*Q output pixels, N = K filters, K = C*R*S.
    shape = GemmShape(m=n * p * q, n=k_out, k=c * r * s)
    return [_clamp_tile(_lower_gemm("implicit_gemm_conv", shape, w_bytes,
                                    _io_bytes(node)), device)]


def _lower_recurrent(node: OpNode, device: DeviceSpec) -> list[KernelLaunch]:
    attrs = node.attrs
    batch = attrs["batch"]
    seq = attrs["seq_len"]
    hidden = attrs["hidden_size"]
    inp = attrs["input_size"]
    layers = attrs.get("num_layers", 1)
    gates = 4 if node.op_type == "LSTM" else 1
    steps = seq * layers

    shape = GemmShape(m=batch, n=gates * hidden, k=inp + hidden)
    gemm_io = (batch * (inp + hidden) + batch * gates * hidden) * DTYPE_BYTES
    w_bytes = gates * hidden * (inp + hidden) * DTYPE_BYTES
    gemm = _clamp_tile(
        _lower_gemm(f"{node.op_type.lower()}_gemm", shape, w_bytes,
                    float(gemm_io), count=steps), device)

    point_numel = batch * hidden
    pointwise = _elementwise_kernel(
        f"{node.op_type.lower()}_pointwise", point_numel,
        float(2 * gates * point_numel * DTYPE_BYTES),
        float(8 * gates * point_numel), regs=32, count=steps)
    return [gemm, pointwise]


def _clamp_tile(kern: KernelLaunch, device: DeviceSpec) -> KernelLaunch:
    """Demote kernels whose shared-memory tile exceeds the device's SM.

    Pascal/Turing cannot host the 33 KB 128x128 tile twice; vendor
    libraries fall back to the 64x64 variant there.
    """
    if kern.smem_per_block <= device.shared_mem_per_sm // 2:
        return kern
    tm, tn, threads, regs, smem, eff = _GEMM_TILES[1]
    scale = (128 * 128) / (tm * tn)
    return KernelLaunch(
        name=kern.name.replace("128x128", "64x64"),
        grid_blocks=int(kern.grid_blocks * scale),
        threads_per_block=threads, regs_per_thread=regs,
        smem_per_block=smem, flops=kern.flops,
        bytes_moved=kern.bytes_moved, count=kern.count,
        compute_efficiency=eff,
    )
