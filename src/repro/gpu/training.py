"""Training-iteration profiling (extension beyond the paper's inference
scope; the Table I edge-type feature reserves "Backward" for exactly this).

A training step executes the forward kernels, then — in reverse topological
order — each operator's backward kernels, then the optimizer update.  The
backward lowering follows the standard decomposition:

* GEMM-like operators run a *data-gradient* kernel (same problem shape as
  the forward) and a *weight-gradient* kernel (a GEMM reducing over the
  batch/pixel dimension) — roughly 2x the forward cost;
* elementwise / normalization / pooling operators run one backward kernel
  of forward-like cost;
* embeddings run an atomics-based scatter-add (memory-bound, poorly
  coalesced);
* the optimizer runs one vectorized update kernel per parameterized node.

The result is a regular :class:`ProfileResult`, so training occupancy can
be aggregated, featurized, and predicted exactly like inference occupancy.
"""

from __future__ import annotations

from ..graph import ComputationGraph, DTYPE_BYTES
from .device import DeviceSpec
from .kernels import KernelLaunch, lower_node, _elementwise_kernel
from .memory import weight_bytes
from .occupancy import achieved_occupancy
from .profiler import (FRAMEWORK_DISPATCH_S, KernelRecord, ProfileResult,
                       _kernel_duration)

__all__ = ["profile_training_graph", "lower_backward"]

#: operators owning trainable parameters (get a weight-gradient kernel
#: and an optimizer update)
_PARAMETERIZED = frozenset({"Conv2d", "DepthwiseConv2d", "Gemm", "LSTM",
                            "RNN", "Embedding", "BatchNorm2d", "LayerNorm",
                            "GroupNorm"})

_NO_BACKWARD = frozenset({"Input", "Flatten", "Reshape", "Identity"})


def lower_backward(node, device: DeviceSpec) -> list[KernelLaunch]:
    """Backward kernels of one operator."""
    op = node.op_type
    if op in _NO_BACKWARD:
        return []

    if op == "Embedding":
        # Gradient scatter with atomics: heavily memory-bound.
        return [_elementwise_kernel(
            "embedding_dense_backward_atomics", node.output_numel,
            2.0 * node.output_bytes, float(node.flops), regs=24)]

    forward = lower_node(node, device)
    out: list[KernelLaunch] = []
    for kern in forward:
        # Data-gradient kernel: same shape class as the forward kernel.
        out.append(KernelLaunch(
            name=f"{kern.name}_dgrad", grid_blocks=kern.grid_blocks,
            threads_per_block=kern.threads_per_block,
            regs_per_thread=kern.regs_per_thread,
            smem_per_block=kern.smem_per_block, flops=kern.flops,
            bytes_moved=kern.bytes_moved, count=kern.count,
            compute_efficiency=kern.compute_efficiency))
        if op in _PARAMETERIZED:
            # Weight-gradient kernel: reduction over the batch dimension;
            # typically slightly fewer resident blocks (extra accumulator
            # registers) at the same tile shape.
            out.append(KernelLaunch(
                name=f"{kern.name}_wgrad", grid_blocks=kern.grid_blocks,
                threads_per_block=kern.threads_per_block,
                regs_per_thread=min(255, kern.regs_per_thread + 8),
                smem_per_block=kern.smem_per_block, flops=kern.flops,
                bytes_moved=kern.bytes_moved, count=kern.count,
                compute_efficiency=kern.compute_efficiency * 0.9))
    return out


def profile_training_graph(graph: ComputationGraph, device: DeviceSpec,
                           check_memory: bool = True) -> ProfileResult:
    """Simulate one *training* iteration (forward + backward + update).

    Training memory is approximated as twice the inference working set
    (activations are retained for the backward pass, and gradients mirror
    the weights).
    """
    if check_memory:
        from ..obs.metrics import counter
        from .memory import peak_memory_breakdown
        from .profiler import OutOfMemoryError
        breakdown = peak_memory_breakdown(graph)
        required = 2 * breakdown["total_bytes"]
        if required > device.mem_capacity_bytes:
            counter("profiler_oom_total",
                    "profile attempts rejected by the memory model").inc()
            culprit = ""
            if breakdown["peak_node_id"] is not None:
                culprit = (f" (peak at node {breakdown['peak_node_id']} "
                           f"{breakdown['peak_op_type']})")
            raise OutOfMemoryError(
                f"{graph.name}: training needs ~{required / 2**30:.1f} GiB,"
                f" device {device.name} has {device.mem_capacity_gb} GiB"
                f"{culprit}")

    result = ProfileResult(model_name=f"{graph.name}_train",
                           device_name=device.name)
    busy = 0.0
    dispatches = 0
    order = graph.topological_order()

    def run(nid: int, kernels: list[KernelLaunch]) -> None:
        nonlocal busy, dispatches
        if kernels:
            dispatches += 1
        for kern in kernels:
            occ, theo = achieved_occupancy(
                device, kern.grid_blocks, kern.threads_per_block,
                kern.regs_per_thread, kern.smem_per_block)
            dur = _kernel_duration(kern, occ, device) * kern.count
            busy += dur
            result.records.append(KernelRecord(
                name=kern.name, node_id=nid, duration_s=dur,
                occupancy=occ, theoretical_occupancy=theo.occupancy,
                limiter=theo.limiter, flops=kern.flops * kern.count,
                bytes_moved=kern.bytes_moved * kern.count,
                count=kern.count))

    for nid in order:                       # forward
        run(nid, lower_node(graph.nodes[nid], device))
    for nid in reversed(order):             # backward
        run(nid, lower_backward(graph.nodes[nid], device))

    # Optimizer: one fused vectorized update over all parameters.
    n_weights = weight_bytes(graph) // DTYPE_BYTES
    if n_weights:
        run(order[-1], [_elementwise_kernel(
            "fused_optimizer_step", int(n_weights),
            3.0 * n_weights * DTYPE_BYTES, 4.0 * n_weights, regs=24)])

    launches = sum(r.count for r in result.records)
    gaps = dispatches * FRAMEWORK_DISPATCH_S \
        + launches * device.launch_overhead_s
    result.busy_time_s = busy
    result.wall_time_s = busy + gaps
    return result
