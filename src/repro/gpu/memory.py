"""Device-memory model: liveness-based peak activation analysis.

The OOM filter (dataset generation "ran until OOM") and the memory-aware
packing policy both need peak memory.  This module computes it properly:
walking the topological execution order, an operator's output stays live
until its last consumer has executed; peak memory is the maximum live set
plus weights and the largest kernel workspace.
"""

from __future__ import annotations

from ..graph import ComputationGraph, DTYPE_BYTES

__all__ = ["peak_activation_bytes", "weight_bytes", "peak_memory_bytes",
           "peak_memory_breakdown", "ALLOCATOR_OVERHEAD_BYTES"]

#: CUDA context + caching-allocator slack
ALLOCATOR_OVERHEAD_BYTES = 512 * 2**20


def _liveness_walk(graph: ComputationGraph) -> tuple[int, int | None]:
    """(peak live bytes, node id executing when the live set peaks).

    Liveness: an output buffer is allocated when its node executes and
    freed after the last of its consumers executes.  Outputs with no
    consumers (graph results) stay live to the end.
    """
    order = graph.topological_order()
    position = {nid: i for i, nid in enumerate(order)}

    # Last-use position of each node's output.
    last_use: dict[int, int] = {}
    for nid in order:
        consumers = graph.successors(nid)
        if consumers:
            last_use[nid] = max(position[c] for c in consumers)
        else:
            last_use[nid] = len(order) - 1  # result tensor: live to the end

    live = 0
    peak = 0
    peak_nid: int | None = None
    # Buffers to free after each step.
    frees: dict[int, list[int]] = {}
    for nid, end in last_use.items():
        frees.setdefault(end, []).append(nid)

    for step, nid in enumerate(order):
        live += graph.nodes[nid].output_bytes
        if live > peak:
            peak = live
            peak_nid = nid
        for freed in frees.get(step, ()):
            live -= graph.nodes[freed].output_bytes
    return peak, peak_nid


def peak_activation_bytes(graph: ComputationGraph) -> int:
    """Peak bytes of simultaneously-live activations during execution."""
    return _liveness_walk(graph)[0]


def weight_bytes(graph: ComputationGraph) -> int:
    """Total parameter bytes of the model (FP32)."""
    total = 0
    for node in graph.nodes.values():
        a = node.attrs
        if node.op_type in ("Conv2d", "DepthwiseConv2d"):
            r, s = a["kernel_size"]
            total += (a["out_channels"] * a["in_channels"]
                      // a.get("groups", 1)) * r * s * DTYPE_BYTES
            total += a["out_channels"] * DTYPE_BYTES  # bias
        elif node.op_type == "Gemm":
            total += (a["in_features"] * a["out_features"]
                      + a["out_features"]) * DTYPE_BYTES
        elif node.op_type == "Embedding":
            total += a["vocab_size"] * a["embed_dim"] * DTYPE_BYTES
        elif node.op_type in ("LSTM", "RNN"):
            gates = 4 if node.op_type == "LSTM" else 1
            h, i = a["hidden_size"], a["input_size"]
            layers = a.get("num_layers", 1)
            per_layer_first = gates * h * (i + h + 2)
            per_layer_rest = gates * h * (h + h + 2)
            total += (per_layer_first
                      + max(0, layers - 1) * per_layer_rest) * DTYPE_BYTES
        elif node.op_type in ("BatchNorm2d", "LayerNorm", "GroupNorm"):
            width = node.output_shape[1] if len(node.output_shape) > 1 \
                else node.output_shape[-1]
            total += 2 * width * DTYPE_BYTES  # scale + shift
    return total


def peak_memory_bytes(graph: ComputationGraph) -> int:
    """Full working-set estimate: weights + live activations + workspace
    + allocator overhead.  The quantity checked against device capacity."""
    return peak_memory_breakdown(graph)["total_bytes"]


def peak_memory_breakdown(graph: ComputationGraph) -> dict:
    """Where the working set comes from — the OOM attribution view.

    Returns ``total_bytes`` (what :func:`peak_memory_bytes` reports) plus
    its components and the culprit node: ``peak_node_id`` /
    ``peak_op_type`` identify the operator executing when the live
    activation set peaks, which is what an OOM message should name.
    """
    activations, peak_nid = _liveness_walk(graph)
    workspace = max((n.temp_bytes for n in graph.nodes.values()), default=0)
    weights = weight_bytes(graph)
    return {
        "total_bytes": (weights + activations + workspace
                        + ALLOCATOR_OVERHEAD_BYTES),
        "weight_bytes": weights,
        "activation_bytes": activations,
        "workspace_bytes": workspace,
        "allocator_overhead_bytes": ALLOCATOR_OVERHEAD_BYTES,
        "peak_node_id": peak_nid,
        "peak_op_type": (graph.nodes[peak_nid].op_type
                         if peak_nid is not None else None),
    }
