"""Profiler tooling: kernel timelines and ncu-style reports.

:func:`to_chrome_trace` serializes a :class:`ProfileResult` into the
Chrome ``chrome://tracing`` / Perfetto JSON event format, with one lane
for GPU kernels and one for the CPU dispatch gaps — the view a real
profiler release ships for "where did the iteration time go".

:func:`occupancy_report` renders a per-kernel table in the spirit of
``ncu --print-summary``: duration, achieved vs theoretical occupancy, and
the residency limiter.
"""

from __future__ import annotations

import json

from .profiler import ProfileResult

__all__ = ["to_chrome_trace", "occupancy_report"]


def to_chrome_trace(result: ProfileResult) -> str:
    """Chrome-trace JSON for one profiled iteration.

    Kernels are laid out back-to-back on the GPU lane with their dispatch
    gap on the CPU lane (an approximation: the simulator does not track
    per-kernel gap placement, so the total gap is spread evenly).
    """
    events = []
    n = max(1, sum(r.count for r in result.records))
    gap_per_launch = max(0.0, (result.wall_time_s - result.busy_time_s)) / n

    t = 0.0
    for rec in result.records:
        per_launch = rec.duration_s / rec.count
        for _ in range(rec.count):
            events.append({
                "name": "dispatch", "ph": "X", "pid": 0, "tid": 0,
                "ts": t * 1e6, "dur": gap_per_launch * 1e6,
                "args": {"node_id": rec.node_id},
            })
            t += gap_per_launch
            events.append({
                "name": rec.name, "ph": "X", "pid": 0, "tid": 1,
                "ts": t * 1e6, "dur": per_launch * 1e6,
                "args": {
                    "node_id": rec.node_id,
                    "occupancy": round(rec.occupancy, 4),
                    "theoretical_occupancy":
                        round(rec.theoretical_occupancy, 4),
                    "limiter": rec.limiter,
                },
            })
            t += per_launch
    trace = {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "model": result.model_name,
            "device": result.device_name,
            "occupancy": result.occupancy,
            "nvml_utilization": result.nvml_utilization,
        },
    }
    return json.dumps(trace)


def occupancy_report(result: ProfileResult, top: int | None = None) -> str:
    """ncu-style per-kernel summary, longest kernels first."""
    records = sorted(result.records, key=lambda r: r.duration_s,
                     reverse=True)
    if top is not None:
        records = records[:top]
    lines = [
        f"model {result.model_name} on {result.device_name}: "
        f"{result.num_kernels} kernels, "
        f"busy {result.busy_time_s * 1e3:.3f} ms, "
        f"wall {result.wall_time_s * 1e3:.3f} ms",
        f"duration-weighted achieved occupancy: {result.occupancy:.2%}   "
        f"NVML utilization: {result.nvml_utilization:.2%}",
        f"{'kernel':<36s} {'count':>5s} {'total us':>10s} "
        f"{'achieved':>9s} {'theoretical':>12s} {'limiter':>11s}",
    ]
    for rec in records:
        lines.append(
            f"{rec.name:<36.36s} {rec.count:5d} "
            f"{rec.duration_s * 1e6:10.1f} {rec.occupancy:9.2%} "
            f"{rec.theoretical_occupancy:12.2%} {rec.limiter:>11s}")
    return "\n".join(lines)
