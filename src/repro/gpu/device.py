"""GPU device specifications (Table III systems).

Values are taken from NVIDIA's published datasheets / CUDA occupancy
calculator tables for the three GPUs the paper evaluates on:

* **A100** (Ampere, GA100) — System-1
* **GeForce RTX 2080 Ti** (Turing, TU102) — System-2
* **Tesla P40** (Pascal, GP102) — System-3

These feed two places: the occupancy calculator (hardware limits) and the
Table I device features (GPU FLOPS, memory capacity, SM count).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["DeviceSpec", "A100", "RTX2080TI", "P40", "DEVICES", "get_device"]

WARP_SIZE = 32


@dataclass(frozen=True)
class DeviceSpec:
    """Static hardware description of one GPU."""

    name: str
    arch: str
    sm_count: int
    #: maximum resident warps per SM (occupancy denominator)
    max_warps_per_sm: int
    #: maximum resident thread blocks per SM
    max_blocks_per_sm: int
    #: 32-bit registers per SM
    registers_per_sm: int
    #: register allocation granularity (registers, per warp)
    register_alloc_unit: int
    #: shared memory per SM available to resident blocks (bytes)
    shared_mem_per_sm: int
    #: shared memory allocation granularity (bytes)
    shared_mem_alloc_unit: int
    #: peak FP32 throughput (TFLOP/s)
    fp32_tflops: float
    #: DRAM bandwidth (GB/s)
    mem_bandwidth_gbs: float
    #: device memory capacity (GB)
    mem_capacity_gb: float
    #: per-kernel launch overhead (seconds) — CPU-side driver cost
    launch_overhead_s: float = 4e-6

    @property
    def max_threads_per_sm(self) -> int:
        return self.max_warps_per_sm * WARP_SIZE

    @property
    def peak_flops(self) -> float:
        """Peak FP32 throughput in FLOP/s."""
        return self.fp32_tflops * 1e12

    @property
    def peak_bandwidth(self) -> float:
        """DRAM bandwidth in bytes/s."""
        return self.mem_bandwidth_gbs * 1e9

    @property
    def mem_capacity_bytes(self) -> int:
        return int(self.mem_capacity_gb * 2**30)


A100 = DeviceSpec(
    name="A100", arch="Ampere", sm_count=108,
    max_warps_per_sm=64, max_blocks_per_sm=32,
    registers_per_sm=65536, register_alloc_unit=256,
    shared_mem_per_sm=164 * 1024, shared_mem_alloc_unit=128,
    fp32_tflops=19.5, mem_bandwidth_gbs=2039.0, mem_capacity_gb=80.0,
    launch_overhead_s=3.5e-6,
)

RTX2080TI = DeviceSpec(
    name="RTX2080Ti", arch="Turing", sm_count=68,
    max_warps_per_sm=32, max_blocks_per_sm=16,
    registers_per_sm=65536, register_alloc_unit=256,
    shared_mem_per_sm=64 * 1024, shared_mem_alloc_unit=128,
    fp32_tflops=13.45, mem_bandwidth_gbs=616.0, mem_capacity_gb=11.0,
    launch_overhead_s=4.5e-6,
)

P40 = DeviceSpec(
    name="P40", arch="Pascal", sm_count=30,
    max_warps_per_sm=64, max_blocks_per_sm=32,
    registers_per_sm=65536, register_alloc_unit=256,
    shared_mem_per_sm=96 * 1024, shared_mem_alloc_unit=256,
    fp32_tflops=11.76, mem_bandwidth_gbs=347.0, mem_capacity_gb=22.5,
    launch_overhead_s=5.5e-6,
)

#: registry of Table III devices
DEVICES: dict[str, DeviceSpec] = {
    "A100": A100,
    "RTX2080Ti": RTX2080TI,
    "P40": P40,
}


def get_device(name: str) -> DeviceSpec:
    """Look up a device by (case-insensitive) name."""
    for key, dev in DEVICES.items():
        if key.lower() == name.lower():
            return dev
    raise KeyError(f"unknown device {name!r}; known: {sorted(DEVICES)}")
