"""CUDA occupancy calculator.

Implements the resource-limit computation NVIDIA documents for its
occupancy calculator: the number of thread blocks resident on one SM is the
minimum over four limits (warp slots, block slots, register file, shared
memory), each with the hardware's allocation granularity.  *Theoretical
occupancy* is ``active_warps / max_warps_per_sm``.

*Achieved occupancy* — the quantity Nsight Compute reports and the paper
predicts — is lower than theoretical whenever the grid cannot keep every SM
saturated for the whole kernel (the "tail effect") or the launch is too
small to fill even one wave.  :func:`achieved_occupancy` models both.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import ceil

from .device import WARP_SIZE, DeviceSpec

__all__ = ["OccupancyResult", "theoretical_occupancy", "achieved_occupancy"]


def _round_up(value: int, unit: int) -> int:
    return ((value + unit - 1) // unit) * unit


@dataclass(frozen=True)
class OccupancyResult:
    """Outcome of the occupancy computation for one kernel launch."""

    active_blocks_per_sm: int
    active_warps_per_sm: int
    max_warps_per_sm: int
    #: which hardware resource bounds residency: "warps", "blocks",
    #: "registers", or "shared_mem"
    limiter: str

    @property
    def occupancy(self) -> float:
        """Theoretical occupancy in [0, 1]."""
        return self.active_warps_per_sm / self.max_warps_per_sm


def theoretical_occupancy(device: DeviceSpec, threads_per_block: int,
                          regs_per_thread: int,
                          smem_per_block: int) -> OccupancyResult:
    """Resource-limited blocks/warps resident per SM for a launch config.

    Raises ``ValueError`` if a single block cannot fit on the SM at all
    (more than 1024 threads, register file exceeded, or shared memory
    exceeded) — the same condition under which a real launch fails.
    """
    if threads_per_block <= 0 or threads_per_block > 1024:
        raise ValueError(f"invalid threads_per_block={threads_per_block}")
    warps_per_block = ceil(threads_per_block / WARP_SIZE)

    # Limit 1: warp slots.
    limit_warps = device.max_warps_per_sm // warps_per_block

    # Limit 2: block slots.
    limit_blocks = device.max_blocks_per_sm

    # Limit 3: register file.  Registers are allocated per warp with the
    # device's granularity.
    if regs_per_thread > 0:
        regs_per_warp = _round_up(regs_per_thread * WARP_SIZE,
                                  device.register_alloc_unit)
        regs_per_block = regs_per_warp * warps_per_block
        if regs_per_block > device.registers_per_sm:
            raise ValueError(
                f"kernel needs {regs_per_block} registers/block; SM has "
                f"{device.registers_per_sm}")
        limit_regs = device.registers_per_sm // regs_per_block
    else:
        limit_regs = limit_blocks

    # Limit 4: shared memory.
    if smem_per_block > 0:
        smem = _round_up(smem_per_block, device.shared_mem_alloc_unit)
        if smem > device.shared_mem_per_sm:
            raise ValueError(
                f"kernel needs {smem} B shared memory; SM has "
                f"{device.shared_mem_per_sm}")
        limit_smem = device.shared_mem_per_sm // smem
    else:
        limit_smem = limit_blocks

    candidates = {
        "warps": limit_warps,
        "blocks": limit_blocks,
        "registers": limit_regs,
        "shared_mem": limit_smem,
    }
    limiter = min(candidates, key=lambda k: candidates[k])
    blocks = max(0, candidates[limiter])
    if blocks == 0:
        raise ValueError("block too large for any residency")
    warps = blocks * warps_per_block
    return OccupancyResult(
        active_blocks_per_sm=blocks,
        active_warps_per_sm=warps,
        max_warps_per_sm=device.max_warps_per_sm,
        limiter=limiter,
    )


def achieved_occupancy(device: DeviceSpec, grid_blocks: int,
                       threads_per_block: int, regs_per_thread: int,
                       smem_per_block: int,
                       imbalance: float = 0.92) -> tuple[float, OccupancyResult]:
    """Achieved (time-averaged) occupancy for a full grid launch.

    The grid executes in *waves* of ``active_blocks_per_sm * sm_count``
    blocks.  Full waves run at theoretical occupancy; the final partial wave
    runs at a proportionally lower average, which drags the time-average
    down — the dominant reason real kernels miss their theoretical
    occupancy.  ``imbalance`` multiplies in residual scheduling losses
    (uneven block runtimes, launch ramp-up) that Nsight attributes to
    "achieved vs theoretical" gaps even for huge grids.

    Returns ``(achieved, theoretical_result)``.
    """
    theo = theoretical_occupancy(device, threads_per_block, regs_per_thread,
                                 smem_per_block)
    if grid_blocks <= 0:
        raise ValueError("grid must contain at least one block")

    wave_capacity = theo.active_blocks_per_sm * device.sm_count
    full_waves, rem = divmod(grid_blocks, wave_capacity)

    if full_waves == 0:
        # Launch smaller than one wave: average warps per SM across the
        # whole device during the single (partial) wave.
        warps_per_block = ceil(threads_per_block / WARP_SIZE)
        total_warps = rem * warps_per_block
        avg = total_warps / (device.sm_count * device.max_warps_per_sm)
        achieved = min(theo.occupancy, avg)
    else:
        # Time-weighted mean over full waves + one partial wave (waves are
        # modelled as equal-duration).
        total_waves = full_waves + (1 if rem else 0)
        partial = (rem / wave_capacity) * theo.occupancy if rem else 0.0
        achieved = (full_waves * theo.occupancy + partial) / total_waves

    return achieved * imbalance, theo
