"""Simulated kernel profiler — the Nsight Compute / NVML substitute.

Given a computation graph and a device, :func:`profile_graph` lowers every
operator to kernels, computes each kernel's *achieved occupancy* (occupancy
calculator + wave/tail model) and *duration* (roofline: compute-bound vs
memory-bound, derated by occupancy), and aggregates:

* ``occupancy`` — duration-weighted mean of per-kernel achieved occupancy,
  exactly the ground-truth label definition in Section III-A / Fig. 2;
* ``nvml_utilization`` — fraction of wall time with at least one kernel
  resident; inter-kernel gaps come from framework dispatch and driver
  launch overheads, so long-kernel workloads saturate this metric early
  (the Fig. 2 phenomenon).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..graph import ComputationGraph, DTYPE_BYTES
from ..obs import get_logger
from ..obs.metrics import counter, histogram
from ..obs.tracing import span
from .device import DeviceSpec
from .kernels import KernelLaunch, lower_node
from .occupancy import achieved_occupancy

_log = get_logger("gpu.profiler")

#: histogram bucket bounds for per-kernel durations (microseconds)
KERNEL_DURATION_BUCKETS_US = (2.0, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0,
                              500.0, 1000.0, 2500.0, 5000.0, 10000.0)

#: histogram bucket bounds for achieved occupancy (fraction of peak)
OCCUPANCY_BUCKETS = (0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0)

__all__ = ["KernelRecord", "ProfileResult", "profile_graph",
           "estimate_memory_bytes", "check_memory_or_raise",
           "OutOfMemoryError", "SIMULATOR_VERSION"]

#: version stamp of the simulator's cost model.  Part of every
#: :mod:`repro.perf.cache` key — bump it whenever the occupancy, duration,
#: memory, or lowering math changes, so stale cached profiles can never be
#: served for a different simulator.
SIMULATOR_VERSION = 1

#: CPU-side framework overhead per operator dispatch (seconds).  PyTorch
#: eager-mode op dispatch costs on the order of 5-20 us.
FRAMEWORK_DISPATCH_S = 1.2e-5

#: floor on kernel duration (device-side launch latency)
MIN_KERNEL_S = 1.5e-6


class OutOfMemoryError(RuntimeError):
    """Raised when a model configuration does not fit in device memory."""


@dataclass(frozen=True)
class KernelRecord:
    """One profiled kernel (aggregated over its ``count`` repeats)."""

    name: str
    node_id: int
    duration_s: float
    occupancy: float
    theoretical_occupancy: float
    limiter: str
    flops: float
    bytes_moved: float
    count: int


@dataclass
class ProfileResult:
    """Profile of one model execution on one device."""

    model_name: str
    device_name: str
    records: list[KernelRecord] = field(default_factory=list)
    #: total GPU-busy time of one inference iteration (seconds)
    busy_time_s: float = 0.0
    #: wall time including framework dispatch gaps (seconds)
    wall_time_s: float = 0.0
    #: the memory model rejected this configuration but profiling
    #: continued anyway (``profile_graph(..., on_oom="degrade")``); a
    #: scheduler should treat such a job as evictable, not runnable
    oom: bool = False

    @property
    def num_kernels(self) -> int:
        return sum(r.count for r in self.records)

    def aggregate_occupancy(self, aggr: str = "mean") -> float:
        """Aggregate per-kernel occupancy (paper Section III-A).

        ``mean`` is duration-weighted (the paper's representative choice);
        ``max`` / ``min`` are the alternatives mentioned in the general
        formulation.
        """
        if not self.records:
            return 0.0
        occ = np.array([r.occupancy for r in self.records])
        if aggr == "mean":
            w = np.array([r.duration_s for r in self.records])
            return float(np.average(occ, weights=w))
        if aggr == "max":
            return float(occ.max())
        if aggr == "min":
            return float(occ.min())
        if aggr == "unweighted_mean":
            return float(occ.mean())
        raise ValueError(f"unknown aggregation {aggr!r}")

    @property
    def occupancy(self) -> float:
        """Duration-weighted mean achieved occupancy in [0, 1]."""
        return self.aggregate_occupancy("mean")

    @property
    def nvml_utilization(self) -> float:
        """Fraction of wall time with >= 1 kernel executing, in [0, 1]."""
        if self.wall_time_s <= 0.0:
            return 0.0
        return min(1.0, self.busy_time_s / self.wall_time_s)

    def per_node_occupancy(self) -> dict[int, dict[str, float]]:
        """Duration-weighted occupancy and GPU time per graph node.

        The node-level attribution behind the graph-level label ("fused
        data contains complete dependency relations among occupancy data
        and the computation graph", Fig. 3 stage 2).  Nodes lowered to no
        kernels (views, inputs) are absent.
        """
        acc: dict[int, list[float]] = {}
        for rec in self.records:
            dur, wocc = acc.setdefault(rec.node_id, [0.0, 0.0])
            acc[rec.node_id][0] = dur + rec.duration_s
            acc[rec.node_id][1] = wocc + rec.occupancy * rec.duration_s
        return {nid: {"duration_s": dur, "occupancy": wocc / dur}
                for nid, (dur, wocc) in acc.items()}

    def per_kernel_breakdown(self) -> dict[str, dict[str, float]]:
        """Duration share and weighted occupancy per kernel family.

        Groups records by kernel name; each entry reports the fraction of
        GPU-busy time the family consumes and its duration-weighted
        occupancy — the "who drags occupancy down" view.
        """
        groups: dict[str, list[KernelRecord]] = {}
        for rec in self.records:
            groups.setdefault(rec.name, []).append(rec)
        total = sum(r.duration_s for r in self.records) or 1.0
        out: dict[str, dict[str, float]] = {}
        for name, recs in groups.items():
            dur = sum(r.duration_s for r in recs)
            occ = sum(r.occupancy * r.duration_s for r in recs) / dur
            out[name] = {
                "duration_share": dur / total,
                "occupancy": occ,
                "launches": float(sum(r.count for r in recs)),
            }
        return dict(sorted(out.items(),
                           key=lambda kv: -kv[1]["duration_share"]))


def _kernel_duration(kern: KernelLaunch, occ: float,
                     device: DeviceSpec) -> float:
    """Roofline duration of a single launch of ``kern``.

    Compute efficiency scales with achieved occupancy up to a saturation
    point (~50% occupancy hides most latency); memory efficiency similarly.
    """
    occ_factor = 0.35 + 0.65 * min(1.0, occ / 0.5)
    t_compute = kern.flops / (device.peak_flops *
                              kern.compute_efficiency * occ_factor)
    bw_factor = 0.55 + 0.40 * min(1.0, occ / 0.4)
    t_memory = kern.bytes_moved / (device.peak_bandwidth * bw_factor)
    return max(t_compute, t_memory, MIN_KERNEL_S)


def profile_graph(graph: ComputationGraph, device: DeviceSpec,
                  check_memory: bool = True,
                  preflight: bool = True,
                  on_oom: str = "raise") -> ProfileResult:
    """Simulate one inference iteration of ``graph`` on ``device``.

    Raises :class:`OutOfMemoryError` when the working set exceeds device
    memory (mirrors the paper's dataset generation, which scaled batch
    sizes up until OOM).  In simulation contexts that model eviction
    rather than hard aborts — chaos scheduling experiments, resilience
    sweeps — pass ``on_oom="degrade"``: the rejection is logged and
    counted (``resilience_faults_total{component="profiler",
    kind="oom"}``) but profiling continues, and the result carries
    ``oom=True`` so the caller can treat the job as evictable.

    With ``preflight`` (the default) the structural
    lint passes run first and a :class:`~repro.lint.LintError` is raised
    on any ERROR diagnostic — a malformed graph is rejected statically
    instead of producing corrupt kernel records; rejections are counted
    as ``lint_preflight_failures_total{gate="profiler"}``.
    """
    if on_oom not in ("raise", "degrade"):
        raise ValueError(f"unknown on_oom policy {on_oom!r}")
    oom_flag = False
    with span("profile_graph", model=graph.name, device=device.name):
        if preflight:
            # Imported lazily: repro.lint pulls in the feature encoder,
            # which imports this package.
            from ..lint import preflight_graph
            with span("lint_preflight", model=graph.name):
                preflight_graph(graph, device=device)
        if check_memory:
            try:
                check_memory_or_raise(graph, device)
            except OutOfMemoryError:
                if on_oom == "raise":
                    raise
                oom_flag = True
                counter("resilience_faults_total",
                        "faults observed by resilience machinery",
                        component="profiler", kind="oom").inc()
                _log.warning("profiling past OOM (degraded)", extra={
                    "model": graph.name, "device": device.name})

        # Hoisted metric handles: one registry lookup per profile call,
        # not per kernel (and shared no-ops when observability is off).
        kernels_total = counter(
            "profiler_kernels_total", "kernel launches profiled")
        dur_hist = histogram(
            "profiler_kernel_duration_us",
            "per-launch kernel duration (microseconds)",
            buckets=KERNEL_DURATION_BUCKETS_US)
        occ_hist = histogram(
            "profiler_kernel_occupancy",
            "per-kernel achieved occupancy", buckets=OCCUPANCY_BUCKETS)

        result = ProfileResult(model_name=graph.name,
                               device_name=device.name)
        busy = 0.0
        dispatches = 0
        for nid in graph.topological_order():
            node = graph.nodes[nid]
            with span("lower_node", node_id=nid, op=node.op_type):
                kernels = lower_node(node, device)
                if kernels:
                    dispatches += 1
                for kern in kernels:
                    occ, theo = achieved_occupancy(
                        device, kern.grid_blocks, kern.threads_per_block,
                        kern.regs_per_thread, kern.smem_per_block)
                    dur = _kernel_duration(kern, occ, device) * kern.count
                    busy += dur
                    kernels_total.inc(kern.count)
                    dur_hist.observe(dur / kern.count * 1e6)
                    occ_hist.observe(occ)
                    result.records.append(KernelRecord(
                        name=kern.name, node_id=nid, duration_s=dur,
                        occupancy=occ,
                        theoretical_occupancy=theo.occupancy,
                        limiter=theo.limiter, flops=kern.flops * kern.count,
                        bytes_moved=kern.bytes_moved * kern.count,
                        count=kern.count))

        launches = sum(r.count for r in result.records)
        gaps = dispatches * FRAMEWORK_DISPATCH_S \
            + launches * device.launch_overhead_s
        result.busy_time_s = busy
        result.wall_time_s = busy + gaps
        result.oom = oom_flag
        return result


def check_memory_or_raise(graph: ComputationGraph,
                          device: DeviceSpec) -> None:
    """Raise :class:`OutOfMemoryError` (naming the peak-liveness node)
    when ``graph`` does not fit on ``device``; count the rejection."""
    from .memory import peak_memory_breakdown
    breakdown = peak_memory_breakdown(graph)
    required = breakdown["total_bytes"]
    if required <= device.mem_capacity_bytes:
        return
    counter("profiler_oom_total",
            "profile attempts rejected by the memory model").inc()
    culprit = ""
    if breakdown["peak_node_id"] is not None:
        culprit = (f" (peak at node {breakdown['peak_node_id']} "
                   f"{breakdown['peak_op_type']})")
    _log.warning("out of memory", extra={
        "model": graph.name, "device": device.name,
        "required_gib": round(required / 2**30, 2),
        "peak_node_id": breakdown["peak_node_id"]})
    raise OutOfMemoryError(
        f"{graph.name}: needs {required / 2**30:.1f} GiB, device "
        f"{device.name} has {device.mem_capacity_gb} GiB{culprit}")


def estimate_memory_bytes(graph: ComputationGraph) -> int:
    """Peak device-memory estimate for inference (the OOM filter).

    Delegates to the liveness-based model in :mod:`repro.gpu.memory`:
    weights + peak simultaneously-live activations + the largest kernel
    workspace + allocator overhead.
    """
    from .memory import peak_memory_bytes
    return peak_memory_bytes(graph)
