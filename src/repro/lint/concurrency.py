"""Whole-program concurrency lint: thread roles, shared state, locks.

The serving path is genuinely multi-threaded — the
:class:`~repro.serve.batcher.MicroBatcher` dispatcher thread, the
:class:`~repro.serve.quality.QualityMonitor` re-labeling thread, and
every client thread calling ``predict`` all touch the same objects.
This pass family analyzes *all* the parsed files of one lint run at once
(family ``"program"``) and machine-checks the lock discipline:

1. **Thread roles.**  Every method of every class is assigned a role
   set: ``init`` (constructors — single-threaded by construction),
   ``worker`` (reachable from a ``threading.Thread(target=...)`` entry
   point, including callbacks escaping into thread-owning classes), and
   ``client`` (reachable from the public API).  Roles propagate through
   ``self.method()`` calls and through attribute-typed cross-class calls
   (``self.batcher.submit(...)`` propagates the caller's roles into
   ``MicroBatcher.submit`` when ``self.batcher`` was assigned a
   ``MicroBatcher(...)`` in ``__init__``).
2. **Shared-state set.**  An instance attribute is *shared* when some
   non-init role writes it and a different role reads or writes it.
   Writes are direct stores, augmented assignments, subscript stores,
   and mutator calls (``.append``/``.update``/...) on untyped container
   attributes.
3. **Lock guards.**  Each access site carries the set of class-level
   locks held at that point (``with self._lock:`` regions, tracked
   through the AST).  ``C001`` fires when *no* site of a shared
   attribute is guarded; ``C002`` when the sites' lock sets have no
   common lock but some site is guarded.
4. **Lock order** (``C003``).  A global acquisition graph over
   ``Class.attr`` lock names — an edge ``a -> b`` means ``b`` is
   acquired (possibly through calls) while ``a`` is held.  Cycles, and
   same-instance self-edges on non-reentrant ``Lock``s, are deadlocks.
5. **Blocking while locked** (``C004``).  ``Condition.wait``,
   ``queue.get/put``, ``Thread.join``, ``future.result``,
   ``time.sleep``, and ``open`` while holding a lock — except the
   canonical ``cond.wait()`` where the waited-on condition is the *only*
   lock held (``wait`` releases it).
6. **Shutdown hygiene** (``C005``).  A daemon thread stored on ``self``
   whose class has no ``.join()`` call for it anywhere.

Deliberately lock-free GIL-atomic patterns (the flight recorder's
``deque(maxlen)`` + ``itertools.count`` idiom) opt out per attribute
with a ``# conc: lockfree-ok -- <reason>`` comment on (or up to four
lines above) an actual shared-access site of that attribute; the reason
is mandatory, and annotations parked on non-shared lines have no
effect.  The static acquisition graph is exported via
:func:`acquisition_graph` so the runtime sanitizer
(:mod:`repro.lint.sanitizer`) can cross-check observed lock orders
against it.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from ..obs.metrics import counter
from .diagnostics import Diagnostic, Severity
from .manager import LintPass, ProgramContext

__all__ = ["ConcurrencyPass", "PROGRAM_PASSES", "ProgramModel",
           "ClassModel", "MethodModel", "build_program_model",
           "analyze_program", "LOCKFREE_MARKER"]

#: the opt-out marker; a non-empty reason must follow it
LOCKFREE_MARKER = "conc: lockfree-ok"

#: how many lines above an access site an opt-out comment may sit
_OPT_OUT_REACH = 4

#: constructor-role methods: run before the object is ever shared
_INIT_METHODS = frozenset({"__init__", "__post_init__", "__new__"})

#: lock-constructor terminal names -> lock kind
_LOCK_KINDS = {
    "Lock": "lock", "new_lock": "lock",
    "RLock": "rlock", "new_rlock": "rlock",
    "Condition": "condition", "new_condition": "condition",
    "Semaphore": "semaphore", "BoundedSemaphore": "semaphore",
}

#: reentrant lock kinds (Condition wraps an RLock by default)
_REENTRANT = frozenset({"rlock", "condition", "semaphore"})

_QUEUE_FACTORIES = frozenset({"Queue", "SimpleQueue", "LifoQueue",
                              "PriorityQueue"})

#: container methods treated as writes to the receiving attribute
_MUTATORS = frozenset({
    "append", "appendleft", "extend", "extendleft", "insert",
    "pop", "popleft", "popitem", "remove", "discard", "clear",
    "update", "add", "setdefault", "move_to_end", "sort", "reverse",
    "put", "put_nowait", "rotate",
})

#: methods that block the calling thread (beyond the receiver itself)
_BLOCKING_METHODS = frozenset({"wait", "join", "get", "put", "result",
                               "acquire"})


# --------------------------------------------------------------------- #
# collection: per-class AST extraction
# --------------------------------------------------------------------- #

def _attr_chain(node: ast.AST) -> "list[str] | None":
    """``['self', 'a', 'b']`` for ``self.a.b``; None for anything else."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        parts.reverse()
        return parts
    return None


def _terminal_name(func: ast.AST) -> str:
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return ""


@dataclass
class Access:
    """One read/write of a (possibly cross-class) instance attribute."""

    attr: str
    #: self-attribute path leading to the owner object; empty = own attr
    chain: tuple = ()
    lineno: int = 0
    write: bool = False       # direct store / augmented / subscript store
    mutator: bool = False     # write via a container-mutator call
    locks: frozenset = frozenset()  # local lock-attr names held here
    method: str = ""


@dataclass
class SelfCall:
    """``self.m(...)`` — intra-class call edge for role propagation."""

    method: str
    locks: frozenset
    lineno: int


@dataclass
class AttrCall:
    """``self.a(. ...).m(...)`` — cross-class call edge (type-resolved)."""

    chain: tuple
    method: str
    locks: frozenset
    lineno: int


@dataclass
class Acquisition:
    """A ``with self.<lock>:`` entry and the locks already held there."""

    lock: str
    held: frozenset
    lineno: int


@dataclass
class Blocking:
    """A potentially blocking call site and the locks held around it."""

    kind: str
    receiver: "str | None"  # local lock-attr name when waiting on a lock
    locks: frozenset
    lineno: int
    detail: str = ""


@dataclass
class ThreadSpec:
    """One ``threading.Thread(...)`` construction inside the class."""

    attr: "str | None"     # self attribute the handle is stored on
    daemon: bool
    lineno: int
    method: str
    target: "str | None"   # method name when target=self.<m>


@dataclass
class MethodModel:
    name: str
    lineno: int
    accesses: "list[Access]" = field(default_factory=list)
    self_calls: "list[SelfCall]" = field(default_factory=list)
    attr_calls: "list[AttrCall]" = field(default_factory=list)
    acquisitions: "list[Acquisition]" = field(default_factory=list)
    blocking: "list[Blocking]" = field(default_factory=list)
    escapes: "list[tuple]" = field(default_factory=list)  # (method, callee)


@dataclass
class ClassModel:
    name: str
    file: str
    lineno: int
    methods: "dict[str, MethodModel]" = field(default_factory=dict)
    lock_attrs: "dict[str, str]" = field(default_factory=dict)
    queue_attrs: set = field(default_factory=set)
    #: attr -> constructor terminal name (resolved against the program
    #: class table during analysis)
    attr_type_names: "dict[str, str]" = field(default_factory=dict)
    thread_targets: set = field(default_factory=set)
    threads: "list[ThreadSpec]" = field(default_factory=list)
    lines: "list[str]" = field(default_factory=list)

    def optout_reason(self, lineno: int) -> "str | None":
        """The lockfree-ok reason near ``lineno``, or None.

        Returns the empty string when the marker is present but carries
        no reason (which does *not* suppress)."""
        lo = max(0, lineno - 1 - _OPT_OUT_REACH)
        for ln in self.lines[lo:lineno]:
            idx = ln.find(LOCKFREE_MARKER)
            if idx >= 0:
                reason = ln[idx + len(LOCKFREE_MARKER):]
                return reason.strip(" \t-—:.#")
        return None


class _ClassCollector:
    """Extracts a :class:`ClassModel` from one ``ast.ClassDef``.

    Collection is split in two so declarations can be *inherited*
    before bodies are walked: ``collect_decls`` finds the locks,
    queues, attribute types, and threads of one class;
    :func:`build_program_model` then merges base-class declarations in
    (``Histogram``'s ``with self._lock:`` guards via the ``_Metric``
    base) and only then runs ``collect_bodies``, which needs the full
    lock set to track held locks.
    """

    def __init__(self, node: ast.ClassDef, path: str, lines: list):
        self.node = node
        self.base_names = [_terminal_name(b) for b in node.bases]
        self.model = ClassModel(name=node.name, file=path,
                                lineno=node.lineno, lines=lines)
        self._methods = [n for n in node.body
                         if isinstance(n, (ast.FunctionDef,
                                           ast.AsyncFunctionDef))]

    def collect_decls(self) -> None:
        self._claimed_threads: set = set()
        for m in self._methods:
            self._scan_assignments(m)
        for m in self._methods:
            self._scan_unassigned_threads(m)

    def collect_bodies(self) -> ClassModel:
        for m in self._methods:
            mm = MethodModel(name=m.name, lineno=m.lineno)
            self.model.methods[m.name] = mm
            self._mm = mm
            for stmt in m.body:
                self._visit(stmt, ())
        return self.model

    # -- pass 1 ----------------------------------------------------- #

    def _local_env(self, method: ast.AST) -> dict:
        """Local-variable -> constructor terminal name, one level deep."""
        env: dict = {}
        for node in ast.walk(method):
            if isinstance(node, ast.Assign) and len(node.targets) == 1 \
                    and isinstance(node.targets[0], ast.Name) \
                    and isinstance(node.value, ast.Call):
                env[node.targets[0].id] = _terminal_name(node.value.func)
        return env

    def _classify_value(self, value: ast.AST, targets: list,
                        method: str, env: dict) -> None:
        candidates = [value]
        if isinstance(value, ast.IfExp):
            candidates = [value.body, value.orelse]
        for cand in candidates:
            tname = ""
            call = None
            if isinstance(cand, ast.Call):
                call = cand
                tname = _terminal_name(cand.func)
            elif isinstance(cand, ast.Name):
                tname = env.get(cand.id, "")
            if not tname:
                continue
            if tname in _LOCK_KINDS:
                for t in targets:
                    self.model.lock_attrs[t] = _LOCK_KINDS[tname]
            elif tname in _QUEUE_FACTORIES:
                self.model.queue_attrs.update(targets)
            elif tname == "Thread" and call is not None:
                self._claimed_threads.add(id(call))
                self._record_thread(call, targets[0] if targets else None,
                                    method)
            else:
                # candidate object type; only names that resolve to a
                # class of this program are used during analysis
                for t in targets:
                    self.model.attr_type_names.setdefault(t, tname)

    def _record_thread(self, call: ast.Call, attr: "str | None",
                       method: str) -> None:
        daemon = False
        target = None
        for kw in call.keywords:
            if kw.arg == "daemon" and isinstance(kw.value, ast.Constant):
                daemon = bool(kw.value.value)
            if kw.arg == "target":
                chain = _attr_chain(kw.value)
                if chain and chain[0] == "self" and len(chain) == 2:
                    target = chain[1]
                    self.model.thread_targets.add(target)
        self.model.threads.append(ThreadSpec(
            attr=attr, daemon=daemon, lineno=call.lineno,
            method=method, target=target))

    def _scan_assignments(self, method: ast.AST) -> None:
        env = self._local_env(method)
        for node in ast.walk(method):
            if isinstance(node, ast.Assign):
                targets, value = node.targets, node.value
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                targets, value = [node.target], node.value
            else:
                continue
            attrs = []
            for t in targets:
                chain = _attr_chain(t)
                if chain and chain[0] == "self" and len(chain) == 2:
                    attrs.append(chain[1])
            self._classify_value(value, attrs, method.name, env)

    def _scan_unassigned_threads(self, method: ast.AST) -> None:
        for node in ast.walk(method):
            if isinstance(node, ast.Call) \
                    and _terminal_name(node.func) == "Thread" \
                    and id(node) not in self._claimed_threads:
                self._claimed_threads.add(id(node))
                self._record_thread(node, None, method.name)

    # -- pass 2 ----------------------------------------------------- #

    def _access(self, attrs: list, held: tuple, lineno: int,
                write: bool = False, mutator: bool = False) -> None:
        """Record accesses along a ``self.<a1>(...).<ak>`` path."""
        if not attrs:
            return
        locks = frozenset(held)
        mm = self._mm
        # reading the first link is always a read of an own attribute
        if len(attrs) == 1:
            mm.accesses.append(Access(
                attr=attrs[0], chain=(), lineno=lineno, write=write,
                mutator=mutator, locks=locks, method=mm.name))
            return
        mm.accesses.append(Access(
            attr=attrs[0], chain=(), lineno=lineno, locks=locks,
            method=mm.name))
        mm.accesses.append(Access(
            attr=attrs[-1], chain=tuple(attrs[:-1]), lineno=lineno,
            write=write, mutator=mutator, locks=locks, method=mm.name))

    def _store(self, target: ast.AST, held: tuple) -> None:
        if isinstance(target, ast.Attribute):
            chain = _attr_chain(target)
            if chain and chain[0] == "self":
                self._access(chain[1:], held, target.lineno, write=True)
                return
            self._visit(target.value, held)
        elif isinstance(target, ast.Subscript):
            base = target.value
            while isinstance(base, ast.Subscript):
                self._visit(base.slice, held)
                base = base.value
            chain = _attr_chain(base)
            if chain and chain[0] == "self":
                self._access(chain[1:], held, target.lineno, write=True)
            else:
                self._visit(base, held)
            self._visit(target.slice, held)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._store(elt, held)
        elif isinstance(target, ast.Starred):
            self._store(target.value, held)

    def _lock_of(self, expr: ast.AST) -> "str | None":
        chain = _attr_chain(expr)
        if chain and chain[0] == "self" and len(chain) == 2 \
                and chain[1] in self.model.lock_attrs:
            return chain[1]
        return None

    def _visit(self, node: ast.AST, held: tuple) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            # a nested function's body does not run under the enclosing
            # `with` — its accesses are recorded with no locks held
            for d in node.decorator_list:
                self._visit(d, held)
            for stmt in node.body:
                self._visit(stmt, ())
        elif isinstance(node, ast.Lambda):
            self._visit(node.body, ())
        elif isinstance(node, (ast.With, ast.AsyncWith)):
            new_held = held
            for item in node.items:
                lock = self._lock_of(item.context_expr)
                if lock is not None:
                    self._mm.acquisitions.append(Acquisition(
                        lock=lock, held=frozenset(new_held),
                        lineno=item.context_expr.lineno))
                    new_held = new_held + (lock,)
                else:
                    self._visit(item.context_expr, held)
                if item.optional_vars is not None:
                    self._store(item.optional_vars, new_held)
            for stmt in node.body:
                self._visit(stmt, new_held)
        elif isinstance(node, ast.Assign):
            self._visit(node.value, held)
            for t in node.targets:
                self._store(t, held)
        elif isinstance(node, ast.AugAssign):
            self._visit(node.value, held)
            # an augmented assignment both reads and writes the target
            self._store(node.target, held)
        elif isinstance(node, ast.AnnAssign):
            if node.value is not None:
                self._visit(node.value, held)
                self._store(node.target, held)
        elif isinstance(node, ast.Delete):
            for t in node.targets:
                self._store(t, held)
        elif isinstance(node, ast.Call):
            self._call(node, held)
        elif isinstance(node, ast.Attribute):
            chain = _attr_chain(node)
            if chain and chain[0] == "self":
                self._access(chain[1:], held, node.lineno)
            else:
                self._visit(node.value, held)
        else:
            for child in ast.iter_child_nodes(node):
                self._visit(child, held)

    def _blocking(self, kind: str, receiver: "str | None", held: tuple,
                  lineno: int, detail: str = "") -> None:
        if held:
            self._mm.blocking.append(Blocking(
                kind=kind, receiver=receiver, locks=frozenset(held),
                lineno=lineno, detail=detail))

    def _call(self, node: ast.Call, held: tuple) -> None:
        func = node.func
        chain = _attr_chain(func)
        mm = self._mm
        if chain and chain[0] == "self":
            attrs = chain[1:]
            if len(attrs) == 1:
                mm.self_calls.append(SelfCall(
                    method=attrs[0], locks=frozenset(held),
                    lineno=node.lineno))
            else:
                receiver, m = attrs[:-1], attrs[-1]
                self._access(receiver, held, node.lineno)
                mm.attr_calls.append(AttrCall(
                    chain=tuple(receiver), method=m,
                    locks=frozenset(held), lineno=node.lineno))
                if m in _MUTATORS:
                    # write lands on the receiver attribute itself
                    self._access(receiver, held, node.lineno,
                                 mutator=True)
                if m in _BLOCKING_METHODS:
                    self._call_blocking(m, receiver, held, node)
        else:
            tname = _terminal_name(func)
            if isinstance(func, ast.Name):
                if tname == "open":
                    self._blocking("io", None, held, node.lineno,
                                   detail="open()")
            elif isinstance(func, ast.Attribute):
                if chain == ["time", "sleep"]:
                    self._blocking("sleep", None, held, node.lineno,
                                   detail="time.sleep")
                elif tname in ("join", "result"):
                    self._blocking(tname, None, held, node.lineno,
                                   detail=f".{tname}()")
                self._visit(func.value, held)
        if isinstance(func, ast.Call) or isinstance(func, ast.Subscript):
            self._visit(func, held)
        # callback escapes: `self.m` passed as an argument binds a bound
        # method into another object (Thread targets handled in pass 1)
        callee = _terminal_name(func)
        for arg in list(node.args) + [kw.value for kw in node.keywords]:
            achain = _attr_chain(arg)
            if achain and achain[0] == "self" and len(achain) == 2 \
                    and callee != "Thread":
                mm.escapes.append((achain[1], callee))
                self._access(achain[1:], held, arg.lineno)
            else:
                self._visit(arg, held)

    def _call_blocking(self, m: str, receiver: list, held: tuple,
                       node: ast.Call) -> None:
        rattr = receiver[0] if len(receiver) == 1 else None
        if m == "wait":
            rlock = rattr if rattr in self.model.lock_attrs else None
            self._blocking("wait", rlock, held, node.lineno,
                           detail=f"self.{'.'.join(receiver)}.wait")
        elif m == "join":
            self._blocking("join", None, held, node.lineno,
                           detail=f"self.{'.'.join(receiver)}.join")
        elif m in ("get", "put"):
            if rattr in self.model.queue_attrs:
                self._blocking("queue", None, held, node.lineno,
                               detail=f"self.{rattr}.{m}")
        elif m == "result":
            self._blocking("result", None, held, node.lineno,
                           detail=f"self.{'.'.join(receiver)}.result")


# --------------------------------------------------------------------- #
# the program model and its analysis
# --------------------------------------------------------------------- #

@dataclass
class ProgramModel:
    """Every class of the lint run plus derived whole-program facts."""

    classes: "dict[str, ClassModel]" = field(default_factory=dict)
    #: (class, method) -> role set ⊆ {"init", "worker", "client"}
    roles: "dict[tuple, set]" = field(default_factory=dict)
    #: qualified acquisition edges: (held "Cls.attr", acquired "Cls.attr")
    #: -> (file, line, same_instance)
    edges: "dict[tuple, tuple]" = field(default_factory=dict)

    def edge_set(self) -> set:
        return set(self.edges)


def build_program_model(ctx: ProgramContext) -> ProgramModel:
    """Collect every class, then run role/lock inference."""
    model = ProgramModel()
    collectors: list = []
    by_name: dict = {}
    for f in ctx.files:
        lines = f.source.splitlines()
        for node in ast.walk(f.tree):
            if isinstance(node, ast.ClassDef) \
                    and node.name not in by_name:
                c = _ClassCollector(node, f.path, lines)
                c.collect_decls()
                collectors.append(c)
                by_name[node.name] = c
    # inherit declarations (locks, queues, attr types) from bases;
    # fixpoint handles multi-level hierarchies in any file order
    changed = True
    while changed:
        changed = False
        for c in collectors:
            for base in c.base_names:
                b = by_name.get(base)
                if b is None:
                    continue
                for src, dst in (
                        (b.model.lock_attrs, c.model.lock_attrs),
                        (b.model.attr_type_names,
                         c.model.attr_type_names)):
                    for attr, val in src.items():
                        if attr not in dst:
                            dst[attr] = val
                            changed = True
                missing = b.model.queue_attrs - c.model.queue_attrs
                if missing:
                    c.model.queue_attrs |= missing
                    changed = True
    for c in collectors:
        model.classes[c.model.name] = c.collect_bodies()
    _infer_roles(model)
    _build_edges(model)
    return model


def _resolve_chain(model: ProgramModel, cls: ClassModel,
                   chain: tuple) -> "ClassModel | None":
    """The class owning ``self.<chain[0]>. ... .<chain[-1]>``, if typed."""
    cur = cls
    for attr in chain:
        tname = cur.attr_type_names.get(attr, "")
        nxt = model.classes.get(tname)
        if nxt is None:
            return None
        cur = nxt
    return cur


def _infer_roles(model: ProgramModel) -> None:
    roles = model.roles
    for cname, cls in model.classes.items():
        thread_owner = bool(cls.threads or cls.thread_targets)
        for mname in cls.methods:
            r: set = set()
            if mname in _INIT_METHODS:
                r.add("init")
            elif mname.startswith("__") and mname.endswith("__"):
                r.add("client")
            elif not mname.startswith("_"):
                r.add("client")
            if mname in cls.thread_targets:
                r.add("worker")
            roles[(cname, mname)] = r
        _ = thread_owner
    changed = True
    while changed:
        changed = False
        for cname, cls in model.classes.items():
            for mname, mm in cls.methods.items():
                src = roles[(cname, mname)]
                if not src:
                    continue
                for sc in mm.self_calls:
                    key = (cname, sc.method)
                    if key in roles and not src <= roles[key]:
                        roles[key] |= src
                        changed = True
                for ac in mm.attr_calls:
                    owner = _resolve_chain(model, cls, ac.chain)
                    if owner is None or ac.method not in owner.methods:
                        continue
                    key = (owner.name, ac.method)
                    if not src <= roles[key]:
                        roles[key] |= src
                        changed = True
                for escaped, callee in mm.escapes:
                    if escaped not in cls.methods:
                        continue
                    target_cls = model.classes.get(callee)
                    if target_cls is not None and (
                            target_cls.threads
                            or target_cls.thread_targets):
                        key = (cname, escaped)
                        if "worker" not in roles[key]:
                            roles[key].add("worker")
                            changed = True


def _qual(cls_name: str, attr: str) -> str:
    return f"{cls_name}.{attr}"


def _transitive_acquires(model: ProgramModel) -> dict:
    """(class, method) -> frozenset of qualified locks it may acquire."""
    acq: dict = {}
    for cname, cls in model.classes.items():
        for mname, mm in cls.methods.items():
            acq[(cname, mname)] = {
                _qual(cname, a.lock) for a in mm.acquisitions}
    changed = True
    while changed:
        changed = False
        for cname, cls in model.classes.items():
            for mname, mm in cls.methods.items():
                cur = acq[(cname, mname)]
                before = len(cur)
                for sc in mm.self_calls:
                    cur |= acq.get((cname, sc.method), set())
                for ac in mm.attr_calls:
                    owner = _resolve_chain(model, cls, ac.chain)
                    if owner is not None:
                        cur |= acq.get((owner.name, ac.method), set())
                if len(cur) != before:
                    changed = True
    return acq


def _build_edges(model: ProgramModel) -> None:
    acq = _transitive_acquires(model)
    edges = model.edges

    def add(held_q: str, taken_q: str, file: str, line: int,
            same_instance: bool) -> None:
        if held_q == taken_q and not same_instance:
            # cross-instance re-acquisition of the same class-level lock
            # name is not a self-deadlock
            return
        prev = edges.get((held_q, taken_q))
        if prev is None or (same_instance and not prev[2]):
            edges[(held_q, taken_q)] = (file, line, same_instance)

    for cname, cls in model.classes.items():
        for mname, mm in cls.methods.items():
            for a in mm.acquisitions:
                for h in a.held:
                    add(_qual(cname, h), _qual(cname, a.lock),
                        cls.file, a.lineno, True)
            for sc in mm.self_calls:
                for taken in acq.get((cname, sc.method), set()):
                    for h in sc.locks:
                        add(_qual(cname, h), taken, cls.file,
                            sc.lineno, True)
            for ac in mm.attr_calls:
                owner = _resolve_chain(model, cls, ac.chain)
                if owner is None:
                    continue
                for taken in acq.get((owner.name, ac.method), set()):
                    for h in ac.locks:
                        add(_qual(cname, h), taken, cls.file,
                            ac.lineno, False)


# --------------------------------------------------------------------- #
# finding evaluation
# --------------------------------------------------------------------- #

@dataclass
class _Site:
    roles: frozenset
    write: bool
    locks: frozenset
    file: str
    line: int
    reason: "str | None"
    method: str
    cls: str


def _gather_sites(model: ProgramModel) -> dict:
    """(owner class, attr) -> [_Site, ...] with roles/locks qualified."""
    sites: dict = {}
    for cname, cls in model.classes.items():
        for mname, mm in cls.methods.items():
            mroles = frozenset(model.roles.get((cname, mname), set()))
            if not mroles:
                continue  # never-called private method: dead code
            seen: dict = {}
            for a in mm.accesses:
                owner = cls if not a.chain \
                    else _resolve_chain(model, cls, a.chain)
                if owner is None:
                    continue
                if a.attr in owner.lock_attrs:
                    continue  # lock objects themselves are exempt
                write = a.write
                if a.mutator and not write:
                    # a mutator call writes the attribute unless it is a
                    # typed program class (then it is a method call into
                    # that class, tracked as an AttrCall)
                    tname = owner.attr_type_names.get(a.attr, "")
                    write = tname not in model.classes
                key = (owner.name, a.attr, a.lineno)
                prev = seen.get(key)
                if prev is not None:
                    prev.write = prev.write or write
                    continue
                site = _Site(
                    roles=mroles, write=write,
                    locks=frozenset(_qual(cname, lk) for lk in a.locks),
                    file=cls.file, line=a.lineno,
                    reason=cls.optout_reason(a.lineno),
                    method=mname, cls=cname)
                seen[key] = site
                sites.setdefault((owner.name, a.attr), []).append(site)
    return sites


def _shared_eval(sites: list) -> "tuple[bool, list]":
    """(is_shared, non-init sites) for one attribute's site list."""
    live = [s for s in sites if s.roles & {"client", "worker"}]
    wroles: set = set()
    aroles: set = set()
    for s in live:
        r = s.roles & {"client", "worker"}
        aroles |= r
        if s.write:
            wroles |= r
    shared = ("worker" in wroles and "client" in aroles) or \
             ("client" in wroles and "worker" in aroles) or \
             ({"client", "worker"} <= wroles)
    return shared, live


def _cycles(edges: "dict[tuple, tuple]") -> list:
    """Strongly connected components of size > 1 (Tarjan, iterative)."""
    graph: dict = {}
    for a, b in edges:
        graph.setdefault(a, set()).add(b)
        graph.setdefault(b, set())
    index: dict = {}
    low: dict = {}
    on_stack: set = set()
    stack: list = []
    sccs: list = []
    counter_ = [0]

    def strongconnect(root):
        work = [(root, iter(sorted(graph[root])))]
        index[root] = low[root] = counter_[0]
        counter_[0] += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            v, it = work[-1]
            advanced = False
            for w in it:
                if w not in index:
                    index[w] = low[w] = counter_[0]
                    counter_[0] += 1
                    stack.append(w)
                    on_stack.add(w)
                    work.append((w, iter(sorted(graph[w]))))
                    advanced = True
                    break
                if w in on_stack:
                    low[v] = min(low[v], index[w])
            if advanced:
                continue
            work.pop()
            if work:
                pv = work[-1][0]
                low[pv] = min(low[pv], low[v])
            if low[v] == index[v]:
                scc = []
                while True:
                    w = stack.pop()
                    on_stack.discard(w)
                    scc.append(w)
                    if w == v:
                        break
                if len(scc) > 1:
                    sccs.append(sorted(scc))

    for v in sorted(graph):
        if v not in index:
            strongconnect(v)
    return sccs


def analyze_program(model: ProgramModel) -> list:
    """Evaluate C001–C005 over a built program model."""
    diags: list = []
    sites_by_attr = _gather_sites(model)

    # C001 / C002: shared-state guard discipline
    for (owner, attr), sites in sorted(sites_by_attr.items()):
        shared, live = _shared_eval(sites)
        if not shared:
            continue
        if any(s.reason for s in live):
            continue  # lockfree-ok with a reason at a shared-access site
        qattr = _qual(owner, attr)
        locksets = [s.locks for s in live]
        bare = [s for s in live if not s.locks]
        where = ", ".join(
            f"{s.method}:{s.line}" for s in sorted(
                bare, key=lambda s: s.line)[:4])
        anchor = next((s for s in live if s.write and not s.locks),
                      bare[0] if bare else live[0])
        if all(not ls for ls in locksets):
            diags.append(Diagnostic(
                code="C001", severity=Severity.ERROR,
                message=f"shared mutable attribute {qattr!r} is accessed "
                        f"from roles "
                        f"{sorted(set().union(*(s.roles for s in live)))} "
                        f"with no lock at any site ({where})",
                target=qattr, pass_name="concurrency",
                file=anchor.file, line=anchor.line,
                fix_hint="guard every access with one lock, or annotate "
                         "a shared-access site with "
                         "'# conc: lockfree-ok -- <reason>'"))
        elif not frozenset.intersection(*locksets):
            diags.append(Diagnostic(
                code="C002", severity=Severity.ERROR,
                message=f"shared attribute {qattr!r} is guarded at some "
                        f"sites but has no common lock across all of "
                        f"them (bare at {where or 'none'})",
                target=qattr, pass_name="concurrency",
                file=anchor.file, line=anchor.line,
                fix_hint="take the same lock at every access site (add "
                         "a locked snapshot method for cross-thread "
                         "reads)"))

    # C003: acquisition-order cycles
    reported: set = set()
    lock_kind: dict = {}
    for cname, cls in model.classes.items():
        for attr, kind in cls.lock_attrs.items():
            lock_kind[_qual(cname, attr)] = kind
    for (a, b), (file, line, same_instance) in sorted(model.edges.items()):
        if a == b and same_instance \
                and lock_kind.get(a, "lock") not in _REENTRANT:
            diags.append(Diagnostic(
                code="C003", severity=Severity.ERROR,
                message=f"non-reentrant lock {a!r} re-acquired while "
                        f"already held (guaranteed self-deadlock)",
                target=a, pass_name="concurrency", file=file, line=line,
                fix_hint="use an RLock, or drop the inner acquisition"))
            reported.add(frozenset((a,)))
    for scc in _cycles(model.edges):
        key = frozenset(scc)
        if key in reported:
            continue
        reported.add(key)
        file, line, _si = min(
            (model.edges[e] for e in model.edges
             if e[0] in key and e[1] in key),
            key=lambda t: (t[0], t[1]))
        diags.append(Diagnostic(
            code="C003", severity=Severity.ERROR,
            message="lock-order cycle: " + " -> ".join(scc + [scc[0]]),
            target=" <-> ".join(scc), pass_name="concurrency",
            file=file, line=line,
            fix_hint="impose a total acquisition order (document it in "
                     "docs/concurrency.md) and release before calling "
                     "across it"))

    # C004: blocking while holding an unrelated lock
    for cname, cls in sorted(model.classes.items()):
        for mname, mm in sorted(cls.methods.items()):
            for b in mm.blocking:
                held = {_qual(cname, h) for h in b.locks}
                if b.kind == "wait" and b.receiver is not None:
                    held -= {_qual(cname, b.receiver)}
                if not held:
                    continue  # cond.wait holding only its own condition
                diags.append(Diagnostic(
                    code="C004", severity=Severity.WARNING,
                    message=f"blocking {b.detail or b.kind} in "
                            f"{cname}.{mname} while holding "
                            f"{sorted(held)}",
                    target=f"{cname}.{mname}", pass_name="concurrency",
                    file=cls.file, line=b.lineno,
                    fix_hint="release the lock before blocking, or "
                             "bound the wait with a timeout"))

    # C005: daemon thread without a join path
    for cname, cls in sorted(model.classes.items()):
        joined: set = set()
        for mm in cls.methods.values():
            for ac in mm.attr_calls:
                if ac.method == "join" and len(ac.chain) == 1:
                    joined.add(ac.chain[0])
        for spec in cls.threads:
            if not spec.daemon or spec.attr is None:
                continue
            if spec.attr in joined:
                continue
            diags.append(Diagnostic(
                code="C005", severity=Severity.WARNING,
                message=f"daemon thread {_qual(cname, spec.attr)!r} "
                        f"(target={spec.target}) is never joined — no "
                        f"close()/join() shutdown path",
                target=_qual(cname, spec.attr), pass_name="concurrency",
                file=cls.file, line=spec.lineno,
                fix_hint="add a close() that signals the thread and "
                         "joins it (and a context-manager exit that "
                         "calls close)"))
    return diags


class ConcurrencyPass(LintPass):
    """C001–C005: whole-program thread-role and lock-discipline lint."""

    name = "concurrency"
    family = "program"
    codes = ("C001", "C002", "C003", "C004", "C005")
    preflight = False

    def run(self, ctx: ProgramContext) -> list:
        model = build_program_model(ctx)
        diags = analyze_program(model)
        for d in diags:
            counter("lint_concurrency_findings_total",
                    "concurrency lint findings, by code",
                    code=d.code).inc()
        return diags


PROGRAM_PASSES = (ConcurrencyPass,)
