"""Independent shape re-inference for the graph lint passes.

:mod:`repro.graph.builder` infers output shapes imperatively while a graph
is being *built*; once a graph exists (deserialized, transformed, fused,
or hand-constructed) nothing re-checks that the recorded
``OpNode.output_shape`` still follows from the inputs and attributes.
This module is that second, independent implementation: one rule per
operator type, written against the op's *definition* rather than the
builder's code, so drift between the two layers surfaces as a ``G005``
diagnostic instead of silently corrupting features.

A rule returns the expected output shape, ``None`` when the op's output
is not derivable (e.g. ``Input`` sources), or raises
:class:`ShapeRuleViolation` when the node's inputs/attributes are
internally inconsistent (which the shape pass also reports as ``G005``).
"""

from __future__ import annotations

from typing import Any, Callable

from ..graph import tensor_numel

__all__ = ["infer_output_shape", "ShapeRuleViolation", "SHAPE_RULES",
           "shape_rule_ops"]

Shape = tuple[int, ...]
Rule = Callable[[dict[str, Any], list[Shape]], "Shape | None"]


class ShapeRuleViolation(ValueError):
    """An operator's inputs/attributes are mutually inconsistent."""


def _need_inputs(op: str, inputs: list[Shape], n: int) -> None:
    if len(inputs) < n:
        raise ShapeRuleViolation(
            f"{op} expects at least {n} input(s), got {len(inputs)}")


def _conv_len(size: int, kernel: int, stride: int, padding: int) -> int:
    out = (size + 2 * padding - kernel) // stride + 1
    if out <= 0:
        raise ShapeRuleViolation(
            f"non-positive spatial output (in={size}, k={kernel}, "
            f"s={stride}, p={padding})")
    return out


def _conv2d(attrs: dict[str, Any], inputs: list[Shape]) -> Shape:
    _need_inputs("Conv2d", inputs, 1)
    if len(inputs[0]) != 4:
        raise ShapeRuleViolation(f"Conv2d input must be NCHW, "
                                 f"got {inputs[0]}")
    n, c, h, w = inputs[0]
    if c != attrs["in_channels"]:
        raise ShapeRuleViolation(
            f"in_channels attr {attrs['in_channels']} != input channels {c}")
    r, s = attrs["kernel_size"]
    sh, sw = attrs["stride"]
    ph, pw = attrs["padding"]
    return (n, attrs["out_channels"], _conv_len(h, r, sh, ph),
            _conv_len(w, s, sw, pw))


def _pool2d(attrs: dict[str, Any], inputs: list[Shape]) -> Shape:
    _need_inputs("Pool2d", inputs, 1)
    if len(inputs[0]) != 4:
        raise ShapeRuleViolation(f"pooling input must be NCHW, "
                                 f"got {inputs[0]}")
    n, c, h, w = inputs[0]
    r, s = attrs["kernel_size"]
    sh, sw = attrs["stride"]
    ph, pw = attrs["padding"]
    return (n, c, _conv_len(h, r, sh, ph), _conv_len(w, s, sw, pw))


def _global_pool(attrs: dict[str, Any], inputs: list[Shape]) -> Shape:
    _need_inputs("GlobalAvgPool", inputs, 1)
    if len(inputs[0]) < 2:
        raise ShapeRuleViolation("global pooling needs an (N, C, ...) input")
    return (inputs[0][0], inputs[0][1], 1, 1)


def _adaptive_pool(attrs: dict[str, Any], inputs: list[Shape]) -> Shape:
    _need_inputs("AdaptiveAvgPool2d", inputs, 1)
    oh, ow = attrs["output_size"]
    return (inputs[0][0], inputs[0][1], oh, ow)


def _same_as_input(attrs: dict[str, Any], inputs: list[Shape]) -> Shape:
    _need_inputs("elementwise", inputs, 1)
    return inputs[0]


def _binary_elementwise(attrs: dict[str, Any],
                        inputs: list[Shape]) -> Shape:
    _need_inputs("binary elementwise", inputs, 2)
    if inputs[0] != inputs[1]:
        raise ShapeRuleViolation(
            f"operand shapes disagree: {inputs[0]} vs {inputs[1]}")
    return inputs[0]


def _gemm(attrs: dict[str, Any], inputs: list[Shape]) -> Shape:
    _need_inputs("Gemm", inputs, 1)
    if inputs[0][-1] != attrs["in_features"]:
        raise ShapeRuleViolation(
            f"in_features attr {attrs['in_features']} != input dim "
            f"{inputs[0][-1]}")
    return inputs[0][:-1] + (attrs["out_features"],)


def _matmul(attrs: dict[str, Any], inputs: list[Shape]) -> Shape:
    _need_inputs("MatMul", inputs, 2)
    a, b = inputs[0], inputs[1]
    if len(a) < 2 or len(b) < 2:
        raise ShapeRuleViolation(f"MatMul operands must be >= 2-D: {a}, {b}")
    if a[-1] != b[-2]:
        raise ShapeRuleViolation(f"contraction mismatch {a} @ {b}")
    return a[:-2] + (a[-2], b[-1])


def _concat(attrs: dict[str, Any], inputs: list[Shape]) -> Shape:
    _need_inputs("Concat", inputs, 1)
    rank = len(inputs[0])
    axis = attrs["axis"] % rank
    base = list(inputs[0])
    for shp in inputs[1:]:
        if len(shp) != rank:
            raise ShapeRuleViolation(f"rank mismatch in concat: {inputs}")
        for i in range(rank):
            if i != axis and shp[i] != base[i]:
                raise ShapeRuleViolation(
                    f"concat shapes disagree off-axis: {inputs}")
        base[axis] += shp[axis]
    return tuple(base)


def _flatten(attrs: dict[str, Any], inputs: list[Shape]) -> Shape:
    _need_inputs("Flatten", inputs, 1)
    start = attrs["start_dim"]
    keep = inputs[0][:start]
    rest = 1
    for s in inputs[0][start:]:
        rest *= s
    return keep + (rest,)


def _numel_preserving(op: str) -> Rule:
    def rule(attrs: dict[str, Any], inputs: list[Shape]) -> None:
        _need_inputs(op, inputs, 1)
        return None  # recorded shape accepted; numel checked by the pass
    return rule


def _transpose(attrs: dict[str, Any], inputs: list[Shape]) -> Shape:
    _need_inputs("Transpose", inputs, 1)
    axes = tuple(attrs["axes"])
    if sorted(axes) != list(range(len(inputs[0]))):
        raise ShapeRuleViolation(
            f"axes {axes} is not a permutation of rank {len(inputs[0])}")
    return tuple(inputs[0][a] for a in axes)


def _reduce_mean(attrs: dict[str, Any], inputs: list[Shape]) -> Shape:
    _need_inputs("ReduceMean", inputs, 1)
    shape = list(inputs[0])
    del shape[attrs["axis"] % len(shape)]
    return tuple(shape)


def _embedding(attrs: dict[str, Any], inputs: list[Shape]) -> Shape:
    _need_inputs("Embedding", inputs, 1)
    return inputs[0] + (attrs["embed_dim"],)


def _recurrent(attrs: dict[str, Any], inputs: list[Shape]) -> Shape:
    _need_inputs("LSTM/RNN", inputs, 1)
    if len(inputs[0]) != 3:
        raise ShapeRuleViolation(
            f"recurrent input must be (batch, seq, features), "
            f"got {inputs[0]}")
    return (attrs["batch"], attrs["seq_len"], attrs["hidden_size"])


def _pad(attrs: dict[str, Any], inputs: list[Shape]) -> Shape:
    _need_inputs("Pad", inputs, 1)
    if len(inputs[0]) != 4:
        raise ShapeRuleViolation(f"Pad input must be NCHW, got {inputs[0]}")
    n, c, h, w = inputs[0]
    ph, pw = attrs["padding"]
    return (n, c, h + 2 * ph, w + 2 * pw)


def _split(attrs: dict[str, Any], inputs: list[Shape]) -> Shape:
    _need_inputs("Split", inputs, 1)
    rank = len(inputs[0])
    axis = attrs["axis"] % rank
    sections = attrs["sections"]
    if inputs[0][axis] % sections != 0:
        raise ShapeRuleViolation(
            f"axis {axis} extent {inputs[0][axis]} not divisible into "
            f"{sections} sections")
    out = list(inputs[0])
    out[axis] //= sections
    return tuple(out)


def _patch_merge(attrs: dict[str, Any], inputs: list[Shape]) -> Shape:
    _need_inputs("PatchMerge", inputs, 1)
    if len(inputs[0]) != 3:
        raise ShapeRuleViolation(
            f"PatchMerge input must be (batch, tokens, channels), "
            f"got {inputs[0]}")
    n, l, c = inputs[0]
    if l % 4 != 0:
        raise ShapeRuleViolation(f"token count {l} not divisible by 4")
    return (n, l // 4, 4 * c)


def _input(attrs: dict[str, Any], inputs: list[Shape]) -> None:
    return None  # sources: the recorded shape is the ground truth


#: shape re-inference rule per operator type.  ``None``-returning rules
#: accept the recorded shape (subject to the weak numel checks below).
SHAPE_RULES: dict[str, Rule] = {
    "Input": _input,
    "Conv2d": _conv2d,
    "DepthwiseConv2d": _conv2d,
    "MaxPool2d": _pool2d,
    "AvgPool2d": _pool2d,
    "GlobalAvgPool": _global_pool,
    "AdaptiveAvgPool2d": _adaptive_pool,
    "BatchNorm2d": _same_as_input,
    "LayerNorm": _same_as_input,
    "GroupNorm": _same_as_input,
    "ReLU": _same_as_input,
    "ReLU6": _same_as_input,
    "GELU": _same_as_input,
    "SiLU": _same_as_input,
    "Sigmoid": _same_as_input,
    "Tanh": _same_as_input,
    "Erf": _same_as_input,
    "Softmax": _same_as_input,
    "Scale": _same_as_input,
    "Identity": _same_as_input,
    "Shift": _same_as_input,
    "Pow": _same_as_input,
    "Sqrt": _same_as_input,
    "Add": _binary_elementwise,
    "Mul": _binary_elementwise,
    "Div": _binary_elementwise,
    "Gemm": _gemm,
    "MatMul": _matmul,
    "Concat": _concat,
    "Flatten": _flatten,
    "Reshape": _numel_preserving("Reshape"),
    "Slice": _numel_preserving("Slice"),
    "Transpose": _transpose,
    "ReduceMean": _reduce_mean,
    "Embedding": _embedding,
    "LSTM": _recurrent,
    "RNN": _recurrent,
    "Pad": _pad,
    "Split": _split,
    "PatchMerge": _patch_merge,
}

#: operators whose recorded shape is only numel-constrained, not derivable
_NUMEL_EQ = frozenset({"Reshape"})
_NUMEL_LE = frozenset({"Slice"})


def shape_rule_ops() -> frozenset[str]:
    """Op types with a registered shape re-inference rule."""
    return frozenset(SHAPE_RULES)


def infer_output_shape(op_type: str, attrs: dict[str, Any],
                       input_shapes: list[Shape],
                       recorded: Shape) -> "Shape | None":
    """Expected output shape of an operator, or ``None`` when underivable.

    Raises :class:`ShapeRuleViolation` for internally inconsistent nodes,
    including numel violations of the weakly-constrained view ops.
    KeyErrors (missing attributes) are the schema pass's business and are
    re-raised as violations so one malformed node cannot crash the pass.
    """
    rule = SHAPE_RULES.get(op_type)
    if rule is None:
        return None
    try:
        expected = rule(attrs, [tuple(s) for s in input_shapes])
    except KeyError as exc:
        raise ShapeRuleViolation(
            f"{op_type} is missing attribute {exc.args[0]!r} needed for "
            f"shape inference")
    if expected is None and input_shapes:
        in_numel = tensor_numel(input_shapes[0])
        out_numel = tensor_numel(recorded)
        if op_type in _NUMEL_EQ and out_numel != in_numel:
            raise ShapeRuleViolation(
                f"{op_type} changes element count "
                f"({in_numel} -> {out_numel})")
        if op_type in _NUMEL_LE and out_numel > in_numel:
            raise ShapeRuleViolation(
                f"{op_type} output has more elements than its input "
                f"({out_numel} > {in_numel})")
    return expected
