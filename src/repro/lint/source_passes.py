"""AST-based self-lint passes (codes ``S000``–``S006``).

These enforce repo-wide source conventions over ``src/repro`` using only
the stdlib :mod:`ast` module:

* ``S001`` — no bare ``except:`` (it swallows ``KeyboardInterrupt`` and
  masks real defects; catch a concrete exception type);
* ``S002`` — no ``==`` / ``!=`` on occupancy values (occupancy is a
  float ratio produced by floating-point aggregation; compare with a
  tolerance or ``pytest.approx``);
* ``S003`` — every module declares ``__all__`` (the public-API contract
  the docs-consistency tests import against); ``__main__.py`` files are
  exempt, being entry-point scripts rather than importable API;
* ``S004`` — no raw ``time.sleep`` calls outside the sanctioned backoff
  helper (``repro/resilience/backoff.py``); ad-hoc sleeps are unbounded,
  untestable, and invisible to the fault model — retry delays must go
  through :class:`repro.resilience.ExponentialBackoff`;
* ``S005`` — no per-sample Python loops over datasets inside
  ``repro/core/`` (WARNING): the batched/vectorized paths exist so the
  hot loop runs in NumPy; deliberate per-sample code opts out with a
  ``# perf: per-sample-ok`` comment explaining why;
* ``S006`` — no direct ``model.predict`` / ``model.predict_batch`` calls
  on the online path (``repro/sched/``, ``repro/gpu/colocation.py``):
  occupancy queries there go through
  :class:`repro.serve.PredictorService` (micro-batching, request cache,
  overload shedding); deliberate direct calls opt out with a
  ``# serve: direct-predict-ok`` comment;
* ``S007`` — every literal metric name passed to ``counter`` / ``gauge``
  / ``histogram`` (or the ``Counter`` / ``Gauge`` / ``Histogram``
  constructors) must be declared in the central
  :data:`repro.obs.names.METRIC_NAMES` registry: dashboards, SLO specs,
  and tests key on those names, so an undeclared one is a silent
  contract drift; deliberate ad-hoc metrics opt out with a
  ``# obs: adhoc-metric-ok`` comment.

``S000`` (syntax error) is emitted by the pass manager itself when a
file fails to parse.
"""

from __future__ import annotations

import ast

from .diagnostics import Diagnostic, Severity
from .manager import LintPass, SourceContext

__all__ = ["BareExceptPass", "FloatEqualityPass", "DunderAllPass",
           "SleepRetryPass", "PerSampleLoopPass", "DirectPredictPass",
           "MetricNamePass", "SOURCE_PASSES"]


class BareExceptPass(LintPass):
    """S001: flag ``except:`` handlers with no exception type."""

    name = "bare-except"
    family = "source"
    codes = ("S001",)

    def run(self, ctx: SourceContext) -> list[Diagnostic]:
        return [Diagnostic(
            code="S001", severity=Severity.ERROR,
            message="bare `except:` swallows KeyboardInterrupt and "
                    "SystemExit",
            target=ctx.path, pass_name=self.name, file=ctx.path,
            line=node.lineno,
            fix_hint="name the exception type (at minimum "
                     "`except Exception:`)")
            for node in ast.walk(ctx.tree)
            if isinstance(node, ast.ExceptHandler) and node.type is None]


def _mentions_occupancy(node: ast.expr) -> bool:
    """True when an expression's name/attribute chain names occupancy."""
    for sub in ast.walk(node):
        if isinstance(sub, ast.Name) and "occupancy" in sub.id.lower():
            return True
        if isinstance(sub, ast.Attribute) and \
                "occupancy" in sub.attr.lower():
            return True
    return False


class FloatEqualityPass(LintPass):
    """S002: flag ``==`` / ``!=`` comparisons involving occupancy."""

    name = "float-equality"
    family = "source"
    codes = ("S002",)

    def run(self, ctx: SourceContext) -> list[Diagnostic]:
        diags: list[Diagnostic] = []
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Compare):
                continue
            if not any(isinstance(op, (ast.Eq, ast.NotEq))
                       for op in node.ops):
                continue
            if any(_mentions_occupancy(side)
                   for side in (node.left, *node.comparators)):
                diags.append(Diagnostic(
                    code="S002", severity=Severity.ERROR,
                    message="exact float comparison on an occupancy "
                            "value",
                    target=ctx.path, pass_name=self.name, file=ctx.path,
                    line=node.lineno,
                    fix_hint="occupancy is a float ratio; compare with "
                             "a tolerance (math.isclose / np.isclose)"))
        return diags


class DunderAllPass(LintPass):
    """S003: every importable module must declare ``__all__``."""

    name = "dunder-all"
    family = "source"
    codes = ("S003",)

    def run(self, ctx: SourceContext) -> list[Diagnostic]:
        if ctx.path.endswith("__main__.py"):
            return []
        # scripts/ and benchmarks/ hold entry points and pytest files,
        # not importable API — same rationale as the __main__ exemption
        parts = ctx.path.replace("\\", "/").split("/")
        if "scripts" in parts or "benchmarks" in parts:
            return []
        for node in ctx.tree.body:
            targets = []
            if isinstance(node, ast.Assign):
                targets = node.targets
            elif isinstance(node, ast.AugAssign):
                targets = [node.target]
            for t in targets:
                if isinstance(t, ast.Name) and t.id == "__all__":
                    return []
        return [Diagnostic(
            code="S003", severity=Severity.ERROR,
            message="module does not declare __all__",
            target=ctx.path, pass_name=self.name, file=ctx.path, line=1,
            fix_hint="add `__all__ = [...]` naming the public API")]


def _is_sleep_call(node: ast.Call) -> bool:
    """True for ``time.sleep(...)`` or a bare ``sleep(...)`` call."""
    func = node.func
    if isinstance(func, ast.Attribute) and func.attr == "sleep" and \
            isinstance(func.value, ast.Name) and func.value.id == "time":
        return True
    return isinstance(func, ast.Name) and func.id == "sleep"


class SleepRetryPass(LintPass):
    """S004: flag raw sleeps outside the sanctioned backoff helper.

    Retry delays belong in :class:`repro.resilience.ExponentialBackoff`
    (deterministic, capped, testable); a scattered ``time.sleep`` is none
    of those.  The backoff module itself is the one sanctioned home for
    wall-clock sleeping and is exempt.
    """

    name = "sleep-retry"
    family = "source"
    codes = ("S004",)

    def run(self, ctx: SourceContext) -> list[Diagnostic]:
        if ctx.path.replace("\\", "/").endswith("resilience/backoff.py"):
            return []
        return [Diagnostic(
            code="S004", severity=Severity.ERROR,
            message="raw sleep call; retry delays must use "
                    "repro.resilience.ExponentialBackoff",
            target=ctx.path, pass_name=self.name, file=ctx.path,
            line=node.lineno,
            fix_hint="compute the delay with ExponentialBackoff.delay() "
                     "so it is capped, seeded, and testable")
            for node in ast.walk(ctx.tree)
            if isinstance(node, ast.Call) and _is_sleep_call(node)]


_OPT_OUT = "perf: per-sample-ok"
#: how many lines above a loop the opt-out comment may sit (it is
#: usually a multi-line justification ending at the loop header)
_OPT_OUT_REACH = 4


def _dataset_params(fn: ast.FunctionDef | ast.AsyncFunctionDef) -> set:
    """Parameter names whose annotation mentions ``Dataset``."""
    names: set[str] = set()
    a = fn.args
    for arg in (*a.posonlyargs, *a.args, *a.kwonlyargs):
        ann = arg.annotation
        if ann is None:
            continue
        for sub in ast.walk(ann):
            if (isinstance(sub, ast.Name) and sub.id == "Dataset") or \
                    (isinstance(sub, ast.Attribute)
                     and sub.attr == "Dataset") or \
                    (isinstance(sub, ast.Constant)
                     and isinstance(sub.value, str)
                     and "Dataset" in sub.value):
                names.add(arg.arg)
                break
    return names


def _iterates_dataset(it: ast.expr, params: set) -> bool:
    """True when a loop iterable walks a dataset sample-by-sample."""
    # for s in ds / for s in ds.samples / for s in ds.anything
    if isinstance(it, ast.Name) and it.id in params:
        return True
    if isinstance(it, ast.Attribute) and it.attr == "samples":
        return True
    # for i, s in enumerate(ds) / for i in range(len(ds))
    if isinstance(it, ast.Call) and isinstance(it.func, ast.Name):
        if it.func.id == "enumerate" and it.args and \
                _iterates_dataset(it.args[0], params):
            return True
        if it.func.id == "range" and it.args:
            inner = it.args[-1]
            if isinstance(inner, ast.Call) \
                    and isinstance(inner.func, ast.Name) \
                    and inner.func.id == "len" and inner.args \
                    and _iterates_dataset(inner.args[0], params):
                return True
    return False


def _subscripts_dataset(body: list, target: ast.expr, params: set) -> bool:
    """True when a loop body indexes a dataset with the loop variable."""
    if not isinstance(target, ast.Name):
        return False
    for stmt in body:
        for sub in ast.walk(stmt):
            if isinstance(sub, ast.Subscript) \
                    and isinstance(sub.value, ast.Name) \
                    and sub.value.id in params \
                    and any(isinstance(n, ast.Name) and n.id == target.id
                            for n in ast.walk(sub.slice)):
                return True
    return False


class PerSampleLoopPass(LintPass):
    """S005: flag per-sample Python loops in the model/training core.

    ``src/repro/core/`` owns the numeric hot paths; a Python-level loop
    over dataset samples there (``for s in ds``, ``for i in
    range(len(ds))``, iterating ``.samples``, or indexing a ``Dataset``
    parameter element-by-element) is usually work that the batched /
    vectorized paths (``forward_batch``, ``collate``,
    ``encode_graph``) were built to replace.

    Deliberate per-sample code — reference implementations, equivalence
    oracles, O(batch) gathers — opts out with a ``# perf:
    per-sample-ok`` comment on the loop line or just above it, stating
    *why* the loop is not a hot path.
    """

    name = "per-sample-loop"
    family = "source"
    codes = ("S005",)

    def run(self, ctx: SourceContext) -> list[Diagnostic]:
        path = ctx.path.replace("\\", "/")
        if "/core/" not in path and not path.startswith("core/"):
            return []
        lines = ctx.source.splitlines()

        def opted_out(lineno: int) -> bool:
            lo = max(0, lineno - 1 - _OPT_OUT_REACH)
            return any(_OPT_OUT in ln for ln in lines[lo:lineno])

        diags: list[Diagnostic] = []

        def flag(node: ast.AST) -> None:
            if opted_out(node.lineno):
                return
            diags.append(Diagnostic(
                code="S005", severity=Severity.WARNING,
                message="per-sample Python loop over a dataset in the "
                        "core hot path",
                target=ctx.path, pass_name=self.name, file=ctx.path,
                line=node.lineno,
                fix_hint="use the batched/vectorized path (collate + "
                         "forward_batch), or annotate the loop with "
                         f"`# {_OPT_OUT} -- <reason>` if it is "
                         "deliberately per-sample"))

        def visit(node: ast.AST, params: set) -> None:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                params = params | _dataset_params(node)
            for child in ast.iter_child_nodes(node):
                visit(child, params)
            if isinstance(node, (ast.For, ast.AsyncFor)):
                if _iterates_dataset(node.iter, params) or \
                        _subscripts_dataset(node.body, node.target,
                                            params):
                    flag(node)
            elif isinstance(node, (ast.ListComp, ast.SetComp,
                                   ast.GeneratorExp, ast.DictComp)):
                for gen in node.generators:
                    if _iterates_dataset(gen.iter, params) or \
                            _subscripts_dataset([node], gen.target,
                                                params):
                        flag(node)
                        break

        visit(ctx.tree, set())
        return diags


_SERVE_OPT_OUT = "serve: direct-predict-ok"


def _terminal_receiver(func: ast.Attribute) -> str:
    """Name of the object a ``x.y.predict(...)`` call is invoked on."""
    value = func.value
    if isinstance(value, ast.Name):
        return value.id
    if isinstance(value, ast.Attribute):
        return value.attr
    return ""


class DirectPredictPass(LintPass):
    """S006: flag direct model ``predict`` calls on the online path.

    ``sched/`` and ``gpu/colocation.py`` are the online consumers of
    occupancy predictions; calling ``model.predict`` /
    ``model.predict_batch`` there bypasses the serving layer's
    micro-batching, request cache, and overload shedding
    (:class:`repro.serve.PredictorService` — which is itself exempt: a
    receiver whose name contains ``service`` IS the sanctioned surface).
    Deliberate direct calls (oracles, calibration one-offs) opt out with
    a ``# serve: direct-predict-ok`` comment on or just above the call.
    """

    name = "direct-predict"
    family = "source"
    codes = ("S006",)

    _GUARDED = ("predict", "predict_batch")

    def run(self, ctx: SourceContext) -> list[Diagnostic]:
        path = ctx.path.replace("\\", "/")
        if "/sched/" not in path and not path.startswith("sched/") \
                and not path.endswith("gpu/colocation.py"):
            return []
        lines = ctx.source.splitlines()

        def opted_out(lineno: int) -> bool:
            lo = max(0, lineno - 1 - _OPT_OUT_REACH)
            return any(_SERVE_OPT_OUT in ln for ln in lines[lo:lineno])

        diags: list[Diagnostic] = []
        for node in ast.walk(ctx.tree):
            if not (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr in self._GUARDED):
                continue
            receiver = _terminal_receiver(node.func)
            if "service" in receiver.lower():
                continue
            if opted_out(node.lineno):
                continue
            diags.append(Diagnostic(
                code="S006", severity=Severity.ERROR,
                message=f"direct `.{node.func.attr}(...)` on the online "
                        "path bypasses the serving layer",
                target=ctx.path, pass_name=self.name, file=ctx.path,
                line=node.lineno,
                fix_hint="route the query through repro.serve."
                         "PredictorService (predict/predict_many), or "
                         f"annotate with `# {_SERVE_OPT_OUT} -- <reason>`"
                         " if the direct call is deliberate"))
        return diags


_METRIC_OPT_OUT = "obs: adhoc-metric-ok"


class MetricNamePass(LintPass):
    """S007: metric names must come from the central registry.

    The SLO engine, the ``repro obs`` metric table, and the docs all key
    on metric names; a name invented at a call site works locally and
    then silently never shows up where anyone looks for it.  This pass
    cross-checks every *literal* first argument of a ``counter`` /
    ``gauge`` / ``histogram`` factory call (bare or attribute form, so
    ``registry.counter(...)`` counts too) and of the ``Counter`` /
    ``Gauge`` / ``Histogram`` constructors against
    :data:`repro.obs.names.METRIC_NAMES`.

    Dynamic (non-literal) names are out of scope.  The registry module
    itself is exempt, and a deliberately ad-hoc metric opts out with a
    ``# obs: adhoc-metric-ok`` comment on or just above the call.
    """

    name = "metric-name"
    family = "source"
    codes = ("S007",)

    _FACTORIES = ("counter", "gauge", "histogram")
    _CONSTRUCTORS = ("Counter", "Gauge", "Histogram")

    def run(self, ctx: SourceContext) -> list[Diagnostic]:
        path = ctx.path.replace("\\", "/")
        if path.endswith("obs/names.py"):
            return []
        from ..obs.names import is_declared
        lines = ctx.source.splitlines()

        def opted_out(lineno: int) -> bool:
            lo = max(0, lineno - 1 - _OPT_OUT_REACH)
            return any(_METRIC_OPT_OUT in ln for ln in lines[lo:lineno])

        diags: list[Diagnostic] = []
        for node in ast.walk(ctx.tree):
            if not (isinstance(node, ast.Call) and node.args):
                continue
            func = node.func
            if isinstance(func, ast.Attribute):
                callee = func.attr
            elif isinstance(func, ast.Name):
                callee = func.id
            else:
                continue
            if callee not in self._FACTORIES \
                    and callee not in self._CONSTRUCTORS:
                continue
            first = node.args[0]
            if not (isinstance(first, ast.Constant)
                    and isinstance(first.value, str)):
                continue
            name = first.value
            if is_declared(name) or opted_out(node.lineno):
                continue
            diags.append(Diagnostic(
                code="S007", severity=Severity.ERROR,
                message=f"metric name {name!r} is not declared in "
                        "repro.obs.names.METRIC_NAMES",
                target=ctx.path, pass_name=self.name, file=ctx.path,
                line=node.lineno,
                fix_hint="add the name + help string to METRIC_NAMES "
                         "(keeping the block alphabetized), or annotate "
                         f"with `# {_METRIC_OPT_OUT} -- <reason>` if it "
                         "is deliberately ad-hoc"))
        return diags


SOURCE_PASSES = (BareExceptPass, FloatEqualityPass, DunderAllPass,
                 SleepRetryPass, PerSampleLoopPass, DirectPredictPass,
                 MetricNamePass)
