"""AST-based self-lint passes (codes ``S000``–``S003``).

These enforce repo-wide source conventions over ``src/repro`` using only
the stdlib :mod:`ast` module:

* ``S001`` — no bare ``except:`` (it swallows ``KeyboardInterrupt`` and
  masks real defects; catch a concrete exception type);
* ``S002`` — no ``==`` / ``!=`` on occupancy values (occupancy is a
  float ratio produced by floating-point aggregation; compare with a
  tolerance or ``pytest.approx``);
* ``S003`` — every module declares ``__all__`` (the public-API contract
  the docs-consistency tests import against); ``__main__.py`` files are
  exempt, being entry-point scripts rather than importable API;
* ``S004`` — no raw ``time.sleep`` calls outside the sanctioned backoff
  helper (``repro/resilience/backoff.py``); ad-hoc sleeps are unbounded,
  untestable, and invisible to the fault model — retry delays must go
  through :class:`repro.resilience.ExponentialBackoff`.

``S000`` (syntax error) is emitted by the pass manager itself when a
file fails to parse.
"""

from __future__ import annotations

import ast

from .diagnostics import Diagnostic, Severity
from .manager import LintPass, SourceContext

__all__ = ["BareExceptPass", "FloatEqualityPass", "DunderAllPass",
           "SleepRetryPass", "SOURCE_PASSES"]


class BareExceptPass(LintPass):
    """S001: flag ``except:`` handlers with no exception type."""

    name = "bare-except"
    family = "source"
    codes = ("S001",)

    def run(self, ctx: SourceContext) -> list[Diagnostic]:
        return [Diagnostic(
            code="S001", severity=Severity.ERROR,
            message="bare `except:` swallows KeyboardInterrupt and "
                    "SystemExit",
            target=ctx.path, pass_name=self.name, file=ctx.path,
            line=node.lineno,
            fix_hint="name the exception type (at minimum "
                     "`except Exception:`)")
            for node in ast.walk(ctx.tree)
            if isinstance(node, ast.ExceptHandler) and node.type is None]


def _mentions_occupancy(node: ast.expr) -> bool:
    """True when an expression's name/attribute chain names occupancy."""
    for sub in ast.walk(node):
        if isinstance(sub, ast.Name) and "occupancy" in sub.id.lower():
            return True
        if isinstance(sub, ast.Attribute) and \
                "occupancy" in sub.attr.lower():
            return True
    return False


class FloatEqualityPass(LintPass):
    """S002: flag ``==`` / ``!=`` comparisons involving occupancy."""

    name = "float-equality"
    family = "source"
    codes = ("S002",)

    def run(self, ctx: SourceContext) -> list[Diagnostic]:
        diags: list[Diagnostic] = []
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Compare):
                continue
            if not any(isinstance(op, (ast.Eq, ast.NotEq))
                       for op in node.ops):
                continue
            if any(_mentions_occupancy(side)
                   for side in (node.left, *node.comparators)):
                diags.append(Diagnostic(
                    code="S002", severity=Severity.ERROR,
                    message="exact float comparison on an occupancy "
                            "value",
                    target=ctx.path, pass_name=self.name, file=ctx.path,
                    line=node.lineno,
                    fix_hint="occupancy is a float ratio; compare with "
                             "a tolerance (math.isclose / np.isclose)"))
        return diags


class DunderAllPass(LintPass):
    """S003: every importable module must declare ``__all__``."""

    name = "dunder-all"
    family = "source"
    codes = ("S003",)

    def run(self, ctx: SourceContext) -> list[Diagnostic]:
        if ctx.path.endswith("__main__.py"):
            return []
        for node in ctx.tree.body:
            targets = []
            if isinstance(node, ast.Assign):
                targets = node.targets
            elif isinstance(node, ast.AugAssign):
                targets = [node.target]
            for t in targets:
                if isinstance(t, ast.Name) and t.id == "__all__":
                    return []
        return [Diagnostic(
            code="S003", severity=Severity.ERROR,
            message="module does not declare __all__",
            target=ctx.path, pass_name=self.name, file=ctx.path, line=1,
            fix_hint="add `__all__ = [...]` naming the public API")]


def _is_sleep_call(node: ast.Call) -> bool:
    """True for ``time.sleep(...)`` or a bare ``sleep(...)`` call."""
    func = node.func
    if isinstance(func, ast.Attribute) and func.attr == "sleep" and \
            isinstance(func.value, ast.Name) and func.value.id == "time":
        return True
    return isinstance(func, ast.Name) and func.id == "sleep"


class SleepRetryPass(LintPass):
    """S004: flag raw sleeps outside the sanctioned backoff helper.

    Retry delays belong in :class:`repro.resilience.ExponentialBackoff`
    (deterministic, capped, testable); a scattered ``time.sleep`` is none
    of those.  The backoff module itself is the one sanctioned home for
    wall-clock sleeping and is exempt.
    """

    name = "sleep-retry"
    family = "source"
    codes = ("S004",)

    def run(self, ctx: SourceContext) -> list[Diagnostic]:
        if ctx.path.replace("\\", "/").endswith("resilience/backoff.py"):
            return []
        return [Diagnostic(
            code="S004", severity=Severity.ERROR,
            message="raw sleep call; retry delays must use "
                    "repro.resilience.ExponentialBackoff",
            target=ctx.path, pass_name=self.name, file=ctx.path,
            line=node.lineno,
            fix_hint="compute the delay with ExponentialBackoff.delay() "
                     "so it is capped, seeded, and testable")
            for node in ast.walk(ctx.tree)
            if isinstance(node, ast.Call) and _is_sleep_call(node)]


SOURCE_PASSES = (BareExceptPass, FloatEqualityPass, DunderAllPass,
                 SleepRetryPass)
