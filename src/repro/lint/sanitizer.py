"""Runtime lock sanitizer: the dynamic half of the concurrency lint.

The static pass (:mod:`repro.lint.concurrency`) proves lock-order
properties over an *approximated* program; this module observes the
real one.  A :class:`LockWatch` records, for every instrumented lock:

* the **acquisition-order graph** — an edge ``a -> b`` each time ``b``
  is acquired by a thread already holding ``a``;
* **hold times** per lock (count / total / max, plus a bounded raw
  sample buffer for the obs histogram);
* **long holds** over a configurable threshold;
* **order inversions** — strongly-connected components of the observed
  graph (``a`` before ``b`` on one thread, ``b`` before ``a`` on
  another), the dynamic counterpart of a ``C003`` finding.

Production code never names ``threading.Lock`` directly on the watched
path; it calls the :func:`new_lock` / :func:`new_rlock` /
:func:`new_condition` factories with the same qualified
``"Class.attr"`` names the static analyzer uses.  With no watch
installed the factories return *plain* ``threading`` primitives — the
sanitizer-off serving path is byte-for-byte the uninstrumented one,
which is what the <=2% overhead gate in :mod:`repro.obs.bench`
measures.  Installing a watch (:func:`install_watch`, or exporting
``REPRO_LOCKWATCH=1`` before import, as the ``run_all.sh`` sanitizer
pass does) makes every *subsequently constructed* lock a recording
wrapper.

:meth:`LockWatch.cross_check` compares the observed edges against the
static acquisition graph
(:func:`repro.lint.static_acquisition_graph`): a *novel* observed edge
means the static model missed an ordering and should be extended; an
observed inversion that the static pass did not flag is a straight C003
false negative.

The watch's own bookkeeping uses one plain (never instrumented)
``threading.Lock`` and publishes to the :mod:`repro.obs` metrics
registry only in :meth:`publish` — never while a watched lock is held —
so instrumenting the serve locks cannot recurse into the registry's.
"""

from __future__ import annotations

import os
import threading
import time

__all__ = ["LockWatch", "WatchedLock", "WatchedRLock", "install_watch",
           "uninstall_watch", "current_watch", "new_lock", "new_rlock",
           "new_condition"]

#: holds longer than this are reported individually (seconds)
_DEFAULT_LONG_HOLD_S = 0.050

#: raw hold-time samples kept for the obs histogram, per watch
_MAX_HOLD_SAMPLES = 10_000


class _Held:
    """One live acquisition on a thread's hold stack."""

    __slots__ = ("name", "t0")

    def __init__(self, name: str, t0: float):
        self.name = name
        self.t0 = t0


class LockWatch:
    """Accumulates acquisition order, hold times, and inversions."""

    def __init__(self, long_hold_s: float = _DEFAULT_LONG_HOLD_S,
                 clock=time.perf_counter):
        self.long_hold_s = long_hold_s
        self._clock = clock
        self._mu = threading.Lock()  # plain on purpose: never watched
        self._tls = threading.local()
        self._acquires: dict = {}          # name -> count
        self._edges: dict = {}             # (held, acquired) -> count
        self._holds: dict = {}             # name -> [count, total, max]
        self._hold_samples: list = []      # bounded (name, seconds)
        self._long_holds: list = []        # (name, seconds)

    # -- wrapper callbacks ------------------------------------------- #

    def _stack(self) -> list:
        stack = getattr(self._tls, "stack", None)
        if stack is None:
            stack = self._tls.stack = []
        return stack

    def on_acquired(self, name: str) -> None:
        stack = self._stack()
        held = {h.name for h in stack}
        with self._mu:
            self._acquires[name] = self._acquires.get(name, 0) + 1
            for h in held:
                if h != name:  # reentrant re-acquire is not an edge
                    key = (h, name)
                    self._edges[key] = self._edges.get(key, 0) + 1
        stack.append(_Held(name, self._clock()))

    def on_released(self, name: str) -> None:
        stack = self._stack()
        for i in range(len(stack) - 1, -1, -1):
            if stack[i].name == name:
                held = stack.pop(i)
                break
        else:
            return  # release without a recorded acquire: ignore
        seconds = self._clock() - held.t0
        with self._mu:
            stat = self._holds.setdefault(name, [0, 0.0, 0.0])
            stat[0] += 1
            stat[1] += seconds
            stat[2] = max(stat[2], seconds)
            if len(self._hold_samples) < _MAX_HOLD_SAMPLES:
                self._hold_samples.append((name, seconds))
            if seconds >= self.long_hold_s:
                self._long_holds.append((name, seconds))

    # -- queries ------------------------------------------------------ #

    def edges(self) -> dict:
        with self._mu:
            return dict(self._edges)

    def acquisitions(self) -> dict:
        with self._mu:
            return dict(self._acquires)

    def hold_stats(self) -> dict:
        """name -> {count, total_s, max_s, mean_s}."""
        with self._mu:
            return {name: {"count": c, "total_s": t, "max_s": mx,
                           "mean_s": t / c if c else 0.0}
                    for name, (c, t, mx) in self._holds.items()}

    def long_holds(self) -> list:
        with self._mu:
            return list(self._long_holds)

    def inversions(self) -> list:
        """Observed lock-order inversions: SCCs of the edge graph.

        Each entry is a sorted list of lock names acquired in
        conflicting orders — the runtime analogue of a static C003
        cycle.  Empty means every observed interleaving respected one
        total order."""
        from .concurrency import _cycles
        return _cycles(self.edges())

    def cross_check(self, static_edges: set) -> dict:
        """Compare observed orders against the static C003 graph.

        ``confirmed`` edges were both predicted and observed; ``novel``
        edges were observed but missing from the static model (extend
        the analyzer or the annotations); ``unobserved`` were predicted
        but never exercised by this run."""
        observed = set(self.edges())
        static = set(static_edges)
        return {
            "confirmed": sorted(observed & static),
            "novel": sorted(observed - static),
            "unobserved": sorted(static - observed),
        }

    def report(self) -> dict:
        """One JSON-friendly snapshot of everything the watch saw."""
        return {
            "acquisitions": self.acquisitions(),
            "edges": {f"{a} -> {b}": n
                      for (a, b), n in sorted(self.edges().items())},
            "hold_stats": self.hold_stats(),
            "long_holds": self.long_holds(),
            "inversions": self.inversions(),
        }

    def publish(self) -> None:
        """Flush the watch into the obs metrics registry.

        Deliberately batched — the hot-path callbacks never touch the
        (themselves locked) obs metrics, so watching the serve locks
        cannot recurse into the registry's."""
        from ..obs.metrics import counter, histogram
        with self._mu:
            acquires = dict(self._acquires)
            samples = list(self._hold_samples)
            self._hold_samples.clear()
        for name, n in sorted(acquires.items()):
            counter("lockwatch_acquisitions_total",
                    "lock acquisitions seen by the sanitizer",
                    lock=name).inc(n)
        hist = histogram("lockwatch_hold_seconds",
                         "lock hold times seen by the sanitizer")
        for _name, seconds in samples:
            hist.observe(seconds)
        inversions = self.inversions()
        if inversions:
            counter("lockwatch_inversions_total",
                    "observed lock-order inversions").inc(len(inversions))


# --------------------------------------------------------------------- #
# instrumented primitives
# --------------------------------------------------------------------- #

class WatchedLock:
    """A ``threading.Lock`` that reports to a :class:`LockWatch`."""

    _factory = staticmethod(threading.Lock)

    def __init__(self, name: str, watch: LockWatch):
        self.name = name
        self._watch = watch
        self._inner = self._factory()

    def acquire(self, blocking: bool = True,
                timeout: float = -1) -> bool:
        got = self._inner.acquire(blocking, timeout)
        if got:
            self._watch.on_acquired(self.name)
        return got

    def release(self) -> None:
        self._watch.on_released(self.name)
        self._inner.release()

    def locked(self) -> bool:
        return self._inner.locked()

    def __enter__(self) -> bool:
        return self.acquire()

    def __exit__(self, *exc) -> None:
        self.release()

    def __repr__(self) -> str:  # pragma: no cover
        return f"<{type(self).__name__} {self.name!r}>"


class WatchedRLock(WatchedLock):
    """A ``threading.RLock`` wrapper; also usable inside a Condition."""

    _factory = staticmethod(threading.RLock)

    def _is_owned(self) -> bool:
        # Condition delegates ownership checks here; answering from the
        # inner RLock avoids the probing acquire(False) fallback, which
        # would pollute the acquisition record.
        return self._inner._is_owned()


def install_watch(watch: "LockWatch | None" = None) -> LockWatch:
    """Install (and return) the process-wide watch.

    Only locks constructed *after* installation are instrumented."""
    global _watch
    _watch = watch if watch is not None else LockWatch()
    return _watch


def uninstall_watch() -> "LockWatch | None":
    """Remove the process-wide watch; returns it for a final report."""
    global _watch
    w, _watch = _watch, None
    return w


def current_watch() -> "LockWatch | None":
    return _watch


def new_lock(name: str):
    """A lock named like its static counterpart (``"Class.attr"``).

    Plain ``threading.Lock`` when no watch is installed — the
    sanitizer-off path carries zero wrapper overhead."""
    w = _watch
    return threading.Lock() if w is None else WatchedLock(name, w)


def new_rlock(name: str):
    w = _watch
    return threading.RLock() if w is None else WatchedRLock(name, w)


def new_condition(name: str):
    """A condition whose underlying (r)lock is watched.

    ``Condition.wait`` releases and re-acquires through the wrapper, so
    waits show up as hold-time boundaries, not artificial long holds."""
    w = _watch
    if w is None:
        return threading.Condition()
    return threading.Condition(WatchedRLock(name, w))


_watch: "LockWatch | None" = None
if os.environ.get("REPRO_LOCKWATCH", "") not in ("", "0"):
    install_watch()
