"""High-level lint entry points and the fail-fast pre-flight gates.

The CLI, the test suite, and the profiler/trainer pre-flight hooks all go
through these functions rather than instantiating passes directly:

* :func:`lint_graph` / :func:`lint_model` / :func:`lint_zoo` — graph
  diagnostics for one graph, one zoo model, or every registered model;
* :func:`lint_registries` — cross-registry coverage;
* :func:`lint_paths` — AST self-lint over source files/directories;
* :func:`lint_concurrency` — the whole-program concurrency passes
  (C001–C005) over a file set analyzed *together*;
* :func:`default_source_roots` — what ``repro lint --self`` walks: the
  ``repro`` package plus the repository's ``scripts/`` and
  ``benchmarks/`` entry-point trees when present;
* :func:`static_acquisition_graph` — the C003 lock-order edge set, for
  the runtime sanitizer's cross-check;
* :func:`preflight_graph` — the profiler's gate: raise :class:`LintError`
  when the cheap structural passes find ERROR diagnostics;
* :func:`preflight_features` — the trainer's gate: raise on non-finite
  feature matrices or out-of-range occupancy labels.

Pre-flight rejections are counted in the :mod:`repro.obs` metrics
registry (``lint_preflight_failures_total{gate=...}``), alongside the
per-severity ``lint_diagnostics_total`` counts the pass manager records.
"""

from __future__ import annotations

import pathlib
from typing import Iterable, Sequence

import numpy as np

from ..graph import ComputationGraph
from ..obs import get_logger
from ..obs.metrics import counter
from .diagnostics import Diagnostic, LintReport, Severity
from .manager import PassManager, default_manager

__all__ = ["LintError", "lint_graph", "lint_model", "lint_zoo",
           "lint_registries", "lint_paths", "lint_concurrency",
           "default_source_roots", "static_acquisition_graph",
           "preflight_graph", "preflight_features"]

_log = get_logger("lint")


class LintError(ValueError):
    """A pre-flight lint gate rejected its input.

    ``diagnostics`` carries the ERROR-severity findings that caused the
    rejection.
    """

    def __init__(self, message: str,
                 diagnostics: Sequence[Diagnostic] = ()):
        super().__init__(message)
        self.diagnostics = list(diagnostics)


def _manager(manager: "PassManager | None") -> PassManager:
    return manager if manager is not None else default_manager()


def lint_graph(graph: ComputationGraph, device=None,
               manager: "PassManager | None" = None,
               preflight_only: bool = False) -> LintReport:
    """Run the graph pass family over one computation graph."""
    return _manager(manager).run_graph(graph, device=device,
                                       preflight_only=preflight_only)


def lint_model(name: str, config=None, device=None,
               manager: "PassManager | None" = None) -> LintReport:
    """Build one zoo model and lint its graph."""
    from ..models import build_model
    return lint_graph(build_model(name, config), device=device,
                      manager=manager)


def lint_zoo(device=None, config=None,
             manager: "PassManager | None" = None) -> LintReport:
    """Build and lint every model in the registry; one merged report."""
    from ..models import build_model, list_models
    mgr = _manager(manager)
    report = LintReport()
    for name in list_models():
        report.merge(lint_graph(build_model(name, config), device=device,
                                manager=mgr))
    return report


def lint_registries(manager: "PassManager | None" = None) -> LintReport:
    """Run the cross-registry coverage pass family."""
    return _manager(manager).run_registries()


def _iter_py_files(paths: Iterable[str]) -> list[pathlib.Path]:
    files: list[pathlib.Path] = []
    for p in paths:
        path = pathlib.Path(p)
        if path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
        else:
            files.append(path)
    return files


def lint_paths(paths: Iterable[str],
               manager: "PassManager | None" = None) -> LintReport:
    """Run the AST source passes over files and/or directories."""
    mgr = _manager(manager)
    report = LintReport()
    for path in _iter_py_files(paths):
        report.merge(mgr.run_source(str(path),
                                    path.read_text(encoding="utf-8")))
    return report


def default_source_roots() -> list[str]:
    """What the self-lint walks: the package *and* entry-point trees.

    ``src/repro`` alone misses the concurrency (and convention) bugs
    that live in ``scripts/`` and ``benchmarks/``, so both are included
    whenever the package sits inside a repository checkout that has
    them (an installed wheel only lints itself).
    """
    package_dir = pathlib.Path(__file__).resolve().parent.parent
    roots = [str(package_dir)]
    repo_root = package_dir.parent.parent
    for extra in ("scripts", "benchmarks"):
        candidate = repo_root / extra
        if candidate.is_dir():
            roots.append(str(candidate))
    return roots


def lint_concurrency(paths: "Iterable[str] | None" = None,
                     manager: "PassManager | None" = None) -> LintReport:
    """Run the whole-program concurrency passes over a file set.

    Unlike :func:`lint_paths`, every file is parsed first and analyzed
    *together* — thread roles cross class and file boundaries.  Defaults
    to :func:`default_source_roots`.
    """
    mgr = _manager(manager)
    files = [(str(p), p.read_text(encoding="utf-8"))
             for p in _iter_py_files(paths if paths is not None
                                     else default_source_roots())]
    return mgr.run_program(files)


def static_acquisition_graph(
        paths: "Iterable[str] | None" = None) -> set:
    """The static C003 lock-order edges as ``(held, acquired)`` pairs of
    qualified ``Class.attr`` names — the reference the runtime
    sanitizer's :meth:`~repro.lint.sanitizer.LockWatch.cross_check`
    compares observed orders against."""
    import ast

    from .concurrency import build_program_model
    from .manager import ProgramContext, SourceContext
    contexts = []
    for p in _iter_py_files(paths if paths is not None
                            else default_source_roots()):
        source = p.read_text(encoding="utf-8")
        try:
            tree = ast.parse(source, filename=str(p))
        except SyntaxError:
            continue
        contexts.append(SourceContext(path=str(p), source=source,
                                      tree=tree))
    return build_program_model(ProgramContext(files=contexts)).edge_set()


def _reject(gate: str, target: str,
            errors: Sequence[Diagnostic]) -> LintError:
    counter("lint_preflight_failures_total",
            "inputs rejected by a lint pre-flight gate", gate=gate).inc()
    _log.warning("preflight rejection", extra={
        "gate": gate, "target": target, "errors": len(errors),
        "codes": ",".join(sorted({d.code for d in errors}))})
    head = "; ".join(d.format() for d in errors[:3])
    more = f" (+{len(errors) - 3} more)" if len(errors) > 3 else ""
    return LintError(
        f"{gate} pre-flight rejected {target!r}: {head}{more}", errors)


def preflight_graph(graph: ComputationGraph, device=None,
                    manager: "PassManager | None" = None) -> LintReport:
    """Fail-fast structural gate run before profiling a graph.

    Executes only the passes marked ``preflight`` (structure, op types,
    shape re-inference, edge shapes, FLOPs sanity, attribute schemas —
    not the feature encoder) and raises :class:`LintError` if any ERROR
    diagnostic is found.  WARNING/INFO findings are returned, not raised.
    """
    report = lint_graph(graph, device=device, manager=manager,
                        preflight_only=True)
    errors = report.errors()
    if errors:
        raise _reject("profiler", graph.name or "<unnamed graph>", errors)
    return report


def preflight_features(features, label: "float | None" = None,
                       origin: str = "") -> None:
    """Fail-fast gate over an encoded sample (trainer pre-flight).

    Rejects non-finite feature matrices (``F001``) and occupancy labels
    outside ``[0, 1]`` (``F002``) before any gradient step spends compute
    on them.
    """
    target = origin or getattr(features, "model_name", "") or "<sample>"
    errors: list[Diagnostic] = []
    for field_name in ("node_features", "edge_features"):
        mat = getattr(features, field_name, None)
        if mat is not None and mat.size and \
                not np.all(np.isfinite(mat)):
            errors.append(Diagnostic(
                code="F001", severity=Severity.ERROR,
                message=f"{field_name} contains a non-finite value",
                target=target, pass_name="feature-preflight",
                fix_hint="re-encode the graph; a node field is NaN/Inf"))
    if label is not None and not (np.isfinite(label)
                                  and 0.0 <= label <= 1.0):
        errors.append(Diagnostic(
            code="F002", severity=Severity.ERROR,
            message=f"occupancy label {label!r} outside [0, 1]",
            target=target, pass_name="feature-preflight",
            fix_hint="labels are occupancy fractions; re-profile the "
                     "sample"))
    if errors:
        raise _reject("trainer", target, errors)
