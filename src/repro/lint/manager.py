"""The lint pass manager: pass registration, scheduling, and metrics.

Passes come in three families, each with its own context type:

* ``graph`` passes examine one :class:`~repro.graph.ComputationGraph`
  (plus an optional device for feature encoding) without executing it;
* ``registry`` passes examine the cross-layer operator registries
  (builder emitters, FLOPs rules, kernel lowerings, encoder slots);
* ``source`` passes examine parsed Python source files (AST), one file
  at a time;
* ``program`` passes examine *all* parsed files of one lint run at once
  (whole-program analyses such as the concurrency pass, which must see
  a ``threading.Thread`` entry point in one class and the attribute it
  shares in another).

A :class:`PassManager` owns an ordered pass list per family, runs the
appropriate family for each lint entry point, and counts every emitted
diagnostic in the :mod:`repro.obs` metrics registry
(``lint_diagnostics_total{severity=...}``) so pre-flight gates are
observable in the same place as the profiler and trainer metrics.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass

from ..graph import ComputationGraph
from ..obs.metrics import counter
from .diagnostics import Diagnostic, LintReport, Severity

__all__ = ["LintPass", "GraphContext", "SourceContext", "ProgramContext",
           "PassManager", "default_manager"]


@dataclass
class GraphContext:
    """What a graph pass sees: the graph and an optional target device."""

    graph: ComputationGraph
    device: "object | None" = None  # DeviceSpec; untyped to avoid a cycle


@dataclass
class SourceContext:
    """What a source pass sees: one parsed Python file."""

    path: str
    source: str
    tree: ast.AST


@dataclass
class ProgramContext:
    """What a program pass sees: every parsed file of the lint run."""

    files: "list[SourceContext]"


class LintPass:
    """Base class for all passes.

    Subclasses set ``name`` (stable pass identifier), ``family``
    (``"graph"`` / ``"registry"`` / ``"source"``), ``codes`` (the
    diagnostic codes the pass may emit), and ``preflight`` (whether the
    pass is cheap and deterministic enough for the profiler's fail-fast
    gate).  ``run`` receives the family's context object — ``None`` for
    registry passes, which read module-level registries directly.
    """

    name: str = ""
    family: str = ""
    codes: tuple[str, ...] = ()
    preflight: bool = False

    def run(self, ctx) -> list[Diagnostic]:  # pragma: no cover - interface
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover
        return f"<{type(self).__name__} {self.name!r} {self.codes}>"


def _count_diagnostics(diags: list[Diagnostic]) -> None:
    """Record emitted diagnostics in the obs metrics registry (no-op when
    observability is disabled)."""
    for d in diags:
        counter("lint_diagnostics_total",
                "lint diagnostics emitted, by severity",
                severity=d.severity.label).inc()


class PassManager:
    """Ordered pass registry with per-family runners."""

    def __init__(self, passes: "list[LintPass] | None" = None):
        self.passes: list[LintPass] = []
        for p in passes or []:
            self.register(p)

    def register(self, lint_pass: LintPass) -> LintPass:
        if lint_pass.family not in ("graph", "registry", "source",
                                    "program"):
            raise ValueError(
                f"pass {lint_pass.name!r} has unknown family "
                f"{lint_pass.family!r}")
        if any(p.name == lint_pass.name and type(p) is type(lint_pass)
               for p in self.passes):
            raise ValueError(f"pass {lint_pass.name!r} already registered")
        self.passes.append(lint_pass)
        return lint_pass

    def family(self, family: str,
               preflight_only: bool = False) -> list[LintPass]:
        return [p for p in self.passes
                if p.family == family
                and (not preflight_only or p.preflight)]

    # -- runners --------------------------------------------------------- #
    def run_graph(self, graph: ComputationGraph, device=None,
                  preflight_only: bool = False) -> LintReport:
        """Run every graph pass over one graph."""
        ctx = GraphContext(graph=graph, device=device)
        report = LintReport(targets_checked=1)
        for p in self.family("graph", preflight_only):
            diags = p.run(ctx)
            _count_diagnostics(diags)
            report.extend(diags)
        return report

    def run_registries(self) -> LintReport:
        """Run every cross-registry coverage pass."""
        report = LintReport(targets_checked=1)
        for p in self.family("registry"):
            diags = p.run(None)
            _count_diagnostics(diags)
            report.extend(diags)
        return report

    def run_source(self, path: str, source: str) -> LintReport:
        """Run every source pass over one Python file."""
        report = LintReport(targets_checked=1)
        try:
            tree = ast.parse(source, filename=path)
        except SyntaxError as exc:
            diags = [Diagnostic(
                code="S000", severity=Severity.ERROR,
                message=f"file fails to parse: {exc.msg}",
                target=path, pass_name="parse", file=path,
                line=exc.lineno,
                fix_hint="fix the syntax error before linting")]
            _count_diagnostics(diags)
            report.extend(diags)
            return report
        ctx = SourceContext(path=path, source=source, tree=tree)
        for p in self.family("source"):
            diags = p.run(ctx)
            _count_diagnostics(diags)
            report.extend(diags)
        return report

    def run_program(self, files) -> LintReport:
        """Run every program pass over a set of files at once.

        ``files`` is an iterable of ``(path, source)`` pairs.  A file
        that fails to parse gets an ``S000`` diagnostic and is excluded
        from the program context (the whole-program analysis still runs
        over the files that do parse).
        """
        report = LintReport()
        parsed: list[SourceContext] = []
        for path, source in files:
            report.targets_checked += 1
            try:
                tree = ast.parse(source, filename=path)
            except SyntaxError as exc:
                diags = [Diagnostic(
                    code="S000", severity=Severity.ERROR,
                    message=f"file fails to parse: {exc.msg}",
                    target=path, pass_name="parse", file=path,
                    line=exc.lineno,
                    fix_hint="fix the syntax error before linting")]
                _count_diagnostics(diags)
                report.extend(diags)
                continue
            parsed.append(SourceContext(path=path, source=source,
                                        tree=tree))
        ctx = ProgramContext(files=parsed)
        for p in self.family("program"):
            diags = p.run(ctx)
            _count_diagnostics(diags)
            report.extend(diags)
        return report


def default_manager() -> PassManager:
    """A :class:`PassManager` loaded with every built-in pass."""
    from .concurrency import PROGRAM_PASSES
    from .graph_passes import GRAPH_PASSES
    from .registry_passes import REGISTRY_PASSES
    from .source_passes import SOURCE_PASSES
    return PassManager([factory() for factory in
                        (*GRAPH_PASSES, *REGISTRY_PASSES, *SOURCE_PASSES,
                         *PROGRAM_PASSES)])
