"""Graph-level lint passes (codes ``G001``–``G012``).

These re-verify a :class:`~repro.graph.ComputationGraph` *without
executing it* and deliberately do not trust any cached state: adjacency
is rebuilt from ``graph.edges``, shapes are re-inferred from inputs and
attributes, FLOPs are recomputed from the registered formulas.  That is
what lets the passes catch corruption that slipped past construction-time
checks — deserialized graphs, hand-mutated fixtures, or drift between the
builder and the FLOPs/feature layers.
"""

from __future__ import annotations

import numpy as np

from ..graph import OP_TYPES, op_flops
from .diagnostics import Diagnostic, Severity
from .manager import GraphContext, LintPass
from .schema import check_attrs
from .shapes import ShapeRuleViolation, infer_output_shape

__all__ = ["StructuralPass", "OpTypePass", "ShapeInferencePass",
           "EdgeShapePass", "FlopsPass", "SchemaPass",
           "FeatureFinitenessPass", "GRAPH_PASSES"]

#: FLOPs beyond this are treated as overflow (no single operator of any
#: Table II configuration comes within orders of magnitude of 2^62)
FLOPS_OVERFLOW_BOUND = 2 ** 62


class StructuralPass(LintPass):
    """G001 dangling edges, G002 self-loops, G003 cycles, G012 orphans.

    Goes beyond :meth:`ComputationGraph.validate` by rebuilding adjacency
    from the edge list itself, so graphs whose cached adjacency is stale
    (e.g. edges appended directly by a transform) are still checked.
    """

    name = "structure"
    family = "graph"
    codes = ("G001", "G002", "G003", "G012")
    preflight = True

    def run(self, ctx: GraphContext) -> list[Diagnostic]:
        g = ctx.graph
        diags: list[Diagnostic] = []
        well_formed: list = []  # edges usable for cycle/orphan analysis
        for e in g.edges:
            missing = [nid for nid in (e.src, e.dst) if nid not in g.nodes]
            if missing:
                diags.append(Diagnostic(
                    code="G001", severity=Severity.ERROR,
                    message=f"edge references missing node id(s) "
                            f"{missing}",
                    target=g.name, pass_name=self.name,
                    edge=(e.src, e.dst),
                    fix_hint="drop the edge or add the missing node"))
                continue
            if e.src == e.dst:
                diags.append(Diagnostic(
                    code="G002", severity=Severity.ERROR,
                    message=f"self-loop at node {e.src}",
                    target=g.name, pass_name=self.name,
                    edge=(e.src, e.dst),
                    fix_hint="remove the self-loop"))
                continue
            well_formed.append(e)

        # Kahn's algorithm over the rebuilt adjacency (duplicate edges
        # collapse: a parallel edge is not a cycle).
        succ: dict[int, set[int]] = {nid: set() for nid in g.nodes}
        indeg: dict[int, int] = {nid: 0 for nid in g.nodes}
        for e in well_formed:
            if e.dst not in succ[e.src]:
                succ[e.src].add(e.dst)
                indeg[e.dst] += 1
        ready = [nid for nid, d in indeg.items() if d == 0]
        seen = 0
        while ready:
            nid = ready.pop()
            seen += 1
            for s in succ[nid]:
                indeg[s] -= 1
                if indeg[s] == 0:
                    ready.append(s)
        if seen != len(g.nodes):
            stuck = sorted(nid for nid, d in indeg.items() if d > 0)
            diags.append(Diagnostic(
                code="G003", severity=Severity.ERROR,
                message=f"graph contains a cycle through node(s) {stuck}",
                target=g.name, pass_name=self.name,
                fix_hint="break the cycle; computation graphs must be "
                         "DAGs"))

        has_in = {e.dst for e in well_formed}
        for nid, node in g.nodes.items():
            if node.op_type != "Input" and nid not in has_in:
                diags.append(Diagnostic(
                    code="G012", severity=Severity.WARNING,
                    message=f"{node.op_type} node has no incoming edge",
                    target=g.name, pass_name=self.name, node_id=nid,
                    fix_hint="wire the node's inputs or mark it as an "
                             "Input source"))
        return diags


class OpTypePass(LintPass):
    """G004: every node's op type must be in the shared vocabulary."""

    name = "op-type"
    family = "graph"
    codes = ("G004",)
    preflight = True

    def run(self, ctx: GraphContext) -> list[Diagnostic]:
        known = set(OP_TYPES)
        return [Diagnostic(
            code="G004", severity=Severity.ERROR,
            message=f"unknown op type {node.op_type!r}",
            target=ctx.graph.name, pass_name=self.name, node_id=nid,
            fix_hint="register the operator in repro.graph.flops (it "
                     "defines OP_TYPES) or fix the node's op_type")
            for nid, node in ctx.graph.nodes.items()
            if node.op_type not in known]


class ShapeInferencePass(LintPass):
    """G005: recorded output shapes must survive re-inference."""

    name = "shape-inference"
    family = "graph"
    codes = ("G005",)
    preflight = True

    def run(self, ctx: GraphContext) -> list[Diagnostic]:
        g = ctx.graph
        diags: list[Diagnostic] = []
        for nid, node in g.nodes.items():
            if node.op_type not in set(OP_TYPES):
                continue  # G004's business
            try:
                expected = infer_output_shape(
                    node.op_type, node.attrs, node.input_shapes,
                    node.output_shape)
            except ShapeRuleViolation as exc:
                diags.append(Diagnostic(
                    code="G005", severity=Severity.ERROR,
                    message=str(exc), target=g.name, pass_name=self.name,
                    node_id=nid,
                    fix_hint="rebuild the node with consistent inputs "
                             "and attributes"))
                continue
            if expected is not None and tuple(expected) != \
                    tuple(node.output_shape):
                diags.append(Diagnostic(
                    code="G005", severity=Severity.ERROR,
                    message=f"recorded output shape "
                            f"{tuple(node.output_shape)} but "
                            f"{node.op_type} inference gives "
                            f"{tuple(expected)}",
                    target=g.name, pass_name=self.name, node_id=nid,
                    fix_hint="re-run shape inference (the builder and "
                             "this rule must agree)"))
        return diags


class EdgeShapePass(LintPass):
    """G006: an edge must carry exactly its producer's output tensor."""

    name = "edge-shape"
    family = "graph"
    codes = ("G006",)
    preflight = True

    def run(self, ctx: GraphContext) -> list[Diagnostic]:
        g = ctx.graph
        diags: list[Diagnostic] = []
        for e in g.edges:
            src = g.nodes.get(e.src)
            if src is None:
                continue  # G001's business
            if e.tensor_shape and src.output_shape and \
                    tuple(e.tensor_shape) != tuple(src.output_shape):
                diags.append(Diagnostic(
                    code="G006", severity=Severity.ERROR,
                    message=f"edge carries {tuple(e.tensor_shape)} but "
                            f"its producer outputs "
                            f"{tuple(src.output_shape)}",
                    target=g.name, pass_name=self.name,
                    edge=(e.src, e.dst),
                    fix_hint="set the edge tensor_shape to the "
                             "producer's output shape"))
        return diags


class FlopsPass(LintPass):
    """G007 negative costs, G008 overflow, G009 drift vs. the formulas.

    Drift is a WARNING, not an ERROR: kernel fusion legitimately folds an
    epilogue's FLOPs into its producer, so recorded > recomputed is
    expected on fused graphs — but on freshly built graphs any drift
    means two layers compute the same quantity differently.
    """

    name = "flops"
    family = "graph"
    codes = ("G007", "G008", "G009")
    preflight = True

    def run(self, ctx: GraphContext) -> list[Diagnostic]:
        g = ctx.graph
        diags: list[Diagnostic] = []
        known = set(OP_TYPES)
        for nid, node in g.nodes.items():
            if node.flops < 0 or node.temp_bytes < 0:
                diags.append(Diagnostic(
                    code="G007", severity=Severity.ERROR,
                    message=f"negative cost (flops={node.flops}, "
                            f"temp_bytes={node.temp_bytes})",
                    target=g.name, pass_name=self.name, node_id=nid,
                    fix_hint="costs are physical quantities; recompute "
                             "them from the registered formulas"))
                continue
            if node.flops > FLOPS_OVERFLOW_BOUND:
                diags.append(Diagnostic(
                    code="G008", severity=Severity.WARNING,
                    message=f"FLOPs {node.flops:.3e} exceed the 2^62 "
                            f"sanity bound (likely an overflow or a "
                            f"corrupted field)",
                    target=g.name, pass_name=self.name, node_id=nid,
                    fix_hint="check the configuration that produced "
                             "this node"))
                continue
            if node.op_type not in known:
                continue  # G004's business; no formula to compare against
            try:
                expected = op_flops(node.op_type, node.attrs,
                                    node.input_shapes, node.output_shape)
            except (KeyError, IndexError, TypeError, ValueError):
                continue  # malformed attrs: G010's business
            if expected != node.flops:
                diags.append(Diagnostic(
                    code="G009", severity=Severity.WARNING,
                    message=f"recorded {node.flops} FLOPs but the "
                            f"{node.op_type} formula gives {expected}",
                    target=g.name, pass_name=self.name, node_id=nid,
                    fix_hint="expected only on fused graphs; elsewhere "
                             "rebuild the node via GraphBuilder"))
        return diags


class SchemaPass(LintPass):
    """G010: node attributes must satisfy the op type's schema."""

    name = "hyperparameter-schema"
    family = "graph"
    codes = ("G010",)
    preflight = True

    def run(self, ctx: GraphContext) -> list[Diagnostic]:
        g = ctx.graph
        diags: list[Diagnostic] = []
        known = set(OP_TYPES)
        for nid, node in g.nodes.items():
            if node.op_type not in known:
                continue
            for problem in check_attrs(node.op_type, node.attrs):
                diags.append(Diagnostic(
                    code="G010", severity=Severity.ERROR,
                    message=f"{node.op_type}: {problem}",
                    target=g.name, pass_name=self.name, node_id=nid,
                    fix_hint="see repro.lint.schema.HPARAM_SCHEMAS for "
                             "the expected attributes"))
        return diags


class FeatureFinitenessPass(LintPass):
    """G011: Table I feature vectors must be finite.

    Runs the real encoder (:mod:`repro.features.encode`) node by node so
    a single pathological node is located precisely instead of poisoning
    a whole-graph encode.  Needs a device (features include the device
    vector); without one the pass is skipped.  Not part of the pre-flight
    subset — encoding costs more than the structural checks.
    """

    name = "feature-finiteness"
    family = "graph"
    codes = ("G011",)
    preflight = False

    def run(self, ctx: GraphContext) -> list[Diagnostic]:
        if ctx.device is None:
            return []
        from ..features.encode import encode_edge, encode_node
        g = ctx.graph
        diags: list[Diagnostic] = []
        known = set(OP_TYPES)
        for nid, node in g.nodes.items():
            if node.op_type not in known:
                continue  # encoder has no one-hot slot; G004 fires
            try:
                vec = encode_node(node, ctx.device)
            except (KeyError, IndexError, TypeError, ValueError):
                continue  # malformed attrs: G010's business
            if not np.all(np.isfinite(vec)):
                bad = int(np.flatnonzero(~np.isfinite(vec))[0])
                diags.append(Diagnostic(
                    code="G011", severity=Severity.ERROR,
                    message=f"node feature vector has a non-finite "
                            f"value at column {bad}",
                    target=g.name, pass_name=self.name, node_id=nid,
                    fix_hint="a node field (attrs / shapes / flops) is "
                             "NaN or Inf upstream of the encoder"))
        for e in g.edges:
            if e.src not in g.nodes or e.dst not in g.nodes:
                continue
            try:
                vec = encode_edge(e, ctx.device)
            except (KeyError, IndexError, TypeError, ValueError):
                continue  # unknown edge type etc.
            if not np.all(np.isfinite(vec)):
                diags.append(Diagnostic(
                    code="G011", severity=Severity.ERROR,
                    message="edge feature vector has a non-finite value",
                    target=g.name, pass_name=self.name,
                    edge=(e.src, e.dst),
                    fix_hint="the edge tensor shape is corrupt"))
        return diags


#: construction order is reporting order; structural problems first
GRAPH_PASSES = (StructuralPass, OpTypePass, ShapeInferencePass,
                EdgeShapePass, FlopsPass, SchemaPass,
                FeatureFinitenessPass)
