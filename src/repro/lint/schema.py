"""Per-operator hyperparameter schemas for the graph lint passes.

Each schema lists the attributes an operator *must* carry (with a value
predicate) and the attributes it *may* carry.  The schema pass (``G010``)
checks every node against its op type's schema; the encoder-coverage pass
(``R006``) checks that every schema attribute is either featurized by
:mod:`repro.features.encode` or explicitly exempted there.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

__all__ = ["AttrSpec", "OpSchema", "HPARAM_SCHEMAS", "schema_for",
           "check_attrs", "all_schema_attrs"]

Predicate = Callable[[Any], bool]


def _is_int(v: Any) -> bool:
    return isinstance(v, int) and not isinstance(v, bool)


def pos_int(v: Any) -> bool:
    return _is_int(v) and v > 0


def nonneg_int(v: Any) -> bool:
    return _is_int(v) and v >= 0


def any_int(v: Any) -> bool:
    return _is_int(v)


def number(v: Any) -> bool:
    return isinstance(v, (int, float)) and not isinstance(v, bool)


def pos_pair(v: Any) -> bool:
    return (isinstance(v, (tuple, list)) and len(v) == 2
            and all(pos_int(x) for x in v))


def nonneg_pair(v: Any) -> bool:
    return (isinstance(v, (tuple, list)) and len(v) == 2
            and all(nonneg_int(x) for x in v))


def int_seq(v: Any) -> bool:
    return (isinstance(v, (tuple, list))
            and all(_is_int(x) for x in v))


@dataclass(frozen=True)
class AttrSpec:
    """One attribute: its value predicate and a description for messages."""

    check: Predicate
    expect: str


@dataclass(frozen=True)
class OpSchema:
    """Required and optional attributes of one operator type."""

    required: dict[str, AttrSpec] = field(default_factory=dict)
    optional: dict[str, AttrSpec] = field(default_factory=dict)

    def known_attrs(self) -> frozenset[str]:
        return frozenset(self.required) | frozenset(self.optional)


def _spec(check: Predicate, expect: str) -> AttrSpec:
    return AttrSpec(check=check, expect=expect)


_POS = _spec(pos_int, "a positive int")
_NONNEG = _spec(nonneg_int, "a non-negative int")
_INT = _spec(any_int, "an int")
_NUM = _spec(number, "a number")
_PPAIR = _spec(pos_pair, "a pair of positive ints")
_NPAIR = _spec(nonneg_pair, "a pair of non-negative ints")

_CONV = OpSchema(
    required={"in_channels": _POS, "out_channels": _POS,
              "kernel_size": _PPAIR, "stride": _PPAIR,
              "padding": _NPAIR, "groups": _POS})

_POOL = OpSchema(
    required={"kernel_size": _PPAIR, "stride": _PPAIR, "padding": _NPAIR})

_RECURRENT = OpSchema(
    required={"batch": _POS, "seq_len": _POS, "input_size": _POS,
              "hidden_size": _POS},
    optional={"num_layers": _POS})

#: hyperparameter schema per op type; ops absent here accept any attrs
HPARAM_SCHEMAS: dict[str, OpSchema] = {
    "Conv2d": _CONV,
    "DepthwiseConv2d": _CONV,
    "MaxPool2d": _POOL,
    "AvgPool2d": _POOL,
    "AdaptiveAvgPool2d": OpSchema(required={"output_size": _PPAIR}),
    "BatchNorm2d": OpSchema(required={"num_features": _POS}),
    "LayerNorm": OpSchema(required={"normalized_shape": _POS}),
    "GroupNorm": OpSchema(required={"groups": _POS}),
    "Softmax": OpSchema(required={"axis": _INT}),
    "Gemm": OpSchema(required={"in_features": _POS, "out_features": _POS}),
    "MatMul": OpSchema(optional={"reduce_dim": _POS}),
    "Concat": OpSchema(required={"axis": _INT}),
    "Flatten": OpSchema(required={"start_dim": _NONNEG}),
    "Transpose": OpSchema(
        required={"axes": _spec(int_seq, "a sequence of ints")}),
    "ReduceMean": OpSchema(required={"axis": _INT}),
    "Embedding": OpSchema(required={"vocab_size": _POS, "embed_dim": _POS}),
    "LSTM": _RECURRENT,
    "RNN": _RECURRENT,
    "Pad": OpSchema(required={"padding": _NPAIR}),
    "Split": OpSchema(required={"axis": _INT, "sections": _POS,
                                "index": _NONNEG}),
    "Pow": OpSchema(optional={"exponent": _NUM}),
}


def schema_for(op_type: str) -> "OpSchema | None":
    return HPARAM_SCHEMAS.get(op_type)


def check_attrs(op_type: str, attrs: dict[str, Any]) -> list[str]:
    """Schema violations of one node's attributes (empty = valid).

    Beyond per-attribute predicates this enforces the cross-attribute
    convolution constraint (groups divides both channel counts).
    """
    schema = schema_for(op_type)
    if schema is None:
        return []
    problems: list[str] = []
    for name, spec in schema.required.items():
        if name not in attrs:
            problems.append(f"missing required attr {name!r}")
        elif not spec.check(attrs[name]):
            problems.append(f"attr {name!r}={attrs[name]!r} is not "
                            f"{spec.expect}")
    for name, spec in schema.optional.items():
        if name in attrs and not spec.check(attrs[name]):
            problems.append(f"attr {name!r}={attrs[name]!r} is not "
                            f"{spec.expect}")
    if op_type in ("Conv2d", "DepthwiseConv2d") and not problems:
        g = attrs["groups"]
        if attrs["in_channels"] % g or attrs["out_channels"] % g:
            problems.append(f"groups={g} does not divide channels "
                            f"({attrs['in_channels']} in, "
                            f"{attrs['out_channels']} out)")
    return problems


def all_schema_attrs() -> dict[str, frozenset[str]]:
    """Every schema attribute name, per op type (for the R006 pass)."""
    return {op: schema.known_attrs()
            for op, schema in HPARAM_SCHEMAS.items()}
