"""Cross-registry coverage passes (codes ``R001``–``R006``).

Four independent layers consume the shared ``OP_TYPES`` vocabulary: the
graph builder emits operators, :mod:`repro.graph.flops` prices them,
:mod:`repro.gpu.kernels` lowers them to launches, and
:mod:`repro.features.encode` gives each a one-hot slot and featurizes its
hyperparameters.  Nothing at runtime forces these registries to agree —
an operator added to one layer but not another only fails when (if ever)
a model using it is built, profiled, or encoded.  These passes assert the
coverage *statically*, so `repro lint --registries` catches the drift the
moment it is introduced.

Every pass takes its registries as constructor arguments (defaulting to
the real ones) so negative tests can inject doctored sets.
"""

from __future__ import annotations

from typing import Callable, Iterable

from .diagnostics import Diagnostic, Severity
from .manager import LintPass
from .schema import all_schema_attrs

__all__ = ["RegistryCoveragePass", "ExtraRegistrationPass",
           "EncoderAttrCoveragePass", "REGISTRY_PASSES"]

_TARGET = "registries"


def _real_registries() -> dict:
    from ..features.encode import op_type_index
    from ..graph.builder import builder_emitted_ops
    from ..graph.flops import OP_TYPES, flops_rule_ops
    from ..gpu.kernels import LOWERABLE_OPS
    return {
        "op_types": tuple(OP_TYPES),
        "builder_ops": frozenset(builder_emitted_ops()),
        "flops_ops": frozenset(flops_rule_ops()),
        "lowerable_ops": frozenset(LOWERABLE_OPS),
        "encoder_index": op_type_index,
    }


class RegistryCoveragePass(LintPass):
    """R001–R004: every op in ``OP_TYPES`` is covered by all four layers."""

    name = "registry-coverage"
    family = "registry"
    codes = ("R001", "R002", "R003", "R004")

    def __init__(self,
                 op_types: "Iterable[str] | None" = None,
                 builder_ops: "Iterable[str] | None" = None,
                 flops_ops: "Iterable[str] | None" = None,
                 lowerable_ops: "Iterable[str] | None" = None,
                 encoder_index: "Callable[[str], int] | None" = None):
        self._op_types = None if op_types is None else tuple(op_types)
        self._builder_ops = None if builder_ops is None \
            else frozenset(builder_ops)
        self._flops_ops = None if flops_ops is None else frozenset(flops_ops)
        self._lowerable_ops = None if lowerable_ops is None \
            else frozenset(lowerable_ops)
        self._encoder_index = encoder_index

    def _resolved(self) -> dict:
        real = _real_registries()
        return {
            "op_types": self._op_types or real["op_types"],
            "builder_ops": self._builder_ops
            if self._builder_ops is not None else real["builder_ops"],
            "flops_ops": self._flops_ops
            if self._flops_ops is not None else real["flops_ops"],
            "lowerable_ops": self._lowerable_ops
            if self._lowerable_ops is not None else real["lowerable_ops"],
            "encoder_index": self._encoder_index or real["encoder_index"],
        }

    def run(self, ctx=None) -> list[Diagnostic]:
        reg = self._resolved()
        diags: list[Diagnostic] = []
        n_ops = len(reg["op_types"])
        for op in reg["op_types"]:
            if op not in reg["builder_ops"]:
                diags.append(Diagnostic(
                    code="R001", severity=Severity.ERROR,
                    message=f"op {op!r} has no GraphBuilder emitter",
                    target=_TARGET, pass_name=self.name,
                    fix_hint="add a builder method decorated with "
                             "@_emits(...) in repro.graph.builder"))
            if op not in reg["flops_ops"]:
                diags.append(Diagnostic(
                    code="R002", severity=Severity.ERROR,
                    message=f"op {op!r} has no FLOPs rule",
                    target=_TARGET, pass_name=self.name,
                    fix_hint="register a formula in "
                             "repro.graph.flops._FLOPS"))
            if op not in reg["lowerable_ops"]:
                diags.append(Diagnostic(
                    code="R003", severity=Severity.ERROR,
                    message=f"op {op!r} has no kernel lowering",
                    target=_TARGET, pass_name=self.name,
                    fix_hint="handle the op in repro.gpu.kernels."
                             "lower_node and add it to LOWERABLE_OPS"))
            try:
                idx = reg["encoder_index"](op)
                ok = 0 <= idx < n_ops
            except KeyError:
                ok = False
            if not ok:
                diags.append(Diagnostic(
                    code="R004", severity=Severity.ERROR,
                    message=f"op {op!r} has no feature-encoder one-hot "
                            f"slot",
                    target=_TARGET, pass_name=self.name,
                    fix_hint="the encoder's one-hot table must be "
                             "derived from OP_TYPES"))
        return diags


class ExtraRegistrationPass(LintPass):
    """R005: registrations for ops outside ``OP_TYPES`` (dead or stale)."""

    name = "extra-registration"
    family = "registry"
    codes = ("R005",)

    def __init__(self,
                 op_types: "Iterable[str] | None" = None,
                 builder_ops: "Iterable[str] | None" = None,
                 lowerable_ops: "Iterable[str] | None" = None):
        self._op_types = None if op_types is None else tuple(op_types)
        self._builder_ops = None if builder_ops is None \
            else frozenset(builder_ops)
        self._lowerable_ops = None if lowerable_ops is None \
            else frozenset(lowerable_ops)

    def run(self, ctx=None) -> list[Diagnostic]:
        real = _real_registries()
        op_types = set(self._op_types or real["op_types"])
        builder_ops = self._builder_ops \
            if self._builder_ops is not None else real["builder_ops"]
        lowerable = self._lowerable_ops \
            if self._lowerable_ops is not None else real["lowerable_ops"]
        diags: list[Diagnostic] = []
        for layer, ops in (("GraphBuilder", builder_ops),
                           ("kernel lowering", lowerable)):
            for op in sorted(set(ops) - op_types):
                diags.append(Diagnostic(
                    code="R005", severity=Severity.WARNING,
                    message=f"{layer} registers op {op!r} which is not "
                            f"in OP_TYPES",
                    target=_TARGET, pass_name=self.name,
                    fix_hint="add the op to repro.graph.flops._FLOPS or "
                             "delete the stale registration"))
        return diags


class EncoderAttrCoveragePass(LintPass):
    """R006: every schema attribute must be featurized or exempted.

    An operator hyperparameter that is neither mapped to a feature slot
    nor listed in the encoder's explicit ``UNENCODED_ATTRS`` exemption
    set silently vanishes from the model's view of the graph.
    """

    name = "encoder-attr-coverage"
    family = "registry"
    codes = ("R006",)

    def __init__(self,
                 schema_attrs: "dict[str, frozenset[str]] | None" = None,
                 encoded: "Iterable[str] | None" = None,
                 unencoded: "Iterable[str] | None" = None):
        self._schema_attrs = schema_attrs
        self._encoded = None if encoded is None else frozenset(encoded)
        self._unencoded = None if unencoded is None else frozenset(unencoded)

    def run(self, ctx=None) -> list[Diagnostic]:
        from ..features.encode import ENCODED_ATTRS, UNENCODED_ATTRS
        schema_attrs = self._schema_attrs or all_schema_attrs()
        encoded = self._encoded \
            if self._encoded is not None else ENCODED_ATTRS
        unencoded = self._unencoded \
            if self._unencoded is not None else UNENCODED_ATTRS
        covered = frozenset(encoded) | frozenset(unencoded)
        diags: list[Diagnostic] = []
        for op in sorted(schema_attrs):
            for attr in sorted(schema_attrs[op] - covered):
                diags.append(Diagnostic(
                    code="R006", severity=Severity.WARNING,
                    message=f"attr {attr!r} of op {op!r} has neither a "
                            f"feature slot nor an unencoded exemption",
                    target=_TARGET, pass_name=self.name,
                    fix_hint="map the attr to a slot in repro.features."
                             "encode or add it to UNENCODED_ATTRS with "
                             "a rationale"))
        return diags


REGISTRY_PASSES = (RegistryCoveragePass, ExtraRegistrationPass,
                   EncoderAttrCoveragePass)
