"""Diagnostic records and reports for the static-analysis subsystem.

Every lint pass emits :class:`Diagnostic` values with a *stable* code
(``G001``, ``R003``, ``S001``, ...) so CI gates, tests, and docs can refer
to findings without string-matching messages.  A :class:`LintReport`
aggregates the diagnostics of one lint run and knows how to render itself
as human-readable text or as a SARIF-flavoured JSON document (the format
``repro lint --format json`` prints).

The full code table, with severity policy and fix guidance, lives in
``docs/static_analysis.md``.
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass, field
from typing import Any, Iterable

__all__ = ["Severity", "Diagnostic", "LintReport", "CODE_TABLE"]


class Severity(enum.IntEnum):
    """Diagnostic severity; ordering allows ``>=`` threshold filtering."""

    INFO = 10
    WARNING = 20
    ERROR = 30

    @property
    def label(self) -> str:
        return self.name.lower()

    @classmethod
    def from_label(cls, label: str) -> "Severity":
        try:
            return cls[label.upper()]
        except KeyError:
            raise ValueError(f"unknown severity {label!r}; "
                             f"known: {[s.label for s in cls]}")


#: every stable diagnostic code with its one-line meaning.  The registry
#: pass suite and ``docs/static_analysis.md`` are checked against this
#: table, so adding a pass means adding its codes here first.
CODE_TABLE: dict[str, str] = {
    # graph-level passes (run on a ComputationGraph without executing it)
    "G001": "dangling edge: edge endpoint references a missing node id",
    "G002": "self-loop: edge whose source and destination coincide",
    "G003": "cycle: the graph is not a DAG",
    "G004": "unknown op type: node op_type absent from OP_TYPES",
    "G005": "shape mismatch: recorded output shape disagrees with "
            "re-inference from inputs and attributes",
    "G006": "edge shape mismatch: edge tensor shape disagrees with the "
            "producer's recorded output shape",
    "G007": "negative cost: node FLOPs or workspace bytes below zero",
    "G008": "cost overflow: node FLOPs exceed the 2^62 sanity bound",
    "G009": "FLOPs drift: recorded FLOPs disagree with the registered "
            "formula (expected for fused graphs, suspicious elsewhere)",
    "G010": "hyperparameter schema violation for the node's op type",
    "G011": "non-finite feature: encoded node/edge features contain "
            "NaN or Inf",
    "G012": "orphan node: non-Input node with no incoming edge",
    # cross-registry coverage passes (no graph needed)
    "R001": "op type has no GraphBuilder emitter",
    "R002": "op type has no FLOPs rule",
    "R003": "op type has no kernel lowering registration",
    "R004": "op type has no feature-encoder one-hot slot",
    "R005": "registration for an op type outside OP_TYPES",
    "R006": "schema attribute with neither a feature slot nor an "
            "explicit unencoded exemption",
    # AST self-lint passes (repo source conventions)
    "S000": "source file fails to parse",
    "S001": "bare `except:` clause",
    "S002": "float equality (`==`/`!=`) on an occupancy value",
    "S003": "module missing `__all__`",
    "S004": "raw `time.sleep` outside the resilience backoff helper",
    "S005": "per-sample Python loop over a dataset in repro.core",
    "S006": "direct model predict call on the online path (use "
            "PredictorService)",
    "S007": "metric name not declared in repro.obs.names.METRIC_NAMES",
    # whole-program concurrency passes (thread roles + lock discipline)
    "C001": "unguarded shared mutable attribute: written and read across "
            "thread roles with no lock at any access site",
    "C002": "inconsistently guarded shared attribute: locked at some "
            "access sites, bare (or under a different lock) at others",
    "C003": "static lock-order cycle in the acquisition graph",
    "C004": "blocking call (Condition.wait, queue.get, Thread.join, I/O) "
            "while holding another lock",
    "C005": "daemon thread with no close()/join() shutdown path",
    # feature/label pre-flight (trainer fail-fast)
    "F001": "non-finite value in an encoded feature matrix",
    "F002": "occupancy label outside [0, 1]",
}


@dataclass(frozen=True)
class Diagnostic:
    """One lint finding.

    ``target`` names what was linted (graph name, registry, or file path);
    the optional location fields narrow it down to a node, edge, or source
    line.  ``fix_hint`` is a short imperative suggestion.
    """

    code: str
    severity: Severity
    message: str
    target: str = ""
    pass_name: str = ""
    node_id: int | None = None
    edge: tuple[int, int] | None = None
    file: str = ""
    line: int | None = None
    fix_hint: str = ""

    def __post_init__(self) -> None:
        if self.code not in CODE_TABLE:
            raise ValueError(f"undocumented diagnostic code {self.code!r}; "
                             f"add it to CODE_TABLE first")

    def location(self) -> str:
        """Human-readable location suffix (may be empty)."""
        if self.file:
            return f"{self.file}:{self.line}" if self.line else self.file
        if self.edge is not None:
            return f"edge {self.edge[0]}->{self.edge[1]}"
        if self.node_id is not None:
            return f"node {self.node_id}"
        return ""

    def format(self) -> str:
        loc = self.location()
        where = f"{self.target}" + (f" ({loc})" if loc else "")
        hint = f"  [fix: {self.fix_hint}]" if self.fix_hint else ""
        return (f"{self.code} {self.severity.label:<7s} {where}: "
                f"{self.message}{hint}")

    def to_dict(self) -> dict[str, Any]:
        d: dict[str, Any] = {
            "code": self.code,
            "severity": self.severity.label,
            "message": self.message,
            "target": self.target,
            "pass": self.pass_name,
        }
        if self.node_id is not None:
            d["node_id"] = self.node_id
        if self.edge is not None:
            d["edge"] = list(self.edge)
        if self.file:
            d["file"] = self.file
        if self.line is not None:
            d["line"] = self.line
        if self.fix_hint:
            d["fix_hint"] = self.fix_hint
        return d


@dataclass
class LintReport:
    """All diagnostics of one lint run (possibly over many targets)."""

    diagnostics: list[Diagnostic] = field(default_factory=list)
    #: how many targets (graphs / files / registries) were examined
    targets_checked: int = 0

    def extend(self, diags: Iterable[Diagnostic]) -> None:
        self.diagnostics.extend(diags)

    def merge(self, other: "LintReport") -> "LintReport":
        self.diagnostics.extend(other.diagnostics)
        self.targets_checked += other.targets_checked
        return self

    def by_code(self, code: str) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.code == code]

    def errors(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics
                if d.severity >= Severity.ERROR]

    @property
    def ok(self) -> bool:
        """True when no ERROR-severity diagnostic was emitted."""
        return not self.errors()

    @property
    def clean(self) -> bool:
        """True when no diagnostic of any severity was emitted."""
        return not self.diagnostics

    def counts(self) -> dict[str, int]:
        out = {s.label: 0 for s in Severity}
        for d in self.diagnostics:
            out[d.severity.label] += 1
        return out

    def exit_code(self) -> int:
        """The ``repro lint`` process exit code: 1 on errors, else 0."""
        return 1 if self.errors() else 0

    def format_text(self, min_severity: Severity = Severity.INFO) -> str:
        shown = [d for d in self.diagnostics if d.severity >= min_severity]
        lines = [d.format() for d in
                 sorted(shown, key=lambda d: (-d.severity, d.code,
                                              d.target))]
        c = self.counts()
        lines.append(
            f"{self.targets_checked} target(s) checked: "
            f"{c['error']} error(s), {c['warning']} warning(s), "
            f"{c['info']} info")
        return "\n".join(lines)

    def to_dict(self) -> dict[str, Any]:
        """SARIF-flavoured JSON document."""
        return {
            "version": "1.0",
            "tool": {"name": "repro-lint"},
            "targets_checked": self.targets_checked,
            "summary": self.counts(),
            "diagnostics": [d.to_dict() for d in self.diagnostics],
        }

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)
