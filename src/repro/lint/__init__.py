"""Static analysis for the occupancy-prediction pipeline.

The predictor's features and labels are only as good as the graph IR they
are derived from, and four layers (builder, FLOPs formulas, kernel
lowering, feature encoder) each interpret the shared ``OP_TYPES``
vocabulary independently.  This package makes the consistency of all of
that checkable *statically* — before profiling or training spends compute
on a malformed graph:

* graph passes (``G0xx``) re-verify a :class:`~repro.graph.
  ComputationGraph` without executing it;
* registry passes (``R0xx``) assert cross-layer operator coverage;
* source passes (``S0xx``) enforce repo conventions over ``src/repro``
  plus the ``scripts/`` and ``benchmarks/`` entry-point trees via the
  stdlib AST;
* program passes (``C0xx``) run a whole-program concurrency analysis —
  thread roles, shared-state lock discipline, lock-order cycles — over
  the same file set, paired with the :mod:`repro.lint.sanitizer`
  runtime lock sanitizer;
* pre-flight gates (``F0xx``) fail fast in the profiler and trainer.

Entry points: the ``repro lint`` CLI subcommand, the :func:`lint_graph` /
:func:`lint_registries` / :func:`lint_paths` APIs, and the
:func:`preflight_graph` / :func:`preflight_features` gates wired into
:mod:`repro.gpu.profiler` and :mod:`repro.core.trainer`.  Diagnostic
codes are documented in ``docs/static_analysis.md``.
"""

from __future__ import annotations

from .diagnostics import CODE_TABLE, Diagnostic, LintReport, Severity
from .manager import (GraphContext, LintPass, PassManager,
                      ProgramContext, SourceContext, default_manager)
from .graph_passes import GRAPH_PASSES
from .registry_passes import REGISTRY_PASSES
from .source_passes import SOURCE_PASSES
from .concurrency import PROGRAM_PASSES, ConcurrencyPass
from .runner import (LintError, default_source_roots, lint_concurrency,
                     lint_graph, lint_model, lint_paths, lint_registries,
                     lint_zoo, preflight_features, preflight_graph,
                     static_acquisition_graph)
from .sanitizer import (LockWatch, current_watch, install_watch,
                        new_condition, new_lock, new_rlock,
                        uninstall_watch)
from .schema import HPARAM_SCHEMAS, check_attrs
from .shapes import SHAPE_RULES, ShapeRuleViolation, infer_output_shape

__all__ = [
    "Diagnostic", "Severity", "LintReport", "CODE_TABLE",
    "LintPass", "PassManager", "GraphContext", "SourceContext",
    "ProgramContext", "default_manager",
    "GRAPH_PASSES", "REGISTRY_PASSES", "SOURCE_PASSES", "PROGRAM_PASSES",
    "ConcurrencyPass",
    "LintError", "lint_graph", "lint_model", "lint_zoo",
    "lint_registries", "lint_paths", "lint_concurrency",
    "default_source_roots", "static_acquisition_graph",
    "preflight_graph", "preflight_features",
    "LockWatch", "current_watch", "install_watch", "uninstall_watch",
    "new_lock", "new_rlock", "new_condition",
    "HPARAM_SCHEMAS", "check_attrs",
    "SHAPE_RULES", "ShapeRuleViolation", "infer_output_shape",
]
