"""Static analysis for the occupancy-prediction pipeline.

The predictor's features and labels are only as good as the graph IR they
are derived from, and four layers (builder, FLOPs formulas, kernel
lowering, feature encoder) each interpret the shared ``OP_TYPES``
vocabulary independently.  This package makes the consistency of all of
that checkable *statically* — before profiling or training spends compute
on a malformed graph:

* graph passes (``G0xx``) re-verify a :class:`~repro.graph.
  ComputationGraph` without executing it;
* registry passes (``R0xx``) assert cross-layer operator coverage;
* source passes (``S0xx``) enforce repo conventions over ``src/repro``
  via the stdlib AST;
* pre-flight gates (``F0xx``) fail fast in the profiler and trainer.

Entry points: the ``repro lint`` CLI subcommand, the :func:`lint_graph` /
:func:`lint_registries` / :func:`lint_paths` APIs, and the
:func:`preflight_graph` / :func:`preflight_features` gates wired into
:mod:`repro.gpu.profiler` and :mod:`repro.core.trainer`.  Diagnostic
codes are documented in ``docs/static_analysis.md``.
"""

from __future__ import annotations

from .diagnostics import CODE_TABLE, Diagnostic, LintReport, Severity
from .manager import (GraphContext, LintPass, PassManager, SourceContext,
                      default_manager)
from .graph_passes import GRAPH_PASSES
from .registry_passes import REGISTRY_PASSES
from .source_passes import SOURCE_PASSES
from .runner import (LintError, lint_graph, lint_model, lint_paths,
                     lint_registries, lint_zoo, preflight_features,
                     preflight_graph)
from .schema import HPARAM_SCHEMAS, check_attrs
from .shapes import SHAPE_RULES, ShapeRuleViolation, infer_output_shape

__all__ = [
    "Diagnostic", "Severity", "LintReport", "CODE_TABLE",
    "LintPass", "PassManager", "GraphContext", "SourceContext",
    "default_manager",
    "GRAPH_PASSES", "REGISTRY_PASSES", "SOURCE_PASSES",
    "LintError", "lint_graph", "lint_model", "lint_zoo",
    "lint_registries", "lint_paths", "preflight_graph",
    "preflight_features",
    "HPARAM_SCHEMAS", "check_attrs",
    "SHAPE_RULES", "ShapeRuleViolation", "infer_output_shape",
]
