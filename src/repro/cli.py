"""Command-line interface for the DNN-occu reproduction.

Three subcommands mirror the system's three roles:

* ``profile`` — simulate one model configuration on a device and print the
  kernel-level profile summary (the Nsight Compute stand-in);
* ``predict`` — train DNN-occu on a set of models and predict a target
  model's occupancy without profiling it;
* ``schedule`` — run the Table VI packing-strategy comparison on a
  simulated cluster;
* ``chaos`` — the resilience sweep: re-run the packing comparison under
  injected faults (GPU outages, job crashes, occupancy misprediction)
  across a range of crash probabilities, reporting evictions, retries,
  lost jobs, and goodput.  ``--fail-on-lost`` turns it into a CI gate;
* ``lint`` — static diagnostics: graph-IR passes over zoo models or
  serialized graphs, cross-registry coverage checks, and an AST
  self-lint (``--self``).  Exit code 0 = clean, 1 = ERROR diagnostics,
  2 = usage error;
* ``serve-bench`` — the serving suite: micro-batched throughput,
  warm-cache hit path, concurrent-client latency (p50/p99), zoo
  equivalence, and overload shedding.  ``--check`` turns the serve
  gates into a CI gate (``repro bench --check`` includes them too);
* ``fleet-bench`` — the multi-worker fleet suite: hash-aware scaling
  at widths 1/2/4, worker-kill + hang chaos with zero dropped
  requests, and the shared disk tier.  ``--suite`` narrows to one
  suite; ``--check`` gates (merged into ``repro bench --check``);
* ``trace-bench`` — the trace-and-replay compiled executor suite:
  replayed-tape speedup over the eager batched forward, zoo-wide
  traced-vs-eager equivalence, serial bit-identity, and
  fallback-on-miss.  ``--check`` gates (merged into
  ``repro bench --check``).

Observability: ``profile`` / ``schedule`` / ``trace`` accept
``--trace-out PATH`` to record spans + metrics into a Chrome trace-event
file, and ``repro obs PATH`` summarizes a saved trace (top spans by
self-time, metric table; ``--requests N`` regroups the last N traced
requests into span trees and prints the flight-recorder table).
``repro slo`` evaluates the serving SLOs over a deterministic workload
(``--check`` is the CI gate); ``repro obs-bench`` runs the
observability-overhead gates (``BENCH_obs.json``).  ``--log-level``
turns on structured logging.

Examples::

    python -m repro profile --model resnet-50 --batch 64 --device A100
    python -m repro predict --target resnet-50 --batch 64 --device A100
    python -m repro schedule --gpus 4 --jobs 24 --device P40
    python -m repro chaos --gpus 2 --jobs 8 --fault-rates 0.0 0.2 0.5
    python -m repro profile --model vit-t --trace-out t.json
    python -m repro obs t.json
    python -m repro lint --zoo --registries
    python -m repro lint --self --format json
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from . import __version__, obs
from .core import DNNOccu, DNNOccuConfig, TrainConfig, Trainer
from .data import SEEN_MODELS, generate_dataset
from .gpu import get_device, profile_graph
from .models import ModelConfig, build_model, list_models
from .sched import (NvmlUtilPacking, OccuPacking, SlotPacking,
                    generate_workload, simulate)

__all__ = ["main", "build_parser"]


def _add_trace_out(p: argparse.ArgumentParser) -> None:
    p.add_argument("--trace-out", default=None, metavar="PATH",
                   help="record spans + metrics to a Chrome trace-event "
                        "JSON file (open in chrome://tracing or Perfetto, "
                        "or summarize with `repro obs PATH`)")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="DNN-occu: GPU occupancy prediction")
    parser.add_argument("--version", action="version",
                        version=f"repro {__version__}")
    parser.add_argument("--log-level", choices=sorted(obs.LOG_LEVELS),
                        default=None,
                        help="enable structured (key=value) logging at "
                             "this level")
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("profile", help="simulate and profile one model")
    p.add_argument("--model", required=True, choices=list_models())
    p.add_argument("--batch", type=int, default=32)
    p.add_argument("--channels", type=int, default=3)
    p.add_argument("--seq-len", type=int, default=128)
    p.add_argument("--device", default="A100")
    p.add_argument("--top", type=int, default=5,
                   help="show the N longest kernels")
    _add_trace_out(p)

    p = sub.add_parser("predict", help="train DNN-occu, predict a target")
    p.add_argument("--target", required=True, choices=list_models())
    p.add_argument("--batch", type=int, default=32)
    p.add_argument("--channels", type=int, default=3)
    p.add_argument("--seq-len", type=int, default=128)
    p.add_argument("--device", default="A100")
    p.add_argument("--train-models", nargs="+", default=None,
                   help="training architectures (default: paper seen set "
                        "minus the target)")
    p.add_argument("--configs-per-model", type=int, default=4)
    p.add_argument("--epochs", type=int, default=30)
    p.add_argument("--hidden", type=int, default=48)
    p.add_argument("--seed", type=int, default=0)

    p = sub.add_parser("schedule", help="packing-strategy comparison")
    p.add_argument("--gpus", type=int, default=4)
    p.add_argument("--jobs", type=int, default=24)
    p.add_argument("--device", default="P40")
    p.add_argument("--seed", type=int, default=0)
    _add_trace_out(p)

    p = sub.add_parser(
        "chaos", help="packing comparison under injected faults")
    p.add_argument("--gpus", type=int, default=2)
    p.add_argument("--jobs", type=int, default=8)
    p.add_argument("--device", default="P40")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--fault-rates", type=float, nargs="+", metavar="P",
                   default=[0.0, 0.1, 0.3],
                   help="per-attempt job crash probabilities to sweep")
    p.add_argument("--gpu-mtbf", type=float, default=None, metavar="S",
                   help="mean time between GPU failures in seconds "
                        "(default: GPUs never fail)")
    p.add_argument("--gpu-mttr", type=float, default=60.0, metavar="S",
                   help="mean GPU repair time in seconds (inf = permanent)")
    p.add_argument("--checkpoint-interval", type=float, default=None,
                   metavar="S",
                   help="job checkpoint period; evicted jobs resume from "
                        "the last checkpoint instead of restarting")
    p.add_argument("--max-retries", type=int, default=100,
                   help="retry budget before a job is declared lost")
    p.add_argument("--mispredict-std", type=float, default=0.0,
                   help="lognormal noise sigma on scheduler-visible "
                        "occupancy")
    p.add_argument("--fail-on-lost", action="store_true",
                   help="exit 1 if any job exhausts its retry budget "
                        "(CI gate)")
    _add_trace_out(p)

    p = sub.add_parser("trace", help="export a Chrome kernel timeline")
    p.add_argument("--model", required=True, choices=list_models())
    p.add_argument("--batch", type=int, default=32)
    p.add_argument("--channels", type=int, default=3)
    p.add_argument("--seq-len", type=int, default=128)
    p.add_argument("--device", default="A100")
    p.add_argument("--out", required=True,
                   help="output .json path (open in chrome://tracing)")
    _add_trace_out(p)

    p = sub.add_parser("obs", help="summarize a saved trace file")
    p.add_argument("trace", help="Chrome trace-event .json (from "
                                 "--trace-out or the trace subcommand)")
    p.add_argument("--top", type=int, default=15,
                   help="show the N spans with the most self-time")
    p.add_argument("--requests", type=int, default=0, metavar="N",
                   help="also render the last N traced requests as span "
                        "trees, plus the flight-recorder table when the "
                        "trace carries one")

    p = sub.add_parser(
        "slo", help="evaluate serving SLOs over a deterministic workload")
    p.add_argument("--requests", type=int, default=60,
                   help="serve requests to issue before evaluating")
    p.add_argument("--device", default="A100")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--window", type=float, default=30.0, metavar="S",
                   help="synthetic evaluation timestamp (SLO windows are "
                        "measured against snapshot deltas, not wall time)")
    p.add_argument("--out", default=None, metavar="PATH",
                   help="also write the run's Chrome trace (spans + "
                        "metrics + flight records + SLO statuses) here")
    p.add_argument("--check", action="store_true",
                   help="exit 1 if any SLO objective is violated (CI "
                        "gate)")

    p = sub.add_parser(
        "lint", help="static diagnostics: graph IR, registries, sources")
    p.add_argument("--model", action="append", choices=list_models(),
                   metavar="NAME", help="lint one zoo model's graph "
                   "(repeatable)")
    p.add_argument("--zoo", action="store_true",
                   help="lint every registered zoo model")
    p.add_argument("--graph", action="append", metavar="PATH",
                   help="lint a ComputationGraph JSON file (repeatable)")
    p.add_argument("--registries", action="store_true",
                   help="cross-registry coverage checks (builder / FLOPs / "
                        "lowering / feature encoder)")
    p.add_argument("--self", dest="self_lint", action="store_true",
                   help="AST self-lint over the source tree")
    p.add_argument("--concurrency", action="store_true",
                   help="whole-program concurrency passes (C001-C005): "
                        "thread roles, shared-state lock discipline, "
                        "lock ordering")
    p.add_argument("--path", action="append", metavar="PATH",
                   help="file or directory for --self/--concurrency "
                        "(repeatable; default: the repro package plus "
                        "the repo's scripts/ and benchmarks/ trees)")
    p.add_argument("--batch", type=int, default=32)
    p.add_argument("--channels", type=int, default=3)
    p.add_argument("--seq-len", type=int, default=128)
    p.add_argument("--device", default="A100",
                   help="device context for feature-finiteness checks")
    p.add_argument("--format", choices=("text", "json"), default="text",
                   help="text report or SARIF-flavoured JSON")

    p = sub.add_parser("dataset", help="generate and save a profile dataset")
    p.add_argument("--models", nargs="+", required=True)
    p.add_argument("--devices", nargs="+", default=["A100"])
    p.add_argument("--configs-per-model", type=int, default=4)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--workers", type=int, default=1,
                   help="parallel evaluation workers (bit-identical to "
                        "serial for any value)")
    p.add_argument("--cache-dir", default=None, metavar="DIR",
                   help="content-addressed profile/encoding cache directory")
    p.add_argument("--out", required=True, help="output .npz path")

    p = sub.add_parser("bench", help="run the perf micro-benchmark gates")
    p.add_argument("--out", default=None, metavar="PATH",
                   help="write the BENCH_perf.json document here")
    p.add_argument("--scale", type=float, default=1.0,
                   help="workload multiplier (CI uses small scales)")
    p.add_argument("--check", action="store_true",
                   help="exit non-zero if any perf gate fails")

    p = sub.add_parser(
        "serve-bench", help="run the serving throughput/latency gates")
    p.add_argument("--out", default=None, metavar="PATH",
                   help="write the BENCH_serve.json document here")
    p.add_argument("--scale", type=float, default=1.0,
                   help="workload multiplier (CI uses small scales)")
    p.add_argument("--check", action="store_true",
                   help="exit non-zero if any serve gate fails")

    p = sub.add_parser(
        "fleet-bench", help="run the multi-worker fleet scaling/chaos gates")
    # mirrors repro.fleet.bench.FLEET_SUITES (imported lazily below)
    p.add_argument("--suite", choices=("all", "scaling", "chaos", "shared"),
                   default="all",
                   help="run one suite (chaos is the CI smoke) or all")
    p.add_argument("--out", default=None, metavar="PATH",
                   help="write the BENCH_fleet.json document here")
    p.add_argument("--scale", type=float, default=1.0,
                   help="workload multiplier (CI uses small scales)")
    p.add_argument("--check", action="store_true",
                   help="exit non-zero if any fleet gate fails")

    p = sub.add_parser(
        "obs-bench", help="run the observability overhead/SLO gates")
    p.add_argument("--out", default=None, metavar="PATH",
                   help="write the BENCH_obs.json document here")
    p.add_argument("--scale", type=float, default=1.0,
                   help="workload multiplier (CI uses small scales)")
    p.add_argument("--check", action="store_true",
                   help="exit non-zero if any obs gate fails")

    p = sub.add_parser(
        "trace-bench",
        help="run the trace-and-replay compiled-executor gates")
    p.add_argument("--out", default=None, metavar="PATH",
                   help="write the BENCH_trace.json document here")
    p.add_argument("--scale", type=float, default=1.0,
                   help="workload multiplier (CI uses small scales)")
    p.add_argument("--check", action="store_true",
                   help="exit non-zero if any trace gate fails")
    return parser


def _config(args: argparse.Namespace) -> ModelConfig:
    return ModelConfig(batch_size=args.batch, in_channels=args.channels,
                       seq_len=args.seq_len)


def _cmd_profile(args: argparse.Namespace) -> int:
    device = get_device(args.device)
    graph = build_model(args.model, _config(args))
    prof = profile_graph(graph, device)
    print(f"{args.model} (batch {args.batch}) on {device.name}")
    print(f"  nodes/edges      : {graph.num_nodes}/{graph.num_edges}")
    print(f"  GFLOPs           : {graph.total_flops() / 1e9:.2f}")
    print(f"  kernels          : {prof.num_kernels}")
    print(f"  wall time        : {prof.wall_time_s * 1e3:.2f} ms/iter")
    print(f"  GPU occupancy    : {prof.occupancy:.2%}")
    print(f"  NVML utilization : {prof.nvml_utilization:.2%}")
    longest = sorted(prof.records, key=lambda r: r.duration_s,
                     reverse=True)[:args.top]
    print(f"  top {len(longest)} kernels by duration:")
    for rec in longest:
        print(f"    {rec.name:<34s} {rec.duration_s * 1e6:9.1f} us  "
              f"occ {rec.occupancy:6.2%}  limiter {rec.limiter}")
    return 0


def _cmd_predict(args: argparse.Namespace) -> int:
    device = get_device(args.device)
    train_models = args.train_models or [
        m for m in SEEN_MODELS if m != args.target.lower()]
    print(f"training on {train_models} ({device.name}) ...",
          file=sys.stderr)
    train = generate_dataset(train_models, [device],
                             configs_per_model=args.configs_per_model,
                             seed=args.seed)
    model = DNNOccu(DNNOccuConfig(hidden=args.hidden, num_heads=4),
                    seed=args.seed)
    Trainer(model, TrainConfig(epochs=args.epochs, lr=1e-3,
                               seed=args.seed)).fit(train)

    graph = build_model(args.target, _config(args))
    # Through the serving facade: a single serial request dispatches the
    # per-graph forward, bit-identical to calling model.predict directly.
    from .serve import PredictorService
    with PredictorService(model, device) as service:
        predicted = service.predict(graph)
    prof = profile_graph(graph, device)
    rel = abs(predicted - prof.occupancy) / prof.occupancy
    print(f"{args.target} (batch {args.batch}) on {device.name}")
    print(f"  predicted occupancy : {predicted:.2%}")
    print(f"  measured  occupancy : {prof.occupancy:.2%}")
    print(f"  relative error      : {rel:.2%}")
    return 0


def _cmd_schedule(args: argparse.Namespace) -> int:
    device = get_device(args.device)
    mix = ("lenet", "alexnet", "rnn", "lstm", "vgg-11", "resnet-18",
           "resnet-34", "vit-t")
    jobs = generate_workload(mix, device, args.jobs, seed=args.seed,
                             iterations_range=(100, 600))
    print(f"{args.jobs} jobs on {args.gpus}x {device.name}")
    print(f"{'strategy':>20s} {'makespan':>10s} {'nvml util':>10s} "
          f"{'stretch':>8s}")
    for policy in (SlotPacking(), NvmlUtilPacking(), OccuPacking()):
        res = simulate(jobs, args.gpus, policy)
        print(f"{policy.name:>20s} {res.makespan_s:9.1f}s "
              f"{res.avg_nvml_utilization:10.1%} {res.avg_stretch:8.3f}")
    return 0


def _cmd_chaos(args: argparse.Namespace) -> int:
    from .resilience import FaultConfig, FaultInjector
    device = get_device(args.device)
    mix = ("lenet", "alexnet", "rnn", "lstm", "vgg-11", "resnet-18",
           "resnet-34", "vit-t")
    jobs = generate_workload(mix, device, args.jobs, seed=args.seed,
                             iterations_range=(100, 600))
    ckpt = (f"{args.checkpoint_interval:g}s"
            if args.checkpoint_interval is not None else "none")
    print(f"{args.jobs} jobs on {args.gpus}x {device.name} | "
          f"gpu mtbf {args.gpu_mtbf or 'inf'} | checkpoint {ckpt} | "
          f"retry budget {args.max_retries}")
    print(f"{'crash p':>8s} {'strategy':>20s} {'makespan':>10s} "
          f"{'evict':>6s} {'retry':>6s} {'lost':>5s} {'goodput':>8s} "
          f"{'wasted':>9s}")
    lost = 0
    for rate in args.fault_rates:
        cfg = FaultConfig(gpu_mtbf_s=args.gpu_mtbf,
                          gpu_mttr_s=args.gpu_mttr,
                          crash_prob=rate,
                          mispredict_std=args.mispredict_std,
                          checkpoint_interval_s=args.checkpoint_interval,
                          max_retries=args.max_retries)
        for policy in (SlotPacking(), NvmlUtilPacking(), OccuPacking()):
            res = simulate(jobs, args.gpus, policy,
                           faults=FaultInjector(cfg, args.seed))
            lost += res.failed_jobs
            print(f"{rate:8.2f} {policy.name:>20s} {res.makespan_s:9.1f}s "
                  f"{res.evictions:6d} {res.retries:6d} "
                  f"{res.failed_jobs:5d} {res.goodput_fraction:8.1%} "
                  f"{res.wasted_s:8.1f}s")
    if args.fail_on_lost and lost:
        print(f"error: {lost} job(s) lost across the sweep "
              f"(retry budget exhausted)", file=sys.stderr)
        return 1
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from .gpu import to_chrome_trace
    device = get_device(args.device)
    graph = build_model(args.model, _config(args))
    prof = profile_graph(graph, device)
    with open(args.out, "w") as fh:
        fh.write(to_chrome_trace(prof))
    print(f"wrote {prof.num_kernels} kernel events to {args.out} "
          f"(open in chrome://tracing)")
    return 0


def _cmd_obs(args: argparse.Namespace) -> int:
    import json
    try:
        trace = obs.load_trace_file(args.trace)
    except FileNotFoundError:
        print(f"error: no such trace file: {args.trace}", file=sys.stderr)
        return 1
    except (ValueError, json.JSONDecodeError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    print(obs.summarize_trace(trace, top=args.top))
    if args.requests > 0:
        print()
        print(obs.format_request_summary(trace, limit=args.requests))
        flight = trace.get("otherData", {}).get("flight")
        if flight:
            print()
            print(f"flight recorder (last {min(args.requests, len(flight))}"
                  f" of {len(flight)} records):")
            print(obs.format_flight_table(flight, limit=args.requests))
    return 0


def _cmd_slo(args: argparse.Namespace) -> int:
    from .core import DNNOccu, DNNOccuConfig
    from .serve import PredictorService

    device = get_device(args.device)
    model = DNNOccu(DNNOccuConfig(hidden=32, num_heads=4), seed=args.seed)
    graphs = [build_model(n, ModelConfig(batch_size=bs))
              for n in ("lenet", "alexnet", "rnn") for bs in (4, 8)]
    obs.reset_ids()
    tracer, registry = obs.enable()
    try:
        engine = obs.SLOEngine(registry)
        engine.snapshot(now=0.0)
        with PredictorService(model, device) as svc:
            for i in range(args.requests):
                svc.predict(graphs[i % len(graphs)])
        engine.snapshot(now=args.window)
        ok, statuses = engine.check(now=args.window)
        payload = obs.export_chrome_trace(
            tracer, registry, command="slo",
            flight=svc.flight.to_dicts() if svc.flight else [],
            slo=[s.to_dict() for s in statuses]) if args.out else None
    finally:
        obs.disable()
    print(f"{args.requests} requests on {device.name}; "
          f"{len(statuses)} objectives:")
    print(obs.format_slo_report(statuses))
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(payload)
        print(f"wrote trace + SLO statuses to {args.out} "
              f"(summarize with `repro obs {args.out} --requests 10`)")
    if args.check and not ok:
        violated = [s.spec.name for s in statuses if not s.ok]
        print(f"SLO check FAILED: {', '.join(violated)}", file=sys.stderr)
        return 1
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    import pathlib

    from .graph import ComputationGraph
    from .lint import (LintReport, default_source_roots,
                       lint_concurrency, lint_graph, lint_model,
                       lint_paths, lint_registries, lint_zoo)

    if not (args.model or args.zoo or args.graph or args.registries
            or args.self_lint or args.concurrency):
        print("error: nothing to lint; pass --model/--zoo/--graph/"
              "--registries/--self/--concurrency", file=sys.stderr)
        return 2

    device = get_device(args.device)
    report = LintReport()
    if args.zoo:
        report.merge(lint_zoo(device=device, config=_config(args)))
    for name in args.model or ():
        report.merge(lint_model(name, config=_config(args), device=device))
    for path in args.graph or ():
        try:
            text = pathlib.Path(path).read_text(encoding="utf-8")
        except OSError as exc:
            print(f"error: cannot read graph file: {exc}", file=sys.stderr)
            return 2
        report.merge(lint_graph(ComputationGraph.from_json(text),
                                device=device))
    if args.registries:
        report.merge(lint_registries())
    if args.self_lint:
        report.merge(lint_paths(args.path or default_source_roots()))
    if args.concurrency:
        report.merge(lint_concurrency(args.path or None))

    if args.format == "json":
        print(report.to_json())
    else:
        print(report.format_text())
    return report.exit_code()


def _cmd_dataset(args: argparse.Namespace) -> int:
    from .data import save_dataset
    devices = [get_device(d) for d in args.devices]
    ds = generate_dataset(args.models, devices,
                          configs_per_model=args.configs_per_model,
                          seed=args.seed, workers=args.workers,
                          cache_dir=args.cache_dir)
    save_dataset(ds, args.out)
    print(f"saved {len(ds)} labelled graphs to {args.out}")
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from .perf.bench import format_summary, run_benchmarks, save_results
    results = run_benchmarks(scale=args.scale)
    print(format_summary(results))
    if args.out:
        save_results(results, args.out)
        print(f"wrote {args.out}")
    if args.check and not all(results["gates"].values()):
        failed = [k for k, v in results["gates"].items() if not v]
        print(f"perf gates FAILED: {', '.join(failed)}", file=sys.stderr)
        return 1
    return 0


def _cmd_serve_bench(args: argparse.Namespace) -> int:
    from .perf.bench import save_results
    from .serve.bench import format_serve_summary, run_serve_benchmarks
    results = run_serve_benchmarks(scale=args.scale)
    print(format_serve_summary(results))
    if args.out:
        save_results(results, args.out)
        print(f"wrote {args.out}")
    if args.check and not all(results["gates"].values()):
        failed = [k for k, v in results["gates"].items() if not v]
        print(f"serve gates FAILED: {', '.join(failed)}", file=sys.stderr)
        return 1
    return 0


def _cmd_fleet_bench(args: argparse.Namespace) -> int:
    from .fleet.bench import (FLEET_SUITES, format_fleet_summary,
                              run_fleet_benchmarks)
    suites = FLEET_SUITES if args.suite == "all" else (args.suite,)
    results = run_fleet_benchmarks(scale=args.scale, suites=suites)
    print(format_fleet_summary(results))
    if args.out:
        from .perf.bench import save_results
        save_results(results, args.out)
        print(f"wrote {args.out}")
    if args.check and not all(results["gates"].values()):
        failed = [k for k, v in results["gates"].items() if not v]
        print(f"fleet gates FAILED: {', '.join(failed)}", file=sys.stderr)
        return 1
    return 0


def _cmd_obs_bench(args: argparse.Namespace) -> int:
    from .obs.bench import format_obs_summary, run_obs_benchmarks
    from .perf.bench import save_results
    results = run_obs_benchmarks(scale=args.scale)
    print(format_obs_summary(results))
    if args.out:
        save_results(results, args.out)
        print(f"wrote {args.out}")
    if args.check and not all(results["gates"].values()):
        failed = [k for k, v in results["gates"].items() if not v]
        print(f"obs gates FAILED: {', '.join(failed)}", file=sys.stderr)
        return 1
    return 0


def _cmd_trace_bench(args: argparse.Namespace) -> int:
    from .perf.bench import save_results
    from .perf.trace_bench import (format_trace_summary,
                                   run_trace_benchmarks)
    results = run_trace_benchmarks(scale=args.scale)
    print(format_trace_summary(results))
    if args.out:
        save_results(results, args.out)
        print(f"wrote {args.out}")
    if args.check and not all(results["gates"].values()):
        failed = [k for k, v in results["gates"].items() if not v]
        print(f"trace gates FAILED: {', '.join(failed)}", file=sys.stderr)
        return 1
    return 0


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.log_level:
        obs.configure_logging(args.log_level)
    handler = {"profile": _cmd_profile, "predict": _cmd_predict,
               "schedule": _cmd_schedule, "chaos": _cmd_chaos,
               "trace": _cmd_trace, "obs": _cmd_obs, "slo": _cmd_slo,
               "dataset": _cmd_dataset, "lint": _cmd_lint,
               "bench": _cmd_bench,
               "serve-bench": _cmd_serve_bench,
               "fleet-bench": _cmd_fleet_bench,
               "obs-bench": _cmd_obs_bench,
               "trace-bench": _cmd_trace_bench}[args.command]
    trace_out = getattr(args, "trace_out", None)
    if not trace_out:
        return handler(args)
    tracer, registry = obs.enable()
    try:
        rc = handler(args)
    finally:
        payload = obs.export_chrome_trace(tracer, registry,
                                          command=args.command)
        obs.disable()
    with open(trace_out, "w") as fh:
        fh.write(payload)
    print(f"wrote {len(tracer.events)} span events + "
          f"{len(registry)} metrics to {trace_out} "
          f"(summarize with `repro obs {trace_out}`)")
    return rc


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
