"""MLP baseline (Section IV-D, after Justus & McGough).

Applies a four-layer MLP (the paper's widths: 80, 512, 512, 256) to every
node's Table I feature vector and averages per-node estimates into a graph
prediction.  No relational structure and no kernel-duration weighting —
the sources of its poor generalization to unseen architectures.
"""

from __future__ import annotations

import numpy as np

from ..features import GraphFeatures, node_feature_dim
from ..nn import MLP
from ..tensor import Module, Tensor

__all__ = ["MLPPredictor"]


class MLPPredictor(Module):
    """Per-node MLP regression, mean-aggregated over the graph."""

    def __init__(self, seed: int = 0, widths: tuple[int, ...] = (80, 512, 512, 256),
                 node_dim: int | None = None):
        super().__init__()
        rng = np.random.default_rng(seed)
        nd = node_dim if node_dim is not None else node_feature_dim()
        self.net = MLP([nd, *widths, 1], rng)

    def forward(self, features: GraphFeatures) -> Tensor:
        h = Tensor(features.node_features)
        per_node = self.net(h)            # (n, 1)
        return per_node.mean().reshape(())
