"""DNNPerf baseline (Gao et al., ICSE-SEIP 2023).

DNNPerf is the GNN predecessor DNN-occu borrows the ANEE layer from: a
stack of ANEE message-passing rounds followed by a *sum* readout and an MLP
regressor with an unbounded (linear) output.  Sum readout makes the latent
magnitude grow with graph size and the linear head extrapolates freely —
faithful to the original design (built for runtime/memory regression, whose
targets do scale with graph size) and the mechanism behind its very large
occupancy errors on unseen architectures in Tables IV/V.
"""

from __future__ import annotations

import numpy as np

from ..core.anee import ANEELayer
from ..features import GraphFeatures, edge_feature_dim, node_feature_dim
from ..nn import Linear
from ..tensor import Module, ModuleList, Tensor

__all__ = ["DNNPerfPredictor"]


class DNNPerfPredictor(Module):
    """ANEE rounds -> sum readout -> 2-layer MLP with linear output."""

    def __init__(self, seed: int = 0, hidden: int = 64, num_layers: int = 2,
                 node_dim: int | None = None, edge_dim: int | None = None):
        super().__init__()
        rng = np.random.default_rng(seed)
        nd = node_dim if node_dim is not None else node_feature_dim()
        ed = edge_dim if edge_dim is not None else edge_feature_dim()
        layers = []
        n_in, e_in = nd, ed
        for _ in range(num_layers):
            layers.append(ANEELayer(n_in, e_in, hidden, rng))
            n_in = e_in = hidden
        self.layers = ModuleList(layers)
        self.fc1 = Linear(hidden, hidden, rng)
        self.fc2 = Linear(hidden, 1, rng)

    def forward(self, features: GraphFeatures) -> Tensor:
        h = Tensor(features.node_features)
        e = Tensor(features.edge_features)
        for layer in self.layers:
            h, e = layer(h, e, features.edge_index)
        readout = h.sum(axis=0).reshape(1, -1)   # sum readout (size-sensitive)
        z = self.fc1(readout).relu()
        return self.fc2(z).reshape(())
