"""Transformer baseline (Section IV-D): encoder-only sequence regression.

The paper's configuration: three encoder layers, four attention heads,
512-channel FFN.  Nodes are treated as an unordered token sequence (no
structural bias — that is Graphormer's addition in DNN-occu); mean-pooled
tokens regress occupancy.
"""

from __future__ import annotations

import numpy as np

from ..features import GraphFeatures, node_feature_dim
from ..nn import LayerNorm, Linear, TransformerEncoderLayer
from ..tensor import Module, ModuleList, Tensor

__all__ = ["TransformerPredictor"]


class TransformerPredictor(Module):
    """3-layer transformer encoder, mean pooling, sigmoid head."""

    def __init__(self, seed: int = 0, dim: int = 128, num_layers: int = 3,
                 num_heads: int = 4, ffn_dim: int = 512,
                 max_nodes: int = 512, node_dim: int | None = None):
        super().__init__()
        rng = np.random.default_rng(seed)
        nd = node_dim if node_dim is not None else node_feature_dim()
        self.max_nodes = max_nodes
        self.embed = Linear(nd, dim, rng)
        self.layers = ModuleList([
            TransformerEncoderLayer(dim, num_heads, ffn_dim, rng)
            for _ in range(num_layers)
        ])
        # Final LN: pre-LN blocks leave an unnormalized residual stream,
        # whose magnitude would saturate the sigmoid head.
        self.final_ln = LayerNorm(dim)
        self.head = Linear(dim, 1, rng)
        self.head.weight.data *= 0.1

    def forward(self, features: GraphFeatures) -> Tensor:
        x = features.node_features
        if x.shape[0] > self.max_nodes:
            idx = np.linspace(0, x.shape[0] - 1, self.max_nodes).astype(int)
            x = x[idx]
        h = self.embed(Tensor(x))
        for layer in self.layers:
            h = layer(h)
        pooled = self.final_ln(h.mean(axis=0).reshape(1, -1))
        return self.head(pooled).sigmoid().reshape(())
