"""Analytical baseline in the spirit of Paleo / Yeung et al.

The related work (Section VII) predicts utilization from hand-crafted
aggregate quantities — FLOPs, input sizes, layer counts — with a simple
fitted model rather than a GNN.  :class:`AnalyticalPredictor` reproduces
that recipe: a closed-form ridge regression from graph-level summary
statistics to occupancy.  No gradients, no graph structure — the cheapest
credible comparator, and a useful sanity floor for the learned models.
"""

from __future__ import annotations

import types

import numpy as np

from ..data import Dataset, GraphSample
from ..metrics import evaluate_predictions

__all__ = ["AnalyticalPredictor"]


def _summary_features(sample: GraphSample) -> np.ndarray:
    """Graph-level aggregates: the hand-crafted features of prior work."""
    nf = sample.features.node_features
    # Column blocks are stable (see repro.features.encode): the last 5 are
    # device features; flops/sizes live mid-vector.  Aggregates below are
    # deliberately coarse — that is the point of this baseline.
    device = nf[0, -5:]
    mean_all = nf.mean(axis=0)
    max_all = nf.max(axis=0)
    return np.concatenate([
        [np.log1p(sample.num_nodes) / 8.0,
         np.log1p(sample.num_edges) / 8.0],
        mean_all, max_all, device,
    ])


class AnalyticalPredictor:
    """Ridge regression on graph-level summary statistics.

    API mirrors the sklearn convention (``fit`` / ``predict``) plus the
    ``evaluate`` surface of :class:`repro.core.Trainer` so benchmark code
    can treat it uniformly.
    """

    def __init__(self, ridge: float = 1e-3):
        if ridge <= 0:
            raise ValueError("ridge must be positive")
        self.ridge = ridge
        self._weights: np.ndarray | None = None

    def fit(self, dataset: Dataset) -> "AnalyticalPredictor":
        if len(dataset) == 0:
            raise ValueError("empty training dataset")
        x = np.stack([_summary_features(s) for s in dataset])
        x = np.concatenate([x, np.ones((len(x), 1))], axis=1)  # bias
        y = dataset.labels()
        a = x.T @ x + self.ridge * np.eye(x.shape[1])
        self._weights = np.linalg.solve(a, x.T @ y)
        return self

    def predict(self, dataset: Dataset) -> np.ndarray:
        if self._weights is None:
            raise RuntimeError("fit() must be called before predict()")
        x = np.stack([_summary_features(s) for s in dataset])
        x = np.concatenate([x, np.ones((len(x), 1))], axis=1)
        return np.clip(x @ self._weights, 0.0, 1.0)

    def predict_one(self, features) -> float:
        """Predict occupancy for one encoded graph, no Dataset wrapper.

        Takes a :class:`~repro.features.GraphFeatures` directly — the
        surface the resilience fallback chain uses, where wrapping a
        single prediction into a labelled sample would be artificial.
        Raises ``ValueError`` on a non-finite result (poisoned features
        must not silently become a confident prediction).
        """
        if self._weights is None:
            raise RuntimeError("fit() must be called before predict()")
        shim = types.SimpleNamespace(features=features,
                                     num_nodes=features.num_nodes,
                                     num_edges=features.num_edges)
        x = np.concatenate([_summary_features(shim), [1.0]])
        value = float(x @ self._weights)
        if not np.isfinite(value):
            raise ValueError("analytical prediction is non-finite")
        return float(np.clip(value, 0.0, 1.0))

    def evaluate(self, dataset: Dataset) -> dict[str, float]:
        return evaluate_predictions(self.predict(dataset), dataset.labels())
