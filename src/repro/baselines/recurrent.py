"""LSTM baseline (Section IV-D): the node-feature sequence as a time series.

Nodes are fed in topological (node-id) order through a two-layer LSTM; the
final hidden state regresses occupancy.  Sequences longer than
``max_nodes`` are uniformly subsampled — the recurrent baseline cannot
afford thousand-step unrolls, and subsampling matches how sequence
baselines truncate long inputs in practice.
"""

from __future__ import annotations

import numpy as np

from ..features import GraphFeatures, node_feature_dim
from ..nn import LSTM, Linear
from ..tensor import Module, Tensor

__all__ = ["LSTMPredictor"]


class LSTMPredictor(Module):
    """2-layer LSTM over the node sequence -> linear head -> sigmoid."""

    def __init__(self, seed: int = 0, hidden: int = 256, num_layers: int = 2,
                 max_nodes: int = 256, node_dim: int | None = None):
        super().__init__()
        rng = np.random.default_rng(seed)
        nd = node_dim if node_dim is not None else node_feature_dim()
        self.max_nodes = max_nodes
        self.lstm = LSTM(nd, hidden, num_layers, rng)
        self.head = Linear(hidden, 1, rng)
        self.head.weight.data *= 0.1

    def forward(self, features: GraphFeatures) -> Tensor:
        x = features.node_features
        if x.shape[0] > self.max_nodes:
            idx = np.linspace(0, x.shape[0] - 1, self.max_nodes).astype(int)
            x = x[idx]
        seq = Tensor(x)  # (t, features) - unbatched sequence
        outputs, _ = self.lstm(seq)
        last = outputs[outputs.shape[0] - 1]
        return self.head(last).sigmoid().reshape(())
