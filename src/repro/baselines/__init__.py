"""Comparison baselines (Section IV-D): MLP, LSTM, Transformer, DNNPerf,
BRP-NAS."""

from .mlp import MLPPredictor
from .recurrent import LSTMPredictor
from .transformer import TransformerPredictor
from .dnnperf import DNNPerfPredictor
from .brpnas import BRPNASPredictor, GCNLayer
from .analytical import AnalyticalPredictor

__all__ = [
    "MLPPredictor", "LSTMPredictor", "TransformerPredictor",
    "DNNPerfPredictor", "BRPNASPredictor", "GCNLayer",
    "AnalyticalPredictor",
]
