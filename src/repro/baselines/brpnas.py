"""BRP-NAS baseline (Dudziak et al., NeurIPS 2020).

A graph convolutional network over the computation graph.  As the paper
notes (Section IV-D), BRP-NAS "focuses on modeling the impact from the
computation graph structure while overlooking runtime factors associated
with nodes and edges": its node inputs are the operator-type one-hots only
— batch size, tensor sizes, FLOPs and device features are invisible to it,
so configurations of the same architecture are indistinguishable.
"""

from __future__ import annotations

import numpy as np

from ..features import GraphFeatures
from ..graph import OP_TYPES
from ..nn import Linear
from ..tensor import Module, ModuleList, Parameter, Tensor, init

__all__ = ["GCNLayer", "BRPNASPredictor"]


class GCNLayer(Module):
    """Kipf-Welling graph convolution: H' = ReLU(D̂^-1/2 Â D̂^-1/2 H W)."""

    def __init__(self, in_dim: int, out_dim: int, rng: np.random.Generator):
        super().__init__()
        self.weight = Parameter(init.xavier_uniform((in_dim, out_dim), rng))

    def forward(self, h: Tensor, edge_index: np.ndarray) -> Tensor:
        n = h.shape[0]
        src, dst = edge_index
        # Symmetric normalization with self-loops (computed on constants).
        deg = np.ones(n)  # self-loop
        np.add.at(deg, dst, 1.0)
        np.add.at(deg, src, 1.0)  # treat as undirected
        inv_sqrt = 1.0 / np.sqrt(deg)

        hw = h @ self.weight
        # Self-loop term + symmetric-normalized neighbor sums (both ways).
        out = hw * Tensor(inv_sqrt[:, None] ** 2)
        if len(src):
            coeff = inv_sqrt[src] * inv_sqrt[dst]
            fwd = Tensor.scatter_add(hw[src] * Tensor(coeff[:, None]), dst, n)
            bwd = Tensor.scatter_add(hw[dst] * Tensor(coeff[:, None]), src, n)
            out = out + fwd + bwd
        return out.relu()


class BRPNASPredictor(Module):
    """4-layer GCN on op-type one-hots, mean readout, linear head."""

    def __init__(self, seed: int = 0, hidden: int = 64, num_layers: int = 4):
        super().__init__()
        rng = np.random.default_rng(seed)
        dims = [len(OP_TYPES)] + [hidden] * num_layers
        self.layers = ModuleList([GCNLayer(a, b, rng)
                                  for a, b in zip(dims[:-1], dims[1:])])
        self.head = Linear(hidden, 1, rng)
        #: node-feature columns holding the operator-type one-hot
        self._onehot_dim = len(OP_TYPES)

    def forward(self, features: GraphFeatures) -> Tensor:
        # Structure-only view: strip every runtime feature.
        h = Tensor(features.node_features[:, :self._onehot_dim])
        for layer in self.layers:
            h = layer(h, features.edge_index)
        pooled = h.mean(axis=0).reshape(1, -1)
        return self.head(pooled).reshape(())
