"""Packing policies (Table VI): occu-packing, nvml-util-packing, slot-packing.

A policy answers one question for the simulator: *may this job be placed on
this GPU given what is already running there?*  All three use the metrics
the scheduler would actually have before execution (predictions), never the
measured ground truth.
"""

from __future__ import annotations

from typing import Protocol, Sequence

from .job import Job

__all__ = ["PackingPolicy", "SlotPacking", "NvmlUtilPacking", "OccuPacking",
           "POLICIES"]


class PackingPolicy(Protocol):
    """Admission predicate for co-location."""

    name: str

    def admits(self, job: Job, resident: Sequence[Job]) -> bool:
        """True if ``job`` may start on a GPU currently running
        ``resident``."""
        ...


class SlotPacking:
    """One job per GPU — co-location disabled (the paper's baseline)."""

    name = "slot-packing"

    def admits(self, job: Job, resident: Sequence[Job]) -> bool:
        return len(resident) == 0


class NvmlUtilPacking:
    """Bin-pack by predicted NVML utilization, cumulative <= ``cap``.

    Because NVML utilization is a loose upper bound that saturates near
    100% for almost any non-trivial DL job, this policy can rarely admit a
    second job — which is exactly why the paper finds it barely better
    than slot-packing.
    """

    name = "nvml-util-packing"

    def __init__(self, cap: float = 1.0):
        self.cap = cap

    def admits(self, job: Job, resident: Sequence[Job]) -> bool:
        total = job.sched_nvml + sum(j.sched_nvml for j in resident)
        return total <= self.cap


class OccuPacking:
    """Bin-pack by predicted GPU occupancy, cumulative <= ``cap``.

    The DNN-occu-guided policy: occupancy is a tight measure of SM usage,
    so multiple low-occupancy jobs fit under the 100% cap with bounded
    interference (Fig. 7's knee).

    When ``memory_capacity_bytes`` is set, admission additionally requires
    the co-residents' memory footprints to fit in device memory — the
    paper's scheduler explicitly minimizes "job resubmission caused by
    out-of-memory failures".
    """

    name = "occu-packing"

    def __init__(self, cap: float = 1.0, max_jobs_per_gpu: int = 8,
                 memory_capacity_bytes: int | None = None,
                 uncertainty_margin: float = 0.0):
        self.cap = cap
        self.max_jobs_per_gpu = max_jobs_per_gpu
        self.memory_capacity_bytes = memory_capacity_bytes
        #: safety factor k: each job counts as mean + k * predicted_std,
        #: so uncertain predictions pack less aggressively
        self.uncertainty_margin = uncertainty_margin

    def _demand(self, job: Job) -> float:
        return job.sched_occupancy \
            + self.uncertainty_margin * job.predicted_std

    def admits(self, job: Job, resident: Sequence[Job]) -> bool:
        if len(resident) >= self.max_jobs_per_gpu:
            return False
        total = self._demand(job) + sum(self._demand(j) for j in resident)
        if total > self.cap:
            return False
        if self.memory_capacity_bytes is not None:
            mem = job.memory_bytes + sum(j.memory_bytes for j in resident)
            if mem > self.memory_capacity_bytes:
                return False
        return True


#: registry keyed by the Table VI strategy names
POLICIES = {
    "slot-packing": SlotPacking,
    "nvml-util-packing": NvmlUtilPacking,
    "occu-packing": OccuPacking,
}
