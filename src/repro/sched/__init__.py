"""Trace-driven DL workload scheduling (Section VI): jobs, interference,
packing policies, cluster simulator."""

from .job import Job
from .interference import InterferenceModel
from .policies import (NvmlUtilPacking, OccuPacking, PackingPolicy, POLICIES,
                       SlotPacking)
from .simulator import ClusterResult, simulate
from .workload import generate_workload, make_job
from .trace import jobs_from_dicts, jobs_to_dicts, load_trace, save_trace

__all__ = [
    "Job", "InterferenceModel",
    "PackingPolicy", "SlotPacking", "NvmlUtilPacking", "OccuPacking",
    "POLICIES",
    "ClusterResult", "simulate",
    "generate_workload", "make_job",
    "save_trace", "load_trace", "jobs_to_dicts", "jobs_from_dicts",
]
