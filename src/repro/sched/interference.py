"""Co-location interference model (Fig. 7 calibration).

The paper's preliminary study (200 random co-location pairs, 100 runs each)
found JCT slowdowns of 10-60% positively correlated with *cumulative GPU
occupancy*, rising sharply once cumulative occupancy exceeds 100% — the
point where jobs genuinely compete for warp slots rather than interleaving
into each other's bubbles.

We model a job's slowdown on a GPU hosting jobs with occupancies
``o_1..o_k`` as

    slowdown = 1 + alpha * sum(o_others)            (shared-resource tax)
               + beta * max(0, sum(o_all) - cap)^2  (over-provision penalty)

with defaults calibrated to the 10-60% band below the knee and a steep
quadratic past it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

__all__ = ["InterferenceModel"]


@dataclass(frozen=True)
class InterferenceModel:
    """Parametric slowdown model for co-located DL jobs."""

    #: linear tax per unit of co-runner occupancy (cache / bandwidth sharing)
    alpha: float = 0.35
    #: quadratic penalty once cumulative occupancy exceeds ``cap``
    beta: float = 2.5
    #: the knee: SMs are over-committed past this cumulative occupancy
    cap: float = 1.0

    def slowdown(self, own_occupancy: float,
                 co_occupancies: Sequence[float]) -> float:
        """Slowdown factor (>= 1) for a job with ``own_occupancy`` sharing a
        GPU with jobs of ``co_occupancies``."""
        if not 0.0 <= own_occupancy <= 1.0:
            raise ValueError("occupancy must be in [0, 1]")
        others = float(sum(co_occupancies))
        total = own_occupancy + others
        over = max(0.0, total - self.cap)
        return 1.0 + self.alpha * others + self.beta * over * over

    def pair_slowdown(self, occ_a: float, occ_b: float) -> tuple[float, float]:
        """Convenience for the Fig. 7 two-job study."""
        return (self.slowdown(occ_a, [occ_b]), self.slowdown(occ_b, [occ_a]))
