"""Job model for the co-location scheduling simulation (Section VI-B)."""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["Job"]


@dataclass
class Job:
    """One DL workload submitted to the cluster.

    ``duration_s`` is the standalone (isolated-GPU) job completion time;
    co-location stretches it by the interference model.  ``occupancy`` and
    ``nvml_utilization`` are the *measured* per-iteration metrics; the
    ``predicted_*`` fields are what the scheduler actually sees (from
    DNN-occu or the NVML estimator) — keeping the two separate lets the
    simulation account for prediction error honestly.
    """

    job_id: int
    model_name: str
    duration_s: float
    occupancy: float
    nvml_utilization: float
    memory_bytes: int = 0
    predicted_occupancy: float | None = None
    #: predictor uncertainty (e.g. ensemble std); used by risk-aware packing
    predicted_std: float = 0.0
    predicted_nvml: float | None = None
    arrival_s: float = 0.0

    # -- simulation state ------------------------------------------------ #
    remaining_s: float = field(init=False)
    start_s: float | None = field(default=None, init=False)
    finish_s: float | None = field(default=None, init=False)
    gpu_id: int | None = field(default=None, init=False)
    # -- resilience state (owned by the simulator's fault machinery) ----- #
    #: time at which the job may next be placed (arrival, or the end of a
    #: post-eviction backoff window)
    ready_s: float = field(default=0.0, init=False)
    #: times the job was evicted (GPU failure or crash)
    evictions: int = field(default=0, init=False)
    #: times the job re-entered the queue after an eviction
    retries: int = field(default=0, init=False)
    #: progress rolled back by evictions (work lost since last checkpoint)
    wasted_s: float = field(default=0.0, init=False)
    #: job exhausted its retry budget and was dropped
    failed: bool = field(default=False, init=False)
    #: fault-injected (perturbed) prediction the scheduler sees, if any
    noisy_occupancy: float | None = field(default=None, init=False)

    def __post_init__(self) -> None:
        if self.duration_s <= 0:
            raise ValueError("job duration must be positive")
        if not 0.0 <= self.occupancy <= 1.0:
            raise ValueError("occupancy must be in [0, 1]")
        self.remaining_s = self.duration_s
        self.ready_s = self.arrival_s

    @property
    def sched_occupancy(self) -> float:
        """Occupancy as seen by the scheduler (prediction if available).

        Fault injection overlays misprediction noise via
        ``noisy_occupancy`` without touching the clean prediction, so the
        same job list can be simulated with and without noise.
        """
        if self.noisy_occupancy is not None:
            return self.noisy_occupancy
        return (self.predicted_occupancy
                if self.predicted_occupancy is not None else self.occupancy)

    @property
    def sched_nvml(self) -> float:
        """NVML utilization as seen by the scheduler."""
        return (self.predicted_nvml
                if self.predicted_nvml is not None else self.nvml_utilization)

    @property
    def jct(self) -> float:
        """Job completion time (finish - arrival); requires completion."""
        if self.finish_s is None:
            raise RuntimeError(f"job {self.job_id} has not finished")
        return self.finish_s - self.arrival_s

    @property
    def slowdown(self) -> float:
        """JCT relative to the standalone duration (>= 1 in practice).

        Includes queueing delay; use :attr:`stretch` for interference only.
        """
        return self.jct / self.duration_s

    @property
    def stretch(self) -> float:
        """Execution-time stretch (finish - start) / duration: the
        co-location interference component, excluding queue wait."""
        if self.finish_s is None or self.start_s is None:
            raise RuntimeError(f"job {self.job_id} has not finished")
        return (self.finish_s - self.start_s) / self.duration_s
