"""Trace-driven co-location scheduling simulator (Section VI-B).

Event-driven simulation of a GPU cluster: jobs queue FIFO, a packing policy
admits them onto GPUs, and every running job progresses at a rate set by the
interference model from the *measured* occupancies of its co-residents
(policies only ever see predictions).  Produces the Table VI metrics:
makespan and time-averaged NVML utilization.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..obs.metrics import counter, gauge
from ..obs.tracing import span
from .interference import InterferenceModel
from .job import Job
from .policies import PackingPolicy

__all__ = ["ClusterResult", "simulate"]

_EPS = 1e-12


@dataclass
class ClusterResult:
    """Outcome of one simulated schedule."""

    policy_name: str
    num_gpus: int
    makespan_s: float
    jobs: list[Job]
    #: time integral of min(1, sum of resident jobs' NVML) per GPU
    nvml_integral_s: float
    #: time integral of GPU-busy (>= 1 resident job) per GPU
    busy_integral_s: float

    @property
    def avg_nvml_utilization(self) -> float:
        """Cluster NVML utilization averaged over GPUs and the makespan."""
        denom = self.makespan_s * self.num_gpus
        return self.nvml_integral_s / denom if denom > 0 else 0.0

    @property
    def avg_jct(self) -> float:
        return sum(j.jct for j in self.jobs) / len(self.jobs)

    @property
    def avg_slowdown(self) -> float:
        return sum(j.slowdown for j in self.jobs) / len(self.jobs)

    @property
    def avg_stretch(self) -> float:
        """Mean interference-only execution stretch (queueing excluded)."""
        return sum(j.stretch for j in self.jobs) / len(self.jobs)

    @property
    def avg_queue_delay(self) -> float:
        """Mean time jobs waited between arrival and start."""
        return sum(j.start_s - j.arrival_s for j in self.jobs) \
            / len(self.jobs)

    def jct_percentile(self, q: float) -> float:
        """JCT percentile (``q`` in [0, 100]); tail-latency metric."""
        import numpy as _np
        return float(_np.percentile([j.jct for j in self.jobs], q))


def simulate(jobs: Sequence[Job], num_gpus: int, policy: PackingPolicy,
             interference: InterferenceModel | None = None,
             placement: str = "first-fit") -> ClusterResult:
    """Run the schedule to completion and return cluster metrics.

    ``jobs`` are deep-copied logically by resetting their simulation state,
    so the same job list can be simulated under several policies.

    ``placement`` selects among the GPUs that admit a job:
    ``"first-fit"`` (lowest index, the default), ``"best-fit"`` (most
    loaded by scheduler-visible occupancy — consolidates), or
    ``"worst-fit"`` (least loaded — spreads).
    """
    if num_gpus <= 0:
        raise ValueError("need at least one GPU")
    if placement not in ("first-fit", "best-fit", "worst-fit"):
        raise ValueError(f"unknown placement {placement!r}")
    interference = interference or InterferenceModel()

    jobs = list(jobs)
    for job in jobs:
        job.remaining_s = job.duration_s
        job.start_s = None
        job.finish_s = None
        job.gpu_id = None

    pending = sorted(jobs, key=lambda j: (j.arrival_s, j.job_id))
    running: list[list[Job]] = [[] for _ in range(num_gpus)]
    now = 0.0
    nvml_integral = 0.0
    busy_integral = 0.0

    def _load(gpu_id: int) -> float:
        return sum(j.sched_occupancy for j in running[gpu_id])

    def _choose_gpu(job: Job) -> int | None:
        admitting = [g for g in range(num_gpus)
                     if policy.admits(job, running[g])]
        if not admitting:
            # A job no policy admits even on an idle GPU must still run
            # somewhere; every real scheduler falls back to exclusive
            # placement rather than starving the queue.
            empty = [g for g in range(num_gpus) if not running[g]]
            return empty[0] if empty else None
        if placement == "first-fit":
            return admitting[0]
        if placement == "best-fit":
            return max(admitting, key=_load)
        return min(admitting, key=_load)  # worst-fit

    def try_place() -> None:
        """FIFO head-of-line placement via the configured strategy."""
        while pending:
            job = pending[0]
            if job.arrival_s > now + _EPS:
                break
            gpu_id = _choose_gpu(job)
            if gpu_id is None:
                break  # head-of-line blocking (FIFO, as in the paper)
            pending.pop(0)
            job.gpu_id = gpu_id
            job.start_s = now
            running[gpu_id].append(job)

    def rates() -> dict[int, float]:
        """Progress rate of every running job under current co-location."""
        out: dict[int, float] = {}
        for residents in running:
            occs = [j.occupancy for j in residents]
            for i, job in enumerate(residents):
                others = occs[:i] + occs[i + 1:]
                out[job.job_id] = 1.0 / interference.slowdown(
                    job.occupancy, others)
        return out

    # Hoisted metric handles (no-ops when observability is off).
    queue_gauge = gauge("sched_queue_depth", "jobs waiting for placement")
    busy_counters = [
        counter("sched_gpu_busy_seconds_total",
                "simulated seconds each GPU had >= 1 resident job",
                gpu=str(g))
        for g in range(num_gpus)]
    events_total = counter("sched_events_total",
                           "simulator events processed")

    with span("sched.simulate", policy=policy.name, gpus=num_gpus,
              jobs=len(jobs), placement=placement):
        try_place()
        queue_gauge.set(len(pending))
        while pending or any(running):
            with span("sched.event", t=round(now, 6)) as ev:
                rate = rates()
                # Next completion among running jobs.
                dt_complete = min(
                    (job.remaining_s / rate[job.job_id]
                     for residents in running for job in residents),
                    default=float("inf"))
                # Next arrival among pending jobs.
                dt_arrival = min((job.arrival_s - now for job in pending
                                  if job.arrival_s > now + _EPS),
                                 default=float("inf"))
                dt = min(dt_complete, dt_arrival)
                if dt == float("inf"):
                    raise RuntimeError(
                        "deadlock: jobs pending but nothing runs or "
                        "arrives (a job may violate the policy even on "
                        "an empty GPU)")

                # Integrate utilization during [now, now+dt).
                for gpu_id, residents in enumerate(running):
                    if residents:
                        busy_integral += dt
                        busy_counters[gpu_id].inc(dt)
                        nvml_integral += dt * min(
                            1.0,
                            sum(j.nvml_utilization for j in residents))

                # Advance.
                now += dt
                for residents in running:
                    for job in residents:
                        job.remaining_s -= dt * rate[job.job_id]
                finished_now = 0
                for gpu_id in range(num_gpus):
                    finished = [j for j in running[gpu_id]
                                if j.remaining_s <= _EPS]
                    for job in finished:
                        job.finish_s = now
                        job.remaining_s = 0.0
                        running[gpu_id].remove(job)
                    finished_now += len(finished)
                try_place()
                queue_gauge.set(len(pending))
                events_total.inc()
                ev.set_attr(dt=round(dt, 6), finished=finished_now,
                            queued=len(pending))

    return ClusterResult(
        policy_name=policy.name, num_gpus=num_gpus, makespan_s=now,
        jobs=jobs, nvml_integral_s=nvml_integral,
        busy_integral_s=busy_integral)
