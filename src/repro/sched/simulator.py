"""Trace-driven co-location scheduling simulator (Section VI-B).

Event-driven simulation of a GPU cluster: jobs queue FIFO, a packing policy
admits them onto GPUs, and every running job progresses at a rate set by the
interference model from the *measured* occupancies of its co-residents
(policies only ever see predictions).  Produces the Table VI metrics:
makespan and time-averaged NVML utilization.

With a :class:`~repro.resilience.FaultInjector` (``faults=``), the cluster
additionally loses GPUs, crashes jobs mid-attempt, and mispredicts
occupancies.  Evicted jobs roll back to their last checkpoint interval
(or to zero without checkpointing), re-queue after a capped exponential
backoff, and are dropped once they exhaust the retry budget; the extra
:class:`ClusterResult` fields (evictions, retries, goodput vs. wasted
work, downtime) quantify how much of Table VI's occu-packing advantage
survives the chaos.  With ``faults=None`` the event loop computes exactly
what it always did — fault handling adds only ``inf`` event candidates —
so fault-free results stay bit-identical to the seed implementation.
"""

from __future__ import annotations

import contextlib
import math
from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

import numpy as _np

from ..obs.context import request_scope
from ..obs.metrics import counter, gauge, histogram
from ..obs.tracing import span, tracing_enabled
from .interference import InterferenceModel
from .job import Job
from .policies import PackingPolicy

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..resilience import FaultInjector

__all__ = ["ClusterResult", "simulate", "RETRY_BUCKETS"]

_EPS = 1e-12

#: histogram bucket bounds for per-job retry counts
RETRY_BUCKETS = (0.0, 1.0, 2.0, 3.0, 5.0, 8.0, 13.0, 21.0, 34.0)


@dataclass
class ClusterResult:
    """Outcome of one simulated schedule."""

    policy_name: str
    num_gpus: int
    makespan_s: float
    jobs: list[Job]
    #: time integral of min(1, sum of resident jobs' NVML) per GPU
    nvml_integral_s: float
    #: time integral of GPU-busy (>= 1 resident job) per GPU
    busy_integral_s: float
    # -- resilience accounting (zero when simulated without faults) ----- #
    #: jobs kicked off a GPU by an outage or a crash
    evictions: int = 0
    #: evicted jobs that re-entered the queue (<= evictions)
    retries: int = 0
    #: jobs dropped after exhausting their retry budget
    failed_jobs: int = 0
    #: useful work completed: total standalone duration of finished jobs
    goodput_s: float = 0.0
    #: progress rolled back by evictions (work since the last checkpoint)
    wasted_s: float = 0.0
    #: time integral of unavailable GPUs over the makespan
    gpu_downtime_s: float = 0.0

    @property
    def completed(self) -> list[Job]:
        """Jobs that actually finished (failed jobs never do)."""
        return [j for j in self.jobs if j.finish_s is not None]

    @property
    def avg_nvml_utilization(self) -> float:
        """Cluster NVML utilization averaged over GPUs and the makespan."""
        denom = self.makespan_s * self.num_gpus
        return self.nvml_integral_s / denom if denom > 0 else 0.0

    @property
    def avg_jct(self) -> float:
        done = self.completed
        if not done:
            return 0.0
        return sum(j.jct for j in done) / len(done)

    @property
    def avg_slowdown(self) -> float:
        done = self.completed
        if not done:
            return 0.0
        return sum(j.slowdown for j in done) / len(done)

    @property
    def avg_stretch(self) -> float:
        """Mean interference-only execution stretch (queueing excluded)."""
        done = self.completed
        if not done:
            return 0.0
        return sum(j.stretch for j in done) / len(done)

    @property
    def avg_queue_delay(self) -> float:
        """Mean time jobs waited between arrival and (first) start."""
        done = self.completed
        if not done:
            return 0.0
        return sum(j.start_s - j.arrival_s for j in done) / len(done)

    @property
    def goodput_fraction(self) -> float:
        """Useful work / (useful + wasted) — 1.0 when nothing was lost."""
        total = self.goodput_s + self.wasted_s
        return self.goodput_s / total if total > 0 else 1.0

    def jct_percentile(self, q: float) -> float:
        """JCT percentile (``q`` in [0, 100]); tail-latency metric."""
        done = self.completed
        if not done:
            raise ValueError(
                "jct_percentile is undefined: no job completed")
        if not 0.0 <= q <= 100.0:
            raise ValueError(f"percentile must be in [0, 100], got {q!r}")
        return float(_np.percentile([j.jct for j in done], q))


def simulate(jobs: Sequence[Job], num_gpus: int, policy: PackingPolicy,
             interference: InterferenceModel | None = None,
             placement: str = "first-fit",
             faults: "FaultInjector | None" = None) -> ClusterResult:
    """Run the schedule to completion and return cluster metrics.

    ``jobs`` are deep-copied logically by resetting their simulation state,
    so the same job list can be simulated under several policies.

    ``placement`` selects among the GPUs that admit a job:
    ``"first-fit"`` (lowest index, the default), ``"best-fit"`` (most
    loaded by scheduler-visible occupancy — consolidates), or
    ``"worst-fit"`` (least loaded — spreads).

    ``faults`` enables chaos: GPU outages evict all residents, crashed
    jobs evict themselves, both roll progress back to the last checkpoint
    interval and re-queue after backoff (until the retry budget runs
    out), and predictions may be perturbed before the first placement.
    The same injector seed yields an identical :class:`ClusterResult`.
    """
    if num_gpus <= 0:
        raise ValueError("need at least one GPU")
    if placement not in ("first-fit", "best-fit", "worst-fit"):
        raise ValueError(f"unknown placement {placement!r}")
    interference = interference or InterferenceModel()

    jobs = list(jobs)
    for job in jobs:
        job.remaining_s = job.duration_s
        job.start_s = None
        job.finish_s = None
        job.gpu_id = None
        job.ready_s = job.arrival_s
        job.evictions = 0
        job.retries = 0
        job.wasted_s = 0.0
        job.failed = False
        job.noisy_occupancy = None
    fault_cfg = faults.config if faults is not None else None
    if faults is not None and fault_cfg.mispredict_std > 0.0:
        for job in jobs:
            if job.predicted_occupancy is not None:
                job.noisy_occupancy = faults.perturb_occupancy(
                    job.job_id, job.predicted_occupancy)

    pending: deque[Job] = deque(
        sorted(jobs, key=lambda j: (j.ready_s, j.job_id)))
    running: list[list[Job]] = [[] for _ in range(num_gpus)]
    now = 0.0
    nvml_integral = 0.0
    busy_integral = 0.0
    downtime_integral = 0.0
    wasted_total = 0.0
    evictions_total = 0
    retries_total = 0
    failed: list[Job] = []

    # -- fault machinery (inert without an injector) --------------------- #
    up = [True] * num_gpus
    if faults is not None:
        transitions = [faults.transitions(g) for g in range(num_gpus)]
        next_trans: list[tuple[float, bool] | None] = [
            next(t, None) for t in transitions]
    else:
        transitions = []
        next_trans = [None] * num_gpus
    ckpt_interval = fault_cfg.checkpoint_interval_s if fault_cfg else None
    #: work-seconds into the current attempt at which a job crashes
    crash_work: dict[int, float] = {}
    #: work-seconds completed in the current attempt
    attempt_done: dict[int, float] = {}

    def _load(gpu_id: int) -> float:
        return sum(j.sched_occupancy for j in running[gpu_id])

    def _choose_gpu(job: Job) -> int | None:
        admitting = [g for g in range(num_gpus)
                     if up[g] and policy.admits(job, running[g])]
        if not admitting:
            # A job no policy admits even on an idle GPU must still run
            # somewhere; every real scheduler falls back to exclusive
            # placement rather than starving the queue.
            empty = [g for g in range(num_gpus)
                     if up[g] and not running[g]]
            return empty[0] if empty else None
        if placement == "first-fit":
            return admitting[0]
        if placement == "best-fit":
            return max(admitting, key=_load)
        return min(admitting, key=_load)  # worst-fit

    def _begin_attempt(job: Job) -> None:
        """Roll per-attempt fault state at (re)placement time."""
        if faults is None:
            return
        attempt_done[job.job_id] = 0.0
        frac = faults.crash_fraction(job.job_id, job.evictions)
        if frac is not None:
            crash_work[job.job_id] = frac * job.remaining_s
        else:
            crash_work.pop(job.job_id, None)

    def try_place() -> None:
        """FIFO head-of-line placement via the configured strategy."""
        while pending:
            job = pending[0]
            if job.ready_s > now + _EPS:
                break
            gpu_id = _choose_gpu(job)
            if gpu_id is None:
                break  # head-of-line blocking (FIFO, as in the paper)
            pending.popleft()
            job.gpu_id = gpu_id
            if job.start_s is None:
                job.start_s = now
            running[gpu_id].append(job)
            _begin_attempt(job)

    def _requeue(job: Job) -> None:
        """Insert preserving the (ready_s, job_id) queue order."""
        key = (job.ready_s, job.job_id)
        idx = len(pending)
        for i, queued in enumerate(pending):
            if (queued.ready_s, queued.job_id) > key:
                idx = i
                break
        pending.insert(idx, job)

    def _evict(job: Job, gpu_id: int, kind: str) -> None:
        """Kick ``job`` off its GPU: roll back, then retry or drop."""
        nonlocal evictions_total, retries_total, wasted_total
        running[gpu_id].remove(job)
        job.gpu_id = None
        crash_work.pop(job.job_id, None)
        attempt_done.pop(job.job_id, None)
        done = job.duration_s - job.remaining_s
        kept = 0.0
        if ckpt_interval:
            kept = min(done,
                       math.floor(done / ckpt_interval + 1e-9)
                       * ckpt_interval)
        lost = done - kept
        job.wasted_s += lost
        wasted_total += lost
        job.remaining_s = job.duration_s - kept
        job.evictions += 1
        evictions_total += 1
        fault_counters[kind].inc()
        if job.evictions > fault_cfg.max_retries:
            # Budget exhausted: the job is dropped; even its checkpointed
            # progress is work the cluster spent for nothing.
            job.failed = True
            job.wasted_s += kept
            wasted_total += kept
            failed.append(job)
            return
        job.retries += 1
        retries_total += 1
        job.ready_s = now + faults.requeue_delay(job.job_id, job.evictions)
        _requeue(job)

    def rates() -> dict[int, float]:
        """Progress rate of every running job under current co-location."""
        out: dict[int, float] = {}
        for residents in running:
            occs = [j.occupancy for j in residents]
            for i, job in enumerate(residents):
                others = occs[:i] + occs[i + 1:]
                out[job.job_id] = 1.0 / interference.slowdown(
                    job.occupancy, others)
        return out

    # Hoisted metric handles (no-ops when observability is off).
    queue_gauge = gauge("sched_queue_depth", "jobs waiting for placement")
    busy_counters = [
        counter("sched_gpu_busy_seconds_total",
                "simulated seconds each GPU had >= 1 resident job",
                gpu=str(g))
        for g in range(num_gpus)]
    events_total = counter("sched_events_total",
                           "simulator events processed")
    fault_counters = {
        kind: counter("resilience_faults_total",
                      "faults observed by resilience machinery",
                      component="sched", kind=kind)
        for kind in ("gpu_down", "crash")}
    retry_hist = histogram("resilience_retries",
                           "per-job retry counts over one simulation",
                           buckets=RETRY_BUCKETS)

    # One simulate run is one trace: request-scope the outer span (only
    # when tracing, so the untraced hot path mints no ids) and every
    # sched.event span inherits the run's trace_id/request_id.
    scope = request_scope() if tracing_enabled() \
        else contextlib.nullcontext()
    with scope, span("sched.simulate", policy=policy.name, gpus=num_gpus,
                     jobs=len(jobs), placement=placement,
                     faults=faults is not None):
        try_place()
        queue_gauge.set(len(pending))
        while pending or any(running):
            with span("sched.event", t=round(now, 6)) as ev:
                rate = rates()
                # Next completion among running jobs.
                dt_complete = min(
                    (job.remaining_s / rate[job.job_id]
                     for residents in running for job in residents),
                    default=float("inf"))
                # Next arrival (or post-backoff re-arrival).
                dt_arrival = min((job.ready_s - now for job in pending
                                  if job.ready_s > now + _EPS),
                                 default=float("inf"))
                # Next GPU availability transition (outage or recovery).
                dt_fault = min((trans[0] - now for trans in next_trans
                                if trans is not None),
                               default=float("inf"))
                # Next mid-attempt job crash.
                dt_crash = min(
                    ((crash_work[job.job_id] - attempt_done[job.job_id])
                     / rate[job.job_id]
                     for residents in running for job in residents
                     if job.job_id in crash_work),
                    default=float("inf"))
                dt = min(dt_complete, dt_arrival, dt_fault, dt_crash)
                if dt == float("inf"):
                    raise RuntimeError(
                        "deadlock: jobs pending but nothing runs, "
                        "arrives, or recovers (a job may violate the "
                        "policy even on an empty GPU, or every GPU may "
                        "be permanently down)")
                dt = max(dt, 0.0)

                # Integrate utilization during [now, now+dt).
                for gpu_id, residents in enumerate(running):
                    if residents:
                        busy_integral += dt
                        busy_counters[gpu_id].inc(dt)
                        nvml_integral += dt * min(
                            1.0,
                            sum(j.nvml_utilization for j in residents))
                if faults is not None:
                    downtime_integral += dt * sum(
                        1 for g in range(num_gpus) if not up[g])

                # Advance.
                now += dt
                for residents in running:
                    for job in residents:
                        progressed = dt * rate[job.job_id]
                        job.remaining_s -= progressed
                        if faults is not None:
                            attempt_done[job.job_id] += progressed
                finished_now = 0
                for gpu_id in range(num_gpus):
                    finished = [j for j in running[gpu_id]
                                if j.remaining_s <= _EPS]
                    for job in finished:
                        job.finish_s = now
                        job.remaining_s = 0.0
                        running[gpu_id].remove(job)
                        crash_work.pop(job.job_id, None)
                        attempt_done.pop(job.job_id, None)
                    finished_now += len(finished)

                # Fault events: crashes first (they concern jobs that are
                # still resident), then GPU availability transitions.
                if faults is not None:
                    for gpu_id in range(num_gpus):
                        due = [j for j in running[gpu_id]
                               if j.job_id in crash_work
                               and attempt_done[j.job_id]
                               >= crash_work[j.job_id] - _EPS]
                        for job in due:
                            _evict(job, gpu_id, "crash")
                    for gpu_id in range(num_gpus):
                        while next_trans[gpu_id] is not None \
                                and next_trans[gpu_id][0] <= now + _EPS:
                            _, becomes_up = next_trans[gpu_id]
                            up[gpu_id] = becomes_up
                            if not becomes_up:
                                for job in list(running[gpu_id]):
                                    _evict(job, gpu_id, "gpu_down")
                            next_trans[gpu_id] = next(
                                transitions[gpu_id], None)

                try_place()
                queue_gauge.set(len(pending))
                events_total.inc()
                ev.set_attr(dt=round(dt, 6), finished=finished_now,
                            queued=len(pending))

    if faults is not None:
        for job in jobs:
            retry_hist.observe(job.retries)

    return ClusterResult(
        policy_name=policy.name, num_gpus=num_gpus, makespan_s=now,
        jobs=jobs, nvml_integral_s=nvml_integral,
        busy_integral_s=busy_integral,
        evictions=evictions_total, retries=retries_total,
        failed_jobs=len(failed),
        goodput_s=sum(j.duration_s for j in jobs
                      if j.finish_s is not None),
        wasted_s=wasted_total, gpu_downtime_s=downtime_integral)
