"""Workload generation for the scheduling experiments.

Builds jobs from the Table II model zoo: each job is a model configuration
profiled on the target device; its standalone duration is the per-iteration
wall time scaled by a sampled iteration count (DL jobs run many inference
iterations).  Optionally a trained predictor supplies the occupancy the
scheduler sees, so prediction error propagates into packing decisions.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from ..data import sample_config
from ..features import encode_graph
from ..gpu import (DeviceSpec, OutOfMemoryError, estimate_memory_bytes,
                   profile_graph)
from ..models import ModelConfig, build_model
from .job import Job

__all__ = ["make_job", "generate_workload"]

#: Predictor signature: encoded graph features -> occupancy in [0, 1]
PredictorFn = Callable[["object"], float]


def make_job(job_id: int, model_name: str, cfg: ModelConfig,
             device: DeviceSpec, iterations: int,
             predictor: PredictorFn | None = None,
             arrival_s: float = 0.0,
             host_overhead_factor: float = 1.0) -> Job:
    """Profile one configuration and wrap it as a schedulable job.

    ``host_overhead_factor`` models the CPU-side phase of each iteration
    (data loading, preprocessing, Python dispatch) as a multiple of the
    GPU iteration time.  A job's *job-level* NVML utilization is its GPU
    duty cycle — busy / (busy + host) — which is why production clusters
    average ~50% NVML utilization even though each iteration's kernels
    nearly saturate the metric, and why co-location (interleaving duty
    cycles) raises cluster NVML utilization.
    """
    graph = build_model(model_name, cfg)
    prof = profile_graph(graph, device)
    predicted = None
    predicted_std = 0.0
    if predictor is not None:
        # Graph-level predictors set ``wants_graph`` and take
        # (graph, device): repro.serve.PredictorService — the sanctioned
        # online surface, with micro-batching, request caching, and
        # overload shedding (S006 lints direct model.predict calls here)
        # — and repro.resilience.FallbackPredictor, whose per-tier
        # encoding/lint failures stay catchable inside the tier.  Plain
        # predictors receive pre-encoded features.
        if getattr(predictor, "wants_graph", False):
            out = predictor(graph, device)
        else:
            out = predictor(encode_graph(graph, device))
        # Predictors may return a bare mean or a (mean, std) pair (e.g.
        # EnsemblePredictor.predict_with_std).
        if isinstance(out, tuple):
            predicted, predicted_std = float(np.clip(out[0], 0.0, 1.0)), \
                float(max(0.0, out[1]))
        else:
            predicted = float(np.clip(out, 0.0, 1.0))
    host_s = host_overhead_factor * prof.wall_time_s
    iter_s = prof.wall_time_s + host_s
    duty = prof.wall_time_s / iter_s
    return Job(
        job_id=job_id,
        model_name=model_name.lower(),
        duration_s=iter_s * iterations,
        memory_bytes=estimate_memory_bytes(graph),
        occupancy=prof.occupancy,
        nvml_utilization=prof.nvml_utilization * duty,
        predicted_occupancy=predicted,
        predicted_std=predicted_std,
        # The scheduler-visible NVML estimate is the per-execution metric
        # (what nvidia-smi profiling reports): it saturates near 100% and
        # overestimates true usage -- the paper's core criticism, and the
        # reason nvml-util-packing can rarely admit a co-located job.
        predicted_nvml=prof.nvml_utilization,
        arrival_s=arrival_s,
    )


def generate_workload(model_names: Sequence[str], device: DeviceSpec,
                      num_jobs: int, seed: int = 0,
                      iterations_range: tuple[int, int] = (200, 2000),
                      host_overhead_range: tuple[float, float] = (0.3, 2.0),
                      arrival_rate_per_s: float | None = None,
                      predictor: PredictorFn | None = None) -> list[Job]:
    """Sample ``num_jobs`` jobs with Table II configurations.

    Each job draws an iteration count and a host-overhead factor (its GPU
    duty cycle).  OOM configurations are redrawn.  By default all jobs
    arrive at t=0 (the paper's batch-submission setting); passing
    ``arrival_rate_per_s`` instead draws Poisson arrivals at that rate.
    """
    rng = np.random.default_rng(seed)
    jobs: list[Job] = []
    attempts = 0
    arrival = 0.0
    while len(jobs) < num_jobs and attempts < 20 * num_jobs:
        attempts += 1
        name = str(rng.choice(list(model_names)))
        cfg = sample_config(name, rng)
        iters = int(rng.integers(*iterations_range))
        host = float(rng.uniform(*host_overhead_range))
        try:
            job = make_job(len(jobs), name, cfg, device, iters, predictor,
                           arrival_s=arrival,
                           host_overhead_factor=host)
        except OutOfMemoryError:
            continue
        jobs.append(job)
        if arrival_rate_per_s is not None:
            arrival += float(rng.exponential(1.0 / arrival_rate_per_s))
    if len(jobs) < num_jobs:
        raise RuntimeError("could not generate enough in-memory jobs")
    return jobs
