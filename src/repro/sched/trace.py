"""Workload trace serialization: save/replay scheduling experiments.

"Trace-driven" scheduling means the job stream is a reusable artifact.
:func:`save_trace` / :func:`load_trace` serialize a job list to JSON so a
workload can be replayed under different policies, cluster sizes, or
interference models — and shared alongside the results it produced.
"""

from __future__ import annotations

import json

from .job import Job

__all__ = ["save_trace", "load_trace", "jobs_to_dicts", "jobs_from_dicts"]

_FORMAT_VERSION = 1


def jobs_to_dicts(jobs: list[Job]) -> list[dict]:
    """Serializable static description of each job (no runtime state)."""
    return [{
        "job_id": j.job_id,
        "model_name": j.model_name,
        "duration_s": j.duration_s,
        "occupancy": j.occupancy,
        "nvml_utilization": j.nvml_utilization,
        "memory_bytes": j.memory_bytes,
        "predicted_occupancy": j.predicted_occupancy,
        "predicted_std": j.predicted_std,
        "predicted_nvml": j.predicted_nvml,
        "arrival_s": j.arrival_s,
    } for j in jobs]


def jobs_from_dicts(dicts: list[dict]) -> list[Job]:
    return [Job(**d) for d in dicts]


def save_trace(jobs: list[Job], path: str) -> None:
    """Write a job trace to a JSON file."""
    with open(path, "w") as fh:
        json.dump({"version": _FORMAT_VERSION,
                   "jobs": jobs_to_dicts(jobs)}, fh, indent=1)


def load_trace(path: str) -> list[Job]:
    """Read a job trace written by :func:`save_trace`."""
    with open(path) as fh:
        data = json.load(fh)
    if data.get("version") != _FORMAT_VERSION:
        raise ValueError(f"unsupported trace version {data.get('version')}")
    return jobs_from_dicts(data["jobs"])
