"""Weight initialization schemes (Xavier/Glorot, Kaiming/He)."""

from __future__ import annotations

import numpy as np

__all__ = ["xavier_uniform", "xavier_normal", "kaiming_uniform", "zeros", "ones"]


def xavier_uniform(shape: tuple[int, ...], rng: np.random.Generator,
                   gain: float = 1.0) -> np.ndarray:
    """Glorot uniform: U(-a, a) with a = gain * sqrt(6 / (fan_in + fan_out))."""
    fan_in, fan_out = _fans(shape)
    a = gain * np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-a, a, size=shape)


def xavier_normal(shape: tuple[int, ...], rng: np.random.Generator,
                  gain: float = 1.0) -> np.ndarray:
    fan_in, fan_out = _fans(shape)
    std = gain * np.sqrt(2.0 / (fan_in + fan_out))
    return rng.normal(0.0, std, size=shape)


def kaiming_uniform(shape: tuple[int, ...], rng: np.random.Generator,
                    negative_slope: float = 0.0) -> np.ndarray:
    """He uniform appropriate for (leaky-)ReLU fan-in scaling."""
    fan_in, _ = _fans(shape)
    gain = np.sqrt(2.0 / (1.0 + negative_slope**2))
    bound = gain * np.sqrt(3.0 / fan_in)
    return rng.uniform(-bound, bound, size=shape)


def zeros(shape: tuple[int, ...]) -> np.ndarray:
    return np.zeros(shape)


def ones(shape: tuple[int, ...]) -> np.ndarray:
    return np.ones(shape)


def _fans(shape: tuple[int, ...]) -> tuple[int, int]:
    if len(shape) == 1:
        return shape[0], shape[0]
    if len(shape) == 2:
        return shape[0], shape[1]
    receptive = int(np.prod(shape[2:]))
    return shape[1] * receptive, shape[0] * receptive
