"""Trace-and-replay compiled executor for the batched GNN forward.

The serving and fleet layers funnel into one hot path —
``DNNOccu.forward_batch`` — which pays Python :class:`Tensor` dispatch,
fresh ndarray allocation, and autograd bookkeeping for every op on every
call, even under ``no_grad``.  This module removes all three for the
inference path:

1. **Tracer** (:func:`trace_forward`): runs the eager forward once under
   ``no_grad`` with the ``Tensor`` ops interposed, and emits a linear
   :class:`OpTape` — one :class:`TapeOp` per executed op with its input
   slots, constant parameters, and output slot.  Operands are classified
   as *parameters* (bound by dotted ``named_parameters`` name, so
   ``load_state_dict`` is picked up), *inputs* (arrays derived from the
   :class:`~repro.perf.batching.GraphBatch` through a small named
   registry, re-derived on every replay), or *constants* (captured by
   value).  An operand that matches more than one input derivation is
   ambiguous and aborts the trace — the caller falls back to eager.
2. **Fusion** (:func:`fuse_tape`): a peephole pass collapsing
   ``matmul → add-bias [→ activation]`` into one fused ``linear`` kernel
   and single-use elementwise chains into one in-place ``ew_chain``
   kernel — the oneDNN post-op idiom, at tape granularity.
3. **Arena** (:func:`compile_tape`): a last-use liveness pass over the
   tape assigns every op output a preallocated buffer from a free list
   keyed by ``(shape, dtype)``; replay writes through ``out=`` into the
   arena, so a steady-state replay performs (almost) no allocation and
   builds no ``Tensor`` graph at all.

Compiled plans are keyed by :func:`batch_signature` — the structural
facts the tape depends on (graph count, pad width, packed node/edge
totals, feature widths, the edgeless branch bit, dtype) — in a bounded
LRU :class:`TraceCache` (default :data:`DEFAULT_CACHE_SIZE` signatures).
Every compile self-checks replay-vs-eager on the trace batch before the
plan is admitted.

Grad mode is a hard error, not a silent hazard: tracing and replay both
raise :class:`GradModeError` when ``is_grad_enabled()`` — training keeps
the eager tape, and a traced forward under grad would silently detach
it.  ``REPRO_NO_TRACE=1`` disables tracing process-wide (see
:func:`tracing_disabled`); any :class:`TraceError` during compile or
replay makes callers fall back to the eager batched forward.

See docs/compile.md for the tape format and the equivalence argument.
"""

from __future__ import annotations

import os
import threading
from collections import OrderedDict
from dataclasses import dataclass, field

import numpy as np

from ..lint.sanitizer import new_lock
from ..obs.metrics import counter, gauge
from .tensor import Tensor, is_grad_enabled, no_grad

__all__ = [
    "TraceError", "TraceMissError", "GradModeError",
    "TapeOp", "OpTape", "CompiledPlan", "TraceCache", "TracedExecutor",
    "batch_signature", "trace_forward", "fuse_tape", "compile_tape",
    "tracing_disabled", "DEFAULT_CACHE_SIZE",
]

#: default maximum number of shape signatures a TraceCache retains
DEFAULT_CACHE_SIZE = 64


class TraceError(RuntimeError):
    """Tracing or replay cannot proceed; callers fall back to eager."""


class TraceMissError(TraceError):
    """No compiled plan for this signature and tracing was not allowed."""


class GradModeError(RuntimeError):
    """Traced execution requested while ``is_grad_enabled()`` is true.

    Deliberately *not* a :class:`TraceError`: falling back to eager would
    mask a real bug (a training step routed through the inference-only
    executor), so this propagates to the caller instead.
    """


def tracing_disabled() -> bool:
    """True when the ``REPRO_NO_TRACE`` escape hatch is set."""
    return os.environ.get("REPRO_NO_TRACE", "") not in ("", "0")


# --------------------------------------------------------------------- #
# Input derivations: named views of a GraphBatch that the eager forward
# consumes as raw ndarrays.  The forward creates these fresh per call
# (``edge_index[0]`` is a new view object every time), so the tracer
# matches them by content and the replay re-derives them per batch.
# --------------------------------------------------------------------- #
_INPUT_DERIVERS: tuple = (
    ("node_features", lambda b: b.node_features),
    ("edge_features", lambda b: b.edge_features),
    ("edge_index", lambda b: b.edge_index),
    ("edge_src", lambda b: b.edge_index[0]),
    ("edge_dst", lambda b: b.edge_index[1]),
    ("edgeless_mask", lambda b: b.edgeless_mask),
    ("edgeless_keep_inv", lambda b: 1.0 - b.edgeless_mask),
    ("pad_index", lambda b: b.pad_index),
    ("node_mask", lambda b: b.node_mask),
    ("key_bias", lambda b: b.key_bias),
    ("key_bias_heads",
     lambda b: b.key_bias.reshape(b.key_bias.shape[0], 1, 1,
                                  b.key_bias.shape[2])),
    ("spd", lambda b: b.spd),
)

_DERIVER_BY_NAME = dict(_INPUT_DERIVERS)


def batch_signature(batch) -> tuple:
    """The structural key a compiled tape is valid for.

    Two batches with equal signatures execute the identical op sequence:
    every shape in the forward is a function of these facts, and the two
    data-dependent branches (``e.shape[0] == 0`` in ANEE and the
    ``edgeless_mask.any()`` substitution) are pinned by the edge count
    and the edgeless bit.
    """
    nf, ef = batch.node_features, batch.edge_features
    return (int(batch.num_graphs), int(batch.n_max),
            int(nf.shape[0]), int(nf.shape[1]),
            int(ef.shape[0]), int(ef.shape[1]),
            bool(batch.edgeless_mask.any()), str(nf.dtype))


# --------------------------------------------------------------------- #
# Tape data model
# --------------------------------------------------------------------- #

#: slot kinds: how a slot's value materializes at replay time
_K_CONST, _K_PARAM, _K_INPUT, _K_OP = "const", "param", "input", "op"


@dataclass
class _Slot:
    kind: str
    #: constants: the captured value (ndarray or python scalar)
    value: "object" = None
    #: params/inputs: dotted parameter name / deriver name
    name: str = ""
    shape: "tuple | None" = None
    dtype: "str | None" = None


@dataclass
class TapeOp:
    """One executed op: ``out = op(*ins, **params)`` over slot indices."""

    op: str
    ins: tuple
    params: dict
    out: int
    shape: tuple
    dtype: str


@dataclass
class OpTape:
    """Linear record of one traced forward, over a shared slot table."""

    slots: "list[_Slot]"
    ops: "list[TapeOp]"
    out_slot: int
    fused_away: int = 0

    def op_names(self) -> list[str]:
        return [op.op for op in self.ops]


# --------------------------------------------------------------------- #
# Tracer: interposes Tensor ops and records the tape
# --------------------------------------------------------------------- #

#: Tensor attribute -> canonical op name.  ``__radd__``/``__rmul__`` are
#: separate class-dict entries aliasing the same functions — they must be
#: patched explicitly or reflected arithmetic escapes the trace.
_PATCHED_ATTRS: dict[str, str] = {
    "__add__": "add", "__radd__": "add", "__neg__": "neg",
    "__mul__": "mul", "__rmul__": "mul", "__truediv__": "div",
    "__pow__": "pow", "__matmul__": "matmul",
    "exp": "exp", "log": "log", "tanh": "tanh", "sigmoid": "sigmoid",
    "relu": "relu", "leaky_relu": "leaky_relu", "abs": "abs",
    "clip": "clip", "sum": "sum", "max": "max",
    "softmax": "softmax", "log_softmax": "log_softmax",
    "reshape": "reshape", "transpose": "transpose",
    "__getitem__": "getitem",
    "concat": "concat", "stack": "stack", "scatter_add": "scatter_add",
}

_BINARY = frozenset({"add", "mul", "div", "matmul"})
_UNARY = frozenset({"neg", "exp", "log", "tanh", "sigmoid", "relu", "abs"})

_TRACER_TLS = threading.local()
_PATCH_LOCK = threading.Lock()
_PATCH_DEPTH = 0
_SAVED_ATTRS: dict[str, object] = {}


def _install_patches() -> None:
    global _PATCH_DEPTH
    with _PATCH_LOCK:
        if _PATCH_DEPTH == 0:
            for attr, canon in _PATCHED_ATTRS.items():
                _SAVED_ATTRS[attr] = Tensor.__dict__[attr]
                orig = getattr(Tensor, attr)
                wrapper = _make_wrapper(canon, orig)
                if isinstance(_SAVED_ATTRS[attr], staticmethod):
                    wrapper = staticmethod(wrapper)
                setattr(Tensor, attr, wrapper)
        _PATCH_DEPTH += 1


def _uninstall_patches() -> None:
    global _PATCH_DEPTH
    with _PATCH_LOCK:
        _PATCH_DEPTH -= 1
        if _PATCH_DEPTH == 0:
            for attr, saved in _SAVED_ATTRS.items():
                setattr(Tensor, attr, saved)
            _SAVED_ATTRS.clear()


def _make_wrapper(canon: str, orig):
    def wrapper(*args, **kwargs):
        out = orig(*args, **kwargs)
        tracer = getattr(_TRACER_TLS, "active", None)
        if tracer is not None and isinstance(out, Tensor):
            tracer.record(canon, args, kwargs, out)
        return out
    return wrapper


class _patched_trace:
    """Install the op interposers and activate ``tracer`` on this thread.

    Patches are refcounted and process-wide, but recording is routed
    through a thread-local — eager forwards on other threads pass
    straight through the wrappers while a trace is in progress.
    """

    def __init__(self, tracer: "_Tracer"):
        self._tracer = tracer

    def __enter__(self) -> "_patched_trace":
        _install_patches()
        _TRACER_TLS.active = self._tracer
        return self

    def __exit__(self, *exc) -> None:
        _TRACER_TLS.active = None
        _uninstall_patches()


def _arg(args, kwargs, pos, name, default):
    if len(args) > pos:
        return args[pos]
    return kwargs.get(name, default)


class _Tracer:
    def __init__(self, inputs: list, param_names: dict):
        #: list of (deriver name, derived ndarray) for the trace batch
        self.inputs = inputs
        #: id(Parameter) -> dotted name
        self.param_names = param_names
        self.slots: list[_Slot] = []
        self.ops: list[TapeOp] = []
        self._slot_of: dict[int, int] = {}
        # Traced intermediates must stay alive for the duration of the
        # trace: _slot_of is keyed by id(), and a collected Tensor would
        # let a new object reuse the key.
        self._keepalive: list = []

    # -- slot management ------------------------------------------------ #
    def _new_slot(self, slot: _Slot) -> int:
        self.slots.append(slot)
        return len(self.slots) - 1

    def _slot_for_tensor(self, t: Tensor) -> int:
        idx = self._slot_of.get(id(t))
        if idx is not None:
            return idx
        name = self.param_names.get(id(t))
        if name is not None:
            idx = self._new_slot(_Slot(_K_PARAM, name=name,
                                       shape=t.data.shape,
                                       dtype=str(t.data.dtype)))
        else:
            idx = self._classify_array(t.data)
        self._slot_of[id(t)] = idx
        self._keepalive.append(t)
        return idx

    def _classify_array(self, arr: np.ndarray) -> int:
        exact = [nm for nm, a in self.inputs if a is arr]
        if len(exact) == 1:
            return self._input_slot(exact[0], arr)
        cands = [nm for nm, a in self.inputs
                 if a.shape == arr.shape and a.dtype == arr.dtype
                 and np.array_equal(a, arr)]
        if len(cands) == 1:
            return self._input_slot(cands[0], arr)
        if len(cands) > 1:
            raise TraceError(
                f"operand matches several batch inputs {cands}; "
                "cannot bind it unambiguously")
        return self._new_slot(_Slot(_K_CONST,
                                    value=np.ascontiguousarray(arr),
                                    shape=arr.shape, dtype=str(arr.dtype)))

    def _input_slot(self, name: str, arr: np.ndarray) -> int:
        for i, s in enumerate(self.slots):
            if s.kind == _K_INPUT and s.name == name:
                return i
        return self._new_slot(_Slot(_K_INPUT, name=name, shape=arr.shape,
                                    dtype=str(arr.dtype)))

    def _slot_any(self, x) -> int:
        if isinstance(x, Tensor):
            return self._slot_for_tensor(x)
        if isinstance(x, np.ndarray):
            return self._classify_array(x)
        if isinstance(x, (int, float, np.integer, np.floating, bool,
                          np.bool_)):
            return self._new_slot(_Slot(_K_CONST, value=float(x),
                                        shape=(), dtype="float64"))
        raise TraceError(f"unsupported operand type {type(x).__name__}")

    def _emit(self, canon: str, ins: tuple, params: dict,
              out: Tensor) -> None:
        idx = self._new_slot(_Slot(_K_OP, shape=out.data.shape,
                                   dtype=str(out.data.dtype)))
        self._slot_of[id(out)] = idx
        self._keepalive.append(out)
        self.ops.append(TapeOp(op=canon, ins=ins, params=params, out=idx,
                               shape=out.data.shape,
                               dtype=str(out.data.dtype)))

    def slot_of(self, t: Tensor) -> "int | None":
        return self._slot_of.get(id(t))

    # -- recording ------------------------------------------------------ #
    def record(self, canon: str, args: tuple, kwargs: dict,
               out: Tensor) -> None:
        if canon in _BINARY:
            ins = (self._slot_any(args[0]), self._slot_any(args[1]))
            params: dict = {}
        elif canon in _UNARY:
            ins = (self._slot_any(args[0]),)
            params = {}
        elif canon == "pow":
            ins = (self._slot_any(args[0]),)
            params = {"exponent": float(args[1])}
        elif canon == "leaky_relu":
            ins = (self._slot_any(args[0]),)
            params = {"negative_slope":
                      float(_arg(args, kwargs, 1, "negative_slope", 0.01))}
        elif canon == "clip":
            ins = (self._slot_any(args[0]),)
            params = {"lo": _arg(args, kwargs, 1, "lo", None),
                      "hi": _arg(args, kwargs, 2, "hi", None)}
        elif canon in ("sum", "max"):
            ins = (self._slot_any(args[0]),)
            params = {"axis": _arg(args, kwargs, 1, "axis", None),
                      "keepdims":
                      bool(_arg(args, kwargs, 2, "keepdims", False))}
        elif canon in ("softmax", "log_softmax"):
            ins = (self._slot_any(args[0]),)
            params = {"axis": int(_arg(args, kwargs, 1, "axis", -1))}
        elif canon == "reshape":
            ins = (self._slot_any(args[0]),)
            params = {"shape": tuple(out.data.shape)}
        elif canon == "transpose":
            raw = args[1:]
            if not raw:
                axes = None
            elif len(raw) == 1 and isinstance(raw[0], (tuple, list)):
                axes = tuple(int(a) for a in raw[0])
            else:
                axes = tuple(int(a) for a in raw)
            ins = (self._slot_any(args[0]),)
            params = {"axes": axes}
        elif canon == "getitem":
            self._record_getitem(args[0], args[1], out)
            return
        elif canon in ("concat", "stack"):
            tensors = args[0]
            ins = tuple(self._slot_any(t) for t in tensors)
            params = {"axis": int(_arg(args, kwargs, 1, "axis", 0))}
        elif canon == "scatter_add":
            values = self._slot_any(args[0])
            index = self._slot_any(np.asarray(args[1], dtype=np.intp))
            ins = (values, index)
            params = {"num_rows":
                      int(_arg(args, kwargs, 2, "num_rows", None))}
        else:  # pragma: no cover - table and dispatch kept in sync
            raise TraceError(f"unknown traced op {canon!r}")
        self._emit(canon, ins, params, out)

    def _record_getitem(self, base, idx, out: Tensor) -> None:
        src = self._slot_any(base)
        if isinstance(idx, np.ndarray) and np.issubdtype(idx.dtype,
                                                         np.integer):
            # Fancy row gather: replayed as np.take(..., axis=0, out=).
            self._emit("take", (src, self._slot_any(idx)), {}, out)
            return
        if self._basic_index(idx):
            self._emit("index", (src,), {"idx": idx}, out)
            return
        raise TraceError(f"unsupported getitem index {type(idx).__name__}")

    @staticmethod
    def _basic_index(idx) -> bool:
        basic = (int, np.integer, slice, type(Ellipsis), type(None))
        if isinstance(idx, basic):
            return True
        return isinstance(idx, tuple) and all(
            isinstance(part, basic) for part in idx)


def trace_forward(model, batch) -> "tuple[OpTape, np.ndarray]":
    """Run ``model.forward_batch(batch)`` once, recording the op tape.

    Returns ``(tape, reference_output)``; the reference is the eager
    result used for the compile-time self-check.  Raises
    :class:`GradModeError` under grad and :class:`TraceError` when an
    operand cannot be bound (callers fall back to eager).
    """
    if is_grad_enabled():
        raise GradModeError(
            "trace_forward requires no_grad: tracing under grad would "
            "record a detached tape and silently break training")
    inputs = [(name, np.asarray(fn(batch)))
              for name, fn in _INPUT_DERIVERS]
    param_names = {id(p): name for name, p in model.named_parameters()}
    tracer = _Tracer(inputs, param_names)
    with no_grad(), _patched_trace(tracer):
        out = model.forward_batch(batch)
    out_slot = tracer.slot_of(out)
    if out_slot is None:
        raise TraceError("forward output was not produced by a traced op")
    ref = np.array(out.data, dtype=np.float64)
    return OpTape(slots=tracer.slots, ops=tracer.ops,
                  out_slot=out_slot), ref


# --------------------------------------------------------------------- #
# Peephole fusion
# --------------------------------------------------------------------- #

#: elementwise ops eligible for in-place chain fusion
_ELEMENTWISE = frozenset({
    "add", "neg", "mul", "div", "pow", "exp", "log", "tanh", "sigmoid",
    "relu", "leaky_relu", "abs", "clip",
})

#: activations fusable onto a linear (matmul + bias) pair
_LINEAR_ACTS = frozenset({"relu", "sigmoid", "tanh", "leaky_relu"})


def _use_sites(ops: "list[TapeOp]", out_slot: int) -> dict:
    """slot -> list of op indices reading it (final output reads at N)."""
    uses: dict[int, list[int]] = {}
    for i, op in enumerate(ops):
        for s in op.ins:
            uses.setdefault(s, []).append(i)
        if op.op == "ew_chain":
            for _, operands, _ in op.params["chain"]:
                for o in operands:
                    if o != "acc":
                        uses.setdefault(o, []).append(i)
    uses.setdefault(out_slot, []).append(len(ops))
    return uses


def _only_used_by(uses: dict, slot: int, op_index: int) -> bool:
    return all(u == op_index for u in uses.get(slot, [op_index]))


def fuse_tape(tape: OpTape) -> "tuple[OpTape, int]":
    """Collapse linear triples and elementwise chains; returns the fused
    tape and the number of ops eliminated."""
    ops = list(tape.ops)
    fused_away = 0

    # Pass A: matmul -> add(bias) [-> activation] becomes one "linear".
    out: list[TapeOp] = []
    uses = _use_sites(ops, tape.out_slot)
    i = 0
    while i < len(ops):
        op = ops[i]
        if (op.op == "matmul" and i + 1 < len(ops)
                and ops[i + 1].op == "add"
                and op.out in ops[i + 1].ins
                and ops[i + 1].shape == op.shape
                and _only_used_by(uses, op.out, i + 1)):
            add = ops[i + 1]
            bias = add.ins[0] if add.ins[1] == op.out else add.ins[1]
            act, act_params, consumed = None, {}, 2
            if (i + 2 < len(ops) and ops[i + 2].op in _LINEAR_ACTS
                    and ops[i + 2].ins == (add.out,)
                    and ops[i + 2].shape == add.shape
                    and _only_used_by(uses, add.out, i + 2)):
                act = ops[i + 2].op
                act_params = dict(ops[i + 2].params)
                consumed = 3
            last = ops[i + consumed - 1]
            out.append(TapeOp(
                op="linear", ins=(op.ins[0], op.ins[1], bias),
                params={"act": act, "act_params": act_params},
                out=last.out, shape=last.shape, dtype=last.dtype))
            fused_away += consumed - 1
            i += consumed
            continue
        out.append(op)
        i += 1
    ops = out

    # Pass B: runs of single-use, shape-preserving elementwise ops fuse
    # into one in-place chain over a single accumulator buffer.
    uses = _use_sites(ops, tape.out_slot)
    out = []
    i = 0
    while i < len(ops):
        op = ops[i]
        if op.op not in _ELEMENTWISE:
            out.append(op)
            i += 1
            continue
        chain = [(op.op, tuple(op.ins), dict(op.params))]
        j = i
        while (j + 1 < len(ops) and ops[j + 1].op in _ELEMENTWISE
               and ops[j].out in ops[j + 1].ins
               and ops[j + 1].shape == op.shape
               and _only_used_by(uses, ops[j].out, j + 1)):
            nxt = ops[j + 1]
            operands = tuple("acc" if s == ops[j].out else s
                             for s in nxt.ins)
            chain.append((nxt.op, operands, dict(nxt.params)))
            j += 1
        if len(chain) >= 2:
            last = ops[j]
            out.append(TapeOp(
                op="ew_chain",
                ins=tuple(s for _, operands, _ in chain
                          for s in operands if s != "acc"),
                params={"chain": chain},
                out=last.out, shape=last.shape, dtype=last.dtype))
            fused_away += len(chain) - 1
            i = j + 1
            continue
        out.append(op)
        i += 1

    return OpTape(slots=tape.slots, ops=out, out_slot=tape.out_slot,
                  fused_away=tape.fused_away + fused_away), fused_away


# --------------------------------------------------------------------- #
# Compilation: liveness, arena, kernel closures
# --------------------------------------------------------------------- #

#: ops whose output is a view/cheap derivation of their first input; they
#: get no arena buffer and extend the storage root's live range instead
_ALIAS_OPS = frozenset({"reshape", "transpose", "index"})

#: ops with no out=-capable kernel; they allocate fresh per replay
_ALLOC_OPS = frozenset({"stack"})


def _sigmoid_into(x: np.ndarray, out: np.ndarray) -> np.ndarray:
    # The numerically stable logistic, matching Tensor.sigmoid bit-for-bit.
    np.copyto(out, np.where(
        x >= 0,
        1.0 / (1.0 + np.exp(-np.clip(x, 0, None))),
        np.exp(np.clip(x, None, 0))
        / (1.0 + np.exp(np.clip(x, None, 0)))))
    return out


def _act_compile(act: str, params: dict):
    """Resolve a fused post-op activation to an in-place kernel once."""
    if act == "relu":
        def fn(buf):
            np.multiply(buf, buf > 0, out=buf)
    elif act == "tanh":
        def fn(buf):
            np.tanh(buf, out=buf)
    elif act == "sigmoid":
        def fn(buf):
            _sigmoid_into(np.array(buf), buf)
    elif act == "leaky_relu":
        slope = params.get("negative_slope", 0.01)

        def fn(buf):
            np.multiply(buf, np.where(buf > 0, 1.0, slope), out=buf)
    else:  # pragma: no cover - fusion only admits _LINEAR_ACTS
        raise TraceError(f"unknown fused activation {act!r}")
    return fn


def _ew_compile(name: str, params: dict):
    """Resolve one elementwise op to a kernel ``fn(a, b, buf)`` once.

    Dispatch by name and constant-parameter lookup happen here, at
    compile time; replay calls the returned closure directly (``b`` is
    None for unary ops).
    """
    if name == "add":
        return lambda a, b, buf: np.add(a, b, out=buf)
    if name == "mul":
        return lambda a, b, buf: np.multiply(a, b, out=buf)
    if name == "div":
        return lambda a, b, buf: np.true_divide(a, b, out=buf)
    if name == "neg":
        return lambda a, b, buf: np.negative(a, out=buf)
    if name == "pow":
        exponent = params["exponent"]
        return lambda a, b, buf: np.power(a, exponent, out=buf)
    if name == "exp":
        return lambda a, b, buf: np.exp(a, out=buf)
    if name == "log":
        return lambda a, b, buf: np.log(a, out=buf)
    if name == "tanh":
        return lambda a, b, buf: np.tanh(a, out=buf)
    if name == "abs":
        return lambda a, b, buf: np.absolute(a, out=buf)
    if name == "sigmoid":
        return lambda a, b, buf: _sigmoid_into(np.asarray(a), buf)
    if name == "relu":
        return lambda a, b, buf: np.multiply(a, np.asarray(a) > 0, out=buf)
    if name == "leaky_relu":
        slope = params["negative_slope"]

        def fn(a, b, buf):
            np.multiply(a, np.where(np.asarray(a) > 0, 1.0, slope),
                        out=buf)
        return fn
    if name == "clip":
        lo, hi = params["lo"], params["hi"]
        return lambda a, b, buf: np.clip(a, lo, hi, out=buf)
    # pragma: no cover - _ELEMENTWISE and this table stay in sync
    raise TraceError(f"unknown elementwise op {name!r}")


def _build_step(op: TapeOp, buf: "np.ndarray | None", slots: list):
    """Compile one TapeOp into a closure ``step(env)``.

    Slot indices and the arena buffer are baked in; the closure performs
    only NumPy calls and two list indexing operations per operand.

    Layout optimization: a ``(B, n, k) @ (k, m)`` matmul (every Linear on
    padded batched states) dispatches as B small GEMMs under
    ``np.matmul``; since the batch axis is dense, the plan folds it into
    one ``(B*n, k) @ (k, m)`` GEMM writing a reshaped view of the arena
    buffer — one BLAS call instead of B.
    """
    k, ins, params = op.out, op.ins, op.params
    name = op.op

    def _foldable(x_slot: int, w_slot: int) -> bool:
        xs, ws = slots[x_slot].shape, slots[w_slot].shape
        return (xs is not None and ws is not None
                and len(xs) == 3 and len(ws) == 2 and len(op.shape) == 3)

    if name in ("add", "mul", "div", "pow", "neg", "exp", "log", "tanh",
                "abs", "sigmoid", "relu", "leaky_relu", "clip"):
        fn = _ew_compile(name, params)
        a = ins[0]
        if len(ins) > 1:
            b = ins[1]

            def step(env):
                fn(env[a], env[b], buf)
                env[k] = buf
            return step

        def step(env):
            fn(env[a], None, buf)
            env[k] = buf
        return step

    if name == "matmul":
        a, b = ins
        if _foldable(a, b):
            kk = slots[a].shape[2]
            flat = buf.reshape(-1, buf.shape[-1])

            def step(env):
                np.matmul(env[a].reshape(-1, kk), env[b], out=flat)
                env[k] = buf
            return step

        def step(env):
            env[k] = np.matmul(env[a], env[b], out=buf)
        return step

    if name == "linear":
        x, w, bias = ins
        act = params["act"]
        act_params = params["act_params"]
        bias_shape = slots[bias].shape
        if _foldable(x, w) and bias_shape is not None \
                and len(bias_shape) == 1:
            kk = slots[x].shape[2]
            flat = buf.reshape(-1, buf.shape[-1])

            if act is None:
                def step(env):
                    np.matmul(env[x].reshape(-1, kk), env[w], out=flat)
                    np.add(flat, env[bias], out=flat)
                    env[k] = buf
                return step

            act_fn = _act_compile(act, act_params)

            def step(env):
                np.matmul(env[x].reshape(-1, kk), env[w], out=flat)
                np.add(flat, env[bias], out=flat)
                act_fn(flat)
                env[k] = buf
            return step

        if act is None:
            def step(env):
                np.matmul(env[x], env[w], out=buf)
                np.add(buf, env[bias], out=buf)
                env[k] = buf
            return step

        act_fn = _act_compile(act, act_params)

        def step(env):
            np.matmul(env[x], env[w], out=buf)
            np.add(buf, env[bias], out=buf)
            act_fn(buf)
            env[k] = buf
        return step

    if name == "ew_chain":
        # "acc" operands read the accumulator (this op's own buffer);
        # bake that choice as a negative slot index resolved up front.
        subs = []
        for sub_name, operands, sub_params in params["chain"]:
            a = operands[0]
            b = operands[1] if len(operands) > 1 else None
            subs.append((_ew_compile(sub_name, sub_params),
                         -1 if a == "acc" else a,
                         -2 if b is None else (-1 if b == "acc" else b)))

        def step(env):
            for fn, a, b in subs:
                fn(buf if a == -1 else env[a],
                   None if b == -2 else (buf if b == -1 else env[b]),
                   buf)
            env[k] = buf
        return step

    if name == "sum":
        a, axis, keepdims = ins[0], params["axis"], params["keepdims"]

        def step(env):
            env[k] = env[a].sum(axis=axis, keepdims=keepdims, out=buf)
        return step

    if name == "max":
        a, axis, keepdims = ins[0], params["axis"], params["keepdims"]

        def step(env):
            env[k] = env[a].max(axis=axis, keepdims=keepdims, out=buf)
        return step

    if name == "softmax":
        a, axis = ins[0], params["axis"]

        def step(env):
            x = env[a]
            np.subtract(x, x.max(axis=axis, keepdims=True), out=buf)
            np.exp(buf, out=buf)
            np.true_divide(buf, buf.sum(axis=axis, keepdims=True),
                           out=buf)
            env[k] = buf
        return step

    if name == "log_softmax":
        a, axis = ins[0], params["axis"]

        def step(env):
            x = env[a]
            np.subtract(x, x.max(axis=axis, keepdims=True), out=buf)
            lse = np.log(np.exp(buf).sum(axis=axis, keepdims=True))
            np.subtract(buf, lse, out=buf)
            env[k] = buf
        return step

    if name == "take":
        a, idx = ins

        def step(env):
            env[k] = np.take(env[a], env[idx], axis=0, out=buf)
        return step

    if name == "index":
        a, idx = ins[0], params["idx"]

        def step(env):
            env[k] = env[a][idx]
        return step

    if name == "reshape":
        a, shape = ins[0], params["shape"]

        def step(env):
            env[k] = env[a].reshape(shape)
        return step

    if name == "transpose":
        a, axes = ins[0], params["axes"]
        if axes is None:
            def step(env):
                env[k] = env[a].transpose()
        else:
            def step(env):
                env[k] = env[a].transpose(axes)
        return step

    if name == "concat":
        parts, axis = list(ins), params["axis"]

        def step(env):
            np.concatenate([env[p] for p in parts], axis=axis, out=buf)
            env[k] = buf
        return step

    if name == "stack":
        parts, axis = list(ins), params["axis"]

        def step(env):
            env[k] = np.stack([env[p] for p in parts], axis=axis)
        return step

    if name == "scatter_add":
        vals, idx = ins

        def step(env):
            buf.fill(0.0)
            np.add.at(buf, env[idx], env[vals])
            env[k] = buf
        return step

    raise TraceError(f"no kernel for traced op {name!r}")


@dataclass
class CompiledPlan:
    """A replayable compiled tape: env + arena + flat step list."""

    tape: OpTape
    env: list
    steps: list
    out_slot: int
    param_bind: list
    input_bind: list
    arena_bytes: int
    #: op index -> arena buffer id (None for alias/alloc ops); test hook
    buffer_ids: list
    #: storage root slot -> (first op index, last op index) live range
    live_ranges: dict

    def replay(self, batch) -> np.ndarray:
        env = self.env
        for slot, param in self.param_bind:
            env[slot] = param.data
        for slot, fn in self.input_bind:
            env[slot] = fn(batch)
        for step in self.steps:
            step(env)
        return np.array(env[self.out_slot], dtype=np.float64)


def compile_tape(tape: OpTape, model) -> CompiledPlan:
    """Liveness + arena assignment + kernel closure compilation."""
    n_slots = len(tape.slots)
    uses = _use_sites(tape.ops, tape.out_slot)

    # Storage roots: alias outputs share their base's storage, so buffer
    # recycling must honor the *root's* last use, not the view's.
    root = list(range(n_slots))
    for op in tape.ops:
        if op.op in _ALIAS_OPS:
            root[op.out] = root[op.ins[0]]

    last_use = [-1] * n_slots
    for slot, sites in uses.items():
        r = root[slot]
        last_use[r] = max(last_use[r], max(sites))
    last_use[root[tape.out_slot]] = len(tape.ops) + 1

    released_at: dict[int, list[int]] = {}
    for s in range(n_slots):
        if tape.slots[s].kind == _K_OP and 0 <= last_use[s] <= len(tape.ops):
            released_at.setdefault(last_use[s], []).append(s)

    pool: dict[tuple, list[np.ndarray]] = {}
    buffer_of: dict[int, np.ndarray] = {}
    buffer_ids: list = []
    live_ranges: dict[int, tuple] = {}
    arena_bytes = 0
    steps = []
    # Alias pre-resolution: every non-alloc op writes the same arena
    # buffer on every replay, so a reshape/transpose/index of such a slot
    # (or of a const) yields the *same view object* each time.  Those
    # views are computed here, once, and their replay steps dropped; only
    # aliases of per-replay bindings (params, inputs, alloc-op outputs)
    # keep a live step.
    fixed: dict[int, np.ndarray] = {
        s: slot.value for s, slot in enumerate(tape.slots)
        if slot.kind == _K_CONST
    }
    elided_views: list[tuple[int, np.ndarray]] = []
    for i, op in enumerate(tape.ops):
        buf = None
        if op.op not in _ALIAS_OPS and op.op not in _ALLOC_OPS:
            key = (tuple(op.shape), op.dtype)
            free = pool.get(key)
            if free:
                buf = free.pop()
            else:
                buf = np.empty(op.shape, dtype=np.dtype(op.dtype))
                arena_bytes += buf.nbytes
            buffer_of[op.out] = buf
            fixed[op.out] = buf
        view = None
        if op.op in _ALIAS_OPS and op.ins[0] in fixed:
            src = fixed[op.ins[0]]
            if op.op == "reshape":
                view = src.reshape(op.params["shape"])
                if not np.shares_memory(view, src):
                    # Non-contiguous source: reshape copies, so the
                    # result depends on replay-time data.  Keep the step.
                    view = None
            elif op.op == "transpose":
                axes = op.params["axes"]
                view = src.transpose() if axes is None \
                    else src.transpose(axes)
            else:  # "index"
                view = src[op.params["idx"]]
        if view is not None:
            fixed[op.out] = view
            elided_views.append((op.out, view))
        else:
            steps.append(_build_step(op, buf, tape.slots))
        buffer_ids.append(id(buf) if buf is not None else None)
        live_ranges[op.out] = (i, last_use[root[op.out]])
        # Recycle only after this op ran: an op must never write into a
        # buffer that one of its own inputs still occupies.
        for s in released_at.get(i, []):
            dead = buffer_of.pop(s, None)
            if dead is not None:
                key = (dead.shape, str(dead.dtype))
                pool.setdefault(key, []).append(dead)

    env: list = [None] * n_slots
    for s, view in elided_views:
        env[s] = view
    param_bind, input_bind = [], []
    params_by_name = dict(model.named_parameters())
    for s, slot in enumerate(tape.slots):
        if slot.kind == _K_CONST:
            env[s] = slot.value
        elif slot.kind == _K_PARAM:
            param = params_by_name.get(slot.name)
            if param is None:
                raise TraceError(f"traced parameter {slot.name!r} missing")
            param_bind.append((s, param))
        elif slot.kind == _K_INPUT:
            fn = _DERIVER_BY_NAME.get(slot.name)
            if fn is None:
                raise TraceError(f"unknown input derivation {slot.name!r}")
            input_bind.append((s, fn))

    return CompiledPlan(tape=tape, env=env, steps=steps,
                        out_slot=tape.out_slot, param_bind=param_bind,
                        input_bind=input_bind, arena_bytes=arena_bytes,
                        buffer_ids=buffer_ids, live_ranges=live_ranges)


# --------------------------------------------------------------------- #
# Cache + executor
# --------------------------------------------------------------------- #


class TraceCache:
    """Bounded LRU of signature -> :class:`CompiledPlan`.

    Unsynchronized on purpose: the owning :class:`TracedExecutor`
    serializes all access under its own lock.
    """

    def __init__(self, capacity: int = DEFAULT_CACHE_SIZE):
        if capacity < 1:
            raise ValueError("TraceCache capacity must be >= 1")
        self.capacity = capacity
        self.evictions = 0
        self._entries: "OrderedDict[tuple, CompiledPlan]" = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, sig: tuple) -> "CompiledPlan | None":
        plan = self._entries.get(sig)
        if plan is not None:
            self._entries.move_to_end(sig)
        return plan

    def put(self, sig: tuple, plan: CompiledPlan) -> None:
        self._entries[sig] = plan
        self._entries.move_to_end(sig)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.evictions += 1

    def pop(self, sig: tuple) -> None:
        self._entries.pop(sig, None)

    def signatures(self) -> list:
        return list(self._entries)

    def arena_bytes(self) -> int:
        return sum(p.arena_bytes for p in self._entries.values())


class TracedExecutor:
    """Compile-on-miss trace cache + replay front end for one model.

    Thread-safe: compilation and replay share one arena per plan, so
    :meth:`run` serializes under a lock (serving funnels through a single
    dispatcher thread anyway; the lock makes direct use safe too).
    """

    def __init__(self, model, capacity: int = DEFAULT_CACHE_SIZE,
                 fuse: bool = True):
        self.model = model
        self.fuse = fuse
        self.cache = TraceCache(capacity)
        self._lock = new_lock("TracedExecutor._lock")

    def run(self, batch, allow_trace: bool = True) -> np.ndarray:
        """Replay (compiling on first sight of the signature).

        Raises :class:`GradModeError` under grad, :class:`TraceMissError`
        on a signature miss with ``allow_trace=False``, and
        :class:`TraceError` when tracing/replay fails (the plan is
        dropped so the next call can re-trace).
        """
        if is_grad_enabled():
            raise GradModeError(
                "traced replay requires no_grad: the compiled tape "
                "records no autograd graph, so gradients would be "
                "silently wrong — wrap the call in no_grad() or use the "
                "eager forward for training")
        sig = batch_signature(batch)
        with self._lock:
            plan = self.cache.get(sig)
            if plan is None:
                counter("trace_cache_misses_total",
                        "batched forwards that had to trace+compile").inc()
                if not allow_trace:
                    raise TraceMissError(
                        f"no compiled plan for signature {sig}")
                plan = self._compile(batch)
                self.cache.put(sig, plan)
                gauge("trace_arena_bytes",
                      "bytes held by compiled-tape buffer arenas").set(
                    self.cache.arena_bytes())
            else:
                counter("trace_cache_hits_total",
                        "batched forwards replayed from a compiled "
                        "tape").inc()
            try:
                return plan.replay(batch)
            except Exception as exc:
                self.cache.pop(sig)
                raise TraceError(f"replay failed: {exc}") from exc

    def _compile(self, batch) -> CompiledPlan:
        try:
            tape, ref = trace_forward(self.model, batch)
            if self.fuse:
                tape, fused = fuse_tape(tape)
                if fused:
                    counter("trace_fused_ops_total",
                            "tape ops eliminated by peephole "
                            "fusion").inc(fused)
            plan = compile_tape(tape, self.model)
            got = plan.replay(batch)
        except (TraceError, GradModeError):
            raise
        except Exception as exc:
            raise TraceError(f"trace/compile failed: {exc}") from exc
        if got.shape != ref.shape or not np.allclose(
                got, ref, rtol=0.0, atol=1e-9, equal_nan=True):
            raise TraceError(
                "compile-time self-check failed: replay deviates from "
                "the traced eager forward")
        return plan
