"""Module base class: parameter containers for the NumPy autograd stack."""

from __future__ import annotations

from typing import Iterator

import numpy as np

from .tensor import Tensor

__all__ = ["Module", "Parameter", "ModuleList"]


class Parameter(Tensor):
    """A :class:`Tensor` flagged as a trainable parameter."""

    def __init__(self, data, name: str = ""):
        super().__init__(data, requires_grad=True, name=name)
        # Parameters stay trainable even when created under no_grad().
        self.requires_grad = True


class Module:
    """Base class for layers and models.

    Subclasses assign :class:`Parameter` and :class:`Module` instances as
    attributes; :meth:`parameters` finds them recursively, in deterministic
    (insertion) order, which keeps optimizer state aligned with
    :meth:`state_dict` round-trips.
    """

    def __init__(self) -> None:
        self.training = True

    # -- parameter traversal ------------------------------------------- #
    def named_parameters(self, prefix: str = "") -> Iterator[tuple[str, Parameter]]:
        for key, value in vars(self).items():
            name = f"{prefix}{key}"
            if isinstance(value, Parameter):
                yield name, value
            elif isinstance(value, Module):
                yield from value.named_parameters(prefix=f"{name}.")
            elif isinstance(value, (list, tuple)):
                for i, item in enumerate(value):
                    if isinstance(item, Parameter):
                        yield f"{name}.{i}", item
                    elif isinstance(item, Module):
                        yield from item.named_parameters(prefix=f"{name}.{i}.")

    def parameters(self) -> list[Parameter]:
        return [p for _, p in self.named_parameters()]

    def num_parameters(self) -> int:
        """Total number of scalar weights in this module tree."""
        return int(sum(p.size for p in self.parameters()))

    def zero_grad(self) -> None:
        for p in self.parameters():
            p.grad = None

    # -- train / eval mode --------------------------------------------- #
    def train(self, mode: bool = True) -> "Module":
        self.training = mode
        for _, sub in self.named_modules():
            sub.training = mode
        return self

    def eval(self) -> "Module":
        return self.train(False)

    def named_modules(self, prefix: str = "") -> Iterator[tuple[str, "Module"]]:
        for key, value in vars(self).items():
            name = f"{prefix}{key}"
            if isinstance(value, Module):
                yield name, value
                yield from value.named_modules(prefix=f"{name}.")
            elif isinstance(value, (list, tuple)):
                for i, item in enumerate(value):
                    if isinstance(item, Module):
                        yield f"{name}.{i}", item
                        yield from item.named_modules(prefix=f"{name}.{i}.")

    # -- serialization --------------------------------------------------- #
    def state_dict(self) -> dict[str, np.ndarray]:
        """Copy of every parameter array keyed by dotted path."""
        return {name: p.data.copy() for name, p in self.named_parameters()}

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        own = dict(self.named_parameters())
        missing = set(own) - set(state)
        unexpected = set(state) - set(own)
        if missing or unexpected:
            raise KeyError(
                f"state_dict mismatch: missing={sorted(missing)}, "
                f"unexpected={sorted(unexpected)}"
            )
        for name, p in own.items():
            if p.data.shape != state[name].shape:
                raise ValueError(
                    f"shape mismatch for {name}: "
                    f"{p.data.shape} vs {state[name].shape}"
                )
            p.data = np.asarray(state[name], dtype=np.float64).copy()

    def save(self, path: str) -> None:
        """Persist parameters to an ``.npz`` file."""
        np.savez(path, **self.state_dict())

    def load(self, path: str) -> None:
        """Load parameters saved by :meth:`save` (strict key matching)."""
        with np.load(path) as data:
            self.load_state_dict({k: data[k] for k in data.files})

    # -- call protocol --------------------------------------------------- #
    def forward(self, *args, **kwargs):
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)


class ModuleList(Module):
    """An indexable container of sub-modules (mirrors ``nn.ModuleList``)."""

    def __init__(self, modules=()):
        super().__init__()
        self._items = list(modules)

    def append(self, module: Module) -> None:
        self._items.append(module)

    def __iter__(self):
        return iter(self._items)

    def __len__(self) -> int:
        return len(self._items)

    def __getitem__(self, idx: int) -> Module:
        return self._items[idx]

    def named_parameters(self, prefix: str = ""):
        for i, item in enumerate(self._items):
            if isinstance(item, Parameter):
                yield f"{prefix}{i}", item
            elif isinstance(item, Module):
                yield from item.named_parameters(prefix=f"{prefix}{i}.")

    def named_modules(self, prefix: str = ""):
        for i, item in enumerate(self._items):
            if isinstance(item, Module):
                yield f"{prefix}{i}", item
                yield from item.named_modules(prefix=f"{prefix}{i}.")
