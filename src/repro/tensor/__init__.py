"""NumPy-backed reverse-mode autograd: tensors, modules, optimizers, init."""

from .tensor import Tensor, no_grad, is_grad_enabled, as_tensor
from .module import Module, ModuleList, Parameter
from .optim import SGD, Adam, clip_grad_norm
from . import init

__all__ = [
    "Tensor", "no_grad", "is_grad_enabled", "as_tensor",
    "Module", "ModuleList", "Parameter",
    "SGD", "Adam", "clip_grad_norm",
    "init",
]
