"""NumPy-backed reverse-mode autograd: tensors, modules, optimizers, init."""

from .tensor import Tensor, no_grad, is_grad_enabled, as_tensor
from .module import Module, ModuleList, Parameter
from .optim import SGD, Adam, clip_grad_norm
from . import init
from .trace import (DEFAULT_CACHE_SIZE, GradModeError, TraceCache,
                    TraceError, TraceMissError, TracedExecutor,
                    batch_signature, tracing_disabled)

__all__ = [
    "Tensor", "no_grad", "is_grad_enabled", "as_tensor",
    "Module", "ModuleList", "Parameter",
    "SGD", "Adam", "clip_grad_norm",
    "init",
    "TraceError", "TraceMissError", "GradModeError",
    "TraceCache", "TracedExecutor", "batch_signature",
    "tracing_disabled", "DEFAULT_CACHE_SIZE",
]
