"""Reverse-mode automatic differentiation over NumPy arrays.

This module provides the :class:`Tensor` class used by every neural network
in the reproduction (the DNN-occu GNN, and the MLP / LSTM / Transformer /
DNNPerf / BRP-NAS baselines).  The design follows the classic tape-based
approach: each operation records a closure that propagates the output
gradient to its inputs, and :meth:`Tensor.backward` replays the tape in
reverse topological order.

All heavy lifting is delegated to vectorized NumPy kernels; no Python-level
loops run over array elements.  ``float64`` is the default dtype so that the
finite-difference gradient checks in the test suite converge tightly.
"""

from __future__ import annotations

import threading
from typing import Callable, Sequence

import numpy as np

__all__ = ["Tensor", "no_grad", "is_grad_enabled"]

# Grad mode is per-thread: the serve-layer dispatcher runs inference under
# no_grad on its own thread while a client thread may be mid-training, so a
# process-global flag would silently stop tape recording for the trainer.
_GRAD_STATE = threading.local()


def _grad_enabled() -> bool:
    return getattr(_GRAD_STATE, "enabled", True)


class no_grad:
    """Context manager disabling graph construction (like ``torch.no_grad``).

    The flag is thread-local: entering ``no_grad`` on one thread never
    affects tape recording on another.
    """

    def __enter__(self) -> "no_grad":
        self._prev = _grad_enabled()
        _GRAD_STATE.enabled = False
        return self

    def __exit__(self, *exc) -> None:
        _GRAD_STATE.enabled = self._prev


def is_grad_enabled() -> bool:
    """Return whether new operations will be recorded on the autograd tape."""
    return _grad_enabled()


def _unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Reduce ``grad`` back to ``shape`` after NumPy broadcasting.

    Summing over the leading dimensions that were prepended and over any axis
    whose original extent was 1 inverts the broadcast performed in the
    forward pass.
    """
    if grad.shape == shape:
        return grad
    # Sum over prepended axes.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum over axes that were broadcast from extent 1.
    axes = tuple(i for i, s in enumerate(shape) if s == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """A NumPy-backed array node in an autograd graph.

    Parameters
    ----------
    data:
        Anything convertible by :func:`numpy.asarray`.
    requires_grad:
        If true, gradients flowing into this tensor accumulate in
        :attr:`grad` during :meth:`backward`.
    """

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents", "name")

    def __init__(self, data, requires_grad: bool = False, name: str = ""):
        self.data = np.asarray(data, dtype=np.float64)
        self.grad: np.ndarray | None = None
        self.requires_grad = bool(requires_grad) and _grad_enabled()
        self._backward: Callable[[np.ndarray], None] | None = None
        self._parents: tuple[Tensor, ...] = ()
        self.name = name

    # ------------------------------------------------------------------ #
    # Introspection helpers
    # ------------------------------------------------------------------ #
    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def numpy(self) -> np.ndarray:
        """Return the underlying array (no copy)."""
        return self.data

    def item(self) -> float:
        return float(self.data)

    def detach(self) -> "Tensor":
        """Return a new tensor sharing data but severed from the tape."""
        return Tensor(self.data, requires_grad=False)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.shape}{flag})"

    def __len__(self) -> int:
        return len(self.data)

    # ------------------------------------------------------------------ #
    # Graph construction
    # ------------------------------------------------------------------ #
    @staticmethod
    def _make(
        data: np.ndarray,
        parents: Sequence["Tensor"],
        backward: Callable[[np.ndarray], None],
    ) -> "Tensor":
        out = Tensor(data)
        if _grad_enabled() and any(p.requires_grad for p in parents):
            out.requires_grad = True
            out._parents = tuple(parents)
            out._backward = backward
        return out

    def _accumulate(self, grad: np.ndarray) -> None:
        if self.grad is None:
            # Copy: the incoming buffer may be a view of another tensor's
            # gradient (e.g. reshape backward) or reused by the caller.
            self.grad = np.array(grad, dtype=np.float64)
        else:
            self.grad += grad

    def backward(self, grad: np.ndarray | None = None) -> None:
        """Backpropagate from this tensor through the recorded tape.

        ``grad`` defaults to ones (appropriate for scalar losses).
        """
        if not self.requires_grad:
            raise RuntimeError("backward() called on a tensor without grad")
        if grad is None:
            grad = np.ones_like(self.data)
        else:
            grad = np.asarray(grad, dtype=np.float64)

        # Topological order via iterative DFS (recursion would overflow on
        # deep LSTM unrolls).
        topo: list[Tensor] = []
        visited: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for p in node._parents:
                if p.requires_grad and id(p) not in visited:
                    stack.append((p, False))

        self._accumulate(grad)
        for node in reversed(topo):
            if node._backward is not None and node.grad is not None:
                node._backward(node.grad)

    def zero_grad(self) -> None:
        self.grad = None

    # ------------------------------------------------------------------ #
    # Arithmetic
    # ------------------------------------------------------------------ #
    @staticmethod
    def _coerce(other) -> "Tensor":
        return other if isinstance(other, Tensor) else Tensor(other)

    def __add__(self, other) -> "Tensor":
        other = self._coerce(other)
        out_data = self.data + other.data

        def backward(g: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(g, self.shape))
            if other.requires_grad:
                other._accumulate(_unbroadcast(g, other.shape))

        return self._make(out_data, (self, other), backward)

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        def backward(g: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(-g)

        return self._make(-self.data, (self,), backward)

    def __sub__(self, other) -> "Tensor":
        return self + (-self._coerce(other))

    def __rsub__(self, other) -> "Tensor":
        return self._coerce(other) + (-self)

    def __mul__(self, other) -> "Tensor":
        other = self._coerce(other)
        out_data = self.data * other.data

        def backward(g: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(g * other.data, self.shape))
            if other.requires_grad:
                other._accumulate(_unbroadcast(g * self.data, other.shape))

        return self._make(out_data, (self, other), backward)

    __rmul__ = __mul__

    def __truediv__(self, other) -> "Tensor":
        other = self._coerce(other)
        out_data = self.data / other.data

        def backward(g: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(g / other.data, self.shape))
            if other.requires_grad:
                other._accumulate(
                    _unbroadcast(-g * self.data / (other.data**2), other.shape)
                )

        return self._make(out_data, (self, other), backward)

    def __rtruediv__(self, other) -> "Tensor":
        return self._coerce(other) / self

    def __pow__(self, exponent: float) -> "Tensor":
        if not np.isscalar(exponent):
            raise TypeError("only scalar exponents are supported")
        out_data = self.data**exponent

        def backward(g: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(g * exponent * self.data ** (exponent - 1))

        return self._make(out_data, (self,), backward)

    def __matmul__(self, other) -> "Tensor":
        other = self._coerce(other)
        out_data = self.data @ other.data

        def backward(g: np.ndarray) -> None:
            a, b = self.data, other.data
            if self.requires_grad:
                if b.ndim == 1:
                    ga = np.multiply.outer(g, b) if g.ndim else g * b
                elif a.ndim == 1:
                    ga = g @ np.swapaxes(b, -1, -2)
                    ga = _unbroadcast(ga, a.shape)
                else:
                    ga = _unbroadcast(g @ np.swapaxes(b, -1, -2), a.shape)
                self._accumulate(ga.reshape(a.shape))
            if other.requires_grad:
                if a.ndim == 1:
                    gb = np.multiply.outer(a, g) if g.ndim else a * g
                elif b.ndim == 1:
                    gb = np.swapaxes(a, -1, -2) @ g if g.ndim > 1 else a.T @ g
                    gb = _unbroadcast(gb, b.shape)
                else:
                    gb = _unbroadcast(np.swapaxes(a, -1, -2) @ g, b.shape)
                other._accumulate(gb.reshape(b.shape))

        return self._make(out_data, (self, other), backward)

    # ------------------------------------------------------------------ #
    # Elementwise nonlinearities
    # ------------------------------------------------------------------ #
    def exp(self) -> "Tensor":
        out_data = np.exp(self.data)

        def backward(g: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(g * out_data)

        return self._make(out_data, (self,), backward)

    def log(self) -> "Tensor":
        def backward(g: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(g / self.data)

        return self._make(np.log(self.data), (self,), backward)

    def tanh(self) -> "Tensor":
        out_data = np.tanh(self.data)

        def backward(g: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(g * (1.0 - out_data**2))

        return self._make(out_data, (self,), backward)

    def sigmoid(self) -> "Tensor":
        # Numerically stable logistic.
        out_data = np.where(
            self.data >= 0,
            1.0 / (1.0 + np.exp(-np.clip(self.data, 0, None))),
            np.exp(np.clip(self.data, None, 0))
            / (1.0 + np.exp(np.clip(self.data, None, 0))),
        )

        def backward(g: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(g * out_data * (1.0 - out_data))

        return self._make(out_data, (self,), backward)

    def relu(self) -> "Tensor":
        mask = self.data > 0

        def backward(g: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(g * mask)

        return self._make(self.data * mask, (self,), backward)

    def leaky_relu(self, negative_slope: float = 0.01) -> "Tensor":
        mask = self.data > 0
        scale = np.where(mask, 1.0, negative_slope)

        def backward(g: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(g * scale)

        return self._make(self.data * scale, (self,), backward)

    def sqrt(self) -> "Tensor":
        return self**0.5

    def abs(self) -> "Tensor":
        sign = np.sign(self.data)

        def backward(g: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(g * sign)

        return self._make(np.abs(self.data), (self,), backward)

    def clip(self, lo: float, hi: float) -> "Tensor":
        mask = (self.data >= lo) & (self.data <= hi)

        def backward(g: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(g * mask)

        return self._make(np.clip(self.data, lo, hi), (self,), backward)

    # ------------------------------------------------------------------ #
    # Reductions
    # ------------------------------------------------------------------ #
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.sum(axis=axis, keepdims=keepdims)

        def backward(g: np.ndarray) -> None:
            if not self.requires_grad:
                return
            if axis is None:
                self._accumulate(np.broadcast_to(g, self.shape).copy())
                return
            if not keepdims:
                axes = axis if isinstance(axis, tuple) else (axis,)
                axes = tuple(a % self.ndim for a in axes)
                g = np.expand_dims(g, tuple(sorted(axes)))
            self._accumulate(np.broadcast_to(g, self.shape).copy())

        return self._make(out_data, (self,), backward)

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            n = self.size
        else:
            axes = axis if isinstance(axis, tuple) else (axis,)
            n = int(np.prod([self.shape[a % self.ndim] for a in axes]))
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / n)

    def max(self, axis=None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.max(axis=axis, keepdims=keepdims)

        def backward(g: np.ndarray) -> None:
            if not self.requires_grad:
                return
            expanded = out_data
            ge = g
            if axis is not None and not keepdims:
                axes = axis if isinstance(axis, tuple) else (axis,)
                axes = tuple(sorted(a % self.ndim for a in axes))
                expanded = np.expand_dims(out_data, axes)
                ge = np.expand_dims(g, axes)
            mask = self.data == expanded
            # Split gradient among ties, matching NumPy's subgradient choice.
            counts = mask.sum(
                axis=axis, keepdims=True
            ) if axis is not None else mask.sum()
            self._accumulate(mask * ge / counts)

        return self._make(out_data, (self,), backward)

    def var(self, axis=None, keepdims: bool = False) -> "Tensor":
        mu = self.mean(axis=axis, keepdims=True)
        centred = self - mu
        return (centred * centred).mean(axis=axis, keepdims=keepdims)

    # ------------------------------------------------------------------ #
    # Shape manipulation
    # ------------------------------------------------------------------ #
    def reshape(self, *shape) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        out_data = self.data.reshape(shape)
        orig = self.shape

        def backward(g: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(g.reshape(orig))

        return self._make(out_data, (self,), backward)

    def transpose(self, *axes) -> "Tensor":
        if not axes:
            axes = tuple(reversed(range(self.ndim)))
        elif len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes = tuple(axes[0])
        inv = np.argsort(axes)

        def backward(g: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(g.transpose(inv))

        return self._make(self.data.transpose(axes), (self,), backward)

    def swapaxes(self, a: int, b: int) -> "Tensor":
        axes = list(range(self.ndim))
        axes[a], axes[b] = axes[b], axes[a]
        return self.transpose(axes)

    def __getitem__(self, idx) -> "Tensor":
        out_data = self.data[idx]

        def backward(g: np.ndarray) -> None:
            if self.requires_grad:
                full = np.zeros_like(self.data)
                np.add.at(full, idx, g)
                self._accumulate(full)

        return self._make(out_data, (self,), backward)

    @staticmethod
    def concat(tensors: Sequence["Tensor"], axis: int = 0) -> "Tensor":
        tensors = [Tensor._coerce(t) for t in tensors]
        out_data = np.concatenate([t.data for t in tensors], axis=axis)
        sizes = [t.shape[axis] for t in tensors]
        offsets = np.cumsum([0] + sizes)

        def backward(g: np.ndarray) -> None:
            for t, lo, hi in zip(tensors, offsets[:-1], offsets[1:]):
                if t.requires_grad:
                    sl = [slice(None)] * g.ndim
                    sl[axis] = slice(lo, hi)
                    t._accumulate(g[tuple(sl)])

        return Tensor._make(out_data, tensors, backward)

    @staticmethod
    def stack(tensors: Sequence["Tensor"], axis: int = 0) -> "Tensor":
        tensors = [Tensor._coerce(t) for t in tensors]
        out_data = np.stack([t.data for t in tensors], axis=axis)

        def backward(g: np.ndarray) -> None:
            parts = np.moveaxis(g, axis, 0)
            for t, part in zip(tensors, parts):
                if t.requires_grad:
                    t._accumulate(part)

        return Tensor._make(out_data, tensors, backward)

    @staticmethod
    def scatter_add(values: "Tensor", index: np.ndarray,
                    num_rows: int) -> "Tensor":
        """Sum rows of ``values`` into ``num_rows`` output rows by ``index``.

        The message-passing primitive: ``out[index[i]] += values[i]``.
        ``index`` is a constant integer array (no gradient).
        """
        values = Tensor._coerce(values)
        index = np.asarray(index, dtype=np.intp)
        out_shape = (num_rows,) + values.shape[1:]
        out_data = np.zeros(out_shape)
        np.add.at(out_data, index, values.data)

        def backward(g: np.ndarray) -> None:
            if values.requires_grad:
                values._accumulate(g[index])

        return Tensor._make(out_data, (values,), backward)

    # ------------------------------------------------------------------ #
    # Softmax family (fused for numerical stability)
    # ------------------------------------------------------------------ #
    def softmax(self, axis: int = -1) -> "Tensor":
        shifted = self.data - self.data.max(axis=axis, keepdims=True)
        e = np.exp(shifted)
        out_data = e / e.sum(axis=axis, keepdims=True)

        def backward(g: np.ndarray) -> None:
            if self.requires_grad:
                dot = (g * out_data).sum(axis=axis, keepdims=True)
                self._accumulate(out_data * (g - dot))

        return self._make(out_data, (self,), backward)

    def log_softmax(self, axis: int = -1) -> "Tensor":
        shifted = self.data - self.data.max(axis=axis, keepdims=True)
        lse = np.log(np.exp(shifted).sum(axis=axis, keepdims=True))
        out_data = shifted - lse
        soft = np.exp(out_data)

        def backward(g: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(g - soft * g.sum(axis=axis, keepdims=True))

        return self._make(out_data, (self,), backward)


def as_tensor(x) -> Tensor:
    """Coerce ``x`` to a :class:`Tensor` (no copy when already one)."""
    return x if isinstance(x, Tensor) else Tensor(x)
