"""Optimizers for the NumPy autograd stack (SGD, Adam)."""

from __future__ import annotations

import numpy as np

from .module import Parameter

__all__ = ["SGD", "Adam", "clip_grad_norm"]


def clip_grad_norm(params: list[Parameter], max_norm: float) -> float:
    """Scale gradients in place so their global L2 norm is at most ``max_norm``.

    Returns the pre-clip norm (useful for logging divergence).
    """
    sq = 0.0
    for p in params:
        if p.grad is not None:
            sq += float(np.sum(p.grad * p.grad))
    norm = float(np.sqrt(sq))
    if norm > max_norm and norm > 0.0:
        scale = max_norm / norm
        for p in params:
            if p.grad is not None:
                p.grad *= scale
    return norm


class Optimizer:
    def __init__(self, params):
        self.params: list[Parameter] = list(params)
        if not self.params:
            raise ValueError("optimizer received no parameters")

    def zero_grad(self) -> None:
        for p in self.params:
            p.grad = None

    def step(self) -> None:  # pragma: no cover - abstract
        raise NotImplementedError

    def state_dict(self) -> dict:  # pragma: no cover - abstract
        raise NotImplementedError

    def load_state_dict(self, state: dict) -> None:  # pragma: no cover
        raise NotImplementedError

    def _check_param_count(self, arrays: list) -> None:
        if len(arrays) != len(self.params):
            raise ValueError(
                f"optimizer state for {len(arrays)} parameters cannot be "
                f"loaded into an optimizer over {len(self.params)}")


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum and weight decay."""

    def __init__(self, params, lr: float = 0.01, momentum: float = 0.0,
                 weight_decay: float = 0.0):
        super().__init__(params)
        self.lr = lr
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity = [np.zeros_like(p.data) for p in self.params]

    def step(self) -> None:
        for p, v in zip(self.params, self._velocity):
            if p.grad is None:
                continue
            g = p.grad
            if self.weight_decay:
                g = g + self.weight_decay * p.data
            if self.momentum:
                v *= self.momentum
                v += g
                g = v
            p.data -= self.lr * g

    def state_dict(self) -> dict:
        """Serializable optimizer state (checkpoint/restart support)."""
        return {"lr": self.lr,
                "velocity": [v.copy() for v in self._velocity]}

    def load_state_dict(self, state: dict) -> None:
        self._check_param_count(state["velocity"])
        self.lr = float(state["lr"])
        self._velocity = [np.asarray(v, dtype=np.float64).copy()
                         for v in state["velocity"]]


class Adam(Optimizer):
    """Adam with decoupled epsilon handling; matches the paper's optimizer.

    The paper trains DNN-occu and every baseline with Adam at
    ``lr = weight_decay = 1e-4`` and otherwise default hyperparameters.
    """

    def __init__(self, params, lr: float = 1e-4, betas=(0.9, 0.999),
                 eps: float = 1e-8, weight_decay: float = 0.0):
        super().__init__(params)
        self.lr = lr
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._m = [np.zeros_like(p.data) for p in self.params]
        self._v = [np.zeros_like(p.data) for p in self.params]
        self._t = 0

    def step(self) -> None:
        self._t += 1
        b1, b2 = self.beta1, self.beta2
        bias1 = 1.0 - b1**self._t
        bias2 = 1.0 - b2**self._t
        for p, m, v in zip(self.params, self._m, self._v):
            if p.grad is None:
                continue
            g = p.grad
            if self.weight_decay:
                g = g + self.weight_decay * p.data
            m *= b1
            m += (1.0 - b1) * g
            v *= b2
            v += (1.0 - b2) * g * g
            m_hat = m / bias1
            v_hat = v / bias2
            p.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)

    def state_dict(self) -> dict:
        """Serializable optimizer state (checkpoint/restart support)."""
        return {"lr": self.lr, "t": self._t,
                "m": [m.copy() for m in self._m],
                "v": [v.copy() for v in self._v]}

    def load_state_dict(self, state: dict) -> None:
        """Restore state from :meth:`state_dict` (bit-exact resume)."""
        self._check_param_count(state["m"])
        self._check_param_count(state["v"])
        self.lr = float(state["lr"])
        self._t = int(state["t"])
        self._m = [np.asarray(m, dtype=np.float64).copy()
                   for m in state["m"]]
        self._v = [np.asarray(v, dtype=np.float64).copy()
                   for v in state["v"]]
