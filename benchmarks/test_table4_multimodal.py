"""Table IV: GPU occupancy prediction on the multimodal model CLIP.

Setup mirrors the paper: predictors trained on the (unimodal) Table II
dataset are evaluated on CLIP's fused dual-tower graphs — RN50 and
ViT-B/16 towers appear in related (seen-family) form, ViT-B/32 is fully
unseen.  Paper shape: DNN-occu stays accurate (1.8-11.7% MRE); DNNPerf and
BRP-NAS are off by hundreds of percent because their readouts do not
survive the jump to much larger fused graphs.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import generate_dataset
from repro.gpu import get_device

from conftest import report

CLIP_VARIANTS = (("clip-rn50", "seen"), ("clip-vit-b/16", "seen"),
                 ("clip-vit-b/32", "unseen"))
DEVICES = ("A100", "P40")
PREDICTORS = ("DNN-occu", "DNNPerf", "BRP-NAS")


def _clip_eval(bundle_factory):
    out = {}
    for device_name in DEVICES:
        device = get_device(device_name)
        bundle = bundle_factory(device_name)
        rows = {}
        for variant, tag in CLIP_VARIANTS:
            ds = generate_dataset([variant], [device], configs_per_model=2,
                                  seed=23)
            rows[(variant, tag)] = {
                name: bundle.trainers[name].evaluate(ds)["mre_percent"]
                for name in PREDICTORS}
        out[device_name] = rows
    return out


def test_table4_rows(benchmark, bundle_factory):
    clip_eval = benchmark.pedantic(lambda: _clip_eval(bundle_factory),
                                   rounds=1, iterations=1)
    lines = []
    for device_name, rows in clip_eval.items():
        lines.append(f"device: {device_name}")
        lines.append(f"{'model':>22s} " + " ".join(f"{p:>10s}"
                                                   for p in PREDICTORS))
        for (variant, tag), res in rows.items():
            lines.append(f"{variant + ' (' + tag + ')':>22s} " + " ".join(
                f"{res[p]:10.2f}" for p in PREDICTORS))
    report("table4_multimodal", lines)

    all_rows = [res for rows in clip_eval.values()
                for res in rows.values()]
    # DNN-occu beats its GNN predecessor DNNPerf on every CLIP row.
    assert all(res["DNN-occu"] <= res["DNNPerf"] + 1e-9
               for res in all_rows), clip_eval
    # ... and wins against BRP-NAS on the majority of rows.
    brp_wins = sum(res["DNN-occu"] <= res["BRP-NAS"] + 1e-9
                   for res in all_rows)
    assert brp_wins >= len(all_rows) / 2, clip_eval

    # At least one GNN baseline blows up on multimodal graphs (the paper
    # reports errors of 100-937%).
    worst = max(max(res["DNNPerf"], res["BRP-NAS"]) for res in all_rows)
    assert worst > 50.0

    # DNN-occu's CLIP errors stay within a usable band (paper <=11.7%).
    ours = [res["DNN-occu"] for res in all_rows]
    assert float(np.median(ours)) < 40.0
