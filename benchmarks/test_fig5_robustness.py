"""Fig. 5: robustness of prediction MRE across graph sizes.

The paper buckets test graphs by node count and edge count and shows
DNN-occu staying accurate in every bucket, below the GNN baselines.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import Dataset
from repro.metrics import bucketize, mre

from conftest import report

NODE_EDGES = [0, 60, 200]   # buckets: <60, 60-200, >=200 nodes
EDGE_EDGES = [0, 60, 220]

DEVICES = ("A100", "RTX2080Ti", "P40")


def _bucket_mre(trainer, samples: list, idx: np.ndarray) -> float:
    sub = Dataset([samples[i] for i in idx])
    pred = trainer.predict(sub)
    return 100.0 * mre(pred, sub.labels())


def _bucket_rows(bundle):
    samples = list(bundle.seen_test) + list(bundle.unseen_test)
    nodes = [s.num_nodes for s in samples]
    edges = [s.num_edges for s in samples]
    rows = []
    for label, counts, edges_def in (("nodes", nodes, NODE_EDGES),
                                     ("edges", edges, EDGE_EDGES)):
        masks = bucketize(counts, edges_def)
        for lo, mask in zip(edges_def, masks):
            if len(mask) == 0:
                continue
            row = {name: _bucket_mre(tr, samples, mask)
                   for name, tr in bundle.trainers.items()
                   if name in ("DNN-occu", "DNNPerf", "BRP-NAS")}
            rows.append((label, lo, len(mask), row))
    return rows


@pytest.mark.parametrize("device_name", DEVICES)
def test_fig5_buckets(benchmark, bundle_factory, device_name):
    bundle = bundle_factory(device_name)
    rows = benchmark.pedantic(lambda: _bucket_rows(bundle), rounds=1,
                              iterations=1)

    lines = [f"device: {device_name}"]
    competitive = 0
    for label, lo, n, row in rows:
        lines.append(f"{label}>={lo:4d} (n={n:2d}): " + "  ".join(
            f"{k}={v:8.2f}%" for k, v in row.items()))
        best = min(row.values())
        if row["DNN-occu"] <= max(1.8 * best, best + 12.0):
            competitive += 1
    report(f"fig5_{device_name.lower()}", lines)

    # Robustness (the paper's claim): DNN-occu stays in the lead group in
    # (almost) every graph-size bucket — no size regime breaks it.
    assert competitive >= len(rows) - 1, lines
    # And it stays usable everywhere (no bucket blows past 50% MRE).
    assert all(row["DNN-occu"] < 50.0 for _, _, _, row in rows)


def test_fig5_bucket_eval_speed(benchmark, bundle_factory):
    bundle = bundle_factory("A100")
    trainer = bundle.trainers["DNN-occu"]
    benchmark(trainer.predict, bundle.seen_test)
