"""Fig. 2: GPU occupancy vs NVML utilization for ResNet-50 on A100.

Paper shape: both metrics rise with batch size; NVML saturates around 90%
while occupancy plateaus far lower (~45%) — NVML is a loose upper bound.
"""

from __future__ import annotations

from repro.gpu import A100, profile_graph
from repro.models import ModelConfig, build_model

from conftest import report

BATCH_SIZES = (4, 8, 16, 32, 64, 96, 128)


def _sweep():
    rows = []
    for bs in BATCH_SIZES:
        g = build_model("resnet-50", ModelConfig(batch_size=bs))
        p = profile_graph(g, A100)
        rows.append((bs, p.occupancy, p.nvml_utilization))
    return rows


def test_fig2_series(benchmark):
    sweep = benchmark.pedantic(_sweep, rounds=1, iterations=1)

    lines = [f"{'batch':>6s} {'occupancy':>10s} {'nvml_util':>10s}"]
    for bs, occ, nvml in sweep:
        lines.append(f"{bs:6d} {occ:10.3f} {nvml:10.3f}")
    report("fig2_occupancy_vs_nvml", lines)

    occ = [r[1] for r in sweep]
    nvml = [r[2] for r in sweep]
    # NVML strictly dominates occupancy at every batch size.
    assert all(n > o for n, o in zip(nvml, occ))
    # Both increase with batch size.
    assert occ == sorted(occ)
    assert nvml == sorted(nvml)
    # NVML saturates (~90%+) while occupancy stays far below it.
    assert nvml[-1] > 0.9
    assert occ[-1] < 0.6
    # The gap at large batch is the paper's headline observation.
    assert nvml[-1] - occ[-1] > 0.3


def test_fig2_profile_throughput(benchmark):
    g = build_model("resnet-50", ModelConfig(batch_size=64))
    result = benchmark(profile_graph, g, A100)
    assert result.occupancy > 0
