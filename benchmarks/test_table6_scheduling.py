"""Table VI: packing-strategy comparison on the 4x P40 cluster.

The full pipeline: DNN-occu (trained on the Table II seen set) predicts
occupancy for a mixed workload; the trace-driven simulator runs
occu-packing, nvml-util-packing, and slot-packing.  Paper shape:
occu-packing wins both metrics (makespan -19.7%, NVML utilization +31.5%);
nvml-util-packing is barely better than slot-packing.
"""

from __future__ import annotations

import numpy as np

from repro.gpu import P40
from repro.sched import (Job, NvmlUtilPacking, OccuPacking, SlotPacking,
                         generate_workload, simulate)

from conftest import report

NUM_GPUS = 4
NUM_JOBS = 32
SEEDS = (3, 11, 29)
MODEL_MIX = ("lenet", "alexnet", "rnn", "lstm", "vgg-11", "vgg-13",
             "vgg-16", "resnet-18", "resnet-34", "vit-t")


def _run_table6(predictor):
    policies = (SlotPacking(), NvmlUtilPacking(), OccuPacking())
    acc = {p.name: {"makespan": [], "nvml": []} for p in policies}
    for seed in SEEDS:
        jobs = generate_workload(MODEL_MIX, P40, NUM_JOBS, seed=seed,
                                 iterations_range=(100, 600),
                                 predictor=predictor)
        for policy in policies:
            res = simulate(jobs, NUM_GPUS, policy)
            acc[policy.name]["makespan"].append(res.makespan_s)
            acc[policy.name]["nvml"].append(res.avg_nvml_utilization)
    return {name: {k: float(np.mean(v)) for k, v in d.items()}
            for name, d in acc.items()}


def test_table6_packing_strategies(benchmark, bundle_factory):
    predictor = bundle_factory("P40").trainers["DNN-occu"].model.predict
    table6 = benchmark.pedantic(lambda: _run_table6(predictor), rounds=1,
                                iterations=1)

    base = table6["slot-packing"]
    lines = [f"{'strategy':>20s} {'makespan(s)':>12s} {'gain':>8s} "
             f"{'nvml util %':>12s} {'gain':>8s}"]
    for name in ("occu-packing", "nvml-util-packing", "slot-packing"):
        row = table6[name]
        mk_gain = 100.0 * (base["makespan"] - row["makespan"]) \
            / base["makespan"]
        ut_gain = 100.0 * (row["nvml"] - base["nvml"]) / base["nvml"]
        lines.append(f"{name:>20s} {row['makespan']:12.2f} "
                     f"{mk_gain:7.2f}% {100 * row['nvml']:12.2f} "
                     f"{ut_gain:7.2f}%")
    report("table6_scheduling", lines)

    occu = table6["occu-packing"]
    # occu-packing wins both metrics against both alternatives.
    for other in ("nvml-util-packing", "slot-packing"):
        assert occu["makespan"] <= table6[other]["makespan"] + 1e-9
        assert occu["nvml"] >= table6[other]["nvml"] - 1e-9

    # Gains in the paper's order of magnitude (-19.71% makespan, +31.45%
    # utilization vs slot-packing).
    mk_gain = (base["makespan"] - occu["makespan"]) / base["makespan"]
    ut_gain = (occu["nvml"] - base["nvml"]) / base["nvml"]
    assert mk_gain > 0.10
    assert ut_gain > 0.15

    # NVML saturates, so nvml-util-packing is nearly slot-packing.
    nvml_row = table6["nvml-util-packing"]
    nvml_gain = (base["makespan"] - nvml_row["makespan"]) / base["makespan"]
    assert nvml_gain < 0.10


def test_table6_simulation_speed(benchmark):
    rng = np.random.default_rng(0)
    jobs = [Job(i, "m", float(rng.uniform(5, 50)),
                float(rng.uniform(0.05, 0.6)), float(rng.uniform(0.2, 0.9)))
            for i in range(64)]
    benchmark(simulate, jobs, NUM_GPUS, OccuPacking())
