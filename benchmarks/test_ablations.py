"""Ablations of the design choices DESIGN.md calls out.

1. GNN composition: full DNN-occu vs no-Graphormer vs no-SAB decoder.
2. Label aggregation: mean vs max vs min kernel-occupancy aggregation.
3. Scheduler occupancy cap: 80% vs 100% vs 120%.
"""

from __future__ import annotations

import numpy as np

from repro.core import DNNOccu, DNNOccuConfig, TrainConfig, Trainer
from repro.gpu import A100, profile_graph
from repro.models import ModelConfig, build_model
from repro.sched import Job, OccuPacking, simulate

from conftest import EPOCHS, HIDDEN, LR, report


def _architecture_ablation(bundle):
    variants = {
        "full (ANEE+Graphormer+ST)": DNNOccuConfig(hidden=HIDDEN,
                                                   num_heads=4),
        "no Graphormer": DNNOccuConfig(hidden=HIDDEN, num_heads=4,
                                       graphormer_layers=0),
        "no Set-Transformer SABs": DNNOccuConfig(hidden=HIDDEN, num_heads=4,
                                                 set_decoder_sabs=0),
    }
    rows = {}
    for name, cfg in variants.items():
        tr = Trainer(DNNOccu(cfg, seed=0),
                     TrainConfig(epochs=EPOCHS, lr=LR, batch_size=8, seed=0))
        tr.fit(bundle.train)
        rows[name] = {
            "seen": tr.evaluate(bundle.seen_test)["mse"],
            "unseen": tr.evaluate(bundle.unseen_test)["mse"],
        }
    return rows


def test_ablation_architecture(benchmark, bundle_factory):
    bundle = bundle_factory("A100")
    rows = benchmark.pedantic(lambda: _architecture_ablation(bundle),
                              rounds=1, iterations=1)
    lines = [f"{name:>28s}: seen MSE={v['seen']:.5f} "
             f"unseen MSE={v['unseen']:.5f}" for name, v in rows.items()]
    report("ablation_architecture", lines)

    # Every variant trains to a sane regime on seen data.
    assert all(v["seen"] < 0.05 for v in rows.values())
    assert all(v["unseen"] < 0.1 for v in rows.values())
    # The Graphormer stage carries seen-data accuracy: removing it is the
    # largest seen-MSE regression among the ablations.
    full_seen = rows["full (ANEE+Graphormer+ST)"]["seen"]
    no_g_seen = rows["no Graphormer"]["seen"]
    assert no_g_seen >= full_seen


def test_ablation_aggregation(benchmark):
    def compute():
        g = build_model("resnet-50", ModelConfig(batch_size=64))
        prof = profile_graph(g, A100, check_memory=False)
        return (prof.aggregate_occupancy("mean"),
                prof.aggregate_occupancy("max"),
                prof.aggregate_occupancy("min"))

    mean, mx, mn = benchmark.pedantic(compute, rounds=1, iterations=1)
    report("ablation_aggregation", [
        f"mean={mean:.4f} max={mx:.4f} min={mn:.4f}",
        "mean (duration-weighted) is the paper's representative choice",
    ])
    assert mn < mean < mx


def _feature_sensitivity(bundle):
    """Zero one feature block at inference time; measure the MSE hit."""
    from repro.data import Dataset
    from repro.features import zero_feature_block

    trainer = bundle.trainers["DNN-occu"]
    test = Dataset(list(bundle.seen_test) + list(bundle.unseen_test))
    base = trainer.evaluate(test)["mse"]
    rows = {"(none)": base}
    for block in ("op_type", "flops", "shape", "device", "edges"):
        ablated = Dataset(list(test))
        preds = []
        for s in ablated:
            preds.append(trainer.model.predict(
                zero_feature_block(s.features, block)))
        import numpy as _np
        rows[block] = float(_np.mean((_np.array(preds) - test.labels())**2))
    return rows


def test_ablation_features(benchmark, bundle_factory):
    bundle = bundle_factory("A100")
    rows = benchmark.pedantic(lambda: _feature_sensitivity(bundle),
                              rounds=1, iterations=1)
    base = rows["(none)"]
    lines = [f"zeroed block {name:>12s}: test MSE {v:.5f} "
             f"({'+' if v >= base else ''}{v - base:.5f})"
             for name, v in rows.items()]
    report("ablation_features", lines)

    # The model relies on its features: ablating the operator one-hots
    # must hurt more than ablating nothing.
    assert rows["op_type"] > base
    # And at least one runtime block (flops/shape) matters too.
    assert max(rows["flops"], rows["shape"]) > base


def _cap_sweep():
    out = {}
    for cap in (0.8, 1.0, 1.2):
        makespans, slowdowns = [], []
        for seed in (1, 2, 3):
            r = np.random.default_rng(seed)
            jobs = [Job(i, "m", float(r.uniform(10, 60)),
                        float(r.uniform(0.05, 0.6)),
                        float(r.uniform(0.3, 0.9)))
                    for i in range(24)]
            res = simulate(jobs, 4, OccuPacking(cap=cap))
            makespans.append(res.makespan_s)
            slowdowns.append(res.avg_stretch)
        out[cap] = (float(np.mean(makespans)), float(np.mean(slowdowns)))
    return out


def test_ablation_scheduler_cap(benchmark):
    cap_sweep = benchmark.pedantic(_cap_sweep, rounds=1, iterations=1)
    lines = [f"cap={cap:.1f}: makespan={mk:8.2f}s avg_stretch={sd:.3f}"
             for cap, (mk, sd) in cap_sweep.items()]
    report("ablation_scheduler_cap", lines)

    # Looser caps pack more aggressively -> more interference per job
    # (stretch measures interference only, not queueing).
    assert cap_sweep[1.2][1] >= cap_sweep[0.8][1] - 1e-9
    # The paper's 100% cap sits on the efficient frontier: most of the
    # loose cap's makespan at clearly lower interference.
    mk100, sd100 = cap_sweep[1.0]
    mk120, sd120 = cap_sweep[1.2]
    assert mk100 <= mk120 * 1.25
    assert sd100 <= sd120 + 1e-9
