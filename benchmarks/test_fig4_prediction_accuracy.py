"""Fig. 4 (a,b,c): prediction accuracy of DNN-occu vs all five baselines on
seen and unseen test models, per device (A100, RTX 2080Ti, P40).

Paper shape: on seen models all predictors are comparable; on unseen models
DNN-occu is clearly best and MLP-style baselines degrade badly.
"""

from __future__ import annotations

import pytest

from conftest import SCALE, report

DEVICES = ("A100", "RTX2080Ti", "P40")

#: per-device unseen MRE, filled by the parametrized test and consumed by
#: the cross-device summary test (pytest runs them in file order)
_UNSEEN_RESULTS: dict[str, dict[str, float]] = {}


@pytest.mark.parametrize("device_name", DEVICES)
def test_fig4_per_device(benchmark, bundle_factory, device_name):
    bundle = bundle_factory(device_name)
    seen, unseen = benchmark.pedantic(
        lambda: (bundle.evaluate(bundle.seen_test),
                 bundle.evaluate(bundle.unseen_test)),
        rounds=1, iterations=1)

    lines = [f"device: {device_name}",
             f"{'predictor':>12s} {'seen MRE%':>10s} {'seen MSE':>10s} "
             f"{'unseen MRE%':>12s} {'unseen MSE':>11s}"]
    for name in seen:
        lines.append(
            f"{name:>12s} {seen[name]['mre_percent']:10.3f} "
            f"{seen[name]['mse']:10.4f} "
            f"{unseen[name]['mre_percent']:12.3f} "
            f"{unseen[name]['mse']:11.4f}")
    report(f"fig4_{device_name.lower()}", lines)

    _UNSEEN_RESULTS[device_name] = {
        name: ev["mre_percent"] for name, ev in unseen.items()}
    ours_unseen = unseen["DNN-occu"]["mre_percent"]
    best_other = min(ev["mre_percent"] for name, ev in unseen.items()
                     if name != "DNN-occu")

    # Robust invariants at CPU benchmark scale (training sets are two
    # orders of magnitude smaller than the paper's; see EXPERIMENTS.md):
    # (1) DNN-occu stays accurate on unseen models;
    assert ours_unseen < 40.0
    # (2) it is in the lead group — never far behind the per-device best.
    assert ours_unseen <= max(1.8 * best_other, best_other + 10.0)

    # At paper-leaning scale the strict claim is enforced: DNN-occu beats
    # every baseline on unseen models on every device.
    if SCALE >= 2.0:
        assert ours_unseen <= best_other + 1e-9


def test_fig4_dnn_occu_wins_some_device(benchmark, bundle_factory):
    """Across the three devices DNN-occu is the outright unseen-model
    winner on at least one (the paper claims all three; see
    EXPERIMENTS.md for the scale caveat)."""
    def collect():
        for device_name in DEVICES:
            if device_name not in _UNSEEN_RESULTS:
                bundle = bundle_factory(device_name)
                _UNSEEN_RESULTS[device_name] = {
                    name: tr.evaluate(bundle.unseen_test)["mre_percent"]
                    for name, tr in bundle.trainers.items()}
        return _UNSEEN_RESULTS
    benchmark.pedantic(collect, rounds=1, iterations=1)
    wins = 0
    degraded = 0
    beats_dnnperf = 0
    for device_name, rows in _UNSEEN_RESULTS.items():
        ours = rows["DNN-occu"]
        # Within half a percentage point counts as a (tied) win.
        if all(ours <= v + 0.5 for k, v in rows.items()
               if k != "DNN-occu"):
            wins += 1
        worst = max(v for k, v in rows.items() if k != "DNN-occu")
        if worst > 1.6 * ours:
            degraded += 1
        if ours <= rows["DNNPerf"] + 1e-9:
            beats_dnnperf += 1
    assert wins >= 1, _UNSEEN_RESULTS
    # On most devices some baseline degrades badly while DNN-occu holds,
    # and DNN-occu beats its GNN predecessor DNNPerf.
    assert degraded >= 2, _UNSEEN_RESULTS
    assert beats_dnnperf >= 2, _UNSEEN_RESULTS


def test_fig4_per_model_breakdown(benchmark, bundle_factory):
    """Fig. 4's bars are per *model name*; regenerate that view on A100
    for DNN-occu (the paper's headline series)."""
    from repro.data import Dataset
    from repro.metrics import per_group_errors

    bundle = bundle_factory("A100")
    samples = Dataset(list(bundle.seen_test) + list(bundle.unseen_test))
    trainer = bundle.trainers["DNN-occu"]

    def compute():
        preds = trainer.predict(samples)
        return per_group_errors(preds, samples.labels(),
                                [s.model_name for s in samples])
    rows = benchmark.pedantic(compute, rounds=1, iterations=1)

    lines = [f"{'model':>12s} {'n':>3s} {'MRE%':>8s} {'MSE':>9s}"]
    for name, r in sorted(rows.items()):
        lines.append(f"{name:>12s} {r['count']:3d} "
                     f"{r['mre_percent']:8.2f} {r['mse']:9.5f}")
    report("fig4_per_model_a100", lines)

    # Every test model is predictable to a usable band except at most two
    # hard outliers (the paper's GPT-2-style cases).
    bad = [n for n, r in rows.items() if r["mre_percent"] > 60.0]
    assert len(bad) <= 2, rows


def test_fig4_unseen_error_band(benchmark, bundle_factory):
    """Paper: DNN-occu reaches 5.496% MRE on unseen models (A100); at
    benchmark scale we hold a looser band."""
    bundle = bundle_factory("A100")
    ev = benchmark.pedantic(
        lambda: bundle.trainers["DNN-occu"].evaluate(bundle.unseen_test),
        rounds=1, iterations=1)
    assert ev["mre_percent"] < 35.0
    assert ev["mse"] < 0.02


def test_fig4_inference_latency(benchmark, bundle_factory):
    """Prediction must be cheap — the paper's motivation vs profiling."""
    bundle = bundle_factory("A100")
    model = bundle.trainers["DNN-occu"].model
    sample = bundle.seen_test[0]
    benchmark(model.predict, sample.features)
