"""Fig. 7: correlation of JCT slowdown with cumulative GPU occupancy.

Reproduces the paper's preliminary interference study: 200 random
co-location pairs drawn from the Table II zoo, each simulated; slowdown is
examined against cumulative (summed) occupancy.  Shape: positive
correlation, a 10-60% slowdown band below the 100% knee, and a sharp rise
past it.
"""

from __future__ import annotations

import numpy as np
import pytest
from scipy import stats

from repro.data import sample_config
from repro.gpu import P40, OutOfMemoryError, profile_graph
from repro.models import build_model
from repro.sched import Job, OccuPacking, simulate

from conftest import report

N_PAIRS = 200
MODELS = ("lenet", "alexnet", "vgg-11", "vgg-16", "resnet-18", "resnet-34",
          "resnet-50", "rnn", "lstm", "vit-t", "vit-s")


def _pair_study():
    rng = np.random.default_rng(17)
    profiles = []
    while len(profiles) < 24:  # pool of distinct configurations
        name = str(rng.choice(MODELS))
        cfg = sample_config(name, rng)
        try:
            prof = profile_graph(build_model(name, cfg), P40)
        except OutOfMemoryError:
            continue
        profiles.append(prof.occupancy)

    rows = []
    for _ in range(N_PAIRS):
        # Co-location combinations of 2-3 jobs (the paper's study draws
        # random combinations, and 2 jobs rarely exceed the 100% knee).
        k = int(rng.integers(2, 4))
        occs = rng.choice(profiles, size=k, replace=True)
        jobs = [Job(i, f"j{i}", 10.0, float(o), 0.5)
                for i, o in enumerate(occs)]
        res = simulate(jobs, 1, OccuPacking(cap=10.0))  # force co-location
        worst = max(j.stretch for j in res.jobs)
        rows.append((float(occs.sum()), worst))
    return rows


def test_fig7_scatter(benchmark):
    pair_study = benchmark.pedantic(_pair_study, rounds=1, iterations=1)
    cum = np.array([r[0] for r in pair_study])
    slow = np.array([r[1] for r in pair_study])
    r = stats.pearsonr(cum, slow).statistic

    lines = [f"pairs: {len(pair_study)}",
             f"pearson r(cumulative occupancy, slowdown) = {r:.3f}",
             f"cumulative occupancy range: [{cum.min():.2f}, {cum.max():.2f}]",
             f"slowdown range: [{slow.min():.3f}, {slow.max():.3f}]"]
    edges = np.linspace(cum.min(), cum.max() + 1e-9, 7)
    for lo, hi in zip(edges[:-1], edges[1:]):
        mask = (cum >= lo) & (cum < hi)
        if mask.any():
            lines.append(f"cum [{lo:4.2f},{hi:4.2f}): "
                         f"mean slowdown {slow[mask].mean():.3f} "
                         f"(n={mask.sum()})")
    report("fig7_jct_slowdown", lines)

    # Positive correlation — the figure's core message.
    assert r > 0.6
    # Below 100% cumulative occupancy slowdowns stay in the paper's
    # 10-60% band.
    below = slow[cum <= 1.0]
    assert below.size and below.max() <= 1.60
    # Past the knee the mean slowdown clearly exceeds the sub-knee mean.
    above = slow[cum > 1.1]
    if above.size:
        assert above.mean() > below.mean() + 0.1


def test_fig7_pair_simulation_speed(benchmark):
    jobs = [Job(0, "a", 10.0, 0.4, 0.5), Job(1, "b", 10.0, 0.5, 0.5)]
    benchmark(simulate, jobs, 1, OccuPacking(cap=10.0))
