"""Component-level perf numbers behind the ``repro bench`` gates.

Each benchmark isolates one hot path touched by the repro.perf work:

* vectorized graph encoding (vs the scalar per-node reference);
* dense-batch collation;
* the batched DNN-occu forward (vs eight per-graph forwards);
* a warm content-addressed cache lookup (vs profile + encode + SPD).

The aggregated gate numbers (3x training, 2x generation, 1e-6
equivalence, bit-identity) come from ``python -m repro bench --check``;
see benchmarks/results/BENCH_perf.json.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import DNNOccu, DNNOccuConfig
from repro.features import encode_graph
from repro.features.encode import encode_edge, encode_node
from repro.gpu import get_device, profile_graph
from repro.models import ModelConfig, build_model
from repro.perf import ProfileCache, collate, ensure_spd

from conftest import report

DEVICE = get_device("A100")
#: one small CNN, one recurrent, one large transformer graph
MODELS = ("lenet", "lstm", "vit-t")
#: similar-size graphs for the dense-batch benchmarks — padding a
#: 14-node CNN to a 347-node ViT wastes ~96% of the dense compute,
#: which is the ``perf_batch_pad_waste`` histogram's job to surface,
#: not something to bake into a throughput number
BATCH_MODELS = ("lenet", "alexnet", "rnn", "lstm")


def _graphs():
    return [build_model(name, ModelConfig()) for name in MODELS]


def _features():
    feats = [encode_graph(build_model(name, ModelConfig()), DEVICE)
             for name in BATCH_MODELS]
    # batch_size=8 as in training
    feats = (feats * 2)[:8]
    for f in feats:
        ensure_spd(f)
    return feats


def test_encode_vectorized(benchmark):
    graphs = _graphs()
    nodes = sum(g.num_nodes for g in graphs)
    benchmark(lambda: [encode_graph(g, DEVICE) for g in graphs])
    rate = nodes / benchmark.stats.stats.min
    report("perf_encode", [
        f"vectorized encode_graph: {rate:,.0f} nodes/s "
        f"({nodes} nodes over {MODELS})"])


def test_encode_scalar_reference(benchmark):
    graphs = _graphs()

    def scalar():
        for g in graphs:
            np.stack([encode_node(g.nodes[i], DEVICE)
                      for i in sorted(g.nodes)])
            if g.edges:
                np.stack([encode_edge(e, DEVICE) for e in g.edges])

    benchmark(scalar)


def test_collate(benchmark):
    feats = _features()
    batch = benchmark(lambda: collate(feats))
    assert batch.num_graphs == len(feats)


def test_forward_batched(benchmark):
    feats = _features()
    model = DNNOccu(DNNOccuConfig(hidden=32, num_heads=4), seed=5)
    preds = benchmark(lambda: model.predict_batch(feats))
    assert preds.shape == (len(feats),)


def test_forward_per_graph_reference(benchmark):
    feats = _features()
    model = DNNOccu(DNNOccuConfig(hidden=32, num_heads=4), seed=5)
    benchmark(lambda: [model.predict(f) for f in feats])


def test_cache_warm_get(benchmark, tmp_path):
    graph = build_model("resnet-18", ModelConfig())
    cache = ProfileCache(str(tmp_path))
    cache.put(graph, DEVICE, profile_graph(graph, DEVICE),
              encode_graph(graph, DEVICE))
    entry = benchmark(lambda: cache.get(graph, DEVICE))
    assert entry is not None and not entry.oom
    report("perf_cache", [
        f"warm cache.get (resnet-18): {benchmark.stats.stats.min * 1e3:.2f} "
        "ms vs profile+encode+SPD on a miss"])
