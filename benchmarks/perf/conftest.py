"""Shared helpers for the perf micro-benchmarks.

These are *component* benchmarks (encode / collate / batched forward /
cache round-trip) under pytest-benchmark.  The end-to-end perf gates live
in ``repro bench`` (:mod:`repro.perf.bench`), which run_all.sh invokes
with ``--check``; the numbers here are for profiling regressions at a
finer grain than the gates.
"""

from __future__ import annotations

import os

SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))


def report(name: str, lines: list[str]) -> None:
    """Persist a result table to benchmarks/results/ (same layout as the
    paper-figure benchmarks one directory up)."""
    out_dir = os.path.join(os.path.dirname(__file__), os.pardir, "results")
    os.makedirs(out_dir, exist_ok=True)
    text = "\n".join(lines) + "\n"
    with open(os.path.join(out_dir, f"{name}.txt"), "w") as fh:
        fh.write(text)
    print(f"\n=== {name} ===\n{text}")
