"""Fig. 6: impact of batch size on GPU occupancy and NVML utilization —
the hyperparameter-optimization case study (Section VI-A).

Paper shape: occupancy always below NVML utilization; occupancy growth
flattens at large batch (other bottlenecks emerge); DNN-occu's predictions
track the occupancy curve well enough to pick good batch sizes without
profiling.
"""

from __future__ import annotations

import numpy as np
from scipy import stats

from repro.features import encode_graph
from repro.gpu import A100, profile_graph
from repro.models import ModelConfig, build_model

from conftest import report

BATCH_SIZES = (16, 32, 48, 64, 96, 128)


def _sweep(model):
    rows = []
    for bs in BATCH_SIZES:
        g = build_model("resnet-18", ModelConfig(batch_size=bs))
        prof = profile_graph(g, A100)
        pred = model.predict(encode_graph(g, A100))
        rows.append((bs, prof.occupancy, prof.nvml_utilization, pred))
    return rows


def test_fig6_series(benchmark, bundle_factory):
    model = bundle_factory("A100").trainers["DNN-occu"].model
    sweep = benchmark.pedantic(lambda: _sweep(model), rounds=1, iterations=1)

    lines = [f"{'batch':>6s} {'occupancy':>10s} {'nvml':>8s} "
             f"{'predicted':>10s}"]
    for bs, occ, nvml, pred in sweep:
        lines.append(f"{bs:6d} {occ:10.3f} {nvml:8.3f} {pred:10.3f}")
    report("fig6_batch_size", lines)

    occ = np.array([r[1] for r in sweep])
    nvml = np.array([r[2] for r in sweep])
    pred = np.array([r[3] for r in sweep])

    # Occupancy is a tighter bound than NVML at every batch size.
    assert np.all(occ < nvml)
    # Diminishing returns: the occupancy gain flattens.
    assert (occ[-1] - occ[-2]) < (occ[1] - occ[0])
    # DNN-occu's predictions track the occupancy curve (rank correlation).
    rho = stats.spearmanr(occ, pred).statistic
    assert rho > 0.5, f"prediction does not track occupancy (rho={rho:.2f})"
    # Guided hyperparameter choice: the predicted-best batch size achieves
    # nearly the best true occupancy.
    chosen = int(np.argmax(pred))
    assert occ[chosen] >= 0.9 * occ.max()


def test_fig6_sweep_speed(benchmark):
    def sweep_once():
        g = build_model("resnet-18", ModelConfig(batch_size=64))
        return profile_graph(g, A100).occupancy
    benchmark(sweep_once)
