"""Shared benchmark infrastructure.

Training predictors is the expensive part of the Fig. 4 / Fig. 5 /
Table IV / Table V reproductions, so trained bundles are built once per
session and cached.  ``REPRO_BENCH_SCALE`` (default 1.0) scales dataset
sizes and epochs; raise it (e.g. ``REPRO_BENCH_SCALE=3``) for tighter
reproduction numbers at proportionally higher runtime.

Every predictor is trained with seed restarts selected on a validation
split (``fit_best_of``) — small-data GNN training occasionally lands in a
bad basin, and the paper likewise tuned each model before comparison.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

import numpy as np
import pytest

from repro.baselines import (BRPNASPredictor, DNNPerfPredictor,
                             LSTMPredictor, MLPPredictor,
                             TransformerPredictor)
from repro.core import DNNOccu, DNNOccuConfig, TrainConfig, Trainer, \
    fit_best_of
from repro.data import Dataset, SEEN_MODELS, UNSEEN_MODELS, generate_dataset
from repro.gpu import get_device

SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))

#: benchmark-scale knobs (paper-scale would be far larger)
TRAIN_CONFIGS_PER_MODEL = max(3, int(round(5 * SCALE)))
EVAL_CONFIGS_PER_MODEL = max(2, int(round(3 * SCALE)))
EPOCHS = max(30, int(round(60 * SCALE)))
HIDDEN = 64
LR = 1e-3  # CPU-scale: the paper's 1e-4 needs far more epochs
#: seed restarts per predictor, selected on the validation split
TRIES = max(2, int(round(2 * SCALE)))
DNN_OCCU_TRIES = TRIES + 1


def predictor_factories() -> dict[str, object]:
    """``name -> factory(seed)`` for DNN-occu and every baseline."""
    return {
        "DNN-occu": lambda s: DNNOccu(
            DNNOccuConfig(hidden=HIDDEN, num_heads=4), seed=s),
        "MLP": lambda s: MLPPredictor(seed=s, widths=(80, 256, 128)),
        "LSTM": lambda s: LSTMPredictor(seed=s, hidden=64, max_nodes=192),
        "Transformer": lambda s: TransformerPredictor(
            seed=s, dim=64, ffn_dim=256, num_heads=4, max_nodes=384),
        "DNNPerf": lambda s: DNNPerfPredictor(seed=s, hidden=HIDDEN),
        "BRP-NAS": lambda s: BRPNASPredictor(seed=s, hidden=HIDDEN),
    }


@dataclass
class Bundle:
    """Datasets + trained predictors for one device."""

    device_name: str
    train: Dataset
    val: Dataset
    seen_test: Dataset
    unseen_test: Dataset
    trainers: dict[str, Trainer] = field(default_factory=dict)

    def evaluate(self, dataset: Dataset) -> dict[str, dict[str, float]]:
        return {name: tr.evaluate(dataset)
                for name, tr in self.trainers.items()}


def _build_bundle(device_name: str, seed: int = 0) -> Bundle:
    device = get_device(device_name)
    full = generate_dataset(SEEN_MODELS, [device],
                            configs_per_model=TRAIN_CONFIGS_PER_MODEL + 1,
                            seed=seed)
    rng = np.random.default_rng(seed)
    train_all, seen_test = full.split(0.85, rng)
    train, val = train_all.split(0.85, rng)
    unseen = generate_dataset(UNSEEN_MODELS, [device],
                              configs_per_model=EVAL_CONFIGS_PER_MODEL,
                              seed=seed + 1)
    bundle = Bundle(device_name=device_name, train=train, val=val,
                    seen_test=seen_test, unseen_test=unseen)
    cfg = TrainConfig(epochs=EPOCHS, lr=LR, batch_size=8, seed=seed,
                      lr_decay="cosine")
    for name, factory in predictor_factories().items():
        tries = DNN_OCCU_TRIES if name == "DNN-occu" else TRIES
        bundle.trainers[name] = fit_best_of(factory, train, cfg,
                                            tries=tries, val=val)
    return bundle


@pytest.fixture(scope="session")
def bundle_factory():
    """Session-cached ``get(device_name) -> Bundle``."""
    cache: dict[str, Bundle] = {}

    def get(device_name: str) -> Bundle:
        if device_name not in cache:
            cache[device_name] = _build_bundle(device_name)
        return cache[device_name]

    return get


def report(name: str, lines: list[str]) -> None:
    """Persist a regenerated table/figure to benchmarks/results/."""
    out_dir = os.path.join(os.path.dirname(__file__), "results")
    os.makedirs(out_dir, exist_ok=True)
    text = "\n".join(lines) + "\n"
    with open(os.path.join(out_dir, f"{name}.txt"), "w") as fh:
        fh.write(text)
    print(f"\n=== {name} ===\n{text}")
