"""Extensible-device generalization (Section V-A1's claim).

The paper argues DNN-occu generalizes across devices because Table I
includes runtime-configuration features (GPU FLOPS, memory capacity, SM
count).  We test the strong form: train on A100 + RTX 2080 Ti profiles,
predict occupancy on the never-seen P40.  BRP-NAS, which ignores device
features entirely, cannot distinguish devices and serves as the control.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import BRPNASPredictor
from repro.core import DNNOccu, DNNOccuConfig, TrainConfig, Trainer
from repro.data import SEEN_MODELS, generate_dataset
from repro.gpu import get_device

from conftest import EPOCHS, HIDDEN, LR, report

TRAIN_DEVICES = ("A100", "RTX2080Ti")
HELDOUT_DEVICE = "P40"


def _run():
    train = generate_dataset(
        SEEN_MODELS, [get_device(d) for d in TRAIN_DEVICES],
        configs_per_model=3, seed=41)
    heldout = generate_dataset(SEEN_MODELS, [get_device(HELDOUT_DEVICE)],
                               configs_per_model=2, seed=43)
    rows = {}
    for name, model in (
            ("DNN-occu", DNNOccu(DNNOccuConfig(hidden=HIDDEN, num_heads=4),
                                 seed=0)),
            ("BRP-NAS", BRPNASPredictor(seed=0, hidden=HIDDEN))):
        tr = Trainer(model, TrainConfig(epochs=EPOCHS, lr=LR, batch_size=8,
                                        seed=0))
        tr.fit(train)
        rows[name] = {
            "train_devices": tr.evaluate(train),
            "heldout_device": tr.evaluate(heldout),
        }
    return rows


def test_device_generalization(benchmark):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)
    lines = [f"train: {TRAIN_DEVICES}, held out: {HELDOUT_DEVICE}"]
    for name, r in rows.items():
        lines.append(
            f"{name:>10s}: train-devices MRE "
            f"{r['train_devices']['mre_percent']:7.2f}%  "
            f"held-out-device MRE {r['heldout_device']['mre_percent']:7.2f}%")
    report("device_generalization", lines)

    ours = rows["DNN-occu"]["heldout_device"]
    # Usable accuracy on a device never profiled during training.
    assert ours["mre_percent"] < 60.0
    # Device features matter: the device-blind control does not beat us.
    assert ours["mse"] <= rows["BRP-NAS"]["heldout_device"]["mse"] * 1.5
