"""Table V: generalization to unseen transformer architectures.

Exactly the paper's hardest setting: train on ViT-T configurations *only*,
then predict Swin Transformer, MaxViT, ViT-S, BERT, and GPT-2 on all three
devices.  Paper shape: DNN-occu reaches single-digit MRE on Swin / MaxViT /
ViT-S / BERT; GPT-2 is hard for everyone (DNN-occu 36-186%); DNNPerf and
BRP-NAS are off by orders of magnitude.
"""

from __future__ import annotations

import pytest

from repro.baselines import BRPNASPredictor, DNNPerfPredictor
from repro.core import DNNOccu, DNNOccuConfig, TrainConfig, fit_best_of
from repro.data import generate_dataset
from repro.gpu import get_device

from conftest import EPOCHS, HIDDEN, LR, report

TARGETS = ("swin-s", "maxvit-t", "vit-s", "bert", "gpt-2")
DEVICES = ("A100", "RTX2080Ti", "P40")
EASY_TARGETS = ("vit-s", "bert")  # same-family extrapolation


def _device_rows(device_name: str):
    device = get_device(device_name)
    train = generate_dataset(["vit-t"], [device], configs_per_model=10,
                             seed=31)
    cfg = TrainConfig(epochs=EPOCHS, lr=LR, batch_size=5, seed=0)
    factories = {
        "DNN-occu": lambda s: DNNOccu(
            DNNOccuConfig(hidden=HIDDEN, num_heads=4), seed=s),
        "DNNPerf": lambda s: DNNPerfPredictor(seed=s, hidden=HIDDEN),
        "BRP-NAS": lambda s: BRPNASPredictor(seed=s, hidden=HIDDEN),
    }
    trainers = {name: fit_best_of(factory, train, cfg, tries=2)
                for name, factory in factories.items()}
    rows = {}
    for target in TARGETS:
        ds = generate_dataset([target], [device], configs_per_model=2,
                              seed=37)
        rows[target] = {name: tr.evaluate(ds)["mre_percent"]
                        for name, tr in trainers.items()}
    return rows


@pytest.fixture(scope="module")
def table5_accumulator():
    return {}


@pytest.mark.parametrize("device_name", DEVICES)
def test_table5_per_device(benchmark, device_name, table5_accumulator):
    rows = benchmark.pedantic(lambda: _device_rows(device_name), rounds=1,
                              iterations=1)
    table5_accumulator[device_name] = rows

    names = list(next(iter(rows.values())))
    lines = [f"device: {device_name}",
             f"{'target':>10s} " + " ".join(f"{n:>10s}" for n in names)]
    for target, res in rows.items():
        lines.append(f"{target:>10s} " + " ".join(f"{res[n]:10.2f}"
                                                  for n in names))
    report(f"table5_{device_name.lower()}", lines)

    # The structurally novel targets are where the methods separate
    # (paper: DNNPerf off by up to 742,607% on MaxViT): DNN-occu must beat
    # DNNPerf decisively on Swin and MaxViT ...
    for target in ("swin-s", "maxvit-t"):
        assert rows[target]["DNN-occu"] < rows[target]["DNNPerf"], rows
    # ... with DNNPerf degrading badly on at least one of them.
    assert max(rows["swin-s"]["DNNPerf"],
               rows["maxvit-t"]["DNNPerf"]) > 35.0, rows
    # DNN-occu stays in a usable band across the targets (median; single
    # rows are 2-sample evaluations and noisy).
    import numpy as _np
    ours = [res["DNN-occu"] for res in rows.values()]
    assert float(_np.median(ours)) < 40.0, rows

    # Same-family extrapolation (ViT-S / BERT) stays in a usable band on
    # at least one target.
    best_easy = min(rows[t]["DNN-occu"] for t in EASY_TARGETS)
    assert best_easy < 60.0
