#!/usr/bin/env python
"""Assemble benchmarks/results/*.txt into one markdown report.

Run after ``pytest benchmarks/ --benchmark-only``:

    python benchmarks/collect_results.py [--out REPORT.md]

The report groups regenerated tables/figures in paper order with the
corresponding paper-reported values for side-by-side reading.
"""

from __future__ import annotations

import argparse
import os

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")

#: (file stem prefix, title, what the paper reports)
SECTIONS = (
    ("fig2", "Fig. 2 — occupancy vs NVML (ResNet-50, A100)",
     "paper: NVML saturates ~90%, occupancy ~45% at large batch"),
    ("fig4", "Fig. 4 — prediction accuracy vs baselines",
     "paper: DNN-occu best on unseen (A100: 5.496% MRE / 0.003 MSE); "
     "MLP collapses (90.435% / 0.721)"),
    ("fig5", "Fig. 5 — robustness across graph sizes",
     "paper: DNN-occu MRE 2.9-5.0% across node buckets on A100"),
    ("fig6", "Fig. 6 — batch-size case study",
     "paper: occupancy < NVML everywhere; occupancy plateaus"),
    ("fig7", "Fig. 7 — JCT slowdown vs cumulative occupancy",
     "paper: 10-60% slowdowns below the 100% knee, sharp rise past it"),
    ("table4", "Table IV — multimodal CLIP",
     "paper: DNN-occu 1.8-11.7%; DNNPerf 112-937%; BRP-NAS 108-175%"),
    ("table5", "Table V — generalization from ViT-T",
     "paper: DNN-occu single digits on Swin/MaxViT/ViT-S/BERT; "
     "GPT-2 hard for all; baselines off by orders of magnitude"),
    ("table6", "Table VI — packing strategies (4x P40)",
     "paper: occu-packing -19.71% makespan, +31.45% utilization"),
    ("device", "Extension — cross-device generalization",
     "(not in the paper's tables; supports its Section V-A1 claim)"),
    ("ablation", "Ablations",
     "(design-choice studies from DESIGN.md)"),
    ("perf", "Perf micro-benchmarks",
     "(component numbers; gates live in BENCH_perf.json via "
     "`repro bench --check`)"),
)


def build_report() -> str:
    if not os.path.isdir(RESULTS_DIR):
        raise SystemExit(
            f"no results at {RESULTS_DIR}; run "
            "`pytest benchmarks/ --benchmark-only` first")
    # .txt only: keeps REPORT.md and BENCH_perf.json out of the inlining
    files = sorted(f for f in os.listdir(RESULTS_DIR)
                   if f.endswith(".txt"))
    lines = ["# Reproduced tables and figures", ""]
    used = set()
    for prefix, title, paper in SECTIONS:
        matches = [f for f in files if f.startswith(prefix)]
        if not matches:
            continue
        lines += [f"## {title}", "", f"*{paper}*", ""]
        for fname in matches:
            used.add(fname)
            body = open(os.path.join(RESULTS_DIR, fname)).read().rstrip()
            lines += [f"**{fname}**", "", "```", body, "```", ""]
    leftovers = [f for f in files if f not in used]
    if leftovers:
        lines += ["## Other results", ""]
        for fname in leftovers:
            body = open(os.path.join(RESULTS_DIR, fname)).read().rstrip()
            lines += [f"**{fname}**", "", "```", body, "```", ""]
    return "\n".join(lines)


def main() -> int:
    parser = argparse.ArgumentParser()
    parser.add_argument("--out", default=os.path.join(RESULTS_DIR,
                                                      "REPORT.md"))
    args = parser.parse_args()
    report = build_report()
    with open(args.out, "w") as fh:
        fh.write(report)
    print(f"wrote {args.out} ({len(report.splitlines())} lines)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
