#!/usr/bin/env python
"""Capture an observability trace of a profile run and read it back.

This demonstrates the `repro.obs` layer end-to-end:

1. enable observability (tracer + metrics registry);
2. run an instrumented workload — here, profiling ResNet-18 on the A100
   and a small co-location schedule on two P40s;
3. export a Chrome trace-event file (open it in chrome://tracing or
   https://ui.perfetto.dev) with the metrics snapshot embedded;
4. summarize it in the terminal (top spans by self-time, metric table)
   and print the Prometheus exposition a scraper would collect.

Run:  python examples/trace_a_profile.py
"""

from __future__ import annotations

import json
import tempfile

from repro import obs
from repro.gpu import A100, P40, profile_graph
from repro.models import ModelConfig, build_model
from repro.sched import SlotPacking, generate_workload, simulate


def main() -> None:
    # ------------------------------------------------------------------ #
    # 1-2. Record spans + metrics while instrumented code runs
    # ------------------------------------------------------------------ #
    with obs.observed() as (tracer, registry):
        graph = build_model("resnet-18", ModelConfig(batch_size=32))
        prof = profile_graph(graph, A100)
        print(f"profiled {graph.name}: {prof.num_kernels} kernels, "
              f"occupancy {prof.occupancy:.1%}")

        jobs = generate_workload(("lenet", "alexnet"), P40, 6, seed=0,
                                 iterations_range=(50, 200))
        res = simulate(jobs, 2, SlotPacking())
        print(f"scheduled {len(jobs)} jobs on 2x P40: "
              f"makespan {res.makespan_s:.1f}s")

        # ---------------------------------------------------------- #
        # 3. Export while the tracer/registry handles are in scope
        # ---------------------------------------------------------- #
        payload = obs.export_chrome_trace(tracer, registry,
                                          example="trace_a_profile")

    with tempfile.NamedTemporaryFile("w", suffix=".json",
                                     delete=False) as fh:
        fh.write(payload)
        path = fh.name
    print(f"\nwrote {len(tracer.events)} span events to {path}")
    print("open it in chrome://tracing or https://ui.perfetto.dev,")
    print(f"or run: python -m repro obs {path}\n")

    # ------------------------------------------------------------------ #
    # 4. Terminal summary + Prometheus exposition
    # ------------------------------------------------------------------ #
    print(obs.summarize_trace(json.loads(payload), top=8))
    print("\nPrometheus exposition (what a scraper would collect):\n")
    print(registry.to_prometheus())


if __name__ == "__main__":
    main()
