#!/usr/bin/env python
"""Case study 2 (Section VI-B): DNN-occu-guided co-location scheduling.

Builds a mixed DL workload, trains DNN-occu to predict each job's
occupancy, and compares three packing strategies on a simulated 4x P40
cluster — the Table VI experiment end to end.

Run:  python examples/colocation_scheduling.py
"""

from __future__ import annotations

import numpy as np

from repro.core import DNNOccu, DNNOccuConfig, TrainConfig, Trainer
from repro.data import generate_dataset
from repro.gpu import P40
from repro.sched import (NvmlUtilPacking, OccuPacking, SlotPacking,
                         generate_workload, simulate)

MODEL_MIX = ("lenet", "alexnet", "rnn", "lstm", "vgg-11", "resnet-18",
             "resnet-34", "vit-t")
NUM_JOBS = 24
NUM_GPUS = 4


def main() -> None:
    print("Training DNN-occu on the P40 profile dataset ...")
    train = generate_dataset(["lenet", "alexnet", "vgg-11", "resnet-18",
                              "rnn", "lstm"], [P40], configs_per_model=4,
                             seed=0)
    model = DNNOccu(DNNOccuConfig(hidden=48, num_heads=4), seed=0)
    Trainer(model, TrainConfig(epochs=30, lr=1e-3)).fit(train)

    print(f"Generating a {NUM_JOBS}-job workload "
          f"(DNN-occu supplies predicted occupancy) ...")
    jobs = generate_workload(MODEL_MIX, P40, NUM_JOBS, seed=7,
                             iterations_range=(100, 600),
                             predictor=model.predict)
    err = np.mean([abs(j.predicted_occupancy - j.occupancy) for j in jobs])
    print(f"  mean |predicted - true| occupancy: {err:.3f}\n")

    # Calibrate the interference model from kernel-level co-location of
    # the actual workload models (instead of the built-in defaults).
    from repro.gpu import calibrate_interference, profile_graph
    from repro.models import build_model
    from repro.data import sample_config
    rng = np.random.default_rng(1)
    pool = [profile_graph(build_model(str(rng.choice(MODEL_MIX)),
                                      sample_config(str(rng.choice(MODEL_MIX)),
                                                    rng)), P40)
            for _ in range(8)]
    interference = calibrate_interference(pool, num_pairs=40)
    print(f"calibrated interference: alpha={interference.alpha:.3f}, "
          f"beta={interference.beta:.3f}\n")

    print(f"{'strategy':>20s} {'makespan':>10s} {'nvml util':>10s} "
          f"{'avg JCT':>9s} {'stretch':>8s}")
    results = {}
    for policy in (SlotPacking(), NvmlUtilPacking(), OccuPacking()):
        res = simulate(jobs, NUM_GPUS, policy, interference=interference)
        results[policy.name] = res
        print(f"{policy.name:>20s} {res.makespan_s:9.1f}s "
              f"{res.avg_nvml_utilization:10.1%} {res.avg_jct:8.1f}s "
              f"{res.avg_stretch:8.3f}")

    base = results["slot-packing"]
    occu = results["occu-packing"]
    print(f"\noccu-packing vs slot-packing: "
          f"makespan {100 * (occu.makespan_s - base.makespan_s) / base.makespan_s:+.1f}%, "
          f"NVML utilization "
          f"{100 * (occu.avg_nvml_utilization - base.avg_nvml_utilization) / base.avg_nvml_utilization:+.1f}%")
    print("(The paper reports -19.71% makespan and +31.45% utilization "
          "on its 4x P40 testbed.)")


if __name__ == "__main__":
    main()
