#!/usr/bin/env python
"""Kernel-level interference study (the machinery behind Fig. 7).

Co-runs the kernel streams of model pairs on one simulated P40, measures
each stream's slowdown, shows the slowdown-vs-cumulative-occupancy trend,
and calibrates the scheduler's parametric interference model from the
samples — closing the loop between the GPU substrate and the scheduling
layer.

Run:  python examples/interference_study.py
"""

from __future__ import annotations

import numpy as np

from repro.data import sample_config
from repro.gpu import (P40, OutOfMemoryError, calibrate_interference,
                       pair_slowdown, profile_graph)
from repro.models import build_model

MODELS = ("lenet", "alexnet", "vgg-11", "resnet-18", "resnet-34", "vit-t",
          "rnn", "lstm")


def main() -> None:
    rng = np.random.default_rng(7)

    print("Profiling a pool of model configurations on P40 ...")
    profiles = []
    while len(profiles) < 12:
        name = str(rng.choice(MODELS))
        cfg = sample_config(name, rng)
        try:
            prof = profile_graph(build_model(name, cfg), P40)
        except OutOfMemoryError:
            continue
        profiles.append(prof)
        print(f"  {prof.model_name:<28s} occupancy {prof.occupancy:6.1%}")

    print("\nCo-running 40 random pairs (kernel-level simulation):")
    print(f"{'pair':>44s} {'cum occ':>8s} {'slowdowns':>14s}")
    samples = []
    for _ in range(40):
        i, j = rng.integers(0, len(profiles), size=2)
        if i == j:
            continue
        a, b = profiles[int(i)], profiles[int(j)]
        s_a, s_b = pair_slowdown(a, b)
        cum = a.occupancy + b.occupancy
        samples.append((cum, max(s_a, s_b)))
        print(f"{a.model_name[:20]:>22s}+{b.model_name[:20]:<21s} "
              f"{cum:8.2f} {s_a:6.3f}/{s_b:6.3f}")

    cum = np.array([s[0] for s in samples])
    slow = np.array([s[1] for s in samples])
    order = np.argsort(cum)
    print("\nTrend (binned):")
    for chunk in np.array_split(order, 4):
        print(f"  cum occupancy ~{cum[chunk].mean():.2f}: "
              f"mean worst-slowdown {slow[chunk].mean():.3f}")

    model = calibrate_interference(profiles, num_pairs=80, seed=1)
    print(f"\nCalibrated parametric model: slowdown = 1 + "
          f"{model.alpha:.3f}*other + {model.beta:.3f}*max(0, total-1)^2")
    print("This is the InterferenceModel the cluster simulator uses — "
          "here derived from kernel-level contention rather than assumed.")


if __name__ == "__main__":
    main()
