#!/usr/bin/env python
"""Tour of the model zoo and the GPU substrate.

Builds every Table II architecture, profiles it on all three Table III
devices, and prints the cross-device occupancy matrix — a compact view of
everything the simulated substrate produces (the data the GNN learns from).

Run:  python examples/model_zoo_tour.py
"""

from __future__ import annotations

from repro.gpu import DEVICES, OutOfMemoryError, profile_graph
from repro.models import MODEL_FAMILY, ModelConfig, build_model, list_models

CFG = ModelConfig(batch_size=32, in_channels=3, seq_len=128)


def main() -> None:
    device_names = list(DEVICES)
    header = f"{'model':>16s} {'family':>12s} {'nodes':>6s} {'GFLOPs':>8s}"
    for name in device_names:
        header += f" {name + ' occ':>14s}"
    print(header)

    for model_name in list_models():
        graph = build_model(model_name, CFG)
        row = (f"{model_name:>16s} {MODEL_FAMILY[model_name]:>12s} "
               f"{graph.num_nodes:6d} {graph.total_flops() / 1e9:8.1f}")
        for dev_name, device in DEVICES.items():
            try:
                prof = profile_graph(graph, device)
                row += f" {prof.occupancy:13.1%} "
            except OutOfMemoryError:
                row += f" {'OOM':>13s} "
        print(row)

    print("\nNotes:")
    print(" * occupancy differs per device: the same kernels meet "
          "different warp budgets, register files, and SM counts;")
    print(" * GEMM-heavy models (VGG, GPT-2) sit low; elementwise-heavy "
          "and small models sit higher;")
    print(" * RNN/LSTM at batch 32 underfill the devices — their Table II "
          "domain starts at batch 128 for exactly this reason.")


if __name__ == "__main__":
    main()
