#!/usr/bin/env python
"""Training vs inference occupancy (extension beyond the paper's scope).

The paper predicts *inference* occupancy; the Table I edge features
reserve a "Backward" type for training graphs.  This example uses the
training-iteration profiler (forward + backward + optimizer kernels) to
compare both regimes across the model zoo.

Run:  python examples/training_vs_inference.py
"""

from __future__ import annotations

from repro.gpu import A100, OutOfMemoryError, profile_graph, \
    profile_training_graph
from repro.models import ModelConfig, build_model

MODELS = ("lenet", "alexnet", "vgg-11", "resnet-18", "resnet-50",
          "vit-t", "bert", "lstm")
CFG = ModelConfig(batch_size=32, seq_len=128)


def main() -> None:
    print(f"{'model':>12s} {'inf occ':>8s} {'train occ':>10s} "
          f"{'inf ms':>8s} {'train ms':>9s} {'ratio':>6s}")
    for name in MODELS:
        g = build_model(name, CFG)
        try:
            inf = profile_graph(g, A100)
            tr = profile_training_graph(g, A100)
        except OutOfMemoryError:
            print(f"{name:>12s} {'OOM':>8s}")
            continue
        ratio = tr.busy_time_s / inf.busy_time_s
        print(f"{name:>12s} {inf.occupancy:8.1%} {tr.occupancy:10.1%} "
              f"{inf.busy_time_s * 1e3:8.2f} {tr.busy_time_s * 1e3:9.2f} "
              f"{ratio:6.2f}")

    print("\nObservations:")
    print(" * a training step costs ~3x the inference iteration "
          "(dgrad + wgrad + optimizer);")
    print(" * occupancy stays in a similar band — backward GEMMs inherit "
          "the forward kernels' resource pressure;")
    print(" * the embedding backward (atomics) and optimizer step are "
          "memory-bound additions unique to training.")


if __name__ == "__main__":
    main()
