#!/usr/bin/env python
"""Quickstart: predict the GPU occupancy of a DL model before running it.

This walks the full DNN-occu pipeline on a small scale:

1. build computation graphs from the model zoo (the ONNX stand-in);
2. profile them on the simulated GPU (the Nsight Compute stand-in) to get
   ground-truth occupancy labels;
3. train the DNN-occu GNN on a handful of architectures;
4. predict the occupancy of a *never-seen* architecture (ResNet-50).

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro.core import DNNOccu, DNNOccuConfig, TrainConfig, Trainer
from repro.data import generate_dataset
from repro.features import encode_graph
from repro.gpu import A100, profile_graph
from repro.models import ModelConfig, build_model


def main() -> None:
    # ------------------------------------------------------------------ #
    # 1. A computation graph and its simulated profile
    # ------------------------------------------------------------------ #
    graph = build_model("resnet-50", ModelConfig(batch_size=64))
    profile = profile_graph(graph, A100)
    print(f"ResNet-50 (batch 64) on {A100.name}:")
    print(f"  graph: {graph.num_nodes} nodes / {graph.num_edges} edges, "
          f"{graph.total_flops() / 1e9:.1f} GFLOPs")
    print(f"  kernels launched : {profile.num_kernels}")
    print(f"  GPU occupancy    : {profile.occupancy:.1%}  "
          "(duration-weighted mean over kernels)")
    print(f"  NVML utilization : {profile.nvml_utilization:.1%}  "
          "(the loose metric the paper criticizes)")

    # ------------------------------------------------------------------ #
    # 2. Train DNN-occu on a few *other* architectures
    # ------------------------------------------------------------------ #
    train_models = ["lenet", "alexnet", "vgg-11", "resnet-18"]
    print(f"\nGenerating training data from {train_models} ...")
    train = generate_dataset(train_models, [A100], configs_per_model=5,
                             seed=0)
    print(f"  {len(train)} labelled graphs "
          f"(occupancy range {train.labels().min():.2f}"
          f"-{train.labels().max():.2f})")

    model = DNNOccu(DNNOccuConfig(hidden=48, num_heads=4), seed=0)
    trainer = Trainer(model, TrainConfig(epochs=30, lr=1e-3, batch_size=8))
    print("Training DNN-occu (30 epochs) ...")
    hist = trainer.fit(train)
    print(f"  MSE loss {hist.train_loss[0]:.4f} -> {hist.train_loss[-1]:.5f}")

    # ------------------------------------------------------------------ #
    # 3. Predict the unseen model and compare with the measurement
    # ------------------------------------------------------------------ #
    predicted = model.predict(encode_graph(graph, A100))
    print(f"\nResNet-50 was never in the training set:")
    print(f"  predicted occupancy : {predicted:.1%}")
    print(f"  measured  occupancy : {profile.occupancy:.1%}")
    print(f"  relative error      : "
          f"{abs(predicted - profile.occupancy) / profile.occupancy:.1%}")


if __name__ == "__main__":
    main()
