#!/usr/bin/env python
"""Case study 1 (Section VI-A): occupancy-aware hyperparameter tuning.

A user wants the batch size that makes best use of an A100 without paying
for a profiling run per candidate.  DNN-occu predicts the occupancy of
every candidate configuration from the computation graph alone; we compare
its ranking against the (expensive) profiled truth and against what the
NVML metric would have suggested.

Run:  python examples/hyperparameter_tuning.py
"""

from __future__ import annotations

import numpy as np

from repro.core import DNNOccu, DNNOccuConfig, TrainConfig, Trainer
from repro.data import generate_dataset
from repro.features import encode_graph
from repro.gpu import A100, profile_graph
from repro.models import ModelConfig, build_model

CANDIDATE_BATCHES = (16, 24, 32, 48, 64, 96, 128)
TARGET = "resnet-18"


def main() -> None:
    # Train the predictor on other models (the target never appears).
    train = generate_dataset(["lenet", "alexnet", "vgg-11", "vgg-13"],
                             [A100], configs_per_model=5, seed=0)
    model = DNNOccu(DNNOccuConfig(hidden=48, num_heads=4), seed=0)
    Trainer(model, TrainConfig(epochs=30, lr=1e-3)).fit(train)

    print(f"Batch-size sweep for {TARGET} on {A100.name}\n")
    print(f"{'batch':>6s} {'predicted':>10s} {'measured':>9s} "
          f"{'nvml':>6s}")
    rows = []
    for bs in CANDIDATE_BATCHES:
        g = build_model(TARGET, ModelConfig(batch_size=bs))
        pred = model.predict(encode_graph(g, A100))
        prof = profile_graph(g, A100)
        rows.append((bs, pred, prof.occupancy, prof.nvml_utilization))
        print(f"{bs:6d} {pred:10.3f} {prof.occupancy:9.3f} "
              f"{prof.nvml_utilization:6.3f}")

    best_pred = max(rows, key=lambda r: r[1])
    best_true = max(rows, key=lambda r: r[2])
    print(f"\nDNN-occu recommends batch {best_pred[0]} "
          f"(true occupancy {best_pred[2]:.3f})")
    print(f"Oracle (profiling every candidate) picks batch {best_true[0]} "
          f"(occupancy {best_true[2]:.3f})")
    print(f"Achieved {best_pred[2] / best_true[2]:.1%} of the oracle's "
          "occupancy with zero profiling runs.")
    print("\nNote how NVML saturates across the sweep — it cannot rank "
          "these candidates, which is exactly the paper's argument for "
          "occupancy as the guiding metric.")


if __name__ == "__main__":
    main()
