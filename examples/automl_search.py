#!/usr/bin/env python
"""AutoML-style configuration search guided by DNN-occu (Section I's
motivation: "it is also beneficial to take GPU utilization into account
for better hyperparameter tuning and neural architecture search").

Searches a 2-D configuration space (batch size x input channels) for a
target model under a *predicted-occupancy* objective, profiling only the
few finalists instead of the whole grid — the cost saving that motivates
prediction over measurement.

Run:  python examples/automl_search.py
"""

from __future__ import annotations

import numpy as np

from repro.core import DNNOccu, DNNOccuConfig, TrainConfig, Trainer
from repro.data import generate_dataset
from repro.features import encode_graph
from repro.gpu import A100, OutOfMemoryError, profile_graph
from repro.models import ModelConfig, build_model

TARGET = "resnet-34"
BATCHES = tuple(range(16, 129, 16))
CHANNELS = (1, 3, 5, 7, 9)
TOP_K = 3


def main() -> None:
    print("Training the predictor on other architectures ...")
    train = generate_dataset(["lenet", "alexnet", "vgg-11", "resnet-18"],
                             [A100], configs_per_model=5, seed=0)
    model = DNNOccu(DNNOccuConfig(hidden=48, num_heads=4), seed=0)
    Trainer(model, TrainConfig(epochs=30, lr=1e-3)).fit(train)

    space = [(b, c) for b in BATCHES for c in CHANNELS]
    print(f"\nScoring all {len(space)} candidate configurations of "
          f"{TARGET} by predicted occupancy (no profiling):")
    scored = []
    for batch, channels in space:
        cfg = ModelConfig(batch_size=batch, in_channels=channels)
        graph = build_model(TARGET, cfg)
        scored.append((model.predict(encode_graph(graph, A100)),
                       batch, channels))
    scored.sort(reverse=True)

    print(f"\nTop {TOP_K} candidates -> verified by profiling:")
    print(f"{'rank':>4s} {'batch':>6s} {'chan':>5s} {'predicted':>10s} "
          f"{'measured':>9s}")
    best_measured = 0.0
    for rank, (pred, batch, channels) in enumerate(scored[:TOP_K], 1):
        cfg = ModelConfig(batch_size=batch, in_channels=channels)
        try:
            measured = profile_graph(build_model(TARGET, cfg), A100).occupancy
        except OutOfMemoryError:
            measured = float("nan")
        best_measured = max(best_measured, measured)
        print(f"{rank:4d} {batch:6d} {channels:5d} {pred:10.3f} "
              f"{measured:9.3f}")

    # Oracle: profile the entire space (what prediction avoids).
    oracle = 0.0
    for batch, channels in space:
        cfg = ModelConfig(batch_size=batch, in_channels=channels)
        try:
            oracle = max(oracle, profile_graph(build_model(TARGET, cfg),
                                               A100).occupancy)
        except OutOfMemoryError:
            continue

    print(f"\nSearch profiled {TOP_K}/{len(space)} configurations "
          f"({100 * (1 - TOP_K / len(space)):.0f}% fewer profiling runs)")
    print(f"best found occupancy : {best_measured:.3f}")
    print(f"oracle (full grid)   : {oracle:.3f}  "
          f"-> {best_measured / oracle:.1%} of optimal")


if __name__ == "__main__":
    main()
