#!/usr/bin/env bash
# Regenerate everything: install, test, reproduce all tables/figures.
#
#   bash scripts/run_all.sh [BENCH_SCALE]
#
# BENCH_SCALE (default 1) scales dataset sizes / training epochs in the
# benchmark harness; 2-3 gives tighter reproduction numbers.
set -euo pipefail
cd "$(dirname "$0")/.."

SCALE="${1:-1}"

echo "== install (offline-friendly editable) =="
pip install -e . 2>/dev/null || python setup.py develop

echo "== syntax check (fail fast on any unparseable module) =="
python -m compileall -q src

echo "== static analysis: self-lint + concurrency + zoo + registries =="
python -m repro lint --self --concurrency
python -m repro lint --zoo --registries

echo "== unit / integration / property tests =="
python -m pytest tests/ -q | tee test_output.txt

echo "== lock sanitizer: suite under LockWatch (zero inversions gate) =="
REPRO_LOCKWATCH=1 python -m pytest tests/ -q

echo "== observability smoke: trace round-trip =="
OBS_TRACE="$(mktemp /tmp/repro_trace.XXXXXX.json)"
python -m repro profile --model lenet --batch 16 --trace-out "$OBS_TRACE"
python -m repro obs "$OBS_TRACE"
rm -f "$OBS_TRACE"

echo "== serving SLOs: request-scoped trace + error-budget check =="
SLO_TRACE="$(mktemp /tmp/repro_slo.XXXXXX.json)"
python -m repro slo --requests 60 --out "$SLO_TRACE" --check
python -m repro obs "$SLO_TRACE" --requests 5
rm -f "$SLO_TRACE"

echo "== observability gates: tracing overhead / flight ring / SLO math =="
python -m repro obs-bench --scale "$SCALE" \
    --out benchmarks/results/BENCH_obs.json --check

echo "== resilience smoke: chaos sweep must finish with zero lost jobs =="
python -m repro chaos --gpus 2 --jobs 6 --fault-rates 0.0 0.25 \
    --gpu-mtbf 200 --checkpoint-interval 10 --fail-on-lost

echo "== fleet chaos smoke: worker kill+hang with zero dropped tickets =="
python -m repro fleet-bench --suite chaos --check

echo "== perf gates: batched training / parallel+cached generation =="
python -m repro bench --scale "$SCALE" \
    --out benchmarks/results/BENCH_perf.json --check

echo "== trace gates: compiled replay speedup / equivalence / fallback =="
python -m repro trace-bench --scale "$SCALE" \
    --out benchmarks/results/BENCH_trace.json --check

echo "== serving gates: micro-batch throughput / warm cache / overload =="
python -m repro serve-bench --scale "$SCALE" \
    --out benchmarks/results/BENCH_serve.json --check

echo "== fleet gates: hash-aware scaling / worker chaos / shared tier =="
python -m repro fleet-bench --scale "$SCALE" \
    --out benchmarks/results/BENCH_fleet.json --check

echo "== reproduce every table and figure (scale=$SCALE) =="
REPRO_BENCH_SCALE="$SCALE" python -m pytest benchmarks/ --benchmark-only \
    | tee bench_output.txt

echo "== assemble the report =="
python benchmarks/collect_results.py
echo "done: see benchmarks/results/REPORT.md"
