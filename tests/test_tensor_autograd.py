"""Autograd engine tests: every op's gradient against finite differences,
plus structural behaviours (broadcasting, tape, no_grad)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tensor import Tensor, no_grad, is_grad_enabled


def numeric_grad(fn, x: np.ndarray, eps: float = 1e-6) -> np.ndarray:
    """Central finite differences of a scalar-valued ``fn`` w.r.t. ``x``."""
    g = np.zeros_like(x)
    flat = x.reshape(-1)
    gf = g.reshape(-1)
    for i in range(flat.size):
        orig = flat[i]
        flat[i] = orig + eps
        hi = fn(x)
        flat[i] = orig - eps
        lo = fn(x)
        flat[i] = orig
        gf[i] = (hi - lo) / (2 * eps)
    return g


def check_grad(op, x: np.ndarray, atol: float = 1e-6) -> None:
    """Compare autograd gradient of ``sum(op(x))`` to finite differences."""
    t = Tensor(x.copy(), requires_grad=True)
    out = op(t).sum()
    out.backward()
    num = numeric_grad(lambda a: float(op(Tensor(a)).sum().data), x.copy())
    np.testing.assert_allclose(t.grad, num, atol=atol, rtol=1e-4)


RNG = np.random.default_rng(42)


class TestElementwiseGradients:
    def test_add(self):
        check_grad(lambda t: t + 3.0, RNG.normal(size=(3, 4)))

    def test_sub(self):
        check_grad(lambda t: 5.0 - t, RNG.normal(size=(3, 4)))

    def test_mul(self):
        check_grad(lambda t: t * t, RNG.normal(size=(3, 4)))

    def test_div(self):
        check_grad(lambda t: 1.0 / (t * t + 2.0), RNG.normal(size=(3, 4)))

    def test_neg(self):
        check_grad(lambda t: -t, RNG.normal(size=(2, 5)))

    def test_pow(self):
        check_grad(lambda t: t ** 3, RNG.normal(size=(3, 3)))

    def test_exp(self):
        check_grad(lambda t: t.exp(), RNG.normal(size=(3, 4)))

    def test_log(self):
        check_grad(lambda t: t.log(), RNG.uniform(0.5, 2.0, size=(3, 4)))

    def test_tanh(self):
        check_grad(lambda t: t.tanh(), RNG.normal(size=(3, 4)))

    def test_sigmoid(self):
        check_grad(lambda t: t.sigmoid(), RNG.normal(size=(3, 4)))

    def test_sigmoid_extreme_values_stable(self):
        t = Tensor(np.array([-800.0, 800.0]), requires_grad=True)
        out = t.sigmoid()
        assert np.all(np.isfinite(out.data))
        np.testing.assert_allclose(out.data, [0.0, 1.0], atol=1e-12)

    def test_relu(self):
        x = RNG.normal(size=(3, 4))
        x[np.abs(x) < 0.1] += 0.5  # avoid the kink
        check_grad(lambda t: t.relu(), x)

    def test_leaky_relu(self):
        x = RNG.normal(size=(3, 4))
        x[np.abs(x) < 0.1] += 0.5
        check_grad(lambda t: t.leaky_relu(0.2), x)

    def test_sqrt(self):
        check_grad(lambda t: t.sqrt(), RNG.uniform(0.5, 2.0, size=(4,)))

    def test_abs(self):
        x = RNG.normal(size=(3, 4))
        x[np.abs(x) < 0.1] += 0.5
        check_grad(lambda t: t.abs(), x)

    def test_clip(self):
        x = RNG.normal(size=(4, 4)) * 2
        x[np.abs(np.abs(x) - 1.0) < 0.1] *= 1.5  # away from clip edges
        check_grad(lambda t: t.clip(-1.0, 1.0), x)


class TestMatmulGradients:
    def test_matmul_2d(self):
        a = RNG.normal(size=(3, 4))
        b = RNG.normal(size=(4, 5))
        ta = Tensor(a, requires_grad=True)
        tb = Tensor(b, requires_grad=True)
        (ta @ tb).sum().backward()
        np.testing.assert_allclose(ta.grad, np.ones((3, 5)) @ b.T)
        np.testing.assert_allclose(tb.grad, a.T @ np.ones((3, 5)))

    def test_matmul_batched(self):
        a = RNG.normal(size=(2, 3, 4))
        b = RNG.normal(size=(2, 4, 5))
        ta = Tensor(a, requires_grad=True)
        tb = Tensor(b, requires_grad=True)
        (ta @ tb).sum().backward()
        g = np.ones((2, 3, 5))
        np.testing.assert_allclose(ta.grad, g @ np.swapaxes(b, -1, -2))
        np.testing.assert_allclose(tb.grad, np.swapaxes(a, -1, -2) @ g)

    def test_matmul_broadcast_batch(self):
        # (2, 3, 4) @ (4, 5): the rhs broadcasts over the batch dim.
        a = RNG.normal(size=(2, 3, 4))
        b = RNG.normal(size=(4, 5))
        ta = Tensor(a, requires_grad=True)
        tb = Tensor(b, requires_grad=True)
        (ta @ tb).sum().backward()
        assert ta.grad.shape == a.shape
        assert tb.grad.shape == b.shape
        g = np.ones((2, 3, 5))
        np.testing.assert_allclose(tb.grad,
                                   np.einsum("bij,bik->jk", a, g))

    def test_matmul_vector(self):
        a = RNG.normal(size=(3, 4))
        v = RNG.normal(size=(4,))
        ta = Tensor(a, requires_grad=True)
        tv = Tensor(v, requires_grad=True)
        (ta @ tv).sum().backward()
        np.testing.assert_allclose(ta.grad, np.outer(np.ones(3), v))
        np.testing.assert_allclose(tv.grad, a.T @ np.ones(3))


class TestReductionGradients:
    def test_sum_all(self):
        check_grad(lambda t: t.sum(), RNG.normal(size=(3, 4)))

    def test_sum_axis(self):
        check_grad(lambda t: t.sum(axis=0), RNG.normal(size=(3, 4)))
        check_grad(lambda t: t.sum(axis=1, keepdims=True),
                   RNG.normal(size=(3, 4)))

    def test_mean(self):
        check_grad(lambda t: t.mean(), RNG.normal(size=(3, 4)))
        check_grad(lambda t: t.mean(axis=-1), RNG.normal(size=(2, 3, 4)))

    def test_max(self):
        x = RNG.normal(size=(3, 4))
        check_grad(lambda t: t.max(), x)
        check_grad(lambda t: t.max(axis=1), x)

    def test_max_ties_split_gradient(self):
        t = Tensor(np.array([2.0, 2.0, 1.0]), requires_grad=True)
        t.max().backward()
        np.testing.assert_allclose(t.grad, [0.5, 0.5, 0.0])

    def test_var(self):
        check_grad(lambda t: t.var(axis=-1), RNG.normal(size=(3, 5)))


class TestShapeGradients:
    def test_reshape(self):
        check_grad(lambda t: (t.reshape(6, 2) ** 2), RNG.normal(size=(3, 4)))

    def test_transpose(self):
        check_grad(lambda t: t.transpose(1, 0) * 2.0, RNG.normal(size=(3, 4)))
        check_grad(lambda t: t.transpose(2, 0, 1).exp(),
                   RNG.normal(size=(2, 3, 4)))

    def test_swapaxes(self):
        check_grad(lambda t: t.swapaxes(0, 2).tanh(),
                   RNG.normal(size=(2, 3, 4)))

    def test_getitem_rows(self):
        x = RNG.normal(size=(5, 3))
        idx = np.array([0, 2, 2, 4])
        t = Tensor(x, requires_grad=True)
        t[idx].sum().backward()
        expected = np.zeros((5, 3))
        np.add.at(expected, idx, 1.0)
        np.testing.assert_allclose(t.grad, expected)

    def test_getitem_slice(self):
        check_grad(lambda t: t[1:3] * 3.0, RNG.normal(size=(5, 3)))

    def test_concat(self):
        a = RNG.normal(size=(2, 3))
        b = RNG.normal(size=(4, 3))
        ta = Tensor(a, requires_grad=True)
        tb = Tensor(b, requires_grad=True)
        Tensor.concat([ta, tb], axis=0).sum().backward()
        np.testing.assert_allclose(ta.grad, np.ones((2, 3)))
        np.testing.assert_allclose(tb.grad, np.ones((4, 3)))

    def test_stack(self):
        a = RNG.normal(size=(3,))
        ta = Tensor(a, requires_grad=True)
        tb = Tensor(a * 2, requires_grad=True)
        out = Tensor.stack([ta, tb], axis=0)
        assert out.shape == (2, 3)
        (out * 2).sum().backward()
        np.testing.assert_allclose(ta.grad, 2 * np.ones(3))

    def test_scatter_add_forward(self):
        vals = Tensor(np.arange(6.0).reshape(3, 2), requires_grad=True)
        out = Tensor.scatter_add(vals, np.array([0, 0, 1]), 2)
        np.testing.assert_allclose(out.data, [[2.0, 4.0], [4.0, 5.0]])

    def test_scatter_add_backward(self):
        vals = Tensor(RNG.normal(size=(3, 2)), requires_grad=True)
        idx = np.array([1, 0, 1])
        out = Tensor.scatter_add(vals, idx, 2)
        (out * Tensor(np.array([[1.0, 2.0], [3.0, 4.0]]))).sum().backward()
        np.testing.assert_allclose(
            vals.grad, np.array([[3.0, 4.0], [1.0, 2.0], [3.0, 4.0]]))


class TestSoftmaxGradients:
    def test_softmax_rows_sum_to_one(self):
        t = Tensor(RNG.normal(size=(4, 6)))
        np.testing.assert_allclose(t.softmax(-1).data.sum(axis=-1),
                                   np.ones(4))

    def test_softmax_grad(self):
        x = RNG.normal(size=(3, 5))
        check_grad(lambda t: (t.softmax(-1) ** 2), x)

    def test_log_softmax_grad(self):
        check_grad(lambda t: t.log_softmax(-1) * 0.5,
                   RNG.normal(size=(3, 5)))

    def test_softmax_shift_invariance(self):
        x = RNG.normal(size=(2, 4))
        a = Tensor(x).softmax(-1).data
        b = Tensor(x + 100.0).softmax(-1).data
        np.testing.assert_allclose(a, b, atol=1e-12)


class TestBroadcasting:
    def test_add_broadcast_grad_shapes(self):
        a = Tensor(RNG.normal(size=(3, 4)), requires_grad=True)
        b = Tensor(RNG.normal(size=(4,)), requires_grad=True)
        (a + b).sum().backward()
        assert a.grad.shape == (3, 4)
        assert b.grad.shape == (4,)
        np.testing.assert_allclose(b.grad, 3 * np.ones(4))

    def test_mul_broadcast_column(self):
        a = Tensor(RNG.normal(size=(3, 4)), requires_grad=True)
        b = Tensor(RNG.normal(size=(3, 1)), requires_grad=True)
        (a * b).sum().backward()
        assert b.grad.shape == (3, 1)
        np.testing.assert_allclose(b.grad[:, 0], a.data.sum(axis=1))

    def test_scalar_broadcast(self):
        a = Tensor(RNG.normal(size=(2, 2)), requires_grad=True)
        s = Tensor(2.0, requires_grad=True)
        (a * s).sum().backward()
        np.testing.assert_allclose(float(s.grad), a.data.sum())


class TestTapeMechanics:
    def test_grad_accumulates_across_uses(self):
        t = Tensor(np.array([1.0, 2.0]), requires_grad=True)
        (t * 2 + t * 3).sum().backward()
        np.testing.assert_allclose(t.grad, [5.0, 5.0])

    def test_backward_without_requires_grad_raises(self):
        with pytest.raises(RuntimeError):
            Tensor(np.ones(3)).sum().backward()

    def test_no_grad_blocks_tape(self):
        t = Tensor(np.ones(3), requires_grad=True)
        with no_grad():
            assert not is_grad_enabled()
            out = (t * 2).sum()
        assert not out.requires_grad
        assert is_grad_enabled()

    def test_detach(self):
        t = Tensor(np.ones(3), requires_grad=True)
        d = t.detach()
        assert not d.requires_grad
        assert d.data is t.data

    def test_deep_chain_no_recursion_error(self):
        t = Tensor(np.array(1.0), requires_grad=True)
        out = t
        for _ in range(3000):
            out = out * 1.0001
        out.backward()
        assert t.grad is not None

    def test_diamond_graph_gradient(self):
        t = Tensor(np.array(2.0), requires_grad=True)
        a = t * 3
        b = t * 4
        (a * b).backward()  # d/dt (12 t^2) = 24 t = 48
        np.testing.assert_allclose(float(t.grad), 48.0)

    def test_zero_grad(self):
        t = Tensor(np.ones(2), requires_grad=True)
        t.sum().backward()
        t.zero_grad()
        assert t.grad is None


class TestHypothesisProperties:
    @given(st.lists(st.floats(-10, 10), min_size=1, max_size=20))
    @settings(max_examples=50, deadline=None)
    def test_sum_linearity(self, values):
        x = np.array(values)
        a = Tensor(x, requires_grad=True)
        (a * 2.0 + a * 3.0).sum().backward()
        np.testing.assert_allclose(a.grad, 5.0 * np.ones_like(x))

    @given(st.integers(1, 6), st.integers(1, 6))
    @settings(max_examples=30, deadline=None)
    def test_matmul_shape(self, m, n):
        a = Tensor(np.ones((m, 3)))
        b = Tensor(np.ones((3, n)))
        assert (a @ b).shape == (m, n)

    @given(st.lists(st.floats(-50, 50), min_size=2, max_size=12))
    @settings(max_examples=50, deadline=None)
    def test_softmax_is_distribution(self, values):
        p = Tensor(np.array(values)).softmax(-1).data
        assert np.all(p >= 0)
        np.testing.assert_allclose(p.sum(), 1.0, atol=1e-9)

    @given(st.lists(st.floats(-5, 5), min_size=1, max_size=10),
           st.lists(st.floats(-5, 5), min_size=1, max_size=10))
    @settings(max_examples=50, deadline=None)
    def test_chain_rule_scalar(self, xs, ys):
        # d/dx sum((x*c)^2) = 2*c^2*x for constant c.
        x = np.array(xs)
        c = float(np.sum(ys)) or 1.0
        t = Tensor(x, requires_grad=True)
        ((t * c) ** 2).sum().backward()
        np.testing.assert_allclose(t.grad, 2 * c * c * x, rtol=1e-9,
                                   atol=1e-9)
