"""repro.perf: batched execution, parallel generation, profile cache.

The contracts under test are the PR's acceptance gates:

* the masked dense batch (``collate`` + ``forward_batch``) reproduces
  the per-graph forward *and* backward within 1e-6 across the full
  model zoo;
* ``generate_dataset(workers=N)`` is bit-identical to serial for any N;
* the content-addressed cache never changes results — hits rebuild the
  exact dataset, corrupt entries are detected, treated as misses, and
  regenerated rather than served.
"""

from __future__ import annotations

import glob
import os

import numpy as np
import pytest

from repro import obs
from repro.core import DNNOccu, DNNOccuConfig, TrainConfig, Trainer
from repro.data import generate_dataset
from repro.data.dataset import config_domain
from repro.features import encode_graph
from repro.features.encode import (feature_blocks, node_feature_dim,
                                   edge_feature_dim)
from repro.gpu import get_device, profile_graph
from repro.models import ModelConfig, build_model, list_models
from repro.perf import GraphBatch, ProfileCache, cache_key, collate, \
    ensure_spd
from repro.perf.bench import _fingerprint
from repro.tensor import Tensor

A100 = get_device("A100")


def _counter_values(registry) -> dict[str, float]:
    return {m.name: m.value for m in registry if m.kind == "counter"}


def _model(hidden: int = 32, seed: int = 7) -> DNNOccu:
    return DNNOccu(DNNOccuConfig(hidden=hidden, num_heads=4), seed=seed)


def _zoo_features() -> list:
    feats = []
    for name in list_models():
        g = build_model(name, ModelConfig(batch_size=16))
        feats.append(encode_graph(g, A100))
    # batching pads to the largest member; sort by size so chunks stay
    # representative of both homogeneous and mixed batches
    feats.sort(key=lambda f: f.num_nodes)
    return feats


# --------------------------------------------------------------------- #
# batched forward/backward equivalence
# --------------------------------------------------------------------- #

class TestBatchedEquivalence:
    def test_forward_matches_per_graph_across_zoo(self):
        feats = _zoo_features()
        model = _model()
        per = np.array([model.predict(f) for f in feats])
        batched = np.concatenate([
            model.predict_batch(feats[i:i + 8])
            for i in range(0, len(feats), 8)])
        np.testing.assert_allclose(batched, per, atol=1e-6, rtol=0)

    def test_single_graph_batch_matches_forward(self):
        f = encode_graph(build_model("vit-t", ModelConfig()), A100)
        model = _model()
        assert model.predict_batch([f])[0] == \
            pytest.approx(model.predict(f), abs=1e-6)

    def test_gradients_match_per_graph(self):
        names = ("lenet", "alexnet", "rnn", "lstm", "vgg-11", "resnet-18",
                 "bert", "vit-t")
        feats = [encode_graph(build_model(n, ModelConfig()), A100)
                 for n in names]
        ys = np.linspace(0.2, 0.8, len(feats))
        model = _model()

        model.zero_grad()
        loss = None
        for f, y in zip(feats, ys):
            err = (model.forward(f) - y) ** 2
            loss = err if loss is None else loss + err
        (loss * (1.0 / len(feats))).backward()
        ref = [p.grad.copy() for p in model.parameters()]

        model.zero_grad()
        preds = model.forward_batch(collate(feats))
        (((preds - Tensor(ys)) ** 2).sum()
         * (1.0 / len(feats))).backward()
        for p, g in zip(model.parameters(), ref):
            np.testing.assert_allclose(p.grad, g, atol=1e-6, rtol=0)

    def test_trainer_batched_fit_matches_loss_curve(self):
        ds = generate_dataset(("lenet", "rnn"), [A100],
                              configs_per_model=3, seed=3)
        histories = []
        for batched in (False, True):
            trainer = Trainer(_model(), TrainConfig(
                epochs=3, batch_size=4, lr=1e-3, seed=9,
                preflight=False))
            histories.append(trainer.fit(ds, batched=batched))
        np.testing.assert_allclose(histories[1].train_loss,
                                   histories[0].train_loss, atol=1e-6)

    def test_trainer_batched_requires_forward_batch(self):
        class NoBatch:
            def parameters(self):
                return []

        trainer = Trainer.__new__(Trainer)
        trainer.model = NoBatch()
        with pytest.raises(TypeError, match="forward_batch"):
            Trainer.fit(trainer, [object()], batched=True)


# --------------------------------------------------------------------- #
# collate / GraphBatch
# --------------------------------------------------------------------- #

class TestCollate:
    def test_batch_shapes_and_mask(self):
        feats = [encode_graph(build_model(n, ModelConfig()), A100)
                 for n in ("lenet", "alexnet")]
        batch = collate(feats)
        assert isinstance(batch, GraphBatch)
        n_max = max(f.num_nodes for f in feats)
        assert batch.num_graphs == 2 and batch.n_max == n_max
        assert batch.node_mask.shape == (2, n_max)
        assert batch.node_mask.sum() == sum(f.num_nodes for f in feats)
        assert batch.spd.shape == (2, n_max, n_max)
        assert 0.0 <= batch.pad_waste < 1.0

    def test_empty_batch_rejected(self):
        with pytest.raises(ValueError):
            collate([])

    def test_pad_waste_histogram_observed(self):
        feats = [encode_graph(build_model(n, ModelConfig()), A100)
                 for n in ("lenet", "vit-t")]
        with obs.observed() as (_, registry):
            collate(feats)
        [hist] = [m for m in registry
                  if m.name == "perf_batch_pad_waste"]
        assert hist.count == 1
        # a 14-node graph padded to 347 wastes nearly half the batch
        assert hist.sum > 0.4


# --------------------------------------------------------------------- #
# deterministic parallel generation
# --------------------------------------------------------------------- #

class TestParallelGeneration:
    MODELS = ("lenet", "rnn")

    def _gen(self, **kw):
        return generate_dataset(self.MODELS, [A100],
                                configs_per_model=3, seed=17, **kw)

    def test_workers_bit_identical_to_serial(self):
        ref = _fingerprint(self._gen())
        for workers in (1, 2, 3, 4):
            assert _fingerprint(self._gen(workers=workers)) == ref, \
                f"workers={workers} diverged from serial"

    def test_worker_busy_gauge_recorded(self):
        with obs.observed() as (_, registry):
            self._gen(workers=2)
        gauges = [m for m in registry
                  if m.name == "perf_worker_busy_seconds"]
        assert gauges and all(g.value >= 0.0 for g in gauges)


# --------------------------------------------------------------------- #
# content-addressed profile cache
# --------------------------------------------------------------------- #

class TestProfileCache:
    MODELS = ("lenet", "rnn")

    def _gen(self, **kw):
        return generate_dataset(self.MODELS, [A100],
                                configs_per_model=3, seed=17, **kw)

    def test_hits_reproduce_dataset_exactly(self, tmp_path):
        ref = _fingerprint(self._gen())
        with obs.observed() as (_, registry):
            cold = self._gen(cache_dir=str(tmp_path))
        cold_counts = _counter_values(registry)
        assert cold_counts.get("perf_cache_misses_total", 0) > 0
        assert cold_counts.get("perf_cache_hits_total", 0) == 0

        # first warm run: parallel waves look ahead past the serial
        # quota, so a few lookahead attempts may still miss — but they
        # get cached, so a second identical run is all hits.
        warm = self._gen(cache_dir=str(tmp_path), workers=4)
        with obs.observed() as (_, registry):
            warm2 = self._gen(cache_dir=str(tmp_path), workers=4)
        warm_counts = _counter_values(registry)
        assert warm_counts.get("perf_cache_hits_total", 0) > 0
        assert warm_counts.get("perf_cache_misses_total", 0) == 0

        assert _fingerprint(cold) == ref
        assert _fingerprint(warm) == ref
        assert _fingerprint(warm2) == ref

    def test_roundtrip_entry(self, tmp_path):
        graph = build_model("lenet", ModelConfig())
        cache = ProfileCache(str(tmp_path))
        profile = profile_graph(graph, A100)
        features = encode_graph(graph, A100)
        cache.put(graph, A100, profile, features)
        entry = cache.get(graph, A100)
        assert entry is not None and not entry.oom
        assert entry.profile.aggregate_occupancy("mean") == \
            pytest.approx(profile.aggregate_occupancy("mean"))
        np.testing.assert_array_equal(entry.features.node_features,
                                      features.node_features)
        # the persisted SPD matrix rides along, already decoded
        np.testing.assert_array_equal(
            getattr(entry.features, "_spd_cache"), ensure_spd(features))

    def test_oom_entries_cached(self, tmp_path):
        graph = build_model("lenet", ModelConfig())
        cache = ProfileCache(str(tmp_path))
        cache.put(graph, A100, None, None)
        entry = cache.get(graph, A100)
        assert entry is not None and entry.oom
        assert entry.profile is None and entry.features is None

    def test_key_separates_graph_device_and_simulator(self, monkeypatch):
        g1 = build_model("lenet", ModelConfig())
        g2 = build_model("lenet", ModelConfig(batch_size=64))
        p40 = get_device("P40")
        assert cache_key(g1, A100) != cache_key(g2, A100)
        assert cache_key(g1, A100) != cache_key(g1, p40)
        before = cache_key(g1, A100)
        import repro.perf.cache as cache_mod
        monkeypatch.setattr(cache_mod, "SIMULATOR_VERSION", 999)
        assert cache_key(g1, A100) != before

    def test_corrupt_entry_is_miss_and_regenerated(self, tmp_path):
        graph = build_model("lenet", ModelConfig())
        cache = ProfileCache(str(tmp_path))
        cache.put(graph, A100, profile_graph(graph, A100),
                  encode_graph(graph, A100))
        [path] = glob.glob(os.path.join(str(tmp_path), "*.npz"))
        blob = bytearray(open(path, "rb").read())
        blob[len(blob) // 2] ^= 0xFF
        with open(path, "wb") as fh:
            fh.write(bytes(blob))

        with obs.observed() as (_, registry):
            assert cache.get(graph, A100) is None
        counts = _counter_values(registry)
        assert counts.get("perf_cache_corrupt_total") == 1
        assert counts.get("perf_cache_misses_total") == 1

        # a miss regenerates and overwrites; the entry is healthy again
        cache.put(graph, A100, profile_graph(graph, A100),
                  encode_graph(graph, A100))
        assert cache.get(graph, A100) is not None

    def test_corrupt_cache_still_yields_identical_dataset(self, tmp_path):
        ref = _fingerprint(self._gen())
        self._gen(cache_dir=str(tmp_path))
        for path in glob.glob(os.path.join(str(tmp_path), "*.npz")):
            with open(path, "r+b") as fh:
                fh.truncate(max(1, os.path.getsize(path) // 2))
        assert _fingerprint(self._gen(cache_dir=str(tmp_path))) == ref

    def test_truncated_to_zero_entry_is_miss(self, tmp_path):
        graph = build_model("lenet", ModelConfig())
        cache = ProfileCache(str(tmp_path))
        cache.put(graph, A100, None, None)
        [path] = glob.glob(os.path.join(str(tmp_path), "*.npz"))
        open(path, "wb").close()
        assert cache.get(graph, A100) is None
        assert len(cache) == 1  # the bad file is still there, unserved


# --------------------------------------------------------------------- #
# memoized feature metadata
# --------------------------------------------------------------------- #

class TestMemoizedMetadata:
    def test_dims_are_cached(self):
        assert node_feature_dim() == node_feature_dim()
        assert node_feature_dim.cache_info().hits >= 1
        assert edge_feature_dim() == edge_feature_dim()

    def test_feature_blocks_returns_fresh_copies(self):
        blocks = feature_blocks()
        blocks["hacked"] = slice(0, 1)
        assert "hacked" not in feature_blocks()

    def test_config_domain_returns_fresh_copies(self):
        dom = config_domain("lenet")
        dom["batch_size"] = ()
        assert config_domain("lenet")["batch_size"] != ()
        # per-family domains stay distinct
        assert config_domain("rnn") is not config_domain("rnn")
