"""Training-iteration profiling tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graph import GraphBuilder
from repro.gpu import (A100, P40, OutOfMemoryError, lower_backward,
                       profile_graph, profile_training_graph)
from repro.models import ModelConfig, build_model


@pytest.fixture(scope="module")
def pair():
    g = build_model("resnet-18", ModelConfig(batch_size=32))
    return (profile_graph(g, A100),
            profile_training_graph(g, A100))


class TestLowerBackward:
    def _node(self, fn):
        b = GraphBuilder("g")
        x = b.input((8, 16, 16, 16))
        ref = fn(b, x)
        return b.graph.nodes[ref.node_id]

    def test_input_has_no_backward(self):
        b = GraphBuilder("g")
        x = b.input((1, 3, 8, 8))
        assert lower_backward(b.graph.nodes[x.node_id], A100) == []

    def test_conv_gets_dgrad_and_wgrad(self):
        node = self._node(lambda b, x: b.conv2d(x, 8, 3, padding=1))
        names = [k.name for k in lower_backward(node, A100)]
        assert any("dgrad" in n for n in names)
        assert any("wgrad" in n for n in names)

    def test_relu_gets_single_backward(self):
        node = self._node(lambda b, x: b.relu(x))
        kernels = lower_backward(node, A100)
        assert len(kernels) == 1
        assert "dgrad" in kernels[0].name

    def test_embedding_backward_is_atomics(self):
        b = GraphBuilder("g")
        x = b.input((4, 10))
        ref = b.embedding(x, 100, 8)
        kernels = lower_backward(b.graph.nodes[ref.node_id], A100)
        assert "atomics" in kernels[0].name

    def test_reshape_free_in_backward(self):
        node = self._node(lambda b, x: b.reshape(x, (8, 16 * 16 * 16)))
        assert lower_backward(node, A100) == []


class TestTrainingProfile:
    def test_training_costs_more_than_inference(self, pair):
        inf, tr = pair
        assert tr.busy_time_s > 2 * inf.busy_time_s
        assert tr.num_kernels > 2 * inf.num_kernels

    def test_training_flops_roughly_triple(self, pair):
        inf, tr = pair
        f_inf = sum(r.flops for r in inf.records)
        f_tr = sum(r.flops for r in tr.records)
        assert 2.0 < f_tr / f_inf < 4.0

    def test_occupancy_valid(self, pair):
        _, tr = pair
        assert 0.0 < tr.occupancy < 1.0
        assert all(0.0 < r.occupancy <= 1.0 for r in tr.records)

    def test_optimizer_kernel_present(self, pair):
        _, tr = pair
        assert any(r.name == "fused_optimizer_step" for r in tr.records)

    def test_name_suffix(self, pair):
        _, tr = pair
        assert tr.model_name.endswith("_train")

    def test_training_oom_stricter_than_inference(self):
        # A config that fits for inference can OOM for training (2x set).
        g = build_model("vgg-16", ModelConfig(batch_size=160))
        profile_graph(g, P40)  # inference fits
        with pytest.raises(OutOfMemoryError):
            profile_training_graph(g, P40)

    def test_deterministic(self):
        g = build_model("lenet", ModelConfig(batch_size=16))
        a = profile_training_graph(g, A100).occupancy
        b = profile_training_graph(g, A100).occupancy
        assert a == b

    def test_trainable_as_labels(self):
        """Training occupancy works as a regression label end to end."""
        from repro.core import DNNOccu, DNNOccuConfig
        from repro.features import encode_graph
        from repro.graph import add_backward_edges
        g = build_model("lenet", ModelConfig(batch_size=16))
        label = profile_training_graph(g, A100).occupancy
        feats = encode_graph(add_backward_edges(g), A100)
        model = DNNOccu(DNNOccuConfig(hidden=16, num_heads=2), seed=0)
        pred = model.predict(feats)
        assert 0.0 < label < 1.0 and 0.0 < pred < 1.0
