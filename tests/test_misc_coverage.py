"""Coverage for smaller behaviours across modules."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graph import GraphBuilder
from repro.gpu import A100, fuse_elementwise, profile_graph
from repro.models import ModelConfig, build_model
from repro.sched import InterferenceModel


class TestInterferenceParameters:
    def test_custom_cap_moves_knee(self):
        tight = InterferenceModel(cap=0.8)
        loose = InterferenceModel(cap=1.2)
        # Total 1.0: above the tight knee, below the loose one.
        assert tight.slowdown(0.5, [0.5]) > loose.slowdown(0.5, [0.5])

    def test_zero_alpha_beta_is_no_interference(self):
        m = InterferenceModel(alpha=0.0, beta=0.0)
        assert m.slowdown(0.9, [0.9, 0.9]) == 1.0


class TestFFNFusion:
    def test_gemm_gelu_fuses(self):
        b = GraphBuilder("ffn")
        x = b.input((4, 16))
        y = b.linear(x, 64)
        y = b.gelu(y)
        b.linear(y, 16)
        f = fuse_elementwise(b.finish())
        assert "GELU" not in f.op_type_histogram()
        assert f.op_type_histogram()["Gemm"] == 2

    def test_transformer_block_fusion_keeps_residuals(self):
        g = build_model("vit-t", ModelConfig(batch_size=8))
        f = fuse_elementwise(g)
        # Residual Adds cannot fuse (two consumers of producer outputs).
        assert f.op_type_histogram()["Add"] == \
            g.op_type_histogram()["Add"]


class TestBuilderMiscOps:
    def test_scale_preserves_shape(self):
        b = GraphBuilder("g")
        x = b.input((2, 3))
        assert b.scale(x).shape == (2, 3)

    def test_shift_window_preserves_shape(self):
        b = GraphBuilder("g")
        x = b.input((2, 14, 14, 8))
        assert b.shift_window(x).shape == (2, 14, 14, 8)

    def test_sigmoid_tanh_silu(self):
        b = GraphBuilder("g")
        x = b.input((2, 3))
        for fn in (b.sigmoid, b.tanh, b.silu, b.gelu):
            assert fn(x).shape == (2, 3)

    def test_groupnorm(self):
        b = GraphBuilder("g")
        x = b.input((2, 8, 4, 4))
        y = b.groupnorm(x, groups=4)
        assert y.shape == (2, 8, 4, 4)
        node = b.graph.nodes[y.node_id]
        assert node.attrs["groups"] == 4

    def test_slice_arbitrary_shape(self):
        b = GraphBuilder("g")
        x = b.input((4, 10, 16))
        assert b.slice(x, (4, 16)).shape == (4, 16)


class TestProfileFusedVsUnfused:
    def test_wall_time_drops_with_fusion(self):
        g = build_model("vgg-13", ModelConfig(batch_size=16))
        f = fuse_elementwise(g)
        t_g = profile_graph(g, A100, check_memory=False).wall_time_s
        t_f = profile_graph(f, A100, check_memory=False).wall_time_s
        assert t_f < t_g  # fewer launches, fewer dispatch gaps

    def test_fused_occupancy_still_valid(self):
        g = fuse_elementwise(build_model("resnet-34",
                                         ModelConfig(batch_size=16)))
        p = profile_graph(g, A100, check_memory=False)
        assert 0.0 < p.occupancy < 1.0


class TestModuleReprAndHelpers:
    def test_tensor_repr(self):
        from repro.tensor import Tensor
        t = Tensor(np.ones((2, 3)), requires_grad=True)
        assert "2, 3" in repr(t)

    def test_as_tensor_passthrough(self):
        from repro.tensor import Tensor, as_tensor
        t = Tensor(np.ones(2))
        assert as_tensor(t) is t
        assert isinstance(as_tensor([1.0, 2.0]), Tensor)

    def test_tensor_len_and_item(self):
        from repro.tensor import Tensor
        assert len(Tensor(np.ones(5))) == 5
        assert Tensor(3.5).item() == 3.5
