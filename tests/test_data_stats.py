"""Tests for k-fold cross-validation and dataset summaries."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import Dataset, k_fold, summarize


class TestKFold:
    def test_covers_every_sample_once(self, mixed_dataset, rng):
        seen = []
        for train, val in k_fold(mixed_dataset, 3, rng):
            assert len(train) + len(val) == len(mixed_dataset)
            seen.extend(id(s) for s in val)
        assert sorted(seen) == sorted(id(s) for s in mixed_dataset)

    def test_fold_sizes_balanced(self, mixed_dataset, rng):
        sizes = [len(val) for _, val in k_fold(mixed_dataset, 3, rng)]
        assert max(sizes) - min(sizes) <= 1

    def test_no_train_val_overlap(self, mixed_dataset, rng):
        for train, val in k_fold(mixed_dataset, 3, rng):
            train_ids = {id(s) for s in train}
            assert not any(id(s) in train_ids for s in val)

    def test_reproducible_by_seed(self, mixed_dataset):
        a = [len(v) and v[0].occupancy for _, v in
             k_fold(mixed_dataset, 3, np.random.default_rng(5))]
        b = [len(v) and v[0].occupancy for _, v in
             k_fold(mixed_dataset, 3, np.random.default_rng(5))]
        assert a == b

    def test_invalid_k(self, mixed_dataset, rng):
        with pytest.raises(ValueError):
            list(k_fold(mixed_dataset, 1, rng))
        with pytest.raises(ValueError):
            list(k_fold(Dataset([]), 2, rng))


class TestSummarize:
    def test_empty_dataset(self):
        out = summarize(Dataset([]))
        assert out["count"] == 0

    def test_counts_add_up(self, mixed_dataset):
        out = summarize(mixed_dataset)
        assert out["count"] == len(mixed_dataset)
        assert sum(v["count"] for v in out["families"].values()) == \
            len(mixed_dataset)
        assert sum(v["count"] for v in out["devices"].values()) == \
            len(mixed_dataset)

    def test_families_detected(self, mixed_dataset):
        out = summarize(mixed_dataset)
        assert "cnn" in out["families"]
        assert "rnn" in out["families"]

    def test_bounds_consistent(self, mixed_dataset):
        out = summarize(mixed_dataset)
        o = out["overall"]
        assert o["occupancy_min"] <= o["occupancy_mean"] \
            <= o["occupancy_max"]
        assert o["nodes_min"] <= o["nodes_max"]
