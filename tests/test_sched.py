"""Scheduler tests: jobs, interference, policies, simulator, workload."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gpu import P40
from repro.sched import (InterferenceModel, Job, NvmlUtilPacking,
                         OccuPacking, POLICIES, SlotPacking,
                         generate_workload, make_job, simulate)
from repro.models import ModelConfig


def job(jid=0, dur=10.0, occ=0.3, nvml=0.5, pred_occ=None, arrival=0.0):
    return Job(job_id=jid, model_name="m", duration_s=dur, occupancy=occ,
               nvml_utilization=nvml, predicted_occupancy=pred_occ,
               arrival_s=arrival)


class TestJob:
    def test_validation(self):
        with pytest.raises(ValueError):
            job(dur=0.0)
        with pytest.raises(ValueError):
            job(occ=1.5)

    def test_sched_occupancy_prefers_prediction(self):
        j = job(occ=0.3, pred_occ=0.7)
        assert j.sched_occupancy == 0.7
        assert job(occ=0.3).sched_occupancy == 0.3

    def test_jct_requires_completion(self):
        with pytest.raises(RuntimeError):
            _ = job().jct


class TestInterference:
    def test_alone_no_slowdown(self):
        m = InterferenceModel()
        assert m.slowdown(0.5, []) == 1.0

    def test_monotone_in_co_runners(self):
        m = InterferenceModel()
        s1 = m.slowdown(0.3, [0.2])
        s2 = m.slowdown(0.3, [0.2, 0.2])
        s3 = m.slowdown(0.3, [0.2, 0.2, 0.4])
        assert 1.0 < s1 < s2 < s3

    def test_knee_at_cap(self):
        """Past 100% cumulative occupancy the slope steepens (Fig. 7)."""
        m = InterferenceModel()
        below = m.slowdown(0.4, [0.5]) - m.slowdown(0.4, [0.4])
        above = m.slowdown(0.4, [0.8]) - m.slowdown(0.4, [0.7])
        assert above > below

    def test_band_matches_fig7(self):
        """Typical sub-knee co-locations land in the 10-60% band."""
        m = InterferenceModel()
        s = m.slowdown(0.4, [0.45])
        assert 1.10 <= s <= 1.60

    def test_pair_slowdown(self):
        m = InterferenceModel()
        a, b = m.pair_slowdown(0.3, 0.5)
        assert a == m.slowdown(0.3, [0.5])
        assert b == m.slowdown(0.5, [0.3])

    def test_invalid_occupancy(self):
        with pytest.raises(ValueError):
            InterferenceModel().slowdown(1.5, [])

    @given(st.floats(0, 1), st.lists(st.floats(0, 1), max_size=4))
    @settings(max_examples=60, deadline=None)
    def test_slowdown_at_least_one(self, own, others):
        assert InterferenceModel().slowdown(own, others) >= 1.0


class TestPolicies:
    def test_registry(self):
        assert set(POLICIES) == {"slot-packing", "nvml-util-packing",
                                 "occu-packing"}

    def test_slot_only_empty(self):
        p = SlotPacking()
        assert p.admits(job(), [])
        assert not p.admits(job(), [job(1)])

    def test_nvml_cap(self):
        p = NvmlUtilPacking(cap=1.0)
        low = job(nvml=0.4)
        assert p.admits(low, [job(1, nvml=0.5)])
        assert not p.admits(job(nvml=0.6), [job(1, nvml=0.5)])

    def test_occu_cap(self):
        p = OccuPacking(cap=1.0)
        assert p.admits(job(occ=0.4), [job(1, occ=0.5)])
        assert not p.admits(job(occ=0.6), [job(1, occ=0.5)])

    def test_occu_uses_predictions(self):
        p = OccuPacking(cap=1.0)
        # True occupancy fits, but the prediction says it will not.
        j = job(occ=0.1, pred_occ=0.9)
        assert not p.admits(j, [job(1, occ=0.1, pred_occ=0.5)])

    def test_occu_max_jobs(self):
        p = OccuPacking(cap=5.0, max_jobs_per_gpu=2)
        assert not p.admits(job(occ=0.01),
                            [job(1, occ=0.01), job(2, occ=0.01)])


class TestSimulator:
    def test_single_job(self):
        res = simulate([job(dur=10.0)], 1, SlotPacking())
        assert res.makespan_s == pytest.approx(10.0)
        assert res.jobs[0].jct == pytest.approx(10.0)

    def test_serial_queue_on_one_gpu(self):
        jobs = [job(0, 5.0), job(1, 5.0)]
        res = simulate(jobs, 1, SlotPacking())
        assert res.makespan_s == pytest.approx(10.0)
        assert jobs[1].start_s == pytest.approx(5.0)

    def test_two_gpus_parallel(self):
        jobs = [job(0, 5.0), job(1, 5.0)]
        res = simulate(jobs, 2, SlotPacking())
        assert res.makespan_s == pytest.approx(5.0)

    def test_colocation_with_interference(self):
        jobs = [job(0, 10.0, occ=0.4), job(1, 10.0, occ=0.4)]
        res = simulate(jobs, 1, OccuPacking())
        # Co-located: both stretched by the same slowdown factor.
        m = InterferenceModel().slowdown(0.4, [0.4])
        assert res.makespan_s == pytest.approx(10.0 * m)
        # Still beats serial execution (20 s) because slowdown < 2.
        assert res.makespan_s < 20.0

    def test_arrivals_respected(self):
        jobs = [job(0, 5.0), job(1, 5.0, arrival=100.0)]
        res = simulate(jobs, 2, SlotPacking())
        assert jobs[1].start_s == pytest.approx(100.0)
        assert res.makespan_s == pytest.approx(105.0)

    def test_oversized_job_falls_back_to_exclusive(self):
        # occ 0.9 > cap 0.5 -> not admissible anywhere, must still run.
        jobs = [job(0, 5.0, occ=0.9)]
        res = simulate(jobs, 1, OccuPacking(cap=0.5))
        assert res.makespan_s == pytest.approx(5.0)

    def test_utilization_bounds(self):
        jobs = [job(i, 5.0, occ=0.3, nvml=0.5) for i in range(6)]
        res = simulate(jobs, 2, OccuPacking())
        assert 0.0 < res.avg_nvml_utilization <= 1.0

    def test_nvml_integral_capped_at_one_per_gpu(self):
        jobs = [job(i, 10.0, occ=0.2, nvml=0.9) for i in range(3)]
        res = simulate(jobs, 1, OccuPacking())
        assert res.nvml_integral_s <= res.makespan_s + 1e-9

    def test_all_jobs_complete(self):
        jobs = [job(i, float(i + 1), occ=0.2) for i in range(7)]
        res = simulate(jobs, 3, OccuPacking())
        assert all(j.finish_s is not None for j in res.jobs)
        assert all(j.remaining_s == pytest.approx(0.0, abs=1e-9)
                   for j in res.jobs)

    def test_makespan_lower_bound_total_work(self):
        jobs = [job(i, 4.0, occ=0.2) for i in range(8)]
        res = simulate(jobs, 2, SlotPacking())
        # 8 jobs x 4 s on 2 GPUs serial: exactly 16 s.
        assert res.makespan_s == pytest.approx(16.0)

    def test_invalid_gpu_count(self):
        with pytest.raises(ValueError):
            simulate([job()], 0, SlotPacking())

    def test_empty_job_list(self):
        res = simulate([], 2, SlotPacking())
        assert res.makespan_s == 0.0
        assert res.avg_jct == 0.0
        assert res.avg_slowdown == 0.0
        assert res.avg_stretch == 0.0
        assert res.avg_queue_delay == 0.0
        assert res.avg_nvml_utilization == 0.0
        with pytest.raises(ValueError, match="no job completed"):
            res.jct_percentile(50.0)

    def test_jct_percentile_range_check(self):
        res = simulate([job(dur=5.0)], 1, SlotPacking())
        assert res.jct_percentile(50.0) == pytest.approx(5.0)
        with pytest.raises(ValueError, match="percentile"):
            res.jct_percentile(101.0)

    def test_deadlock_when_every_gpu_permanently_down(self):
        from repro.resilience import FaultConfig, FaultInjector
        import math as _math
        faults = FaultInjector(FaultConfig(
            gpu_mtbf_s=0.001, gpu_mttr_s=_math.inf), seed=0)
        with pytest.raises(RuntimeError, match="deadlock"):
            simulate([job(dur=10.0)], 1, SlotPacking(), faults=faults)

    def test_oversized_job_blocks_then_runs_exclusively(self):
        # FIFO head-of-line: the oversized job waits for an *empty* GPU,
        # blocking the queue behind it, then runs alone.
        jobs = [job(0, 5.0, occ=0.3), job(1, 5.0, occ=0.9),
                job(2, 5.0, occ=0.3)]
        res = simulate(jobs, 1, OccuPacking(cap=0.5))
        assert jobs[1].start_s == pytest.approx(5.0)
        assert jobs[2].start_s == pytest.approx(10.0)
        assert res.makespan_s == pytest.approx(15.0)

    def test_rerunnable_under_multiple_policies(self):
        jobs = [job(i, 5.0, occ=0.3) for i in range(4)]
        r1 = simulate(jobs, 2, SlotPacking())
        r2 = simulate(jobs, 2, OccuPacking())
        assert r2.makespan_s <= r1.makespan_s + 1e-9

    @given(st.integers(1, 8), st.integers(1, 4))
    @settings(max_examples=25, deadline=None)
    def test_makespan_at_least_longest_job(self, n_jobs, n_gpus):
        jobs = [job(i, dur=2.0 + i, occ=0.2) for i in range(n_jobs)]
        res = simulate(jobs, n_gpus, OccuPacking())
        assert res.makespan_s >= max(j.duration_s for j in jobs) - 1e-9


class TestWorkload:
    def test_make_job_fields(self):
        j = make_job(0, "lenet", ModelConfig(batch_size=32), P40,
                     iterations=100, host_overhead_factor=1.0)
        assert j.duration_s > 0
        assert 0 < j.occupancy < 1
        # 1:1 host overhead halves the duty cycle.
        assert j.nvml_utilization < j.predicted_nvml

    def test_generate_workload_count_and_seeding(self):
        a = generate_workload(["lenet", "rnn"], P40, 5, seed=2)
        b = generate_workload(["lenet", "rnn"], P40, 5, seed=2)
        assert len(a) == 5
        assert [j.duration_s for j in a] == [j.duration_s for j in b]

    def test_predictor_integration_and_clipping(self):
        jobs = generate_workload(["lenet"], P40, 2, seed=0,
                                 predictor=lambda f: 7.5)
        assert all(j.predicted_occupancy == 1.0 for j in jobs)
