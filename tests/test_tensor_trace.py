"""Trace-and-replay executor tests (docs/compile.md).

Covers the satellite checklist of the compiled-executor tentpole:

* zoo-wide traced-vs-eager equivalence (<= 1e-6 per model/device);
* signature keying: hits, misses, replay-only refusal, eager fallback;
* bounded LRU trace cache with eviction accounting;
* the grad-mode hazard: tracing/replay under grad is a hard error;
* fused-vs-unfused tape equality and fusion actually shrinking tapes;
* arena buffer reuse without aliasing between live slots;
* adoption: ``ModelSession`` / ``WorkerCore`` default to traced batches
  while serial single-graph predictions stay bit-identical, and the
  ``REPRO_NO_TRACE`` escape hatch restores the eager path.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import DNNOccu, DNNOccuConfig
from repro.features import encode_graph
from repro.gpu import A100, P40
from repro.models import ModelConfig, build_model, list_models
from repro.perf.batching import collate, ensure_spd
from repro.tensor import Tensor, no_grad
from repro.tensor.trace import (DEFAULT_CACHE_SIZE, GradModeError,
                                TraceCache, TraceMissError, TracedExecutor,
                                batch_signature, compile_tape, fuse_tape,
                                trace_forward, tracing_disabled)


def _model(hidden: int = 32, seed: int = 7) -> DNNOccu:
    return DNNOccu(DNNOccuConfig(hidden=hidden, num_heads=4), seed=seed)


def _batch(names, batch_sizes, device=A100):
    feats = [encode_graph(build_model(n, ModelConfig(batch_size=bs)),
                          device)
             for n in names for bs in batch_sizes]
    for f in feats:
        ensure_spd(f)
    return collate(feats)


@pytest.fixture(scope="module")
def model():
    return _model()


class TestZooEquivalence:
    @pytest.mark.parametrize("name", list_models())
    @pytest.mark.parametrize("device", [A100, P40],
                             ids=lambda d: d.name)
    def test_traced_matches_eager(self, model, name, device):
        batch = _batch((name,), (1, 4), device)
        with no_grad():
            eager = np.asarray(model.forward_batch(batch).data)
            traced = model.traced_executor().run(batch)
        assert np.abs(traced - eager).max() <= 1e-6

    def test_mixed_family_batch(self, model):
        batch = _batch(("lenet", "rnn", "lstm", "alexnet"), (1, 2, 4))
        with no_grad():
            eager = np.asarray(model.forward_batch(batch).data)
            traced = model.traced_executor().run(batch)
        assert np.abs(traced - eager).max() <= 1e-6


class TestSignatureAndCache:
    def test_second_run_hits_cache(self):
        executor = TracedExecutor(_model())
        batch = _batch(("rnn",), (1, 2))
        with no_grad():
            first = executor.run(batch)
            assert len(executor.cache) == 1
            second = executor.run(batch)
        assert len(executor.cache) == 1
        assert np.array_equal(first, second)

    def test_replay_only_mode_refuses_unseen_signature(self):
        executor = TracedExecutor(_model())
        seen = _batch(("rnn",), (1, 2))
        unseen = _batch(("lenet", "alexnet"), (1, 2))
        with no_grad():
            executor.run(seen)
            with pytest.raises(TraceMissError):
                executor.run(unseen, allow_trace=False)
            # The default mode compiles the new signature instead.
            got = executor.run(unseen)
            want = np.asarray(_model().forward_batch(unseen).data)
        assert np.abs(got - want).max() <= 1e-6
        assert len(executor.cache) == 2

    def test_batch_size_changes_values_not_signature(self):
        # rnn@bs1 and rnn@bs8 differ only in feature *values*: same
        # signature, one compiled plan, correct per-batch outputs.
        executor = TracedExecutor(_model())
        a = _batch(("rnn",), (1, 2))
        b = _batch(("rnn",), (8, 16))
        assert batch_signature(a) == batch_signature(b)
        with no_grad():
            out_a = executor.run(a)
            out_b = executor.run(b)
            want_b = np.asarray(_model().forward_batch(b).data)
        assert len(executor.cache) == 1
        assert not np.array_equal(out_a, out_b)
        assert np.abs(out_b - want_b).max() <= 1e-6

    def test_lru_eviction_is_bounded_and_counted(self):
        executor = TracedExecutor(_model(), capacity=2)
        batches = [_batch(("rnn",), (1,)),
                   _batch(("rnn", "lstm"), (1,)),
                   _batch(("lenet",), (1,))]
        sigs = [batch_signature(b) for b in batches]
        assert len(set(sigs)) == 3
        with no_grad():
            for b in batches:
                executor.run(b)
        assert len(executor.cache) == 2
        assert executor.cache.evictions == 1
        assert sigs[0] not in executor.cache.signatures()
        assert sigs[1] in executor.cache.signatures()
        assert sigs[2] in executor.cache.signatures()

    def test_cache_capacity_validation_and_default(self):
        with pytest.raises(ValueError):
            TraceCache(capacity=0)
        assert TraceCache().capacity == DEFAULT_CACHE_SIZE == 64

    def test_arena_bytes_accounting(self):
        executor = TracedExecutor(_model())
        batch = _batch(("rnn",), (1, 2))
        with no_grad():
            executor.run(batch)
        assert executor.cache.arena_bytes() > 0


class TestGradMode:
    def test_run_under_grad_raises(self, model):
        batch = _batch(("rnn",), (1, 2))
        with pytest.raises(GradModeError):
            model.traced_executor().run(batch)

    def test_trace_forward_under_grad_raises(self, model):
        batch = _batch(("rnn",), (1, 2))
        with pytest.raises(GradModeError):
            trace_forward(model, batch)

    def test_grad_mode_error_not_swallowed_by_fallback(self, model):
        # predict_batch's eager fallback must not mask the caller bug:
        # it catches TraceError, and GradModeError is deliberately not
        # one.  (predict_batch itself enters no_grad, so exercise the
        # hazard at the executor layer a trainer would hit.)
        from repro.tensor.trace import TraceError
        assert not issubclass(GradModeError, TraceError)

    def test_training_path_stays_eager_and_differentiable(self):
        model = _model()
        batch = _batch(("rnn",), (1, 2))
        with no_grad():
            model.predict_batch([], batch_size=None)  # no-op warm call
        preds = model.forward_batch(batch)
        (preds.sum()).backward()
        grads = [p.grad for p in model.parameters() if p.grad is not None]
        assert grads, "eager batched forward must keep autograd alive"


class TestFusion:
    def test_fusion_shrinks_tape_and_preserves_replay(self, model):
        batch = _batch(("rnn", "lstm"), (1, 2))
        with no_grad():
            tape, ref = trace_forward(model, batch)
            fused, eliminated = fuse_tape(tape)
            assert eliminated > 0
            assert len(fused.ops) == len(tape.ops) - eliminated
            plain = compile_tape(tape, model).replay(batch)
            merged = compile_tape(fused, model).replay(batch)
        assert np.array_equal(plain, merged)
        assert np.abs(plain - np.asarray(ref)).max() <= 1e-9

    def test_unfused_executor_matches(self, model):
        batch = _batch(("rnn",), (1, 2))
        with no_grad():
            fused_out = TracedExecutor(model).run(batch)
            plain_out = TracedExecutor(model, fuse=False).run(batch)
        assert np.array_equal(fused_out, plain_out)


class TestArena:
    def test_buffers_are_reused_without_live_aliasing(self, model):
        batch = _batch(("rnn", "lstm"), (1, 2))
        with no_grad():
            executor = TracedExecutor(model)
            executor.run(batch)
        plan = executor.cache.get(batch_signature(batch))
        ops = plan.tape.ops
        owners = [(i, plan.buffer_ids[i], plan.live_ranges[op.out])
                  for i, op in enumerate(ops)
                  if plan.buffer_ids[i] is not None]
        # Reuse happens: strictly fewer distinct buffers than ops.
        assert len({b for _, b, _ in owners}) < len(owners)
        # No aliasing: two ops sharing a buffer never have overlapping
        # live ranges (an op's write may coincide with the final read
        # of the previous tenant, never precede it).
        by_buffer: dict[int, list[tuple]] = {}
        for i, buf, rng in owners:
            by_buffer.setdefault(buf, []).append((i, rng))
        for tenants in by_buffer.values():
            tenants.sort()
            for (_, (_, prev_last)), (j, _) in zip(tenants, tenants[1:]):
                assert prev_last <= j, "buffer reassigned while live"

    def test_replay_reuses_plan_output_buffer_safely(self, model):
        # replay() hands back a copy: two replays must not alias.
        batch = _batch(("rnn",), (1, 2))
        with no_grad():
            executor = TracedExecutor(model)
            a = executor.run(batch)
            b = executor.run(batch)
        assert a is not b
        assert not np.shares_memory(a, b)


class TestAdoption:
    def test_session_serial_requests_bit_identical(self, model):
        from repro.serve.service import ModelSession
        session = ModelSession(model, A100)
        assert session.traced
        feats = encode_graph(build_model("rnn", ModelConfig()), A100)
        ensure_spd(feats)
        assert session.predict_features([feats]) == [model.predict(feats)]

    def test_session_batches_match_eager_within_1e6(self, model):
        from repro.serve.service import ModelSession
        feats = [encode_graph(
            build_model(n, ModelConfig(batch_size=bs)), A100)
            for n in ("rnn", "lstm") for bs in (1, 2)]
        for f in feats:
            ensure_spd(f)
        traced = ModelSession(model, A100).predict_features(feats)
        eager = ModelSession(model, A100,
                             traced=False).predict_features(feats)
        assert np.abs(np.array(traced) - np.array(eager)).max() <= 1e-6

    def test_no_trace_env_restores_eager(self, model, monkeypatch):
        feats = [encode_graph(
            build_model(n, ModelConfig()), A100) for n in ("rnn", "lstm")]
        for f in feats:
            ensure_spd(f)
        eager = model.predict_batch(feats)
        monkeypatch.setenv("REPRO_NO_TRACE", "1")
        assert tracing_disabled()
        hatch = model.predict_batch(feats, traced=True)
        assert np.array_equal(eager, hatch)
        monkeypatch.setenv("REPRO_NO_TRACE", "0")
        assert not tracing_disabled()

    def test_worker_core_batches_and_caches(self):
        from repro.fleet.worker import WorkerCore, WorkerSpec
        spec = WorkerSpec(worker_id=0)
        assert spec.max_batch == 8
        core = WorkerCore(spec)
        graphs = [build_model(n, ModelConfig(batch_size=bs))
                  for n in ("rnn", "lstm") for bs in (1, 2)]
        outs = core.handle_many([(g, None) for g in graphs])
        assert [tier for _, tier in outs] == ["forward"] * len(graphs)
        again = core.handle_many([(g, None) for g in graphs])
        assert [tier for _, tier in again] == ["lru"] * len(graphs)
        assert [v for v, _ in again] == [v for v, _ in outs]
        single = core.handle(graphs[0])
        assert single == again[0]

    def test_executor_emits_metrics(self):
        from repro.obs.metrics import install_registry, uninstall_registry
        registry = install_registry()
        try:
            executor = TracedExecutor(_model())
            batch = _batch(("rnn",), (1, 2))
            with no_grad():
                executor.run(batch)
                executor.run(batch)
            assert registry.counter(
                "trace_cache_misses_total").snapshot() == 1
            assert registry.counter(
                "trace_cache_hits_total").snapshot() == 1
            assert registry.counter(
                "trace_fused_ops_total").snapshot() > 0
            assert registry.gauge("trace_arena_bytes").snapshot() > 0
        finally:
            uninstall_registry()
