"""repro.fleet: supervised multi-worker fleet with failover and chaos.

The contracts under test are the PR's acceptance gates:

* thread-mode fleet predictions are **bit-identical** to direct
  ``model.predict`` across the zoo, repeats hit the per-worker LRU, and
  a second fleet over the same disk tier pays zero forwards;
* the hash ring is stable (removing a worker only moves that worker's
  keys), balanced, and yields a deterministic failover order;
* under ``FaultInjector`` worker-kill + hang chaos every ticket still
  resolves (zero dropped requests), killed workers are restarted with
  backoff and re-join the ring, and stale results from a dead
  incarnation are discarded rather than double-resolving a ticket;
* when every retry is exhausted the ticket degrades through the shared
  tier into the fallback chain instead of raising;
* ``close()`` drains gracefully and is idempotent; post-close predicts
  degrade synchronously rather than raising;
* process mode spawns real child processes and matches thread mode.
"""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest

from repro.core import DNNOccu, DNNOccuConfig
from repro.features import encode_graph
from repro.gpu import get_device
from repro.models import ModelConfig, build_model, list_models
from repro.perf.cache import PredictionCache, graph_key
from repro.resilience import (ExponentialBackoff, FaultConfig,
                              FaultInjector)
from repro.fleet import FleetService, HashRing, Supervisor
from repro.fleet.bench import evaluate_fleet_gates, run_fleet_benchmarks

A100 = get_device("A100")


def _model(hidden: int = 32, seed: int = 7) -> DNNOccu:
    return DNNOccu(DNNOccuConfig(hidden=hidden, num_heads=4), seed=seed)


def _small_graphs(count: int = 8) -> list:
    names = ("lenet", "alexnet", "rnn", "lstm")
    return [build_model(names[i % len(names)],
                        ModelConfig(batch_size=2 ** (1 + i // len(names))))
            for i in range(count)]


def _wait_until(predicate, timeout_s: float = 30.0) -> bool:
    gate = threading.Event()
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if predicate():
            return True
        gate.wait(0.05)
    return predicate()


# --------------------------------------------------------------------- #
# hash ring
# --------------------------------------------------------------------- #

class TestHashRing:
    def test_add_remove_idempotent(self):
        ring = HashRing()
        ring.add(0)
        ring.add(0)
        ring.add(1)
        assert ring.members() == [0, 1]
        ring.remove(1)
        ring.remove(1)
        assert ring.members() == [0]
        assert 0 in ring and 1 not in ring

    def test_removal_only_moves_the_dead_workers_keys(self):
        ring = HashRing()
        for wid in range(4):
            ring.add(wid)
        keys = [f"key-{i}" for i in range(200)]
        before = {k: ring.candidates(k, limit=1)[0] for k in keys}
        ring.remove(2)
        for k in keys:
            owner = ring.candidates(k, limit=1)[0]
            if before[k] != 2:
                assert owner == before[k]
            else:
                assert owner != 2

    def test_distribution_is_roughly_balanced(self):
        ring = HashRing()
        for wid in range(4):
            ring.add(wid)
        loads = {wid: 0 for wid in range(4)}
        for i in range(400):
            loads[ring.candidates(f"key-{i}", limit=1)[0]] += 1
        # 64 virtual nodes per worker: no worker should starve or hog
        assert min(loads.values()) >= 40
        assert max(loads.values()) <= 200

    def test_candidates_are_distinct_and_failover_is_promotion(self):
        ring = HashRing()
        for wid in range(4):
            ring.add(wid)
        cands = ring.candidates("some-key")
        assert sorted(cands) == [0, 1, 2, 3]
        home, successor = cands[0], cands[1]
        ring.remove(home)
        assert ring.candidates("some-key", limit=1)[0] == successor

    def test_graph_keys_route_consistently(self):
        ring = HashRing()
        ring.add(0)
        ring.add(1)
        g = _small_graphs(1)[0]
        key = graph_key(g, A100)
        assert ring.candidates(key, limit=1)[0] == \
            ring.candidates(key, limit=1)[0]


# --------------------------------------------------------------------- #
# fault stream / shared disk tier
# --------------------------------------------------------------------- #

class TestWorkerFaultStream:
    def test_deterministic_per_worker_and_incarnation(self):
        cfg = FaultConfig(worker_kill_prob=0.3, worker_hang_prob=0.1)
        a = [FaultInjector(cfg, seed=5).worker_fault(1, 0, i)
             for i in range(50)]
        b = [FaultInjector(cfg, seed=5).worker_fault(1, 0, i)
             for i in range(50)]
        assert a == b
        c = [FaultInjector(cfg, seed=5).worker_fault(1, 1, i)
             for i in range(50)]
        assert a != c  # a restarted worker draws a fresh stream

    def test_zero_probability_never_faults(self):
        inj = FaultInjector(FaultConfig(), seed=5)
        assert all(inj.worker_fault(0, 0, i) is None for i in range(100))


class TestPredictionCache:
    def test_roundtrip_and_miss(self, tmp_path):
        cache = PredictionCache(str(tmp_path))
        assert cache.get("a" * 64) is None
        cache.put("a" * 64, 0.625)
        assert cache.get("a" * 64) == 0.625
        assert len(cache) == 1

    def test_corrupt_entry_reads_as_miss(self, tmp_path):
        cache = PredictionCache(str(tmp_path))
        cache.put("b" * 64, 0.5)
        path = tmp_path / f"pred_{'b' * 64}.npz"
        path.write_bytes(b"not a checkpoint")
        assert cache.get("b" * 64) is None


# --------------------------------------------------------------------- #
# equivalence and cache tiers
# --------------------------------------------------------------------- #

class TestFleetEquivalence:
    def test_thread_fleet_bit_identical_across_zoo(self):
        graphs = [build_model(n, ModelConfig(batch_size=16))
                  for n in list_models()]
        model = _model()
        direct = np.array([model.predict(encode_graph(g, A100))
                           for g in graphs])
        with FleetService(num_workers=3, mode="thread") as svc:
            served = np.array([svc.predict(g) for g in graphs])
            st = svc.stats()
        np.testing.assert_array_equal(served, direct)
        assert st["served"]["forward"] == len(graphs)
        assert st["fallbacks"] == {}

    def test_repeats_hit_worker_lru(self):
        graphs = _small_graphs(4)
        with FleetService(num_workers=2, mode="thread") as svc:
            first = [svc.predict(g) for g in graphs]
            again = [svc.predict(g) for g in graphs]
            st = svc.stats()
        assert first == again
        assert st["served"]["forward"] == len(graphs)
        assert st["served"]["lru"] == len(graphs)

    def test_second_fleet_serves_from_shared_disk_tier(self, tmp_path):
        graphs = _small_graphs(6)
        with FleetService(num_workers=2, mode="thread",
                          shared_cache_dir=str(tmp_path)) as first:
            a = first.predict_many(graphs)
        with FleetService(num_workers=2, mode="thread",
                          shared_cache_dir=str(tmp_path)) as second:
            b = second.predict_many(graphs)
            st = second.stats()
        assert a == b
        assert st["served"].get("forward", 0) == 0
        assert st["served"]["shared"] == len(graphs)


# --------------------------------------------------------------------- #
# chaos: kills, hangs, retry exhaustion
# --------------------------------------------------------------------- #

class TestWorkerKillChaos:
    def test_zero_dropped_and_ring_rejoins(self):
        graphs = _small_graphs(8)
        num_workers = 4
        with FleetService(
                num_workers=num_workers, mode="thread",
                fault_config=FaultConfig(worker_kill_prob=0.2),
                fault_seed=11, hang_deadline_s=5.0) as svc:
            values = []
            for _ in range(6):
                values.extend(svc.predict(g) for g in graphs)
            assert all(isinstance(v, float) and 0.0 <= v <= 1.0
                       for v in values)
            assert len(values) == 48

            def recovered():
                st = svc.stats()
                return (len(st["ring_members"]) == num_workers
                        and st["restarts"] >= st["deaths"])

            assert _wait_until(recovered)
            st = svc.stats()
        assert st["deaths"] > 0
        assert st["restarts"] >= st["deaths"]
        assert st["retries"] > 0
        assert st["ring_members"] == list(range(num_workers))
        # late results from killed incarnations never double-resolve
        assert st["stale_results"] >= 0
        assert sum(st["served"].values()) + sum(
            st["fallbacks"].values()) >= len(values)

    def test_certain_death_degrades_to_fallback_chain(self):
        g = _small_graphs(1)[0]
        with FleetService(
                num_workers=2, mode="thread",
                fault_config=FaultConfig(worker_kill_prob=1.0),
                fault_seed=3, max_retries=2) as svc:
            value = svc.predict(g)
            st = svc.stats()
        assert 0.0 <= value <= 1.0
        assert st["fallbacks"].get("retries_exhausted", 0) >= 1
        assert st["deaths"] >= 1


class TestWorkerHangChaos:
    def test_hung_worker_is_detected_restarted_and_request_resolves(self):
        graphs = _small_graphs(4)
        with FleetService(
                num_workers=2, mode="thread",
                fault_config=FaultConfig(worker_hang_prob=1.0),
                fault_seed=7, hang_deadline_s=0.3, max_retries=1) as svc:
            # every attempt hangs; the heartbeat deadline detects each
            # and the ticket degrades instead of blocking forever
            value = svc.predict(graphs[0], timeout=30.0)
            assert 0.0 <= value <= 1.0
            st = svc.stats()
            assert st["deaths"] >= 1
            assert _wait_until(
                lambda: svc.stats()["restarts"] >= svc.stats()["deaths"])

    def test_deadline_shed_resolves_via_fallback(self):
        g = _small_graphs(2)[1]
        with FleetService(
                num_workers=1, mode="thread",
                fault_config=FaultConfig(worker_hang_prob=1.0),
                fault_seed=7, hang_deadline_s=60.0) as svc:
            # worker hangs and the deadline is far away: the caller's
            # own timeout sheds to the fallback chain
            value = svc.predict(g, timeout=0.2)
            st = svc.stats()
        assert 0.0 <= value <= 1.0
        assert st["fallbacks"].get("deadline", 0) == 1


# --------------------------------------------------------------------- #
# lifecycle: drain, close, post-close degradation
# --------------------------------------------------------------------- #

class TestLifecycle:
    def test_close_is_idempotent_and_drains(self):
        graphs = _small_graphs(4)
        svc = FleetService(num_workers=2, mode="thread")
        values = svc.predict_many(graphs)
        svc.close()
        svc.close()
        assert all(0.0 <= v <= 1.0 for v in values)
        assert svc.stats()["closed"]

    def test_post_close_predict_degrades_not_raises(self):
        graphs = _small_graphs(2)
        svc = FleetService(num_workers=2, mode="thread")
        svc.predict(graphs[0])
        svc.close()
        value = svc.predict(graphs[1])
        assert 0.0 <= value <= 1.0
        assert svc.stats()["fallbacks"].get("closed", 0) >= 1

    def test_context_manager_closes(self):
        with FleetService(num_workers=1, mode="thread") as svc:
            svc.predict(_small_graphs(1)[0])
        assert svc.stats()["closed"]


class TestSupervisor:
    def test_backoff_grows_and_resets(self):
        restarted = []
        cond = threading.Condition()

        def on_restart(wid):
            with cond:
                restarted.append(wid)
                cond.notify_all()

        sup = Supervisor(health_cb=lambda now: None,
                         restart_cb=on_restart,
                         backoff=ExponentialBackoff(
                             base_s=0.01, factor=2.0, cap_s=0.05),
                         tick_s=0.01)
        try:
            d1 = sup.schedule_restart(3)
            with cond:
                cond.wait_for(lambda: restarted == [3], timeout=5.0)
            d2 = sup.schedule_restart(3)
            assert d2 > d1
            sup.note_healthy(3)
            with cond:
                cond.wait_for(lambda: restarted == [3, 3], timeout=5.0)
            d3 = sup.schedule_restart(3)
            assert d3 == d1  # attempts reset once healthy
        finally:
            sup.close()
        assert restarted[:2] == [3, 3]

    def test_callback_exception_does_not_kill_supervision(self):
        calls = []
        cond = threading.Condition()

        def broken_restart(wid):
            with cond:
                calls.append(wid)
                cond.notify_all()
            raise RuntimeError("boom")

        with Supervisor(health_cb=lambda now: None,
                        restart_cb=broken_restart, tick_s=0.01) as sup:
            sup.schedule_restart(0)
            with cond:
                cond.wait_for(lambda: calls == [0], timeout=5.0)
            sup.schedule_restart(1)
            with cond:
                cond.wait_for(lambda: calls == [0, 1], timeout=5.0)
        assert calls == [0, 1]


# --------------------------------------------------------------------- #
# process mode and the bench gates
# --------------------------------------------------------------------- #

class TestProcessMode:
    def test_spawned_workers_match_thread_mode(self):
        graphs = _small_graphs(2)
        model = _model()
        direct = [float(model.predict(encode_graph(g, A100)))
                  for g in graphs]
        with FleetService(num_workers=2, mode="process") as svc:
            served = [svc.predict(g, timeout=180.0) for g in graphs]
            st = svc.stats()
        assert served == direct
        assert st["served"]["forward"] == len(graphs)
        assert st["fallbacks"] == {}


class TestBenchGates:
    def test_chaos_suite_gates_pass(self):
        results = run_fleet_benchmarks(scale=0.7, suites=("chaos",))
        assert results["gates"] == {"fleet_chaos_zero_dropped": True,
                                    "fleet_chaos_recovers": True}

    def test_gate_evaluation_flags_failures(self):
        doc = {"chaos": {"dropped": 3, "recovered": False}}
        gates = evaluate_fleet_gates(doc)
        assert gates == {"fleet_chaos_zero_dropped": False,
                         "fleet_chaos_recovers": False}
