"""Tests for workload traces, DOT export, and the seed ensemble."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (DNNOccu, DNNOccuConfig, EnsemblePredictor,
                        TrainConfig, Trainer, train_ensemble)
from repro.graph import to_dot
from repro.models import ModelConfig, build_model
from repro.sched import (Job, SlotPacking, load_trace, save_trace, simulate)


def jobs():
    return [Job(i, f"m{i}", 5.0 + i, 0.2 + 0.1 * i, 0.5,
                memory_bytes=1000 * i, predicted_occupancy=0.25,
                arrival_s=float(i)) for i in range(3)]


class TestWorkloadTrace:
    def test_roundtrip(self, tmp_path):
        path = str(tmp_path / "trace.json")
        original = jobs()
        save_trace(original, path)
        back = load_trace(path)
        assert len(back) == 3
        for a, b in zip(original, back):
            assert a.job_id == b.job_id
            assert a.duration_s == b.duration_s
            assert a.occupancy == b.occupancy
            assert a.predicted_occupancy == b.predicted_occupancy
            assert a.arrival_s == b.arrival_s

    def test_replay_matches_original(self, tmp_path):
        path = str(tmp_path / "trace.json")
        original = jobs()
        save_trace(original, path)
        r1 = simulate(original, 2, SlotPacking())
        r2 = simulate(load_trace(path), 2, SlotPacking())
        assert r1.makespan_s == pytest.approx(r2.makespan_s)

    def test_runtime_state_not_serialized(self, tmp_path):
        path = str(tmp_path / "trace.json")
        original = jobs()
        simulate(original, 2, SlotPacking())  # populates runtime state
        save_trace(original, path)
        back = load_trace(path)
        assert all(j.finish_s is None for j in back)

    def test_bad_version_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"version": 42, "jobs": []}')
        with pytest.raises(ValueError, match="version"):
            load_trace(str(path))


class TestDotExport:
    def test_valid_structure(self):
        g = build_model("lenet", ModelConfig(batch_size=4))
        dot = to_dot(g)
        assert dot.startswith("digraph")
        assert dot.rstrip().endswith("}")
        assert dot.count("->") == g.num_edges
        assert dot.count("[label=") == g.num_nodes

    def test_backward_edges_dashed(self):
        from repro.graph import add_backward_edges
        g = add_backward_edges(build_model("lenet", ModelConfig(batch_size=4)))
        dot = to_dot(g)
        assert "style=dashed" in dot

    def test_conv_color_coded(self):
        g = build_model("lenet", ModelConfig(batch_size=4))
        assert "lightblue" in to_dot(g)


class TestEnsemble:
    def test_requires_members(self):
        with pytest.raises(ValueError):
            EnsemblePredictor([])

    def test_average_of_members(self, tiny_dataset):
        a = DNNOccu(DNNOccuConfig(hidden=16, num_heads=2), seed=0)
        b = DNNOccu(DNNOccuConfig(hidden=16, num_heads=2), seed=1)
        ens = EnsemblePredictor([a, b])
        s = tiny_dataset[0].features
        expected = 0.5 * (a.predict(s) + b.predict(s))
        assert ens.predict(s) == pytest.approx(expected)

    def test_train_ensemble_members_differ(self, tiny_dataset):
        ens = train_ensemble(
            lambda seed: DNNOccu(DNNOccuConfig(hidden=16, num_heads=2),
                                 seed=seed),
            tiny_dataset, TrainConfig(epochs=2, lr=1e-3), num_members=2)
        s = tiny_dataset[0].features
        p0 = ens.members[0].predict(s)
        p1 = ens.members[1].predict(s)
        assert p0 != p1

    def test_train_ensemble_validates_members(self, tiny_dataset):
        with pytest.raises(ValueError):
            train_ensemble(lambda s: DNNOccu(seed=s), tiny_dataset,
                           TrainConfig(epochs=1), num_members=0)

    def test_ensemble_works_with_trainer_evaluate(self, tiny_dataset):
        ens = train_ensemble(
            lambda seed: DNNOccu(DNNOccuConfig(hidden=16, num_heads=2),
                                 seed=seed),
            tiny_dataset, TrainConfig(epochs=3, lr=1e-3), num_members=2)
        ev = Trainer(ens).evaluate(tiny_dataset)
        assert 0 <= ev["mse"] < 1.0
