"""Trainer extension tests: cosine LR decay and early stopping."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import MLPPredictor
from repro.core import TrainConfig, Trainer


def small_model():
    return MLPPredictor(seed=0, widths=(16, 16))


class TestCosineDecay:
    def test_lr_reaches_min_at_last_epoch(self, tiny_dataset):
        tr = Trainer(small_model(),
                     TrainConfig(epochs=5, lr=1e-3, lr_min=1e-5,
                                 lr_decay="cosine"))
        tr.fit(tiny_dataset)
        assert tr.optimizer.lr == pytest.approx(1e-5)

    def test_no_decay_keeps_lr(self, tiny_dataset):
        tr = Trainer(small_model(), TrainConfig(epochs=3, lr=1e-3))
        tr.fit(tiny_dataset)
        assert tr.optimizer.lr == pytest.approx(1e-3)

    def test_unknown_decay_raises(self, tiny_dataset):
        tr = Trainer(small_model(),
                     TrainConfig(epochs=3, lr_decay="staircase"))
        with pytest.raises(ValueError):
            tr.fit(tiny_dataset)

    def test_cosine_still_learns(self, tiny_dataset):
        tr = Trainer(small_model(),
                     TrainConfig(epochs=15, lr=1e-3, lr_decay="cosine"))
        hist = tr.fit(tiny_dataset)
        assert hist.train_loss[-1] < hist.train_loss[0]


class TestEarlyStopping:
    def test_requires_validation_set(self, tiny_dataset):
        tr = Trainer(small_model(), TrainConfig(epochs=3, patience=1))
        with pytest.raises(ValueError, match="validation"):
            tr.fit(tiny_dataset)

    def test_stops_before_epoch_budget(self, tiny_dataset, rng):
        train, val = tiny_dataset.split(0.7, rng)
        tr = Trainer(small_model(),
                     TrainConfig(epochs=200, lr=3e-3, patience=2))
        hist = tr.fit(train, val=val)
        assert len(hist.train_loss) < 200

    def test_restores_best_weights(self, tiny_dataset, rng):
        train, val = tiny_dataset.split(0.7, rng)
        tr = Trainer(small_model(),
                     TrainConfig(epochs=40, lr=3e-3, patience=3))
        hist = tr.fit(train, val=val)
        final_val = tr.evaluate(val)["mse"]
        assert final_val == pytest.approx(min(hist.val_loss), rel=1e-6)

    def test_val_history_matches_epochs_run(self, tiny_dataset, rng):
        train, val = tiny_dataset.split(0.7, rng)
        tr = Trainer(small_model(),
                     TrainConfig(epochs=10, lr=1e-3, patience=50))
        hist = tr.fit(train, val=val)
        assert len(hist.val_loss) == len(hist.train_loss)


class TestFitBestOf:
    def test_selects_lower_loss(self, tiny_dataset):
        from repro.core import fit_best_of, TrainConfig
        tr = fit_best_of(lambda s: MLPPredictor(seed=s, widths=(16, 16)),
                         tiny_dataset, TrainConfig(epochs=5, lr=1e-3),
                         tries=2)
        assert tr is not None
        assert tr.history.train_loss

    def test_single_try(self, tiny_dataset):
        from repro.core import fit_best_of, TrainConfig
        tr = fit_best_of(lambda s: MLPPredictor(seed=s, widths=(16, 16)),
                         tiny_dataset, TrainConfig(epochs=2, lr=1e-3),
                         tries=1)
        assert len(tr.history.train_loss) == 2

    def test_invalid_tries(self, tiny_dataset):
        from repro.core import fit_best_of, TrainConfig
        import pytest as _pytest
        with _pytest.raises(ValueError):
            fit_best_of(lambda s: MLPPredictor(seed=s, widths=(8,)),
                        tiny_dataset, TrainConfig(epochs=1), tries=0)

    def test_val_based_selection(self, tiny_dataset, rng):
        from repro.core import fit_best_of, TrainConfig
        train, val = tiny_dataset.split(0.7, rng)
        tr = fit_best_of(lambda s: MLPPredictor(seed=s, widths=(16, 16)),
                         train, TrainConfig(epochs=5, lr=1e-3), tries=2,
                         val=val)
        assert tr.evaluate(val)["mse"] >= 0.0
